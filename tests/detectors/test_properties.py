"""Property tests: registry round-trips and slot-pool invariants."""

from hypothesis import given, settings, strategies as st

from repro.detectors import (
    GwpAsanSlotPool,
    get,
    known_arms,
    normalize,
    resolve_arms,
)
from repro.machine.address_space import PAGE_SIZE

ARMS = known_arms()


# ----------------------------------------------------------------------
# Registry round-trips
# ----------------------------------------------------------------------
@settings(deadline=None)
@given(
    arm=st.sampled_from(ARMS),
    left=st.text(alphabet=" \t", max_size=3),
    right=st.text(alphabet=" \t", max_size=3),
    upper=st.booleans(),
)
def test_normalize_identity_under_case_and_whitespace(
    arm, left, right, upper
):
    spelled = left + (arm.upper() if upper else arm) + right
    canonical = normalize(spelled)
    assert canonical == arm
    # Lookup after normalize is the registered detector itself.
    assert get(canonical).name == canonical
    # normalize is idempotent on its own output.
    assert normalize(canonical) == canonical


@settings(deadline=None)
@given(subset=st.lists(st.sampled_from(ARMS), min_size=1, max_size=10))
def test_resolve_arms_round_trip(subset):
    resolved = resolve_arms(tuple(subset))
    # Canonical registry order, deduplicated, nothing invented.
    assert resolved == tuple(a for a in ARMS if a in set(subset))
    # Resolution is idempotent: feeding the result back is a no-op.
    assert resolve_arms(resolved) == resolved


# ----------------------------------------------------------------------
# GWP-ASan slot pool
# ----------------------------------------------------------------------
class TrackingMemory:
    """Records mapped page bases; faults double-maps like the real one."""

    def __init__(self):
        self.mapped = set()

    def map_region(self, base, size, name=""):
        assert base not in self.mapped, "double map"
        self.mapped.add(base)

    def unmap_region(self, base):
        assert base in self.mapped, "unmap of unmapped page"
        self.mapped.remove(base)


@settings(deadline=None, max_examples=60)
@given(
    slots=st.integers(min_value=1, max_value=8),
    cap=st.integers(min_value=0, max_value=8),
    ops=st.lists(st.booleans(), max_size=60),  # True=acquire, False=retire
)
def test_slot_pool_invariants(slots, cap, ops):
    cap = min(cap, slots)
    memory = TrackingMemory()
    pool = GwpAsanSlotPool(memory, slots=slots)
    live = []
    for is_acquire in ops:
        if is_acquire:
            slot = pool.acquire()
            if slot is not None:
                # A quarantined slot is never handed out while the
                # quarantine holds it: acquire only serves the free list.
                assert slot.index not in pool.quarantined_indexes()
                live.append(slot)
        elif live:
            pool.retire(live.pop(0), cap)

        free = set(pool.free_indexes())
        quarantined = set(pool.quarantined_indexes())
        alive = set(pool.live_indexes())
        # The three states partition the pool exactly.
        assert free | quarantined | alive == set(range(slots))
        assert not free & quarantined
        assert not free & alive
        assert not quarantined & alive
        # Retire enforces the cap on every transition.
        assert len(quarantined) <= cap
        # Only live slot pages are mapped; guard pages never are, so a
        # guard can never overlap a live slot.
        assert memory.mapped == {
            pool.slots[i].page_base for i in alive
        }
        guard_starts = {start for start, _ in pool.guard_ranges()}
        assert guard_starts.isdisjoint(memory.mapped)
        # Geometry: every slot page sits between two guard pages.
        for i in range(slots):
            page = pool.slots[i].page_base
            assert (page - PAGE_SIZE, page) in pool.guard_ranges()
            assert (page + PAGE_SIZE, page + 2 * PAGE_SIZE) in (
                pool.guard_ranges()
            )
