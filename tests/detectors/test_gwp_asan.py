"""The GWP-ASan runtime: sampling gate, slot pool, crash attribution."""

import pytest

from repro.callstack.frames import CallSite
from repro.detectors import GwpAsanConfig, GwpAsanRuntime
from repro.errors import ReproError, SegmentationFault
from repro.machine.address_space import PAGE_SIZE
from repro.workloads.base import SimProcess


def make(sample_every=1, seed=3, **kwargs):
    process = SimProcess(seed=seed)
    runtime = GwpAsanRuntime(
        process.machine,
        process.heap,
        GwpAsanConfig(sample_every=sample_every, **kwargs),
        seed=seed,
    )
    return process, runtime


def alloc(process, size=64, name="alloc_site"):
    site = CallSite("APP", "a.c", 1, name)
    try:
        process.symbols.add(site)
    except ValueError:
        pass
    with process.main_thread.call_stack.calling(site):
        return process.heap.malloc(process.main_thread, size)


def free(process, address, name="free_site"):
    site = CallSite("APP", "f.c", 9, name)
    try:
        process.symbols.add(site)
    except ValueError:
        pass
    with process.main_thread.call_stack.calling(site):
        process.heap.free(process.main_thread, address)


def test_config_validation():
    with pytest.raises(ReproError):
        GwpAsanConfig(sample_every=0)
    with pytest.raises(ReproError):
        GwpAsanConfig(pool_slots=0)
    with pytest.raises(ReproError):
        GwpAsanConfig(pool_slots=4, quarantine_slots=5)


def test_sampled_object_is_right_aligned_and_usable():
    process, runtime = make(sample_every=1)
    address = alloc(process, 64)
    slot = runtime.pool.slot_at(address)
    assert slot is not None
    # 64 is 16-aligned: flush against the right guard, no slack.
    assert address + 64 == slot.page_base + PAGE_SIZE
    process.machine.cpu.store(process.main_thread, address, b"x" * 64)
    assert runtime.usable_size(address) == 64
    assert runtime.sampled_count == 1


def test_overflow_into_right_guard_reports_with_alloc_stack():
    process, runtime = make(sample_every=1)
    address = alloc(process, 64)
    with pytest.raises(SegmentationFault):
        process.machine.cpu.store(process.main_thread, address + 64, b"!" * 8)
    assert runtime.detected
    report = runtime.reports[0]
    assert report.kind == "overflow"
    assert report.arm == "gwp-asan"
    assert report.object_address == address
    assert any("a.c:1" in frame for frame in report.allocation_context)
    assert report.deallocation_context == ()


def test_slack_hides_unaligned_overflow():
    process, runtime = make(sample_every=1)
    address = alloc(process, 24)  # 8 bytes of slack before the guard
    process.machine.cpu.store(process.main_thread, address + 24, b"!" * 8)
    assert not runtime.detected


def test_use_after_free_reports_both_stacks():
    process, runtime = make(sample_every=1)
    address = alloc(process, 64)
    free(process, address)
    with pytest.raises(SegmentationFault):
        process.machine.cpu.load(process.main_thread, address, 8)
    report = runtime.reports[0]
    assert report.kind == "use-after-free"
    assert any("a.c:1" in frame for frame in report.allocation_context)
    assert any("f.c:9" in frame for frame in report.deallocation_context)


def test_underflow_into_left_guard_attributes_right_neighbor():
    process, runtime = make(sample_every=1)
    address = alloc(process, 64)
    slot = runtime.pool.slot_at(address)
    with pytest.raises(SegmentationFault):
        process.machine.cpu.load(process.main_thread, slot.page_base - 8, 8)
    assert runtime.reports[0].kind == "underflow"
    assert runtime.reports[0].object_address == address


def test_double_free_of_quarantined_slot_is_nonfatal():
    process, runtime = make(sample_every=1)
    address = alloc(process, 64)
    free(process, address)
    free(process, address)  # no exception: reported from the free site
    assert runtime.reports[0].kind == "double-free"
    assert any("f.c:9" in f for f in runtime.reports[0].deallocation_context)


def test_sampling_gate_is_rare_but_nonzero():
    process, runtime = make(sample_every=50)
    addresses = [alloc(process, 32) for _ in range(600)]
    assert runtime.allocation_count == 600
    # Mean gap is 50: several samples expected, nowhere near all.
    assert 1 <= runtime.sampled_count <= 60
    for address in addresses:
        free(process, address)


def test_pool_exhaustion_falls_back_to_raw_heap():
    process, runtime = make(sample_every=1, pool_slots=2, quarantine_slots=0)
    first, second, third = (alloc(process, 64) for _ in range(3))
    assert runtime.pool.slot_at(first) is not None
    assert runtime.pool.slot_at(second) is not None
    assert runtime.pool.slot_at(third) is None  # raw allocation
    assert runtime.sampled_count == 2


def test_quarantine_recycles_past_cap():
    process, runtime = make(sample_every=1, pool_slots=4, quarantine_slots=1)
    a = alloc(process, 64)
    b = alloc(process, 64)
    free(process, a)
    assert runtime.pool.quarantined_indexes() == (0,)
    free(process, b)  # evicts a's slot back to the free list
    assert len(runtime.pool.quarantined_indexes()) == 1
    assert 0 in runtime.pool.free_indexes()
    # The recycled slot's metadata is stale: a second free of `a` now
    # goes to the raw heap (where it is unknown) instead of reporting.
    assert runtime.memory_overhead_bytes() == PAGE_SIZE


def test_large_allocations_never_sampled():
    process, runtime = make(sample_every=1)
    address = alloc(process, PAGE_SIZE + 1)
    assert runtime.pool.slot_at(address) is None
    assert runtime.sampled_count == 0


def test_shutdown_stops_interposing():
    process, runtime = make(sample_every=1)
    alloc(process, 64)
    runtime.shutdown()
    address = alloc(process, 64)
    assert runtime.pool.slot_at(address) is None  # raw heap again
    assert runtime.sampled_count == 1
