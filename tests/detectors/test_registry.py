"""The detector registry: names, aliases, resolution, ranking."""

import pytest

from repro.detectors import (
    Detector,
    cheapest_production_arm,
    fleet_arms,
    get,
    inline_arms,
    known_arms,
    normalize,
    register,
    resolve_arms,
)
from repro.errors import ReproError

CANONICAL = (
    "csod",
    "csod-random",
    "csod-noevidence",
    "asan",
    "guardpage",
    "gwp-asan",
    "doubletake",
)


def test_seven_arms_in_canonical_order():
    assert known_arms() == CANONICAL


def test_normalize_is_identity_on_canonical_names():
    for arm in known_arms():
        assert normalize(arm) == arm


def test_normalize_strips_case_and_aliases():
    assert normalize("  CSOD ") == "csod"
    assert normalize("gwp") == "gwp-asan"
    assert normalize("gwpasan") == "gwp-asan"
    assert normalize("gwp_asan") == "gwp-asan"
    assert normalize("double-take") == "doubletake"
    assert normalize("double_take") == "doubletake"
    assert normalize("address-sanitizer") == "asan"
    assert normalize("guard_page") == "guardpage"


def test_unknown_arm_error_lists_known_arms():
    with pytest.raises(ReproError) as excinfo:
        normalize("valgrind")
    message = str(excinfo.value)
    assert "valgrind" in message
    for arm in CANONICAL:
        assert arm in message


def test_get_returns_the_registered_detector():
    for arm in known_arms():
        detector = get(arm)
        assert detector.name == arm
        assert detector.summary  # every arm documents itself


def test_resolve_arms_none_means_all():
    assert resolve_arms(None) == CANONICAL


def test_resolve_arms_subset_comes_back_in_canonical_order():
    assert resolve_arms(("guardpage", "CSOD", "gwp")) == (
        "csod",
        "guardpage",
        "gwp-asan",
    )


def test_resolve_arms_rejects_empty_selection():
    with pytest.raises(ReproError):
        resolve_arms(())


def test_resolve_arms_rejects_unknown():
    with pytest.raises(ReproError, match="known arms"):
        resolve_arms(("csod", "bogus"))


def test_duplicate_registration_rejected():
    dup = Detector()
    dup.name = "csod"
    with pytest.raises(ReproError):
        register(dup)


def test_fleet_inline_split():
    assert fleet_arms(None) == ("csod", "csod-random", "csod-noevidence")
    assert inline_arms(None) == ("asan", "guardpage", "gwp-asan", "doubletake")
    for arm in fleet_arms(None):
        assert get(arm).fleet
        assert get(arm).config() is not None
    for arm in inline_arms(None):
        assert not get(arm).fleet
        with pytest.raises(ReproError):
            get(arm).config()


def test_cheapest_production_arm_prefers_lowest_overhead():
    # gwp-asan models the lowest overhead of the production-viable set.
    assert cheapest_production_arm(known_arms()) == "gwp-asan"
    assert cheapest_production_arm(("csod", "csod-random")) == "csod"
    # ASan alone is not production-viable: nothing to recommend.
    assert cheapest_production_arm(("asan",)) == ""
    assert cheapest_production_arm(()) == ""


def test_describe_is_json_able_and_complete():
    for arm in known_arms():
        payload = get(arm).describe()
        assert payload["name"] == arm
        assert isinstance(payload["production_viable"], bool)
        assert isinstance(payload["modeled_overhead_pct"], float)
        assert isinstance(payload["cost_events"], list)
        if arm != "csod-noevidence":
            # csod-noevidence shares the trio's event list; every arm
            # declares the events its checks charge.
            assert payload["cost_events"]
