"""The DoubleTake runtime: canaries, epoch sweeps, rollback replay."""

import pytest

from repro.callstack.frames import CallSite
from repro.detectors import DoubleTakeConfig, DoubleTakeRuntime
from repro.errors import ReproError
from repro.fleet.evidence_store import EvidenceStore
from repro.workloads.base import SimProcess


def make(epoch_every_allocs=4, seed=3, watch=(), store=None, **kwargs):
    process = SimProcess(seed=seed)
    runtime = DoubleTakeRuntime(
        process.machine,
        process.heap,
        DoubleTakeConfig(epoch_every_allocs=epoch_every_allocs, **kwargs),
        seed=seed,
        watch=watch,
        evidence_store=store,
    )
    return process, runtime


def alloc(process, size=64, name="alloc_site"):
    site = CallSite("APP", "a.c", 1, name)
    try:
        process.symbols.add(site)
    except ValueError:
        pass
    with process.main_thread.call_stack.calling(site):
        return process.heap.malloc(process.main_thread, size)


def store_at(process, address, data, line=7):
    site = CallSite("APP", "w.c", line, "writer")
    try:
        process.symbols.add(site)
    except ValueError:
        pass
    with process.main_thread.call_stack.calling(site):
        process.machine.cpu.store(process.main_thread, address, data)


def test_config_validation():
    with pytest.raises(ReproError):
        DoubleTakeConfig(epoch_every_allocs=0)
    with pytest.raises(ReproError):
        DoubleTakeConfig(quarantine_blocks=-1)


def test_clean_run_produces_no_evidence():
    process, runtime = make()
    addresses = [alloc(process, 32) for _ in range(8)]
    for address in addresses:
        store_at(process, address, b"x" * 32)
        process.heap.free(process.main_thread, address)
    runtime.shutdown()
    assert runtime.evidence == {}
    assert not runtime.detected
    assert runtime.epochs >= 2


def test_overflow_write_found_at_epoch_boundary_not_at_access():
    process, runtime = make(epoch_every_allocs=100)
    address = alloc(process, 64)
    store_at(process, address + 64, b"!" * 8)  # smashes trailing canary
    assert not runtime.detected  # invisible until a sweep runs
    runtime.shutdown()  # final epoch boundary sweeps
    assert runtime.detected
    report = runtime.reports[0]
    assert report.kind == "buffer-overflow-write"
    assert report.fault_address == address + 64
    assert any("a.c:1" in frame for frame in report.allocation_context)


def test_underflow_write_corrupts_leading_canary():
    process, runtime = make(epoch_every_allocs=100)
    address = alloc(process, 64)
    store_at(process, address - 8, b"!" * 8)
    runtime.shutdown()
    assert runtime.reports[0].kind == "buffer-underflow-write"


def test_use_after_free_write_corrupts_quarantine_fill():
    process, runtime = make(epoch_every_allocs=100)
    address = alloc(process, 64)
    process.heap.free(process.main_thread, address)
    store_at(process, address + 16, b"Z" * 8)
    runtime.shutdown()
    kinds = {r.kind for r in runtime.reports}
    assert "use-after-free-write" in kinds


def test_reads_are_invisible_by_design():
    process, runtime = make(epoch_every_allocs=100)
    address = alloc(process, 64)
    process.machine.cpu.load(process.main_thread, address + 64, 8)
    process.heap.free(process.main_thread, address)
    process.machine.cpu.load(process.main_thread, address, 8)
    runtime.shutdown()
    assert not runtime.detected


def test_double_free_of_quarantined_block_reports_both_stacks():
    process, runtime = make(epoch_every_allocs=100)
    address = alloc(process, 64)
    site = CallSite("APP", "f.c", 9, "free_site")
    process.symbols.add(site)
    with process.main_thread.call_stack.calling(site):
        process.heap.free(process.main_thread, address)
        process.heap.free(process.main_thread, address)  # non-fatal
    report = runtime.reports[0]
    assert report.kind == "double-free"
    assert any("f.c:9" in f for f in report.deallocation_context)


def test_replay_attributes_the_corrupting_store():
    # Record run: find the corrupted word.
    process, runtime = make(epoch_every_allocs=100, seed=11)
    address = alloc(process, 64)
    store_at(process, address + 64, b"!" * 8, line=42)
    runtime.shutdown()
    faults = tuple(runtime.evidence)
    assert faults == (address + 64,)

    # Rollback: same seed is an exact re-execution; watch the word.
    replay_process, replay = make(
        epoch_every_allocs=100, seed=11, watch=faults
    )
    replay_address = alloc(replay_process, 64)
    assert replay_address == address  # deterministic rollback
    store_at(replay_process, replay_address + 64, b"!" * 8, line=42)
    replay.shutdown()
    report = replay.reports[0]
    assert report.kind == "buffer-overflow-write"
    assert any("w.c:42" in frame for frame in report.access_context)


def test_evidence_flows_through_the_store():
    store = EvidenceStore()
    process, runtime = make(epoch_every_allocs=100, store=store)
    address = alloc(process, 64)
    store_at(process, address + 64, b"!" * 8)
    runtime.shutdown()
    signatures = runtime.evidence_signatures()
    assert signatures
    assert all(s.startswith("doubletake:") for s in signatures)
    assert set(store.snapshot()) >= set(signatures)


def test_quarantine_eviction_sweeps_before_recycling():
    process, runtime = make(epoch_every_allocs=10**6, quarantine_blocks=1)
    first = alloc(process, 32)
    process.heap.free(process.main_thread, first)
    store_at(process, first, b"Z" * 8)  # corrupt while quarantined
    second = alloc(process, 32)
    process.heap.free(process.main_thread, second)  # evicts `first`
    # The eviction sweep caught the corruption without any epoch close.
    assert any(r.kind == "use-after-free-write" for r in runtime.reports)
