"""The Fig. 5 object layout."""

import pytest

from repro.heap import layout
from repro.machine.address_space import AddressSpace

BASE = 0x5_0000


@pytest.fixture
def memory():
    space = AddressSpace()
    space.map_region(BASE, 1 << 16, "heap")
    return space


OBJ = BASE + layout.CSOD_HEADER_SIZE


def test_header_size_matches_paper():
    """Table V attributes CSOD's overhead to a 32B header + 8B canary."""
    assert layout.CSOD_HEADER_SIZE == 32
    assert layout.CANARY_SIZE == 8


def test_header_roundtrip(memory):
    layout.write_header(memory, OBJ, real_object_ptr=BASE, object_size=64, context_ptr=0x400100)
    header = layout.read_header(memory, OBJ)
    assert header.real_object_ptr == BASE
    assert header.object_size == 64
    assert header.context_ptr == 0x400100
    assert header.identifier == layout.HEADER_IDENTIFIER
    assert header.is_valid


def test_header_address(memory):
    assert layout.header_address(OBJ) == BASE


def test_canary_address():
    assert layout.canary_address(OBJ, 64) == OBJ + 64


def test_canary_roundtrip(memory):
    layout.write_canary(memory, OBJ, 64, 0xABCD)
    assert layout.read_canary(memory, OBJ, 64) == 0xABCD


def test_corrupted_identifier_invalidates(memory):
    layout.write_header(memory, OBJ, BASE, 64, 0)
    memory.write_word(BASE + 24, 0x1234)  # clobber the identifier
    assert not layout.read_header(memory, OBJ).is_valid


def test_overwrite_past_object_corrupts_canary(memory):
    """The evidence mechanism: a continuous over-write hits the canary."""
    layout.write_header(memory, OBJ, BASE, 64, 0)
    layout.write_canary(memory, OBJ, 64, 0xFEED)
    memory.write_bytes(OBJ + 64, b"\x00" * 8)  # one-word overflow
    assert layout.read_canary(memory, OBJ, 64) != 0xFEED


def test_in_bounds_write_preserves_canary(memory):
    layout.write_canary(memory, OBJ, 64, 0xFEED)
    memory.write_bytes(OBJ, b"\xff" * 64)
    assert layout.read_canary(memory, OBJ, 64) == 0xFEED
