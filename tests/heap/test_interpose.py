"""The LD_PRELOAD-style interposition seam."""

import pytest

from repro.workloads.base import SimProcess


@pytest.fixture
def process():
    return SimProcess(seed=1)


def thread(process):
    return process.main_thread


def test_default_routes_to_raw_heap(process):
    address = process.heap.malloc(process.main_thread, 64)
    assert process.allocator.is_live(address)


def test_free_null_is_noop(process):
    process.heap.free(process.main_thread, 0)


def test_calloc_zero_fills(process):
    t = process.main_thread
    # Dirty some memory first so the zero-fill is observable.
    a = process.heap.malloc(t, 32)
    process.machine.memory.write_bytes(a, b"\xff" * 32)
    process.heap.free(t, a)
    b = process.heap.calloc(t, 4, 8)
    assert process.machine.memory.read_bytes(b, 32) == bytes(32)


def test_realloc_grows_and_preserves(process):
    t = process.main_thread
    a = process.heap.malloc(t, 16)
    process.machine.memory.write_bytes(a, b"0123456789abcdef")
    b = process.heap.realloc(t, a, 64)
    assert process.machine.memory.read_bytes(b, 16) == b"0123456789abcdef"
    assert not process.allocator.is_live(a) or a == b


def test_realloc_shrinks(process):
    t = process.main_thread
    a = process.heap.malloc(t, 64)
    process.machine.memory.write_bytes(a, b"x" * 64)
    b = process.heap.realloc(t, a, 8)
    assert process.machine.memory.read_bytes(b, 8) == b"x" * 8


def test_realloc_null_behaves_like_malloc(process):
    t = process.main_thread
    address = process.heap.realloc(t, 0, 32)
    assert process.allocator.is_live(address)


def test_memalign_via_interposer(process):
    address = process.heap.memalign(process.main_thread, 128, 50)
    assert address % 128 == 0


def test_preload_swaps_implementation(process):
    calls = []

    class FakeLib:
        def malloc(self, thread, size):
            calls.append(("malloc", size))
            return 0xDEAD000

        def free(self, thread, address):
            calls.append(("free", address))

        def memalign(self, thread, alignment, size):
            calls.append(("memalign", alignment))
            return 0xDEAD000

        def usable_size(self, address):
            return 64

    process.heap.preload(FakeLib())
    t = process.main_thread
    assert process.heap.malloc(t, 10) == 0xDEAD000
    process.heap.free(t, 0xDEAD000)
    assert calls == [("malloc", 10), ("free", 0xDEAD000)]


def test_unload_restores_raw(process):
    class FakeLib:
        def malloc(self, thread, size):
            return 0xDEAD000

        def free(self, thread, address):
            pass

        def memalign(self, thread, alignment, size):
            return 0xDEAD000

        def usable_size(self, address):
            return 0

    process.heap.preload(FakeLib())
    process.heap.unload()
    address = process.heap.malloc(process.main_thread, 16)
    assert process.allocator.is_live(address)


def test_malloc_cost_charged(process):
    before = process.machine.ledger.count("libc.malloc")
    process.heap.malloc(process.main_thread, 16)
    assert process.machine.ledger.count("libc.malloc") == before + 1
