"""Property-based allocator invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutOfMemoryError
from repro.heap.allocator import FreeListAllocator

BASE = 0x2_0000
ARENA = 1 << 18

operations = st.lists(
    st.one_of(
        st.tuples(st.just("malloc"), st.integers(min_value=0, max_value=512)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=63)),
        st.tuples(
            st.just("memalign"),
            st.sampled_from((16, 32, 64, 128, 256)),
        ),
    ),
    max_size=120,
)


def run_ops(ops):
    allocator = FreeListAllocator(BASE, ARENA)
    live = []
    for op in ops:
        if op[0] == "malloc":
            try:
                live.append(allocator.malloc(op[1]))
            except OutOfMemoryError:
                pass
        elif op[0] == "memalign":
            try:
                live.append(allocator.memalign(op[1], 64))
            except OutOfMemoryError:
                pass
        elif live:
            allocator.free(live.pop(op[1] % len(live)))
    return allocator, live


@given(operations)
@settings(max_examples=120, deadline=None)
def test_structural_invariants_always_hold(ops):
    allocator, _ = run_ops(ops)
    allocator.check_invariants()


@given(operations)
@settings(max_examples=80, deadline=None)
def test_live_accounting_matches(ops):
    allocator, live = run_ops(ops)
    assert allocator.stats.live_blocks == len(live)
    assert set(allocator.live_blocks()) == set(live)


@given(operations)
@settings(max_examples=80, deadline=None)
def test_freeing_everything_restores_one_extent(ops):
    allocator, live = run_ops(ops)
    for address in live:
        allocator.free(address)
    # After total teardown the arena must coalesce back to one extent
    # covering everything (no lost or duplicated bytes).
    extents = allocator.free_extents()
    assert sum(size for _, size in extents) == ARENA
    assert extents == [(BASE, ARENA)]


@given(st.integers(min_value=0, max_value=4096))
@settings(max_examples=60, deadline=None)
def test_usable_size_at_least_requested(size):
    allocator = FreeListAllocator(BASE, ARENA)
    address = allocator.malloc(size)
    assert allocator.usable_size(address) >= size


@given(st.lists(st.integers(min_value=1, max_value=128), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_no_two_live_blocks_overlap(sizes):
    allocator = FreeListAllocator(BASE, ARENA)
    spans = []
    for size in sizes:
        address = allocator.malloc(size)
        usable = allocator.usable_size(address)
        spans.append((address, address + usable))
    spans.sort()
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2
