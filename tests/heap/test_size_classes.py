"""Size rounding and alignment."""

import pytest

from repro.heap.size_classes import (
    MIN_ALIGNMENT,
    MIN_BLOCK_SIZE,
    align_up,
    is_aligned,
    round_up_size,
)


def test_zero_gets_minimal_block():
    assert round_up_size(0) == MIN_BLOCK_SIZE


def test_small_sizes_round_to_16():
    assert round_up_size(1) == 16
    assert round_up_size(16) == 16
    assert round_up_size(17) == 32


def test_multiples_unchanged():
    assert round_up_size(64) == 64
    assert round_up_size(4096) == 4096


def test_negative_rejected():
    with pytest.raises(ValueError):
        round_up_size(-1)


def test_rounding_is_monotonic():
    previous = 0
    for size in range(0, 300):
        rounded = round_up_size(size)
        assert rounded >= size
        assert rounded >= previous
        previous = rounded


def test_align_up():
    assert align_up(0, 16) == 0
    assert align_up(1, 16) == 16
    assert align_up(16, 16) == 16
    assert align_up(17, 64) == 64


def test_align_up_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        align_up(10, 12)
    with pytest.raises(ValueError):
        align_up(10, 0)


def test_is_aligned():
    assert is_aligned(32)
    assert not is_aligned(33)
    assert is_aligned(64, 64)
