"""The first-fit free-list allocator."""

import pytest

from repro.errors import DoubleFreeError, InvalidFreeError, OutOfMemoryError
from repro.heap.allocator import FreeListAllocator

BASE = 0x1_0000
SIZE = 1 << 20


@pytest.fixture
def allocator():
    return FreeListAllocator(BASE, SIZE)


def test_first_allocation_at_arena_start(allocator):
    assert allocator.malloc(64) == BASE


def test_allocations_are_16_aligned(allocator):
    for size in (1, 7, 23, 100):
        assert allocator.malloc(size) % 16 == 0


def test_allocations_do_not_overlap(allocator):
    a = allocator.malloc(64)
    b = allocator.malloc(64)
    assert abs(a - b) >= 64


def test_adjacent_packing(allocator):
    """Objects pack contiguously — the overflow-adjacency property."""
    a = allocator.malloc(64)
    b = allocator.malloc(64)
    assert b == a + 64


def test_usable_size_rounds_up(allocator):
    address = allocator.malloc(20)
    assert allocator.usable_size(address) == 32


def test_usable_size_of_unknown_rejected(allocator):
    with pytest.raises(InvalidFreeError):
        allocator.usable_size(BASE + 128)


def test_free_then_reuse(allocator):
    a = allocator.malloc(64)
    allocator.free(a)
    assert allocator.malloc(64) == a


def test_free_returns_size(allocator):
    a = allocator.malloc(60)
    assert allocator.free(a) == 64


def test_double_free_detected(allocator):
    a = allocator.malloc(64)
    allocator.free(a)
    with pytest.raises(DoubleFreeError):
        allocator.free(a)


def test_invalid_free_detected(allocator):
    with pytest.raises(InvalidFreeError):
        allocator.free(BASE + 64)


def test_realloc_cycle_resets_double_free_tracking(allocator):
    a = allocator.malloc(64)
    allocator.free(a)
    b = allocator.malloc(64)
    assert b == a
    allocator.free(b)  # must not be flagged as double free


def test_out_of_memory():
    small = FreeListAllocator(BASE, 128)
    small.malloc(64)
    with pytest.raises(OutOfMemoryError):
        small.malloc(128)


def test_coalescing_recovers_full_arena(allocator):
    addresses = [allocator.malloc(64) for _ in range(8)]
    for address in addresses:
        allocator.free(address)
    assert allocator.free_extents() == [(BASE, SIZE)]


def test_coalescing_out_of_order_frees(allocator):
    addresses = [allocator.malloc(64) for _ in range(4)]
    for address in (addresses[2], addresses[0], addresses[3], addresses[1]):
        allocator.free(address)
    assert allocator.free_extents() == [(BASE, SIZE)]


def test_memalign_returns_aligned(allocator):
    allocator.malloc(48)  # misalign the cursor relative to 256
    address = allocator.memalign(256, 64)
    assert address % 256 == 0


def test_memalign_block_is_usable(allocator):
    address = allocator.memalign(128, 100)
    assert allocator.usable_size(address) == 112


def test_memalign_free(allocator):
    address = allocator.memalign(512, 64)
    allocator.free(address)
    assert not allocator.is_live(address)


def test_memalign_out_of_memory():
    small = FreeListAllocator(BASE, 256)
    with pytest.raises(OutOfMemoryError):
        small.memalign(4096, 4096)


def test_stats_track_live_and_peak(allocator):
    a = allocator.malloc(64)
    b = allocator.malloc(64)
    allocator.free(a)
    stats = allocator.stats
    assert stats.total_allocations == 2
    assert stats.total_frees == 1
    assert stats.live_blocks == 1
    assert stats.peak_live_blocks == 2
    assert stats.peak_live_bytes == 128


def test_live_blocks_snapshot(allocator):
    a = allocator.malloc(32)
    blocks = allocator.live_blocks()
    assert blocks == {a: 32}


def test_invariants_hold_after_mixed_workload(allocator):
    import random

    rng = random.Random(1)
    live = []
    for _ in range(500):
        if live and rng.random() < 0.4:
            allocator.free(live.pop(rng.randrange(len(live))))
        else:
            live.append(allocator.malloc(rng.choice((16, 48, 100, 256))))
        allocator.check_invariants()


def test_unaligned_arena_start_rejected():
    with pytest.raises(ValueError):
        FreeListAllocator(BASE + 3, SIZE)


def test_empty_arena_rejected():
    with pytest.raises(ValueError):
        FreeListAllocator(BASE, 0)
