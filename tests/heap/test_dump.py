"""Heap-layout dumps."""

import pytest

from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.heap.dump import dump_heap, dump_object
from repro.workloads.base import SimProcess


@pytest.fixture
def env():
    process = SimProcess(seed=6)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=6)
    site = CallSite("APP", "d.c", 1, "alloc")
    process.symbols.add(site)
    with process.main_thread.call_stack.calling(site):
        address = process.heap.malloc(process.main_thread, 64)
    return process, csod, address


def test_dump_object_decodes_header(env):
    process, csod, address = env
    out = dump_object(process, csod, address)
    assert f"object @ {address:#x}" in out
    assert "size=64" in out
    assert "canary" in out and "OK" in out


def test_dump_object_shows_watch(env):
    process, csod, address = env
    out = dump_object(process, csod, address)
    assert "WATCHED slot" in out


def test_dump_object_flags_corruption(env):
    process, csod, address = env
    process.machine.memory.write_bytes(address + 64, b"\x00" * 8)
    assert "CORRUPT" in dump_object(process, csod, address)


def test_dump_object_invalid_header(env):
    process, csod, address = env
    out = dump_object(process, csod, address + 8)  # misaligned view
    assert "INVALID" in out


def test_dump_heap_lists_blocks(env):
    process, csod, address = env
    with process.main_thread.call_stack.calling(
        CallSite("APP", "d.c", 2, "more")
    ):
        process.heap.malloc(process.main_thread, 32)
    out = dump_heap(process, csod)
    assert "live raw blocks" in out
    assert "csod-object" in out


def test_dump_heap_window_around(env):
    process, csod, address = env
    out = dump_heap(process, csod, around=address, max_blocks=4)
    assert f"{address:#x}" in out


def test_dump_heap_without_csod():
    process = SimProcess(seed=1)
    address = process.heap.malloc(process.main_thread, 48)
    out = dump_heap(process)
    assert f"{address:#x}" in out
