"""The segregated size-class allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DoubleFreeError, InvalidFreeError, OutOfMemoryError
from repro.heap.segregated import (
    CHUNK_SIZE,
    SIZE_CLASSES,
    SegregatedAllocator,
    size_class_for,
)

BASE = 0x4_0000
ARENA = 1 << 22


@pytest.fixture
def allocator():
    return SegregatedAllocator(BASE, ARENA)


def test_size_class_selection():
    assert size_class_for(1) == 16
    assert size_class_for(16) == 16
    assert size_class_for(17) == 32
    assert size_class_for(100) == 128
    assert size_class_for(4096) == 4096
    assert size_class_for(4097) is None


def test_same_class_objects_are_adjacent(allocator):
    """Bump allocation packs same-class objects back to back — the
    adjacency a continuous overflow exploits."""
    a = allocator.malloc(64)
    b = allocator.malloc(64)
    assert b == a + 64


def test_different_classes_live_in_different_chunks(allocator):
    a = allocator.malloc(16)
    b = allocator.malloc(512)
    assert abs(a - b) >= CHUNK_SIZE - 512


def test_free_then_reuse_same_class(allocator):
    a = allocator.malloc(64)
    allocator.free(a)
    assert allocator.malloc(64) == a


def test_freed_block_not_reused_across_classes(allocator):
    a = allocator.malloc(64)
    allocator.free(a)
    b = allocator.malloc(128)
    assert b != a


def test_large_allocation(allocator):
    address = allocator.malloc(100_000)
    assert allocator.usable_size(address) >= 100_000


def test_memalign(allocator):
    allocator.malloc(48)
    address = allocator.memalign(4096, 64)
    assert address % 4096 == 0
    allocator.free(address)


def test_double_free_detected(allocator):
    a = allocator.malloc(32)
    allocator.free(a)
    with pytest.raises(DoubleFreeError):
        allocator.free(a)


def test_invalid_free_detected(allocator):
    with pytest.raises(InvalidFreeError):
        allocator.free(BASE + 64)


def test_out_of_memory():
    small = SegregatedAllocator(BASE, CHUNK_SIZE)
    small.malloc(64)
    with pytest.raises(OutOfMemoryError):
        small.malloc(8192)


def test_stats(allocator):
    a = allocator.malloc(64)
    allocator.malloc(64)
    allocator.free(a)
    assert allocator.stats.total_allocations == 2
    assert allocator.stats.live_blocks == 1


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(min_value=0, max_value=6000)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=63)),
        ),
        max_size=150,
    )
)
@settings(max_examples=80, deadline=None)
def test_invariants_under_random_workload(ops):
    allocator = SegregatedAllocator(BASE, ARENA)
    live = []
    for op, value in ops:
        if op == "malloc":
            try:
                live.append(allocator.malloc(value))
            except OutOfMemoryError:
                pass
        elif live:
            allocator.free(live.pop(value % len(live)))
        allocator.check_invariants()
    assert allocator.stats.live_blocks == len(live)


def test_csod_detects_on_segregated_allocator():
    """The allocator-independence claim: same detection, no changes."""
    from repro.core import CSODConfig, CSODRuntime
    from repro.workloads.base import SimProcess
    from repro.workloads.buggy import app_for

    for allocator in ("first_fit", "segregated"):
        process = SimProcess(seed=1, allocator=allocator)
        csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
        app_for("gzip").run(process)
        csod.shutdown()
        assert csod.detected_by_watchpoint, allocator


def test_detection_rates_comparable_across_allocators():
    from repro.core import CSODConfig, CSODRuntime
    from repro.workloads.base import SimProcess
    from repro.workloads.buggy import app_for

    rates = {}
    for allocator in ("first_fit", "segregated"):
        hits = 0
        for seed in range(40):
            process = SimProcess(seed=seed, allocator=allocator)
            csod = CSODRuntime(
                process.machine,
                process.heap,
                CSODConfig(replacement_policy="random"),
                seed=seed,
            )
            app_for("memcached").run(process)
            csod.shutdown()
            hits += csod.detected_by_watchpoint
        rates[allocator] = hits / 40
    assert abs(rates["first_fit"] - rates["segregated"]) < 0.15


def test_unknown_allocator_rejected():
    from repro.errors import WorkloadError
    from repro.workloads.base import SimProcess

    with pytest.raises(WorkloadError):
        SimProcess(allocator="slab")
