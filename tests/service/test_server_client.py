"""The HTTP surface: routes, validation, long-poll, SSE, cancellation."""

import json
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service import CampaignSubmission, ServiceClient, ServiceThread


@pytest.fixture(scope="module")
def service():
    with ServiceThread(total_workers=2) as thread:
        yield thread


@pytest.fixture()
def client(service):
    return ServiceClient(port=service.port)


def test_healthz_reports_liveness(client):
    health = client.health()
    assert health["ok"] is True
    assert health["workers_total"] == 2
    assert "jobs" in health


def test_submit_runs_a_campaign_to_result(client):
    job = client.submit(CampaignSubmission(app="gzip", executions=8, seed=1))
    assert job["state"] == "queued"
    statuses = client.wait([job["job_id"]], timeout=120)
    assert statuses[job["job_id"]]["state"] == "completed"
    payload = client.result(job["job_id"])
    assert payload["job_id"] == job["job_id"]
    assert payload["scorecard"]["app"] == "gzip"
    assert payload["scorecard"]["executions"] == 8
    assert payload["aggregate"]["executions"] == 8


def test_submit_rejects_bad_submission_with_field_name(client):
    import dataclasses

    bad = dataclasses.replace(
        CampaignSubmission(app="gzip"), executions=0
    )
    with pytest.raises(ServiceError, match="executions: must be >= 1"):
        client.submit(bad)


def test_http_submit_validation_is_all_or_nothing(client):
    before = {job["job_id"] for job in client.jobs()}
    status, payload = client._request(
        "POST",
        "/submit",
        {
            "submissions": [
                {"app": "gzip", "executions": 5},
                {"app": "gzip", "executions": 0},  # invalid
            ]
        },
    )
    assert status == 400
    assert "executions" in payload["error"]
    after = {job["job_id"] for job in client.jobs()}
    assert before == after  # the valid sibling was not admitted


def test_http_rejects_unknown_fields(client):
    status, payload = client._request(
        "POST", "/submit", {"app": "gzip", "colour": "red"}
    )
    assert status == 400 and "unknown fields" in payload["error"]


def test_http_rejects_malformed_json(client):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", client.port, timeout=10)
    try:
        conn.request(
            "POST",
            "/submit",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert "invalid JSON" in payload["error"]
    finally:
        conn.close()


def test_unknown_routes_and_jobs_are_404(client):
    status, _ = client._request("GET", "/nope")
    assert status == 404
    with pytest.raises(ServiceError, match="unknown job"):
        client.job("job-000000000000")


def test_result_of_unfinished_job_is_409(client):
    job = client.submit(
        CampaignSubmission(app="gzip", executions=40, seed=9, priority=-5)
    )
    status, payload = client._request(
        "GET", f"/jobs/{job['job_id']}/result"
    )
    try:
        assert status in (409, 200)  # completed already on slow machines
        if status == 409:
            assert "result not available" in payload["error"]
    finally:
        client.cancel(job["job_id"])
        client.wait([job["job_id"]], timeout=60)


def test_cancel_stops_a_running_job(client):
    job = client.submit(CampaignSubmission(app="gzip", executions=60, seed=4))
    client.cancel(job["job_id"])
    statuses = client.wait([job["job_id"]], timeout=60)
    assert statuses[job["job_id"]]["state"] == "cancelled"
    payload = client.result(job["job_id"])
    assert payload["scorecard"]["cancelled"] is True
    # Slots actually came back: another campaign completes afterwards.
    after = client.submit(CampaignSubmission(app="gzip", executions=4, seed=2))
    done = client.wait([after["job_id"]], timeout=60)
    assert done[after["job_id"]]["state"] == "completed"


def test_long_poll_resumes_by_cursor(client):
    job = client.submit(CampaignSubmission(app="libtiff", executions=8, seed=3))
    client.wait([job["job_id"]], timeout=120)
    seen = []
    cursor = 0
    for _ in range(50):
        events, cursor = client.poll_events(
            job["job_id"], since=cursor, timeout=0.2
        )
        if not events:
            break
        seen.extend(events)
    kinds = [event["event"] for event in seen]
    assert kinds.count("wave") == 8  # 8 executions sliced into 1-exec waves
    assert "result" in kinds
    assert kinds[-1] == "job"
    seqs = [event["seq"] for event in seen]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_sse_stream_delivers_events(client, service):
    job = client.submit(CampaignSubmission(app="gzip", executions=8, seed=6))
    got = []

    def consume():
        for event in client.stream_events(job["job_id"], timeout=30):
            got.append(event)
            if event.get("event") == "job" and event.get("state") in (
                "completed",
                "failed",
                "cancelled",
            ):
                return

    thread = threading.Thread(target=consume, daemon=True)
    thread.start()
    thread.join(timeout=120)
    assert not thread.is_alive(), "SSE consumer never saw a terminal event"
    kinds = {event["event"] for event in got}
    assert "wave" in kinds and "result" in kinds and "job" in kinds


def test_events_validation(client):
    status, payload = client._request("GET", "/events?since=abc&mode=poll")
    assert status == 400 and "since" in payload["error"]
    status, payload = client._request("GET", "/events?mode=carrier-pigeon")
    assert status == 400 and "mode" in payload["error"]


def test_method_mismatches_are_405(client):
    status, _ = client._request("GET", "/submit")
    assert status == 405
    status, _ = client._request("POST", "/jobs")
    assert status == 404  # POST /jobs is not a route at all
