"""The acceptance scenario: N concurrent tenants over real HTTP.

Two campaigns — one hand-written buggy app, one generated oracle
genome — run interleaved on a shared service with a live bug database.
Their results must be byte-identical to standalone ``run_fleet`` runs,
and at least one ``bug_new`` event must stream before each job's
completion event.
"""

import json

import pytest

from repro.fleet.runner import run_fleet
from repro.service import CampaignSubmission, ServiceClient, ServiceThread
from repro.triage import BugDatabase

SUBMISSIONS = [
    CampaignSubmission(app="gzip", executions=16, workers=2, seed=3),
    CampaignSubmission(app="oracle:s7:i0:over-write", executions=12, seed=1),
]


@pytest.fixture(scope="module")
def finished_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("service-e2e")
    event_log = out / "service-events.jsonl"
    with ServiceThread(
        total_workers=2,
        bug_db=BugDatabase(str(out / "bugs.json")),
        event_log_path=str(event_log),
    ) as thread:
        client = ServiceClient(port=thread.port)
        jobs = client.submit_batch(SUBMISSIONS)
        job_ids = [job["job_id"] for job in jobs]
        statuses = client.wait(job_ids, timeout=240)
        results = {job_id: client.result(job_id) for job_id in job_ids}
        events, _ = client.poll_events("firehose", since=0, timeout=1.0)
    return job_ids, statuses, results, events, event_log


def test_all_jobs_complete(finished_run):
    job_ids, statuses, _, _, _ = finished_run
    assert [statuses[job_id]["state"] for job_id in job_ids] == [
        "completed",
        "completed",
    ]


def test_results_byte_identical_to_standalone_run_fleet(finished_run):
    job_ids, _, results, _, _ = finished_run
    for submission, job_id in zip(SUBMISSIONS, job_ids):
        standalone = run_fleet(
            submission.app,
            executions=submission.executions,
            workers=submission.workers,
            policy=submission.policy,
            share_evidence=submission.share_evidence,
            seed_base=submission.seed,
            timeout_seconds=submission.timeout_seconds,
            wave_size=submission.effective_wave_size(),
        )
        expected = json.dumps(
            standalone.aggregator.to_dict(), sort_keys=True
        ).encode()
        served = json.dumps(
            results[job_id]["aggregate"], sort_keys=True
        ).encode()
        assert served == expected


def test_bug_new_streams_before_job_completion(finished_run):
    job_ids, _, _, events, _ = finished_run
    for job_id in job_ids:
        own = [event for event in events if event.get("job_id") == job_id]
        kinds = [event["event"] for event in own]
        assert "bug_new" in kinds, f"{job_id} never streamed a bug_new event"
        first_bug = next(
            i for i, event in enumerate(own) if event["event"] == "bug_new"
        )
        final = next(
            i
            for i, event in enumerate(own)
            if event["event"] == "job" and event.get("state") == "completed"
        )
        assert first_bug < final


def test_event_counts_and_channels(finished_run):
    job_ids, _, _, events, _ = finished_run
    waves = [event for event in events if event["event"] == "wave"]
    assert len(waves) == 8 + 6  # 16 execs / 2-wide waves + 12 / 2-slices
    assert {event["job_id"] for event in waves} == set(job_ids)
    assert sum(1 for event in events if event["event"] == "result") == 2
    # Firehose sequence is gapless and strictly increasing.
    seqs = [event["seq"] for event in events]
    assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))


def test_event_log_artifact_is_replayable(finished_run):
    _, _, _, events, event_log = finished_run
    lines = event_log.read_text().strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert len(records) == len(events) + 1  # + the service "stopping" event
    assert all(record["event"] == "service" for record in records)
    logged_kinds = {record["service_event"] for record in records}
    assert {"job", "wave", "result", "bug_new"} <= logged_kinds
