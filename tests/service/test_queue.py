"""Submissions: validation, deterministic ids, priority admission."""

import json

import pytest

from repro.errors import ServiceError
from repro.service.queue import (
    STATE_CANCELLED,
    STATE_QUEUED,
    STATE_RUNNING,
    CampaignSubmission,
    JobQueue,
)


def test_submission_defaults_validate():
    CampaignSubmission(app="gzip").validate()


def test_submission_accepts_oracle_genome():
    CampaignSubmission(app="oracle:s7:i0:over-write").validate()


@pytest.mark.parametrize(
    "kwargs, needle",
    [
        (dict(app="nosuch"), "app:"),
        (dict(app="oracle:s7:i0:bogus"), "app:"),
        (dict(app="gzip", executions=0), "executions: must be >= 1"),
        (dict(app="gzip", workers=0), "workers: must be >= 1"),
        (dict(app="gzip", policy="lifo"), "policy: unknown policy"),
        (dict(app="gzip", wave_size=0), "wave_size: must be >= 1"),
        (dict(app="gzip", chunk_size=0), "chunk_size: must be >= 1"),
        (
            dict(app="gzip", timeout_seconds=0.0),
            "timeout_seconds: must be positive",
        ),
    ],
)
def test_submission_validation_names_the_field(kwargs, needle):
    with pytest.raises(ServiceError) as excinfo:
        CampaignSubmission(**kwargs).validate()
    assert needle in str(excinfo.value)


def test_from_dict_round_trips():
    original = CampaignSubmission(
        app="gzip", executions=20, workers=2, seed=5, priority=3
    )
    clone = CampaignSubmission.from_dict(original.to_dict())
    assert clone == original


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ServiceError, match="unknown fields"):
        CampaignSubmission.from_dict({"app": "gzip", "colour": "red"})


def test_from_dict_rejects_missing_app():
    with pytest.raises(ServiceError, match="app: required"):
        CampaignSubmission.from_dict({"executions": 10})


def test_from_dict_rejects_non_integer_counts():
    with pytest.raises(ServiceError, match="executions: must be an integer"):
        CampaignSubmission.from_dict({"app": "gzip", "executions": "ten"})


def test_job_id_is_deterministic_and_seq_sensitive():
    submission = CampaignSubmission(app="gzip", executions=10)
    assert submission.job_id(1) == submission.job_id(1)
    assert submission.job_id(1) != submission.job_id(2)
    assert submission.job_id(1).startswith("job-")
    assert len(submission.job_id(1)) == len("job-") + 12


def test_job_id_depends_on_content():
    a = CampaignSubmission(app="gzip", executions=10)
    b = CampaignSubmission(app="gzip", executions=11)
    assert a.job_id(1) != b.job_id(1)


def test_same_batch_same_ids_on_fresh_queues():
    batch = [
        CampaignSubmission(app="gzip", executions=10),
        CampaignSubmission(app="libtiff", executions=20, priority=1),
    ]
    queue_one = JobQueue()
    ids_one = [queue_one.submit(s).job_id for s in batch]
    queue_two = JobQueue()
    ids_two = [queue_two.submit(s).job_id for s in batch]
    assert ids_one == ids_two


def test_effective_wave_size_is_submission_pure():
    shared = CampaignSubmission(app="gzip", workers=3, share_evidence=True)
    assert shared.effective_wave_size() == 3
    sliced = CampaignSubmission(app="gzip", executions=80, workers=2)
    assert sliced.effective_wave_size() == 10  # ceil(80 / 8 slices)
    tiny = CampaignSubmission(app="gzip", executions=4, workers=2)
    assert tiny.effective_wave_size() == 2  # never below the worker count
    explicit = CampaignSubmission(app="gzip", executions=80, wave_size=7)
    assert explicit.effective_wave_size() == 7


def test_queue_orders_by_priority_then_admission():
    queue = JobQueue()
    low = queue.submit(CampaignSubmission(app="gzip", priority=0))
    high = queue.submit(CampaignSubmission(app="libtiff", priority=5))
    mid = queue.submit(CampaignSubmission(app="zziplib", priority=2))
    claimed = [queue.claim_next().job_id for _ in range(3)]
    assert claimed == [high.job_id, mid.job_id, low.job_id]
    assert queue.claim_next() is None


def test_queue_cancel_of_queued_job_is_immediate():
    queue = JobQueue()
    job = queue.submit(CampaignSubmission(app="gzip"))
    assert job.state == STATE_QUEUED
    cancelled = queue.cancel(job.job_id)
    assert cancelled.state == STATE_CANCELLED
    assert cancelled.finished
    assert queue.claim_next() is None  # removed from the pending list
    assert queue.counts() == {STATE_CANCELLED: 1}


def test_queue_cancel_of_running_job_flags_and_stops_campaign():
    class FakeCampaign:
        cancelled = False

        def cancel(self):
            self.cancelled = True

    queue = JobQueue()
    job = queue.submit(CampaignSubmission(app="gzip"))
    claimed = queue.claim_next()
    assert claimed.state == STATE_RUNNING
    campaign = FakeCampaign()
    claimed.campaign = campaign
    queue.cancel(job.job_id)
    assert claimed.cancel_requested
    assert campaign.cancelled
    assert claimed.state == STATE_RUNNING  # transitions when the wave unwinds


def test_queue_cancel_unknown_job_returns_none():
    assert JobQueue().cancel("job-000000000000") is None


def test_job_status_view_is_json_clean():
    queue = JobQueue()
    job = queue.submit(CampaignSubmission(app="gzip", executions=10))
    view = json.loads(json.dumps(job.to_dict()))
    assert view["state"] == STATE_QUEUED
    assert view["submission"]["app"] == "gzip"
    assert "campaign" not in view


def test_submission_wire_roundtrip_and_validation():
    shm = CampaignSubmission(app="gzip", wire="shm")
    shm.validate()
    assert CampaignSubmission.from_dict(shm.to_dict()) == shm
    assert shm.to_dict()["wire"] == "shm"
    CampaignSubmission(app="gzip", wire="pickle").validate()
    CampaignSubmission(app="gzip", wire=None).validate()
    with pytest.raises(ServiceError) as excinfo:
        CampaignSubmission(app="gzip", wire="carrier-pigeon").validate()
    assert "wire: must be one of" in str(excinfo.value)


def test_submission_wire_changes_job_id():
    base = CampaignSubmission(app="gzip")
    assert base.job_id(1) != CampaignSubmission(app="gzip", wire="pickle").job_id(1)


def test_submission_arms_normalizes_to_one_fleet_arm():
    submission = CampaignSubmission(app="gzip", arms=("CSOD-Random",))
    submission.validate()
    assert submission.arms == ("csod-random",)
    assert submission.to_dict()["arms"] == ["csod-random"]


def test_submission_arms_default_is_none():
    submission = CampaignSubmission(app="gzip")
    submission.validate()
    assert submission.arms is None
    assert submission.to_dict()["arms"] is None


@pytest.mark.parametrize(
    "arms, needle",
    [
        (("valgrind",), "arms:"),
        (("csod", "csod-random"), "arms:"),
        (("asan",), "arms:"),  # inline arms cannot run on the fleet
        ((), "arms:"),
    ],
)
def test_submission_arms_validation_names_the_field(arms, needle):
    with pytest.raises(ServiceError) as excinfo:
        CampaignSubmission(app="gzip", arms=arms).validate()
    assert needle in str(excinfo.value)


def test_submission_arms_round_trips_through_wire():
    original = CampaignSubmission(app="gzip", arms=("csod-noevidence",))
    original.validate()
    clone = CampaignSubmission.from_dict(original.to_dict())
    assert clone == original


def test_submission_arms_change_the_job_id():
    plain = CampaignSubmission(app="gzip")
    csod = CampaignSubmission(app="gzip", arms=("csod",))
    random = CampaignSubmission(app="gzip", arms=("csod-random",))
    ids = {plain.job_id(1), csod.job_id(1), random.job_id(1)}
    assert len(ids) == 3
