"""Scheduler: fair slot leasing, multi-tenant determinism, cancellation."""

import asyncio
import json

import pytest

from repro.fleet.runner import run_fleet
from repro.service.queue import (
    STATE_CANCELLED,
    STATE_COMPLETED,
    STATE_FAILED,
    CampaignSubmission,
    JobQueue,
)
from repro.service.scheduler import CampaignScheduler, WorkerSlots
from repro.service.stream import FIREHOSE, EventBus


# ----------------------------------------------------------------------
# WorkerSlots
# ----------------------------------------------------------------------
def test_slots_reject_nonpositive_total():
    with pytest.raises(ValueError, match="worker slots must be >= 1"):
        WorkerSlots(0)


def test_slots_clamp_to_pool_size():
    slots = WorkerSlots(4)
    assert slots.clamp(0) == 1
    assert slots.clamp(3) == 3
    assert slots.clamp(99) == 4


def test_slots_acquire_release_cycle():
    async def scenario():
        slots = WorkerSlots(4)
        granted = await slots.acquire(3)
        assert granted == 3 and slots.free == 1
        slots.release(granted)
        assert slots.free == 4

    asyncio.run(scenario())


def test_slots_multi_unit_acquire_is_atomic():
    """Two 2-slot tenants on 3 slots never deadlock at 1.5 slots each."""

    async def scenario():
        slots = WorkerSlots(3)
        order = []

        async def tenant(name):
            for _ in range(3):
                await slots.acquire(2)
                order.append(name)
                await asyncio.sleep(0)
                slots.release(2)

        await asyncio.gather(tenant("a"), tenant("b"))
        return order

    order = asyncio.run(scenario())
    assert sorted(order) == ["a", "a", "a", "b", "b", "b"]


def test_slots_fifo_fairness_no_starvation_of_wide_requests():
    async def scenario():
        slots = WorkerSlots(2)
        await slots.acquire(2)
        grants = []

        async def wide():
            await slots.acquire(2)
            grants.append("wide")
            slots.release(2)

        async def narrow():
            await slots.acquire(1)
            grants.append("narrow")
            slots.release(1)

        wide_task = asyncio.create_task(wide())
        await asyncio.sleep(0)  # wide queues first
        narrow_task = asyncio.create_task(narrow())
        await asyncio.sleep(0)
        slots.release(2)
        await asyncio.gather(wide_task, narrow_task)
        return grants

    # The wide request arrived first: the narrow one must not jump it
    # even though a single free slot could have served it earlier.
    assert asyncio.run(scenario()) == ["wide", "narrow"]


def test_slots_cancelled_waiter_is_forgotten():
    async def scenario():
        slots = WorkerSlots(1)
        await slots.acquire(1)
        waiter = asyncio.create_task(slots.acquire(1))
        await asyncio.sleep(0)
        waiter.cancel()
        try:
            await waiter
        except asyncio.CancelledError:
            pass
        slots.release(1)
        return slots.free

    assert asyncio.run(scenario()) == 1


# ----------------------------------------------------------------------
# Scheduler harness
# ----------------------------------------------------------------------
def drive(submissions, total_workers=2, cancel_after_waves=None):
    """Run submissions through an in-process scheduler; returns jobs."""

    async def scenario():
        loop = asyncio.get_running_loop()
        queue = JobQueue()
        bus = EventBus()
        queue.attach_loop(loop)
        bus.attach_loop(loop)
        scheduler = CampaignScheduler(queue, bus, total_workers=total_workers)
        jobs = [queue.submit(submission) for submission in submissions]
        runner = asyncio.create_task(scheduler.run())
        try:
            while not all(job.finished for job in jobs):
                if cancel_after_waves is not None:
                    for job in jobs:
                        if (
                            not job.finished
                            and not job.cancel_requested
                            and job.waves_done >= cancel_after_waves
                        ):
                            queue.cancel(job.job_id)
                await asyncio.sleep(0.02)
        finally:
            await scheduler.stop()
            runner.cancel()
        return jobs, bus, scheduler

    return asyncio.run(scenario())


def standalone_payload(submission):
    """What the same campaign produces through plain run_fleet."""
    result = run_fleet(
        submission.app,
        executions=submission.executions,
        workers=submission.workers,
        policy=submission.policy,
        share_evidence=submission.share_evidence,
        seed_base=submission.seed,
        timeout_seconds=submission.timeout_seconds,
        chunk_size=submission.chunk_size,
        wave_size=submission.effective_wave_size(),
    )
    return json.dumps(result.aggregator.to_dict(), sort_keys=True)


def test_two_interleaved_campaigns_match_standalone_run_fleet():
    """Satellite: shared-service tenants are byte-identical to solo runs."""
    submissions = [
        CampaignSubmission(app="gzip", executions=12, seed=3),
        CampaignSubmission(app="libtiff", executions=12, seed=5),
    ]
    jobs, _, _ = drive(submissions, total_workers=2)
    for job, submission in zip(jobs, submissions):
        assert job.state == STATE_COMPLETED
        service_bytes = json.dumps(
            job.result_payload["aggregate"], sort_keys=True
        )
        assert service_bytes == standalone_payload(submission)


def test_result_is_independent_of_queue_contents():
    """The same submission, alone vs crowded, yields the same bytes."""
    probe = CampaignSubmission(app="zziplib", executions=10, seed=7)
    alone, _, _ = drive([probe], total_workers=2)
    crowd = [
        CampaignSubmission(app="gzip", executions=10, seed=1, priority=5),
        probe,
        CampaignSubmission(app="libtiff", executions=10, seed=2),
    ]
    crowded, _, _ = drive(crowd, total_workers=2)
    probe_alone = alone[0].result_payload
    probe_crowded = crowded[1].result_payload
    assert probe_alone["scorecard"]["app"] == "zziplib"
    # job ids differ with admission seq; the science must not.
    assert json.dumps(probe_alone["aggregate"], sort_keys=True) == json.dumps(
        probe_crowded["aggregate"], sort_keys=True
    )
    a = dict(probe_alone["scorecard"])
    b = dict(probe_crowded["scorecard"])
    assert a == b


def test_shared_evidence_campaign_matches_standalone():
    submission = CampaignSubmission(
        app="gzip", executions=8, seed=2, share_evidence=True
    )
    jobs, _, _ = drive([submission], total_workers=2)
    assert jobs[0].state == STATE_COMPLETED
    assert json.dumps(
        jobs[0].result_payload["aggregate"], sort_keys=True
    ) == standalone_payload(submission)


def test_waves_interleave_between_equal_tenants():
    submissions = [
        CampaignSubmission(app="gzip", executions=12, seed=0),
        CampaignSubmission(app="gzip", executions=12, seed=100),
    ]
    jobs, bus, _ = drive(submissions, total_workers=1)
    wave_owners = [
        event["job_id"]
        for event in bus.events_since(FIREHOSE)
        if event["event"] == "wave"
    ]
    switches = sum(
        1 for a, b in zip(wave_owners, wave_owners[1:]) if a != b
    )
    # 6 waves each; FIFO-fair slot leasing alternates them rather than
    # letting the first admitted job run to completion.
    assert len(wave_owners) == 12
    assert switches >= 4


def test_cancelled_job_releases_slots_and_reports_partial_result():
    submissions = [
        CampaignSubmission(app="gzip", executions=40, seed=0),
    ]
    jobs, _, scheduler = drive(
        submissions, total_workers=1, cancel_after_waves=2
    )
    job = jobs[0]
    assert job.state == STATE_CANCELLED
    assert scheduler.slots.free == scheduler.slots.total
    assert job.result_payload is not None
    assert job.result_payload["scorecard"]["cancelled"] is True
    # Partial: some waves ran, not all executions.
    assert 0 < job.result_payload["scorecard"]["executions"] < 40
    assert scheduler.jobs_cancelled == 1


def test_failing_campaign_fails_its_own_job_only():
    class BadSubmission(CampaignSubmission):
        def effective_wave_size(self):
            return -1  # sails past validation, detonates in FleetCampaign

    submissions = [
        BadSubmission(app="gzip", executions=10),
        CampaignSubmission(app="libtiff", executions=10, seed=5),
    ]
    jobs, _, scheduler = drive(submissions, total_workers=1)
    assert jobs[0].state == STATE_FAILED
    assert jobs[0].error is not None
    assert jobs[1].state == STATE_COMPLETED
    assert scheduler.jobs_failed == 1 and scheduler.jobs_completed == 1


def test_wave_events_carry_progress_fields():
    submissions = [CampaignSubmission(app="gzip", executions=12, seed=3)]
    jobs, bus, _ = drive(submissions, total_workers=1)
    waves = [
        event
        for event in bus.events_since(jobs[0].job_id)
        if event["event"] == "wave"
    ]
    assert waves, "no wave events streamed"
    last = waves[-1]
    for key in (
        "wave",
        "waves_total",
        "executions_done",
        "executions_total",
        "executions_detected",
        "unique_reports",
        "raw_reports",
        "dedup_ratio",
        "new_evidence",
        "evidence_epoch",
    ):
        assert key in last
    assert last["executions_done"] == 12
    assert [event["wave"] for event in waves] == list(range(len(waves)))


def test_submission_wire_reaches_the_campaign_pool():
    """Satellite: the data-plane choice survives the service hop, and a
    pickle-wire job's bytes equal the (default-wire) standalone run."""
    submissions = [
        CampaignSubmission(app="gzip", executions=8, seed=3, wire="pickle"),
        CampaignSubmission(app="gzip", executions=8, seed=3, wire="shm"),
    ]
    jobs, _, _ = drive(submissions, total_workers=2)
    payloads = []
    for job in jobs:
        assert job.state == STATE_COMPLETED
        payloads.append(
            json.dumps(job.result_payload["aggregate"], sort_keys=True)
        )
    assert payloads[0] == payloads[1]
    assert payloads[0] == standalone_payload(submissions[0])
