"""The event bus: sequences, history, firehose mirroring, resume."""

import asyncio
import threading

import pytest

from repro.fleet.telemetry import JsonlEventLog
from repro.service.stream import FIREHOSE, EventBus, render_sse


def test_publish_assigns_per_channel_sequences():
    bus = EventBus()
    first = bus.publish("job-a", "wave", wave=0)
    second = bus.publish("job-a", "wave", wave=1)
    other = bus.publish("job-b", "job", state="queued")
    assert (first["seq"], second["seq"]) == (1, 2)
    assert other["seq"] == 1  # channels are independent sequences
    assert bus.latest_seq("job-a") == 2
    assert bus.latest_seq(FIREHOSE) == 3  # every event is mirrored


def test_events_since_replays_in_order():
    bus = EventBus()
    for wave in range(5):
        bus.publish("job-a", "wave", wave=wave)
    events = bus.events_since("job-a", since=2)
    assert [event["wave"] for event in events] == [2, 3, 4]
    assert bus.events_since("job-a", since=5) == []
    assert len(bus.events_since("job-a", since=2, limit=2)) == 2


def test_history_is_bounded():
    bus = EventBus(history=3)
    for wave in range(10):
        bus.publish("job-a", "wave", wave=wave)
    events = bus.events_since("job-a")
    assert [event["wave"] for event in events] == [7, 8, 9]
    assert events[-1]["seq"] == 10  # sequence numbers keep advancing


def test_firehose_carries_every_channels_events():
    bus = EventBus()
    bus.publish("job-a", "wave", wave=0)
    bus.publish("job-b", "job", state="queued")
    channels = [event["channel"] for event in bus.events_since(FIREHOSE)]
    assert channels == ["job-a", "job-b"]


def test_sink_receives_jsonl_records(tmp_path):
    path = tmp_path / "events.jsonl"
    with JsonlEventLog(str(path)) as sink:
        bus = EventBus(sink=sink)
        bus.publish("job-a", "wave", wave=0)
        bus.publish(FIREHOSE, "service", state="started")
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert '"service_event": "wave"' in lines[0]
    assert '"channel": "job-a"' in lines[0]


def test_subscribe_replays_backlog_then_live_events():
    async def scenario():
        bus = EventBus()
        bus.attach_loop(asyncio.get_running_loop())
        bus.publish("job-a", "wave", wave=0)
        sub = bus.subscribe("job-a", since=0)
        bus.publish("job-a", "wave", wave=1)
        first = await sub.get(timeout=1.0)
        second = await sub.get(timeout=1.0)
        third = await sub.get(timeout=0.05)
        sub.close()
        return first, second, third

    first, second, third = asyncio.run(scenario())
    assert first["wave"] == 0
    assert second["wave"] == 1
    assert third is None  # timeout, not an error


def test_publish_from_foreign_thread_reaches_subscriber():
    async def scenario():
        bus = EventBus()
        bus.attach_loop(asyncio.get_running_loop())
        sub = bus.subscribe("job-a")
        thread = threading.Thread(
            target=bus.publish, args=("job-a", "wave"), kwargs={"wave": 7}
        )
        thread.start()
        event = await sub.get(timeout=2.0)
        thread.join()
        sub.close()
        return event

    event = asyncio.run(scenario())
    assert event is not None and event["wave"] == 7


def test_poll_returns_backlog_immediately():
    async def scenario():
        bus = EventBus()
        bus.attach_loop(asyncio.get_running_loop())
        bus.publish("job-a", "wave", wave=0)
        bus.publish("job-a", "wave", wave=1)
        events, cursor = await bus.poll("job-a", since=0, timeout=0.1)
        return events, cursor

    events, cursor = asyncio.run(scenario())
    assert [event["wave"] for event in events] == [0, 1]
    assert cursor == 2


def test_poll_waits_for_a_live_event():
    async def scenario():
        bus = EventBus()
        bus.attach_loop(asyncio.get_running_loop())

        async def later():
            await asyncio.sleep(0.05)
            bus.publish("job-a", "wave", wave=3)

        task = asyncio.create_task(later())
        events, cursor = await bus.poll("job-a", since=0, timeout=5.0)
        await task
        return events, cursor

    events, cursor = asyncio.run(scenario())
    assert [event["wave"] for event in events] == [3]
    assert cursor == 1


def test_poll_timeout_is_a_keepalive_not_an_error():
    async def scenario():
        bus = EventBus()
        bus.attach_loop(asyncio.get_running_loop())
        return await bus.poll("job-a", since=0, timeout=0.05)

    events, cursor = asyncio.run(scenario())
    assert events == [] and cursor == 0


def test_poll_cursor_resumes_without_gaps_or_duplicates():
    async def scenario():
        bus = EventBus()
        bus.attach_loop(asyncio.get_running_loop())
        for wave in range(4):
            bus.publish("job-a", "wave", wave=wave)
        seen = []
        cursor = 0
        while True:
            events, cursor = await bus.poll("job-a", cursor, timeout=0.05)
            if not events:
                break
            seen.extend(event["wave"] for event in events)
        return seen

    assert asyncio.run(scenario()) == [0, 1, 2, 3]


def test_render_sse_frame_shape():
    frame = render_sse({"seq": 9, "event": "wave", "channel": "job-a"})
    text = frame.decode("utf-8")
    assert text.startswith("id: 9\n")
    assert "event: wave\n" in text
    assert '"channel": "job-a"' in text
    assert text.endswith("\n\n")
