"""Smoke tests: the runnable examples actually run.

The heavier fleet/policy examples are exercised at reduced scale by
their underlying drivers elsewhere in the suite; here the fast ones run
end to end exactly as a user would invoke them.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "heartbleed_demo.py",
        "production_fleet.py",
        "policy_comparison.py",
        "overhead_report.py",
        "parameter_explorer.py",
        "race_detection.py",
        "trace_workflow.py",
        "triage_pipeline.py",
    } <= names


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "A buffer over-write problem is detected at:" in out
    assert "DEMO/buffer.c:12" in out


def test_race_detection(capsys):
    out = run_example("race_detection.py", capsys)
    assert "buffer smashed by the race" in out
    assert "RACED/consumer.c:90" in out


def test_overhead_report(capsys):
    out = run_example("overhead_report.py", capsys)
    assert "Normalized runtime" in out
    assert "canneal" in out
    assert "Peak memory" in out


def test_triage_pipeline(capsys):
    out = run_example("triage_pipeline.py", capsys)
    assert "2 clusters (2 new" in out
    assert "verified=True seed_independent=True" in out
    assert "reproduced, seen in 2 campaigns" in out
    assert "validation errors: none" in out


def test_trace_workflow(capsys):
    out = run_example("trace_workflow.py", capsys)
    assert "replay under CSOD:" in out
    assert "IMGLIB.SO/decode.c:120" in out
    assert "detected=False" in out
