"""Consistency of the per-app spec modules with the registries."""

from repro.workloads.buggy import BUGGY_APPS
from repro.workloads.buggy.specs import ALL_SPECS
from repro.workloads.perf import ALL_PERF_SPECS, PERF_APPS
from repro.workloads.perf.parsec_apps import PARSEC_SPECS
from repro.workloads.perf.server_apps import SERVER_SPECS
from repro.workloads.perf.utility_apps import UTILITY_SPECS


def test_buggy_aggregator_matches_registry():
    assert {spec.name for spec in ALL_SPECS} == set(BUGGY_APPS)
    for spec in ALL_SPECS:
        assert BUGGY_APPS[spec.name] is spec


def test_perf_suites_partition_the_nineteen():
    names = [spec.name for spec in ALL_PERF_SPECS]
    assert len(names) == 19
    assert len(set(names)) == 19
    assert len(PARSEC_SPECS) == 13
    assert len(SERVER_SPECS) == 3
    assert len(UTILITY_SPECS) == 3


def test_perf_aggregator_matches_registry():
    for spec in ALL_PERF_SPECS:
        assert PERF_APPS[spec.name] is spec


def test_suite_labels_consistent():
    for spec in PARSEC_SPECS:
        assert spec.suite == "parsec"
    for spec in SERVER_SPECS + UTILITY_SPECS:
        assert spec.suite == "real"


def test_every_buggy_module_documents_its_bug():
    import importlib

    for name in BUGGY_APPS:
        module = importlib.import_module(
            f"repro.workloads.buggy.app_{name}"
        )
        assert module.__doc__ and len(module.__doc__) > 100, name


def test_repo_metadata_files_exist():
    import pathlib

    root = pathlib.Path(__file__).parent.parent.parent
    for name in ("LICENSE", "CITATION.cff", "README.md", "DESIGN.md",
                 "EXPERIMENTS.md"):
        assert (root / name).is_file(), name
