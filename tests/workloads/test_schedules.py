"""Property-based schedule invariants (hypothesis)."""

from hypothesis import assume, given, settings, strategies as st

from repro.workloads.base import BuggyAppSpec, KIND_OVER_WRITE, build_schedule


@st.composite
def specs(draw):
    total_allocs = draw(st.integers(min_value=1, max_value=300))
    before_allocs = draw(st.integers(min_value=1, max_value=total_allocs))
    before_ctx = draw(st.integers(min_value=1, max_value=before_allocs))
    total_ctx = draw(st.integers(min_value=before_ctx, max_value=max(before_ctx, 40)))
    victim = draw(st.integers(min_value=1, max_value=before_allocs))
    prior = draw(st.integers(min_value=0, max_value=max(0, victim - 1)))
    # The before-phase needs room for the victim, its priors, and one
    # slot per other before-context.
    assume(before_allocs >= 1 + prior + (before_ctx - 1))
    return BuggyAppSpec(
        name="prop",
        bug_kind=KIND_OVER_WRITE,
        vuln_module="PROP",
        reference="prop",
        total_contexts=total_ctx,
        total_allocations=total_allocs,
        before_contexts=before_ctx,
        before_allocations=before_allocs,
        victim_alloc_index=victim,
        victim_context_prior_allocs=prior,
        churn=draw(st.floats(min_value=0.0, max_value=1.0)),
        structural_seed=draw(st.integers(min_value=0, max_value=1000)),
    )


@given(specs())
@settings(max_examples=120, deadline=None)
def test_schedule_has_exactly_one_victim(spec):
    events, victim = build_schedule(spec)
    assert sum(e.is_victim for e in events) == 1
    assert events[victim].is_victim
    assert victim == spec.victim_alloc_index - 1


@given(specs())
@settings(max_examples=120, deadline=None)
def test_before_phase_context_count_exact(spec):
    events, _ = build_schedule(spec)
    before = events[: spec.before_allocations]
    assert len({e.context_id for e in before}) == spec.before_contexts


@given(specs())
@settings(max_examples=120, deadline=None)
def test_total_allocation_count_exact(spec):
    events, _ = build_schedule(spec)
    assert len(events) == spec.total_allocations


@given(specs())
@settings(max_examples=120, deadline=None)
def test_victim_prior_allocations_exact(spec):
    events, victim = build_schedule(spec)
    priors = sum(1 for e in events[:victim] if e.context_id == 0)
    if spec.before_contexts == 1:
        # Degenerate single-context programs: every allocation is from
        # the buggy context, the knob cannot apply.
        assert priors == victim
    else:
        assert priors == min(spec.victim_context_prior_allocs, victim)


@given(specs())
@settings(max_examples=120, deadline=None)
def test_frees_always_after_allocation(spec):
    events, _ = build_schedule(spec)
    for event in events:
        if event.free_after is not None:
            assert event.free_after > event.index


@given(specs())
@settings(max_examples=120, deadline=None)
def test_context_ids_in_range(spec):
    events, _ = build_schedule(spec)
    for event in events:
        assert 0 <= event.context_id < spec.total_contexts
