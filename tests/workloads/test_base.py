"""The workload framework: specs, schedules, and execution."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import (
    BuggyAppSpec,
    KIND_OVER_READ,
    KIND_OVER_WRITE,
    SimProcess,
    SyntheticBuggyApp,
    build_schedule,
)


def spec(**overrides):
    base = dict(
        name="testapp",
        bug_kind=KIND_OVER_WRITE,
        vuln_module="TESTAPP",
        reference="test",
        total_contexts=8,
        total_allocations=40,
        before_contexts=6,
        before_allocations=30,
        victim_alloc_index=10,
        structural_seed=5,
    )
    base.update(overrides)
    return BuggyAppSpec(**base)


def test_spec_validation():
    with pytest.raises(WorkloadError):
        spec(bug_kind="over-everything")
    with pytest.raises(WorkloadError):
        spec(before_contexts=0)
    with pytest.raises(WorkloadError):
        spec(before_allocations=50)  # exceeds total
    with pytest.raises(WorkloadError):
        spec(victim_alloc_index=31)  # after the overflow
    with pytest.raises(WorkloadError):
        spec(churn=1.5)


def test_schedule_counts():
    events, victim = build_schedule(spec())
    assert len(events) == 40
    assert events[victim].is_victim
    assert victim == 9  # 0-based


def test_schedule_before_phase_contexts():
    s = spec()
    events, _ = build_schedule(s)
    before = events[: s.before_allocations]
    assert len({e.context_id for e in before}) == s.before_contexts


def test_schedule_total_contexts():
    s = spec(total_allocations=60, total_contexts=8, before_contexts=6,
             before_allocations=30)
    events, _ = build_schedule(s)
    assert len({e.context_id for e in events}) == 8


def test_victim_context_is_zero():
    events, victim = build_schedule(spec())
    assert events[victim].context_id == 0


def test_victim_prior_allocs():
    s = spec(victim_context_prior_allocs=3)
    events, victim = build_schedule(s)
    priors = [e for e in events[:victim] if e.context_id == 0]
    assert len(priors) == 3


def test_victim_context_not_reused_as_filler():
    s = spec(victim_context_prior_allocs=0, total_allocations=100,
             before_allocations=90, victim_alloc_index=10)
    events, victim = build_schedule(s)
    uses = [e for e in events if e.context_id == 0]
    assert len(uses) == 1  # only the victim itself


def test_victim_never_scheduled_for_free():
    events, victim = build_schedule(spec(churn=1.0))
    assert events[victim].free_after is None


def test_long_lived_first_objects():
    events, _ = build_schedule(spec(churn=1.0, long_lived_first=4))
    for event in events[:4]:
        assert event.free_after is None


def test_schedule_is_deterministic():
    a, _ = build_schedule(spec())
    b, _ = build_schedule(spec())
    assert a == b


def test_different_structural_seeds_differ():
    a, _ = build_schedule(spec(structural_seed=1))
    b, _ = build_schedule(spec(structural_seed=2))
    assert a != b


def test_run_performs_overflow(tiny_write_app):
    process = SimProcess(seed=0)
    result = tiny_write_app.run(process)
    assert result.overflow_performed
    assert result.victim_address > 0


def test_run_frees_everything(tiny_write_app):
    process = SimProcess(seed=0)
    tiny_write_app.run(process)
    assert process.allocator.stats.live_blocks == 0


def test_run_without_runtime_is_harmless():
    app = SyntheticBuggyApp(spec())
    process = SimProcess(seed=0)
    result = app.run(process)
    assert result.allocations == 40


def test_scaled_preserves_structure():
    s = spec(
        total_contexts=100,
        total_allocations=10_000,
        before_contexts=90,
        before_allocations=9_000,
        victim_alloc_index=9_000,
        work_ns_per_alloc=1_000_000,
    )
    scaled = s.scaled(0.1)
    assert scaled.total_allocations == 1000
    assert scaled.before_allocations == 900
    assert scaled.victim_alloc_index == 900
    # Context count shrinks with sqrt(scale).
    assert 25 <= scaled.total_contexts <= 40
    # Total virtual runtime is preserved.
    assert scaled.work_ns_per_alloc == 10_000_000


def test_scaled_identity_for_factor_one():
    s = spec()
    assert s.scaled(1.0) is s


def test_scaled_rejects_nonpositive():
    with pytest.raises(WorkloadError):
        spec().scaled(0.0)


def test_victim_jitter_varies_position_per_seed():
    s = spec(
        total_contexts=4,
        total_allocations=8,
        before_contexts=4,
        before_allocations=8,
        victim_alloc_index=1,
        victim_position_jitter=3,
    )
    app = SyntheticBuggyApp(s)
    positions = set()
    for seed in range(30):
        events = app._events_for_run(seed)
        positions.add(next(i for i, e in enumerate(events) if e.is_victim))
    assert len(positions) > 1
    assert positions <= {0, 1, 2, 3}


def test_jitter_keeps_exactly_one_victim():
    s = spec(victim_position_jitter=5)
    app = SyntheticBuggyApp(s)
    for seed in range(10):
        events = app._events_for_run(seed)
        assert sum(e.is_victim for e in events) == 1
