"""The 19 Table IV performance applications."""

import pytest

from repro.core import CSODConfig, CSODRuntime
from repro.errors import WorkloadError
from repro.experiments import paper_data
from repro.workloads.base import SimProcess
from repro.workloads.perf import PERF_APPS, PerfApp, perf_app_for, perf_spec_for


def test_all_nineteen_present():
    assert set(PERF_APPS) == set(paper_data.TABLE4)


def test_table4_columns_match_paper():
    for name, (loc, cc, allocs, wt) in paper_data.TABLE4.items():
        spec = PERF_APPS[name]
        assert spec.loc == loc
        assert spec.contexts == cc
        assert spec.allocations == allocs
        assert spec.paper_watched_times == wt


def test_table5_original_matches_paper():
    for name, row in paper_data.TABLE5.items():
        assert PERF_APPS[name].mem_original_kb == row[0]


def test_io_bound_apps_have_low_access_intensity():
    assert PERF_APPS["aget"].access_intensity < 0.1
    assert PERF_APPS["pfscan"].access_intensity < 0.1


def test_x264_is_the_asan_outlier():
    assert PERF_APPS["x264"].access_intensity == max(
        s.access_intensity for s in PERF_APPS.values()
    )


def test_ferret_runs_under_five_seconds():
    assert PERF_APPS["ferret"].base_runtime_s < 5.0


def test_all_run_with_16_threads():
    assert all(s.threads == 16 for s in PERF_APPS.values())


def test_trace_capped():
    app = perf_app_for("canneal", 500)
    assert app.sim_allocations == 500
    assert app.scale == pytest.approx(500 / 30_728_172)


def test_trace_not_padded_beyond_spec():
    app = PerfApp(PERF_APPS["blackscholes"], 500)
    assert app.sim_allocations == 4
    assert app.scale == 1.0


def test_trace_covers_all_contexts():
    app = PerfApp(PERF_APPS["vips"], 2000)
    contexts = {e.context_id for e in app._trace}
    assert len(contexts) == 400


def test_trace_deterministic():
    a = PerfApp(PERF_APPS["dedup"], 1000)
    b = PerfApp(PERF_APPS["dedup"], 1000)
    assert a._trace == b._trace


def test_replay_under_csod():
    process = SimProcess(seed=1)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    app = perf_app_for("streamcluster", 2000)
    measurement = app.run(process, csod)
    csod.shutdown()
    assert measurement.sim_allocations == 2000
    assert measurement.watched_times >= 4
    assert measurement.contexts_seen == 21
    assert not csod.detected  # clean program, no false positives


def test_replay_spawns_threads():
    process = SimProcess(seed=1)
    perf_app_for("pfscan", 100).run(process)
    assert len(process.machine.threads) == 16


def test_replay_advances_virtual_time_at_true_rate():
    process = SimProcess(seed=1)
    spec = PERF_APPS["streamcluster"]
    app = perf_app_for("streamcluster", 2000)
    app.run(process)
    elapsed = process.machine.clock.now_seconds
    expected = 2000 * spec.work_ns_per_alloc / 1e9
    assert elapsed == pytest.approx(expected, rel=0.05)


def test_unknown_app_rejected():
    with pytest.raises(WorkloadError):
        perf_spec_for("doom")


def test_work_rate_property():
    spec = PERF_APPS["swaptions"]
    assert spec.allocation_rate_per_s == pytest.approx(48_001_795 / 210.0)
