"""The interleaving-dependent overflow workload."""

import pytest

from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess
from repro.workloads.race import LARGE_SIZE, SMALL_SIZE, RaceOverflowApp


def run(scheduler_seed, with_csod=True, process_seed=5):
    process = SimProcess(seed=process_seed)
    csod = None
    if with_csod:
        csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=process_seed)
    result = RaceOverflowApp().run(process, scheduler_seed=scheduler_seed)
    if csod:
        csod.shutdown()
    return result, csod, process


def trigger_profile(seeds=40):
    outcomes = []
    for seed in range(seeds):
        result, _, _ = run(seed, with_csod=False)
        outcomes.append(result.triggered)
    return outcomes


def test_some_interleavings_trigger_and_some_do_not():
    outcomes = trigger_profile()
    assert any(outcomes)
    assert not all(outcomes)


def test_same_scheduler_seed_same_outcome():
    a, _, _ = run(11, with_csod=False)
    b, _, _ = run(11, with_csod=False)
    assert a.triggered == b.triggered


def test_triggered_run_detected_by_csod():
    for seed in range(40):
        result, csod, process = run(seed)
        if result.triggered:
            # Both objects in this program are within the first four
            # allocations -> availability-watched -> always detected.
            assert csod.detected_by_watchpoint
            report = next(r for r in csod.reports if r.source == "watchpoint")
            assert report.kind == "over-write"
            assert "RACED/consumer.c:90" in report.render(process.symbols)
            return
    pytest.fail("no interleaving triggered the race in 40 seeds")


def test_untriggered_run_is_clean():
    for seed in range(40):
        result, csod, process = run(seed)
        if not result.triggered:
            assert not csod.detected_by_watchpoint
            return
    pytest.fail("every interleaving triggered the race")


def test_overflow_size_is_the_grown_length():
    for seed in range(40):
        result, csod, process = run(seed)
        if result.triggered and csod.detected_by_watchpoint:
            report = next(r for r in csod.reports if r.source == "watchpoint")
            assert report.object_size == SMALL_SIZE
            assert LARGE_SIZE > SMALL_SIZE
            return
    pytest.fail("no detected triggering interleaving found")
