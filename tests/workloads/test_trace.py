"""Trace recording and replay."""

import pytest

from repro.core import CSODConfig, CSODRuntime
from repro.callstack.frames import CallSite
from repro.errors import WorkloadError
from repro.workloads.base import SimProcess
from repro.workloads.trace import (
    OP_FREE,
    OP_LOAD,
    OP_MALLOC,
    OP_STORE,
    TraceApp,
    TraceEvent,
    TraceRecorder,
    load_trace,
    save_trace,
)


def record_session():
    """A small program recorded: two objects, one overflowing store."""
    process = SimProcess(seed=1)
    recorder = TraceRecorder(process)
    thread = process.main_thread
    a_site = CallSite("APP", "a.c", 1, "alloc_a")
    b_site = CallSite("APP", "b.c", 2, "alloc_b")
    use = CallSite("APP", "use.c", 3, "use_a")
    with thread.call_stack.calling(a_site):
        a = process.heap.malloc(thread, 64)
    with thread.call_stack.calling(b_site):
        b = process.heap.malloc(thread, 32)
    with thread.call_stack.calling(use):
        process.machine.cpu.store(thread, a + 64, b"\xcc" * 8)  # overflow
    process.heap.free(thread, b)
    process.heap.free(thread, a)
    recorder.detach()
    return recorder.events


def test_recording_captures_ops():
    events = record_session()
    ops = [e.op for e in events]
    assert ops == [OP_MALLOC, OP_MALLOC, OP_STORE, OP_FREE, OP_FREE]


def test_recording_captures_contexts():
    events = record_session()
    assert events[0].context == ("APP/a.c:1",)
    assert events[2].context == ("APP/use.c:3",)


def test_recording_captures_overflow_offset():
    events = record_session()
    store = events[2]
    assert store.obj == 0  # first object
    assert store.offset == 64  # one word past a 64-byte object
    assert store.size == 8


def test_roundtrip_serialization(tmp_path):
    events = record_session()
    path = str(tmp_path / "trace.json")
    save_trace(events, path)
    assert load_trace(path) == events


def test_load_rejects_wrong_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "events": []}')
    with pytest.raises(WorkloadError):
        load_trace(str(path))


def test_unknown_op_rejected():
    with pytest.raises(WorkloadError):
        TraceEvent(op="mmap", obj=0)


def test_validation_rejects_double_alloc():
    with pytest.raises(WorkloadError):
        TraceApp([TraceEvent(OP_MALLOC, 0, size=8), TraceEvent(OP_MALLOC, 0, size=8)])


def test_validation_rejects_use_after_free():
    with pytest.raises(WorkloadError):
        TraceApp(
            [
                TraceEvent(OP_MALLOC, 0, size=8),
                TraceEvent(OP_FREE, 0),
                TraceEvent(OP_LOAD, 0, size=8),
            ]
        )


def test_replay_under_csod_detects_recorded_overflow():
    events = record_session()
    app = TraceApp(events)
    process = SimProcess(seed=9)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=9)
    app.run(process)
    csod.shutdown()
    assert csod.detected_by_watchpoint
    report = next(r for r in csod.reports if r.source == "watchpoint")
    assert report.kind == "over-write"
    assert "APP/a.c:1" in report.render(process.symbols)


def test_replay_preserves_allocation_count():
    events = record_session()
    process = SimProcess(seed=3)
    addresses = TraceApp(events).run(process)
    assert len(addresses) == 2


def test_replay_from_file(tmp_path):
    events = record_session()
    path = str(tmp_path / "t.json")
    save_trace(events, path)
    app = TraceApp.from_file(path)
    process = SimProcess(seed=5)
    app.run(process)
    assert process.allocator.stats.total_allocations == 2


def test_recorder_detach_restores_previous_library():
    process = SimProcess(seed=1)
    raw = process.heap.active_library
    recorder = TraceRecorder(process)
    assert process.heap.active_library is recorder
    recorder.detach()
    assert process.heap.active_library is raw


def test_recording_on_top_of_csod():
    """Recording wraps whatever is preloaded — including CSOD itself."""
    process = SimProcess(seed=2)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=2)
    recorder = TraceRecorder(process)
    site = CallSite("APP", "x.c", 1, "f")
    with process.main_thread.call_stack.calling(site):
        address = process.heap.malloc(process.main_thread, 16)
    process.heap.free(process.main_thread, address)
    recorder.detach()
    csod.shutdown()
    assert [e.op for e in recorder.events if e.op in (OP_MALLOC, OP_FREE)] == [
        OP_MALLOC,
        OP_FREE,
    ]
    # CSOD still saw the allocation through the wrapper.
    assert csod.stats().allocations == 1
