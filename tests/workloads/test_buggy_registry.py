"""The nine Table I application specs."""

import pytest

from repro.errors import WorkloadError
from repro.experiments import paper_data
from repro.workloads.base import KIND_OVER_READ, KIND_OVER_WRITE
from repro.workloads.buggy import BUGGY_APPS, EFFECTIVENESS_SCALE, app_for, spec_for


def test_all_nine_present():
    assert set(BUGGY_APPS) == set(paper_data.TABLE1)


def test_bug_kinds_match_table1():
    for name, (kind, _ref) in paper_data.TABLE1.items():
        assert BUGGY_APPS[name].bug_kind == kind.lower()


def test_three_over_reads():
    reads = [n for n, s in BUGGY_APPS.items() if s.bug_kind == KIND_OVER_READ]
    assert sorted(reads) == ["heartbleed", "libdwarf", "zziplib"]


def test_references_match_table1():
    for name, (_kind, ref) in paper_data.TABLE1.items():
        assert BUGGY_APPS[name].reference == ref


def test_table3_totals_match_paper():
    for name, (cc, allocs, _bcc, _ballocs) in paper_data.TABLE3.items():
        spec = spec_for(name)
        assert spec.total_contexts == cc
        assert spec.total_allocations == allocs


def test_table3_before_columns_match_paper_except_libhx():
    for name, (_cc, _allocs, bcc, ballocs) in paper_data.TABLE3.items():
        if name == "libhx":
            continue  # documented deviation (see specs.py docstring)
        spec = spec_for(name)
        assert spec.before_contexts == bcc
        assert spec.before_allocations == ballocs


def test_uninstrumented_library_bugs():
    """The three bugs ASan misses live in .SO modules."""
    for name in paper_data.ASAN_MISSED_APPS:
        assert BUGGY_APPS[name].vuln_module.endswith(".SO")
    assert not BUGGY_APPS["heartbleed"].vuln_module.endswith(".SO")


def test_spec_for_unknown_rejected():
    with pytest.raises(WorkloadError):
        spec_for("notepad")


def test_app_for_caches():
    assert app_for("gzip") is app_for("gzip")


def test_app_for_scale_overrides():
    full = app_for("mysql", scale=1.0)
    shrunk = app_for("mysql")
    assert full.spec.total_allocations == 57464
    assert shrunk.spec.total_allocations < 5000


def test_effectiveness_scale_only_for_large_apps():
    assert set(EFFECTIVENESS_SCALE) == {"heartbleed", "mysql"}


def test_naive_detectable_apps_have_early_victims():
    """§V-A1: naive-detectable apps have <=4 contexts or an early victim."""
    for name in ("gzip", "libdwarf", "libhx", "libtiff", "polymorph"):
        spec = spec_for(name)
        assert spec.total_contexts <= 4 or spec.victim_alloc_index <= 4


def test_naive_undetectable_apps_have_late_victims():
    for name in ("heartbleed", "memcached", "mysql", "zziplib"):
        spec = spec_for(name)
        assert spec.victim_alloc_index > 4
