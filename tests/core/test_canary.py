"""The Canary Management Unit (§IV-B)."""

import pytest

from repro.callstack.contexts import ContextInterner
from repro.callstack.frames import CallSite, CallStack
from repro.core.canary import CanaryManagementUnit
from repro.core.config import CSODConfig
from repro.core.rng import PerThreadRNG
from repro.core.sampling import SamplingManagementUnit
from repro.errors import CSODError
from repro.heap import layout
from repro.heap.allocator import FreeListAllocator
from repro.heap.interpose import RawHeap
from repro.machine.machine import DEFAULT_HEAP_BASE, DEFAULT_HEAP_SIZE, Machine


class Harness:
    def __init__(self):
        self.machine = Machine(seed=9)
        arena = self.machine.map_heap_arena()
        self.raw = RawHeap(
            self.machine, FreeListAllocator(arena.start, arena.size)
        )
        self.rng = PerThreadRNG(9)
        self.sampling = SamplingManagementUnit(
            CSODConfig(), self.machine.clock, self.rng, ContextInterner()
        )
        self.canary = CanaryManagementUnit(self.machine, self.raw, self.rng)

    def record(self):
        stack = CallStack()
        stack.push(CallSite("APP", "m.c", 1, "main"))
        return self.sampling.on_allocation(stack)

    def alloc(self, size=64):
        return self.canary.wrap_allocation(
            self.machine.main_thread, size, self.record()
        )


@pytest.fixture
def h():
    return Harness()


def test_wrap_places_header_and_canary(h):
    address = h.alloc(64)
    header = layout.read_header(h.machine.memory, address)
    assert header.is_valid
    assert header.object_size == 64
    assert layout.read_canary(h.machine.memory, address, 64) == h.canary.canary_value


def test_object_address_after_header(h):
    address = h.alloc(64)
    header = layout.read_header(h.machine.memory, address)
    assert address == header.real_object_ptr + layout.CSOD_HEADER_SIZE


def test_clean_object_checks_clean(h):
    address = h.alloc(64)
    entry, corrupted = h.canary.check_object(address)
    assert not corrupted
    assert entry.object_size == 64


def test_overwrite_detected(h):
    address = h.alloc(64)
    h.machine.memory.write_bytes(address + 64, b"\x00" * 8)
    _, corrupted = h.canary.check_object(address)
    assert corrupted
    assert h.canary.corruption_count == 1


def test_in_bounds_write_not_flagged(h):
    address = h.alloc(64)
    h.machine.memory.write_bytes(address, b"\xaa" * 64)
    _, corrupted = h.canary.check_object(address)
    assert not corrupted


def test_header_clobber_counts_as_corruption(h):
    """An overflow from the *previous* object can smash our identifier."""
    address = h.alloc(64)
    h.machine.memory.write_word(layout.header_address(address) + 24, 0)
    _, corrupted = h.canary.check_object(address)
    assert corrupted


def test_check_unknown_object_rejected(h):
    with pytest.raises(CSODError):
        h.canary.check_object(0xDEAD)


def test_release_removes_from_registry(h):
    address = h.alloc(64)
    entry = h.canary.release(address)
    assert entry.object_address == address
    assert h.canary.live_count() == 0
    with pytest.raises(CSODError):
        h.canary.release(address)


def test_sweep_finds_all_corruptions(h):
    clean = h.alloc(32)
    bad1 = h.alloc(32)
    bad2 = h.alloc(32)
    for address in (bad1, bad2):
        h.machine.memory.write_bytes(address + 32, b"junk-junk")
    corrupted = {entry.object_address for entry in h.canary.sweep_live()}
    assert corrupted == {bad1, bad2}


def test_memalign_wrapping(h):
    address = h.canary.wrap_memalign(
        h.machine.main_thread, 256, 100, h.record()
    )
    assert address % 256 == 0
    header = layout.read_header(h.machine.memory, address)
    assert header.is_valid
    assert header.object_size == 100
    # RealObjectPtr lets the allocator free the original block.
    assert h.raw.allocator.is_live(header.real_object_ptr)


def test_canary_value_is_per_process_random():
    a, b = Harness(), Harness()
    machine_c = Machine(seed=1234)
    machine_c.map_heap_arena()
    c = CanaryManagementUnit(
        machine_c,
        RawHeap(machine_c, FreeListAllocator(DEFAULT_HEAP_BASE, DEFAULT_HEAP_SIZE)),
        PerThreadRNG(1234),
    )
    assert a.canary.canary_value == b.canary.canary_value  # same seed
    assert a.canary.canary_value != c.canary_value  # different seed


def test_lookup(h):
    address = h.alloc(16)
    assert h.canary.lookup(address).object_size == 16
    assert h.canary.lookup(0x1) is None
