"""CSODConfig validation and derivation."""

import pytest

from repro.core.config import (
    CSODConfig,
    POLICY_NAIVE,
    POLICY_NEAR_FIFO,
    POLICY_RANDOM,
)
from repro.errors import CSODError


def test_defaults_match_the_paper():
    config = CSODConfig()
    assert config.initial_probability == 0.5  # 50%
    assert config.degradation_per_alloc == 1e-5  # 0.001%
    assert config.watch_degradation_factor == 0.5  # halved per watch
    assert config.floor_probability == 1e-5  # 0.001%
    assert config.throttle_alloc_threshold == 5000
    assert config.throttle_window_seconds == 10.0
    assert config.throttle_probability == 1e-6  # 0.0001%
    assert config.revive_probability == 1e-4  # 0.01%
    assert config.replacement_policy == POLICY_NEAR_FIFO
    assert config.evidence_enabled


def test_unknown_policy_rejected():
    with pytest.raises(CSODError):
        CSODConfig(replacement_policy="lifo")


@pytest.mark.parametrize(
    "field", ["initial_probability", "floor_probability", "revive_chance"]
)
def test_probabilities_validated(field):
    with pytest.raises(CSODError):
        CSODConfig(**{field: 1.5})
    with pytest.raises(CSODError):
        CSODConfig(**{field: -0.1})


def test_floor_cannot_exceed_initial():
    with pytest.raises(CSODError):
        CSODConfig(initial_probability=0.01, floor_probability=0.02)


def test_nonpositive_thresholds_rejected():
    with pytest.raises(CSODError):
        CSODConfig(throttle_alloc_threshold=0)
    with pytest.raises(CSODError):
        CSODConfig(throttle_window_seconds=0)
    with pytest.raises(CSODError):
        CSODConfig(watchpoint_age_seconds=0)


def test_without_evidence():
    config = CSODConfig(persistence_path="/tmp/x.json").without_evidence()
    assert not config.evidence_enabled
    assert config.persistence_path is None
    assert config.initial_probability == 0.5


def test_with_policy():
    for policy in (POLICY_NAIVE, POLICY_RANDOM, POLICY_NEAR_FIFO):
        assert CSODConfig().with_policy(policy).replacement_policy == policy


def test_with_policy_preserves_other_fields():
    config = CSODConfig(initial_probability=0.3).with_policy(POLICY_RANDOM)
    assert config.initial_probability == 0.3


def test_config_variants_preserve_subclass_and_derived_fields():
    from dataclasses import dataclass, field

    @dataclass(frozen=True)
    class TunedConfig(CSODConfig):
        label: str = "tuned"
        summary: str = field(init=False, default="")

        def __post_init__(self):
            super().__post_init__()
            object.__setattr__(
                self, "summary", f"{self.label}/{self.replacement_policy}"
            )

    base = TunedConfig(persistence_path="/tmp/x.json")
    stripped = base.without_evidence()
    assert type(stripped) is TunedConfig
    assert not stripped.evidence_enabled
    assert stripped.summary == "tuned/near_fifo"
    swapped = base.with_policy(POLICY_RANDOM)
    assert type(swapped) is TunedConfig
    assert swapped.summary == "tuned/random"
