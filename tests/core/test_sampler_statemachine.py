"""Stateful (rule-based) exploration of the sampling + watchpoint units.

Hypothesis drives arbitrary interleavings of allocations, watch
attempts, clock advances, frees, and evidence boosts against a live
``SamplingManagementUnit`` + ``WatchpointManagementUnit`` pair, checking
after every step that

* every context's probability stays inside ``[floor, 1.0]``,
* evidence-pinned contexts stay pinned at exactly 1.0,
* at most ``NUM_USABLE_DEBUG_REGISTERS`` watchpoints are ever armed,
* each un-pinned context tracks the pure ``SamplerState`` transition
  model (``repro.core.sampling``) field-for-field — the same model the
  adversarial solver searches, so any divergence Hypothesis can reach
  would invalidate its witnesses.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.callstack.contexts import ContextInterner
from repro.callstack.frames import CallSite, CallStack
from repro.core.config import CSODConfig
from repro.core.rng import PerThreadRNG
from repro.core.sampling import (
    SamplerState,
    SamplingManagementUnit,
    allocation_transition,
    initial_state,
    watch_transition,
)
from repro.core.watchpoints import WatchpointManagementUnit
from repro.machine.clock import NANOS_PER_SECOND
from repro.machine.debug_registers import NUM_USABLE_DEBUG_REGISTERS
from repro.machine.machine import Machine

BASE = 0x7F00_0000_0000
N_CONTEXTS = 3

# A fixed draw: revive draws fail (0.75 >= revive_chance) and the
# replacement policy stays deterministic, so the pure model — which
# treats the draw as a free variable — predicts the live unit exactly.
_FIXED_DRAW = 0.75

contexts = st.integers(min_value=0, max_value=N_CONTEXTS - 1)


class SamplerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.machine = Machine(seed=11)
        self.machine.map_heap_arena()
        self.config = CSODConfig()
        self.rng = PerThreadRNG(11, self.machine.ledger)
        self.rng.uniform = lambda tid: _FIXED_DRAW
        self.sampling = SamplingManagementUnit(
            self.config, self.machine.clock, self.rng, ContextInterner()
        )
        self.wmu = WatchpointManagementUnit(
            self.config,
            self.machine.perf,
            self.machine.threads,
            self.machine.clock,
            self.sampling,
            self.rng,
            self.machine.ledger,
        )
        self.stacks = []
        for i in range(N_CONTEXTS):
            s = CallStack()
            s.push(CallSite("APP", "m.c", 1, "main"))
            s.push(CallSite("APP", "a.c", 10 + i, f"ctx{i}"))
            self.stacks.append(s)
        self.records = {}
        self.models = {i: initial_state(self.config) for i in range(N_CONTEXTS)}
        self.pinned = set()
        self.armed_addresses = []
        self.next_address = BASE

    def _allocate(self, ctx: int, watched: bool) -> None:
        record = self.sampling.on_allocation(self.stacks[ctx])
        self.records[ctx] = record
        if watched:
            self.sampling.on_watched(record)
        if ctx not in self.pinned:
            self.models[ctx], _ = allocation_transition(
                self.models[ctx],
                self.machine.clock.now_ns,
                self.config,
                watched=watched,
            )

    @rule(ctx=contexts)
    def allocate(self, ctx) -> None:
        self._allocate(ctx, watched=False)

    @rule(ctx=contexts)
    def allocate_watched(self, ctx) -> None:
        self._allocate(ctx, watched=True)

    @rule(ctx=contexts, checked=st.booleans())
    def try_watch(self, ctx, checked) -> None:
        self._allocate(ctx, watched=False)
        address = self.next_address
        self.next_address += 256
        watched = self.wmu.try_watch(
            self.machine.main_thread,
            address,
            64,
            address + 64,
            self.records[ctx],
            probability_checked=checked,
        )
        if watched is not None:
            # Replacement may silently evict entries later; a stale
            # address just makes on_deallocation a no-op, which is fine.
            self.armed_addresses.append(address)
            # Installation halves the context's probability (the WMU
            # calls on_watched itself); mirror it.
            if ctx not in self.pinned:
                self.models[ctx] = watch_transition(
                    self.models[ctx], self.config
                )

    @rule(
        delta=st.sampled_from(
            (1, 1_000_000, NANOS_PER_SECOND, 10 * NANOS_PER_SECOND,
             31 * NANOS_PER_SECOND)
        )
    )
    def advance_clock(self, delta) -> None:
        self.machine.clock.advance(delta)

    @rule(pick=st.integers(min_value=0, max_value=7))
    def free_watched(self, pick) -> None:
        if not self.armed_addresses:
            return
        address = self.armed_addresses.pop(pick % len(self.armed_addresses))
        self.wmu.on_deallocation(address)

    @rule(ctx=contexts)
    def boost_to_certain(self, ctx) -> None:
        if ctx not in self.records:
            self._allocate(ctx, watched=False)
        self.sampling.boost_to_certain(self.records[ctx])
        self.pinned.add(ctx)

    @invariant()
    def probabilities_bounded(self) -> None:
        floor = self.config.floor_probability
        for record in self.records.values():
            assert floor <= record.probability <= 1.0

    @invariant()
    def pinned_stay_pinned(self) -> None:
        for ctx in self.pinned:
            record = self.records[ctx]
            assert record.probability == 1.0
            assert self.sampling.effective_probability(record) == 1.0

    @invariant()
    def armed_within_register_budget(self) -> None:
        armed = sum(1 for slot in self.wmu._slots if slot is not None)
        assert armed <= NUM_USABLE_DEBUG_REGISTERS

    @invariant()
    def model_parity(self) -> None:
        for ctx, record in self.records.items():
            if ctx in self.pinned:
                continue
            model = self.models[ctx]
            live = SamplerState(
                probability=record.probability,
                window_start_ns=record.window_start_ns,
                window_alloc_count=record.window_alloc_count,
                throttled_until_ns=record.throttled_until_ns,
                floor_since_ns=record.floor_since_ns,
            )
            assert live == model


SamplerMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestSamplerMachine = SamplerMachine.TestCase
