"""Coarse-signature stability under stack jitter (hypothesis).

Triage clustering keys on :meth:`OverflowReport.coarse_signature`,
which must collapse reports of one bug even when executions disagree
about the deeper (caller-side) frames and about how the bug was caught.
"""

from hypothesis import given, settings, strategies as st

from repro.callstack.contexts import CallingContext
from repro.callstack.frames import CallSite, Frame
from repro.core.reporting import (
    COARSE_SIGNATURE_FRAMES,
    KIND_OVER_WRITE,
    OverflowReport,
    SOURCE_FREE_CANARY,
    SOURCE_WATCHPOINT,
)


def frame(module, file, line, function):
    return Frame(CallSite(module, file, line, function))

# The stable allocation head every jittered report shares.
HEAD = (
    frame("VULN", "alloc.c", 500, "buggy_alloc"),
    frame("VULN", "wrap.c", 40, "xmalloc"),
    frame("APP", "main.c", 12, "handle_request"),
)
assert len(HEAD) == COARSE_SIGNATURE_FRAMES

tail_frames = st.lists(
    st.builds(
        frame,
        st.sampled_from(["APP", "LIBC", "RT"]),
        st.sampled_from(["main.c", "loop.c", "thread.c"]),
        st.integers(min_value=1, max_value=999),
        st.sampled_from(["main", "run", "worker", "dispatch"]),
    ),
    max_size=6,
)


def report_with(tail, source=SOURCE_WATCHPOINT, access=()):
    frames = HEAD + tuple(tail)
    context = CallingContext(
        return_addresses=tuple(f.return_address for f in frames),
        frames=frames,
    )
    return OverflowReport(
        kind=KIND_OVER_WRITE,
        source=source,
        fault_address=0x7000,
        object_address=0x6000,
        object_size=64,
        thread_id=0,
        time_ns=0,
        allocation_context=context,
        access_frames=tuple(access),
    )


@given(tail_frames, tail_frames)
@settings(max_examples=200, deadline=None)
def test_tail_jitter_never_changes_the_coarse_signature(tail_a, tail_b):
    assert (
        report_with(tail_a).coarse_signature()
        == report_with(tail_b).coarse_signature()
    )


@given(tail_frames)
@settings(max_examples=100, deadline=None)
def test_evidence_source_never_changes_the_coarse_signature(tail):
    watchpoint = report_with(tail, source=SOURCE_WATCHPOINT)
    canary = report_with(tail, source=SOURCE_FREE_CANARY)
    assert watchpoint.coarse_signature() == canary.coarse_signature()


@given(tail_frames, tail_frames)
@settings(max_examples=100, deadline=None)
def test_access_side_never_changes_the_coarse_signature(tail, access):
    assert (
        report_with(tail, access=access).coarse_signature()
        == report_with(tail).coarse_signature()
    )


@given(tail_frames)
@settings(max_examples=100, deadline=None)
def test_different_allocation_heads_do_not_collide(tail):
    other_head = report_with(tail)
    moved = OverflowReport(
        kind=KIND_OVER_WRITE,
        source=SOURCE_WATCHPOINT,
        fault_address=0x7000,
        object_address=0x6000,
        object_size=64,
        thread_id=0,
        time_ns=0,
        allocation_context=CallingContext(
            return_addresses=(1, 2, 3),
            frames=(
                frame("OTHER", "alloc.c", 501, "other_alloc"),
            )
            + HEAD[1:],
        ),
    )
    assert moved.coarse_signature() != other_head.coarse_signature()
