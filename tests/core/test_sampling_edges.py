"""Edge-case regressions for the sampling rules.

Pins the fixes audited alongside the batched hot path:

* ``_degrade_on_allocation`` and ``_clamp`` floor/pin behaviour — a
  probability may land *exactly on* the floor but never below it, and a
  pinned (evidence) context dominates every clamp;
* the half-open throttle window ``[start, start + window)`` — an
  allocation arriving exactly at ``start + window`` opens the next
  window and is counted there, and a throttle whose expiry equals "now"
  no longer applies.

Both hot paths inline these rules, so the equivalence harness extends
every behaviour pinned here to the batched driver.
"""

import pytest

from repro.callstack.contexts import ContextInterner
from repro.callstack.frames import CallSite, CallStack
from repro.core.config import CSODConfig
from repro.core.rng import PerThreadRNG
from repro.core.sampling import SamplingManagementUnit
from repro.machine.clock import NANOS_PER_SECOND, VirtualClock


def make_unit(config=None, seed=0):
    clock = VirtualClock()
    unit = SamplingManagementUnit(
        config or CSODConfig(),
        clock,
        PerThreadRNG(seed),
        ContextInterner(),
    )
    return unit, clock


def stack(name="alloc"):
    s = CallStack()
    s.push(CallSite("APP", "main.c", 1, "main", frame_size=64))
    s.push(CallSite("APP", "a.c", 2, name, frame_size=48))
    return s


# ----------------------------------------------------------------------
# Floor behaviour of per-allocation degradation
# ----------------------------------------------------------------------
def test_degrade_clamps_to_floor_not_below():
    config = CSODConfig()
    unit, _ = make_unit(config)
    s = stack()
    record = unit.on_allocation(s)
    # Just above the floor by less than one degradation step: the next
    # allocation must land exactly on the floor, not underflow past it.
    record.probability = config.floor_probability + config.degradation_per_alloc / 2
    unit.on_allocation(s)
    assert record.probability == config.floor_probability


def test_degrade_at_floor_stays_at_floor():
    config = CSODConfig()
    unit, _ = make_unit(config)
    s = stack()
    record = unit.on_allocation(s)
    record.probability = config.floor_probability
    for _ in range(50):
        unit.on_allocation(s)
    assert record.probability == config.floor_probability


def test_watch_halving_clamps_to_floor():
    config = CSODConfig()
    unit, _ = make_unit(config)
    record = unit.on_allocation(stack())
    record.probability = config.floor_probability * 1.5
    unit.on_watched(record)  # half of 1.5x floor is below the floor
    assert record.probability == config.floor_probability


# ----------------------------------------------------------------------
# Pin (evidence) dominance in _clamp
# ----------------------------------------------------------------------
def test_clamp_pinned_record_always_returns_one():
    unit, _ = make_unit()
    record = unit.on_allocation(stack())
    unit.boost_to_certain(record)
    assert unit._clamp(0.0001, record) == 1.0
    assert unit._clamp(0.0, record) == 1.0


def test_clamp_caps_at_one_from_above():
    unit, _ = make_unit()
    record = unit.on_allocation(stack())
    assert unit._clamp(1.7, record) == 1.0


def test_pinned_record_survives_watch_halving():
    unit, _ = make_unit()
    record = unit.on_allocation(stack())
    unit.boost_to_certain(record)
    unit.on_watched(record)
    assert record.probability == 1.0
    assert record.watch_count == 1


def test_boost_clears_floor_bookkeeping_and_revive_draws():
    config = CSODConfig()
    unit, clock = make_unit(config)
    s = stack()
    record = unit.on_allocation(s)
    record.probability = config.floor_probability
    unit.on_allocation(s)  # floor_since_ns starts ticking
    assert record.floor_since_ns >= 0
    unit.boost_to_certain(record)
    assert record.floor_since_ns == -1
    assert record.throttled_until_ns == 0
    # A pinned record must not consume revive draws: the per-thread
    # stream position is part of the cross-path determinism contract.
    clock.advance(int(config.revive_period_seconds * NANOS_PER_SECOND) + 1)
    stream = unit._rng._stream(0)
    before = (stream._state, stream._pos)
    unit.on_allocation(s)
    assert (stream._state, stream._pos) == before


# ----------------------------------------------------------------------
# Half-open throttle window boundary
# ----------------------------------------------------------------------
def _fill_window(unit, s, count=5000):
    record = None
    for _ in range(count):
        record = unit.on_allocation(s)
    return record


def test_boundary_allocation_opens_next_window():
    config = CSODConfig()
    unit, clock = make_unit(config)
    s = stack()
    record = _fill_window(unit, s)  # exactly at the threshold, t = 0
    assert record.throttled_until_ns == 0
    window_ns = int(config.throttle_window_seconds * NANOS_PER_SECOND)
    # Exactly start + window: the window is half-open, so this
    # allocation belongs to the NEXT window — no throttle fires.
    clock.advance(window_ns)
    unit.on_allocation(s)
    assert record.window_start_ns == window_ns
    assert record.window_alloc_count == 1
    assert record.throttled_until_ns == 0


def test_allocation_one_tick_inside_window_still_throttles():
    config = CSODConfig()
    unit, clock = make_unit(config)
    s = stack()
    record = _fill_window(unit, s)
    window_ns = int(config.throttle_window_seconds * NANOS_PER_SECOND)
    clock.advance(window_ns - 1)  # still inside [0, window)
    unit.on_allocation(s)
    assert record.window_alloc_count == 5001
    assert record.throttled_until_ns == window_ns
    assert unit.effective_probability(record) == config.throttle_probability


def test_throttle_expiring_exactly_now_no_longer_applies():
    config = CSODConfig()
    unit, clock = make_unit(config)
    s = stack()
    record = _fill_window(unit, s)
    window_ns = int(config.throttle_window_seconds * NANOS_PER_SECOND)
    clock.advance(window_ns - 1)
    unit.on_allocation(s)  # throttles until window_ns
    assert unit.effective_probability(record) == config.throttle_probability
    clock.advance(1)  # now == throttled_until_ns: strict ">" comparison
    assert record.throttled_until_ns == clock.now_ns
    assert unit.effective_probability(record) == config.floor_probability


def test_boundary_throttle_covers_the_new_window():
    """A throttle raised by an in-window burst spans to start + window."""
    config = CSODConfig()
    unit, clock = make_unit(config)
    s = stack()
    window_ns = int(config.throttle_window_seconds * NANOS_PER_SECOND)
    clock.advance(window_ns)  # open a window at t = window_ns
    record = _fill_window(unit, s, 5001)
    assert record.window_start_ns == window_ns
    # The throttle expires when THIS window elapses, not the first one.
    assert record.throttled_until_ns == 2 * window_ns
