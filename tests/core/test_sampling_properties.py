"""Property-based invariants of the sampling algorithm (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.callstack.contexts import ContextInterner
from repro.callstack.frames import CallSite, CallStack
from repro.core.config import CSODConfig
from repro.core.rng import PerThreadRNG
from repro.core.sampling import SamplingManagementUnit
from repro.machine.clock import VirtualClock


def make_unit():
    return SamplingManagementUnit(
        CSODConfig(), VirtualClock(), PerThreadRNG(0), ContextInterner()
    )


def stacks(n):
    out = []
    for i in range(n):
        s = CallStack()
        s.push(CallSite("APP", "m.c", 1, "main"))
        s.push(CallSite("APP", "a.c", 10 + i, f"ctx{i}"))
        out.append(s)
    return out


# Each action: (context index, watched?, clock advance ns)
actions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.booleans(),
        st.integers(min_value=0, max_value=2_000_000_000),
    ),
    max_size=150,
)


@given(actions)
@settings(max_examples=100, deadline=None)
def test_probability_always_within_bounds(action_list):
    unit = make_unit()
    config = CSODConfig()
    context_stacks = stacks(5)
    for index, watched, advance in action_list:
        unit._clock.advance(advance)
        record = unit.on_allocation(context_stacks[index])
        if watched:
            unit.on_watched(record)
        for r in unit.records():
            assert config.floor_probability <= r.probability <= 1.0
            assert 0.0 < unit.effective_probability(r) <= 1.0


@given(actions)
@settings(max_examples=60, deadline=None)
def test_allocation_counts_conserved(action_list):
    unit = make_unit()
    context_stacks = stacks(5)
    for index, watched, advance in action_list:
        unit._clock.advance(advance)
        unit.on_allocation(context_stacks[index])
    total = sum(r.allocation_count for r in unit.records())
    assert total == len(action_list) == unit.total_allocations_seen


@given(actions)
@settings(max_examples=60, deadline=None)
def test_pinned_records_stay_pinned(action_list):
    unit = make_unit()
    context_stacks = stacks(5)
    pinned = unit.on_allocation(context_stacks[0])
    unit.boost_to_certain(pinned)
    for index, watched, advance in action_list:
        unit._clock.advance(advance)
        record = unit.on_allocation(context_stacks[index])
        if watched:
            unit.on_watched(record)
        assert pinned.probability == 1.0
        assert unit.effective_probability(pinned) == 1.0


@given(st.integers(min_value=1, max_value=30))
@settings(max_examples=30, deadline=None)
def test_watch_halving_is_monotone_decreasing(watches):
    unit = make_unit()
    record = unit.on_allocation(stacks(1)[0])
    previous = record.probability
    for _ in range(watches):
        unit.on_watched(record)
        assert record.probability <= previous
        previous = record.probability
