"""The Sampling Management Unit's adaptation rules (§III-B2, §IV-A)."""

import pytest

from repro.callstack.contexts import ContextInterner
from repro.callstack.frames import CallSite, CallStack
from repro.core.config import CSODConfig
from repro.core.rng import PerThreadRNG
from repro.core.sampling import SamplingManagementUnit, context_signature
from repro.machine.clock import NANOS_PER_SECOND, VirtualClock


def make_unit(config=None, seed=0):
    clock = VirtualClock()
    unit = SamplingManagementUnit(
        config or CSODConfig(),
        clock,
        PerThreadRNG(seed),
        ContextInterner(),
    )
    return unit, clock


def stack(name="alloc", frame_size=48):
    s = CallStack()
    s.push(CallSite("APP", "main.c", 1, "main", frame_size=64))
    s.push(CallSite("APP", "a.c", 2, name, frame_size=frame_size))
    return s


def test_new_context_starts_at_50_percent():
    unit, _ = make_unit()
    record = unit.on_allocation(stack())
    # One degradation step is applied on the very first allocation.
    assert record.probability == pytest.approx(0.5 - 1e-5)


def test_degradation_per_allocation():
    unit, _ = make_unit()
    s = stack()
    record = unit.on_allocation(s)
    for _ in range(9):
        unit.on_allocation(s)
    assert record.allocation_count == 10
    assert record.probability == pytest.approx(0.5 - 10 * 1e-5)


def test_same_stack_same_record():
    unit, _ = make_unit()
    s = stack()
    assert unit.on_allocation(s) is unit.on_allocation(s)
    assert unit.context_count() == 1


def test_different_stacks_different_records():
    unit, _ = make_unit()
    a = unit.on_allocation(stack("a"))
    b = unit.on_allocation(stack("b"))
    assert a is not b
    assert unit.context_count() == 2


def test_watch_halves_probability():
    unit, _ = make_unit()
    record = unit.on_allocation(stack())
    before = record.probability
    unit.on_watched(record)
    assert record.probability == pytest.approx(before / 2)
    assert record.watch_count == 1


def test_probability_never_below_floor():
    unit, _ = make_unit()
    record = unit.on_allocation(stack())
    for _ in range(40):
        unit.on_watched(record)
    assert record.probability == CSODConfig().floor_probability


def test_should_watch_is_probability_draw():
    unit, _ = make_unit()
    record = unit.on_allocation(stack())
    record.probability = 1.0
    record.overflow_observed = True
    assert unit.should_watch(record, tid=1)


def test_should_watch_statistics():
    unit, _ = make_unit(seed=123)
    record = unit.on_allocation(stack())
    record.probability = 0.25
    hits = sum(unit.should_watch(record, tid=1) for _ in range(4000))
    assert 0.21 < hits / 4000 < 0.29


def test_boost_to_certain_pins():
    unit, _ = make_unit()
    record = unit.on_allocation(stack())
    unit.boost_to_certain(record)
    assert record.probability == 1.0
    assert record.pinned()
    # Pinned records never degrade again.
    unit.on_allocation(stack())
    unit.on_watched(record)
    assert unit.effective_probability(record) == 1.0


def test_throttle_engages_after_5000_allocs_in_window():
    unit, clock = make_unit()
    s = stack()
    record = None
    for _ in range(5001):
        record = unit.on_allocation(s)
    assert record.throttled_until_ns > clock.now_ns
    assert unit.effective_probability(record) == CSODConfig().throttle_probability


def test_throttle_expires_with_window():
    config = CSODConfig()
    unit, clock = make_unit(config)
    s = stack()
    for _ in range(5001):
        record = unit.on_allocation(s)
    clock.advance(int(config.throttle_window_seconds * NANOS_PER_SECOND) + 1)
    # Back to (at least) the floor once the window has elapsed.
    assert unit.effective_probability(record) == config.floor_probability


def test_no_throttle_when_allocations_are_slow():
    config = CSODConfig()
    unit, clock = make_unit(config)
    s = stack()
    for _ in range(6000):
        record = unit.on_allocation(s)
        clock.advance(int(0.01 * NANOS_PER_SECOND))  # 100 allocs/s
    assert record.throttled_until_ns <= clock.now_ns


def test_revive_boosts_floor_contexts():
    config = CSODConfig(revive_chance=1.0, revive_period_seconds=1.0)
    unit, clock = make_unit(config)
    s = stack()
    record = unit.on_allocation(s)
    record.probability = config.floor_probability
    unit.on_allocation(s)  # starts the floor timer
    clock.advance(2 * NANOS_PER_SECOND)
    unit.on_allocation(s)
    assert record.probability == config.revive_probability


def test_revive_respects_chance_zero():
    config = CSODConfig(revive_chance=0.0, revive_period_seconds=1.0)
    unit, clock = make_unit(config)
    s = stack()
    record = unit.on_allocation(s)
    record.probability = config.floor_probability
    unit.on_allocation(s)
    clock.advance(2 * NANOS_PER_SECOND)
    unit.on_allocation(s)
    assert record.probability == config.floor_probability


def test_revive_draws_from_allocating_threads_stream():
    # Regression: the revive draw used ``uniform(tid=0)`` no matter which
    # thread allocated, corrupting thread 0's stream and leaving the
    # allocating thread's untouched.
    config = CSODConfig(revive_period_seconds=1.0)
    clock = VirtualClock()
    rng = PerThreadRNG(7)
    unit = SamplingManagementUnit(config, clock, rng, ContextInterner())
    reference = PerThreadRNG(7)
    first_tid0 = reference.uniform(0)
    reference.uniform(1)  # the draw the revive below must consume
    second_tid1 = reference.uniform(1)

    s = stack()
    record = unit.on_allocation(s, tid=1)
    record.probability = config.floor_probability
    unit.on_allocation(s, tid=1)  # starts the floor timer
    clock.advance(2 * NANOS_PER_SECOND)
    unit.on_allocation(s, tid=1)  # revive draw fires

    assert rng.uniform(0) == first_tid0  # tid-0 stream untouched
    assert rng.uniform(1) == second_tid1  # exactly one tid-1 draw consumed


def test_thread_streams_are_isolated_under_revive():
    # Thread 0's revive outcomes must be identical whether or not thread 1
    # allocates (and revives) in between.
    def thread0_probs(with_thread1):
        config = CSODConfig(revive_chance=0.5, revive_period_seconds=1.0)
        clock = VirtualClock()
        unit = SamplingManagementUnit(
            config, clock, PerThreadRNG(11), ContextInterner()
        )
        a, b = stack("a"), stack("b")
        record_a = unit.on_allocation(a, tid=0)
        record_a.probability = config.floor_probability
        record_b = None
        if with_thread1:
            record_b = unit.on_allocation(b, tid=1)
            record_b.probability = config.floor_probability
        probs = []
        for _ in range(30):
            clock.advance(2 * NANOS_PER_SECOND)
            if record_b is not None:
                unit.on_allocation(b, tid=1)
                record_b.probability = config.floor_probability
            unit.on_allocation(a, tid=0)
            probs.append(record_a.probability)
            record_a.probability = config.floor_probability
        return probs

    assert thread0_probs(True) == thread0_probs(False)


def test_throttle_window_starting_at_time_zero():
    # A record created at clock 0 has window_start_ns == 0; its first
    # window must accumulate and throttle like any other.
    config = CSODConfig(throttle_alloc_threshold=10)
    unit, clock = make_unit(config)
    s = stack()
    assert clock.now_ns == 0
    for _ in range(11):
        record = unit.on_allocation(s)
    assert record.window_start_ns == 0
    assert record.throttled_until_ns == int(
        config.throttle_window_seconds * NANOS_PER_SECOND
    )
    assert unit.effective_probability(record) == config.throttle_probability


def test_rethrottle_after_window_elapses():
    config = CSODConfig(throttle_alloc_threshold=10)
    unit, clock = make_unit(config)
    s = stack()
    for _ in range(11):
        record = unit.on_allocation(s)
    assert unit.effective_probability(record) == config.throttle_probability
    window_ns = int(config.throttle_window_seconds * NANOS_PER_SECOND)
    clock.advance(window_ns + 1)
    assert unit.effective_probability(record) == config.floor_probability
    # A second burst in the fresh window must throttle again.
    for _ in range(11):
        unit.on_allocation(s)
    assert record.throttled_until_ns > clock.now_ns
    assert unit.effective_probability(record) == config.throttle_probability


def test_pinned_context_never_throttled():
    config = CSODConfig(throttle_alloc_threshold=10)
    unit, clock = make_unit(config)
    s = stack()
    record = unit.on_allocation(s)
    unit.boost_to_certain(record)
    for _ in range(50):
        unit.on_allocation(s)
    assert record.throttled_until_ns == 0
    assert unit.effective_probability(record) == 1.0


def test_preloaded_bad_signature_pins_new_context():
    unit, _ = make_unit()
    s = stack()
    probe_unit, _ = make_unit()
    signature = context_signature(probe_unit.on_allocation(s).context)
    unit.preload_known_bad({signature})
    record = unit.on_allocation(s)
    assert record.pinned()
    assert record.probability == 1.0


def test_signature_is_stable_across_processes():
    a, _ = make_unit()
    b, _ = make_unit()
    sig_a = context_signature(a.on_allocation(stack()).context)
    sig_b = context_signature(b.on_allocation(stack()).context)
    assert sig_a == sig_b


def test_records_iteration():
    unit, _ = make_unit()
    unit.on_allocation(stack("a"))
    unit.on_allocation(stack("b"))
    assert len(list(unit.records())) == 2


def test_total_allocations_counter():
    unit, _ = make_unit()
    s = stack()
    for _ in range(7):
        unit.on_allocation(s)
    assert unit.total_allocations_seen == 7
