"""calloc / realloc / memalign flowing through the CSOD runtime."""

import pytest

from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess


@pytest.fixture
def env():
    process = SimProcess(seed=5)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=5)
    site = CallSite("APP", "v.c", 1, "alloc_variant")
    process.symbols.add(site)
    return process, csod, site


def test_calloc_zeroes_and_is_monitored(env):
    process, csod, site = env
    with process.main_thread.call_stack.calling(site):
        address = process.heap.calloc(process.main_thread, 8, 8)
    assert process.machine.memory.read_bytes(address, 64) == bytes(64)
    assert csod.stats().allocations == 1
    process.heap.free(process.main_thread, address)


def test_realloc_preserves_contents_and_canary(env):
    process, csod, site = env
    thread = process.main_thread
    with thread.call_stack.calling(site):
        a = process.heap.malloc(thread, 32)
        process.machine.memory.write_bytes(a, b"payload!" * 4)
        b = process.heap.realloc(thread, a, 128)
    assert process.machine.memory.read_bytes(b, 32) == b"payload!" * 4
    # The realloc'd object is a fresh CSOD object with its own canary.
    entry, corrupted = csod.canary.check_object(b)
    assert not corrupted and entry.object_size == 128
    process.heap.free(thread, b)


def test_realloc_detects_prior_corruption_at_its_free(env):
    process, csod, site = env
    thread = process.main_thread
    with thread.call_stack.calling(site):
        a = process.heap.malloc(thread, 32)
    process.machine.memory.write_bytes(a + 32, b"\x00" * 8)  # smash canary
    with thread.call_stack.calling(site):
        process.heap.realloc(thread, a, 64)  # frees `a` internally
    assert any(r.source == "free-canary" for r in csod.reports)


def test_memalign_object_watched_at_boundary(env):
    process, csod, site = env
    with process.main_thread.call_stack.calling(site):
        address = process.heap.memalign(process.main_thread, 256, 96)
    assert address % 256 == 0
    watched = csod.wmu.find_by_object_address(address)
    assert watched is not None
    assert watched.watch_address == address + 96


def test_memalign_overflow_detected(env):
    process, csod, site = env
    with process.main_thread.call_stack.calling(site):
        address = process.heap.memalign(process.main_thread, 512, 64)
        process.machine.cpu.store(process.main_thread, address + 64, b"!" * 8)
    assert csod.detected_by_watchpoint


def test_memalign_free_returns_real_block(env):
    process, csod, site = env
    live_before = process.allocator.stats.live_blocks
    with process.main_thread.call_stack.calling(site):
        address = process.heap.memalign(process.main_thread, 1024, 48)
    process.heap.free(process.main_thread, address)
    assert process.allocator.stats.live_blocks == live_before


def test_realloc_null_is_malloc(env):
    process, csod, site = env
    with process.main_thread.call_stack.calling(site):
        address = process.heap.realloc(process.main_thread, 0, 40)
    assert csod.canary.lookup(address) is not None
