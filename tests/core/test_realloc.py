"""Realloc through the monitoring unit: in-place shrinks, evidence.

The interposed realloc shrinks evidence-wrapped objects in place (the
header-table slot survives, the canary moves to the new boundary) and
falls back to allocate-copy-free for grows.  These are the regressions
behind the ``realloc-shrink-over-read`` defect class: a stale canary, a
reused slot with the old size, or a watchpoint left at the old boundary
would each silently break its detection story.
"""

import dataclasses
import json

from repro.core import CSODConfig, CSODRuntime
from repro.core.config import HOTPATH_BATCHED, HOTPATH_LEGACY
from repro.fleet.pool import execute_spec
from repro.fleet.specs import ExecutionSpec
from repro.heap import layout
from repro.workloads.base import SimProcess


def make(evidence=True, seed=3):
    process = SimProcess(seed=seed)
    config = CSODConfig() if evidence else CSODConfig(evidence_enabled=False)
    runtime = CSODRuntime(process.machine, process.heap, config, seed=seed)
    return process, runtime


def push_context(process, name="alloc"):
    from repro.callstack.frames import CallSite

    site = CallSite("APP", "m.c", 1, name)
    process.symbols.add(site)
    return process.main_thread.call_stack.calling(site)


def test_shrink_is_in_place_and_reuses_header_slot():
    process, runtime = make()
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 96)
        slot = runtime.canary.slot_of(address)
        assert slot is not None
        new_address = process.heap.realloc(process.main_thread, address, 40)
    assert new_address == address
    assert runtime.canary.slot_of(address) == slot
    entry = runtime.canary.lookup(address)
    assert entry.object_size == 40
    assert layout.read_header(process.machine.memory, address).object_size == 40


def test_shrink_rewrites_canary_at_new_boundary():
    process, runtime = make()
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 96)
        process.heap.realloc(process.main_thread, address, 40)
    slot = runtime.canary.slot_of(address)
    assert not runtime.canary.check_slot(slot)  # fresh canary intact
    # An 8-byte smash at the *new* end corrupts the moved canary...
    process.machine.memory.write_bytes(address + 40, b"overflow")
    process.heap.free(process.main_thread, address)
    report = next(r for r in runtime.reports if r.source == "free-canary")
    # ...and the report carries post-shrink geometry, not the original.
    assert report.object_size == 40
    assert report.fault_address == address + 40


def test_shrink_preserves_prior_overflow_evidence():
    # The old canary is abandoned by the resize; if it was already
    # corrupted the shrink must report it, not erase the evidence.
    process, runtime = make()
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 96)
        record = runtime.canary.lookup(address).record
        process.machine.memory.write_bytes(address + 96, b"overflow")
        process.heap.realloc(process.main_thread, address, 40)
    assert any(
        r.source == "free-canary" and r.object_size == 96
        for r in runtime.reports
    )
    assert record.pinned()


def test_shrink_moves_watchpoint_to_new_boundary():
    process, runtime = make()
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 96)
        watched = runtime.wmu.find_by_object_address(address)
        assert watched is not None  # availability: first allocation
        assert watched.watch_address == address + 96
        process.heap.realloc(process.main_thread, address, 40)
    moved = runtime.wmu.find_by_object_address(address)
    assert moved is not None
    assert moved.watch_address == address + 40
    assert moved.object_size == 40


def test_grow_copies_payload_and_frees_old_block():
    process, runtime = make()
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 32)
        process.machine.memory.write_bytes(address, b"\x5a" * 32)
        new_address = process.heap.realloc(process.main_thread, address, 128)
    assert new_address != address
    assert process.machine.memory.read_bytes(new_address, 32) == b"\x5a" * 32
    assert runtime.canary.lookup(address) is None  # old slot released
    assert runtime.canary.lookup(new_address).object_size == 128


def test_free_after_realloc_attributes_to_allocation_context():
    process, runtime = make()
    with push_context(process, "origin"):
        address = process.heap.malloc(process.main_thread, 96)
    with push_context(process, "resizer"):
        process.heap.realloc(process.main_thread, address, 40)
    process.machine.memory.write_bytes(address + 40, b"overflow")
    process.heap.free(process.main_thread, address)
    report = next(r for r in runtime.reports if r.source == "free-canary")
    sites = [f.site.function for f in report.allocation_context.frames]
    assert "origin" in sites  # the allocating context, not the resizer


def test_realloc_null_and_zero_size_edges():
    process, runtime = make()
    with push_context(process):
        address = process.heap.realloc(process.main_thread, 0, 64)
        assert address != 0
        assert runtime.canary.lookup(address).object_size == 64
        assert process.heap.realloc(process.main_thread, address, 0) == 0
    assert runtime.canary.lookup(address) is None


def test_shrink_without_evidence_falls_back_to_copy():
    process, runtime = make(evidence=False)
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 96)
        process.machine.memory.write_bytes(address, b"\x77" * 40)
        new_address = process.heap.realloc(process.main_thread, address, 40)
    assert process.machine.memory.read_bytes(new_address, 40) == b"\x77" * 40


def _sweep(app, hotpath, seeds=6):
    out = []
    for seed in range(seeds):
        result = execute_spec(
            ExecutionSpec(
                app=app,
                seed=seed,
                index=seed,
                config=CSODConfig(hotpath=hotpath),
            )
        )
        out.append(
            json.dumps(
                {
                    "detected": result.detected,
                    "reports": [dataclasses.asdict(r) for r in result.reports],
                },
                sort_keys=True,
            )
        )
    return out


def test_realloc_defect_byte_identical_across_hot_paths():
    app = "oracle:s3:i0:realloc-shrink-over-read"
    assert _sweep(app, HOTPATH_BATCHED) == _sweep(app, HOTPATH_LEGACY)


def test_cross_thread_uaf_byte_identical_across_hot_paths():
    app = "oracle:s3:i0:cross-thread-uaf"
    assert _sweep(app, HOTPATH_BATCHED) == _sweep(app, HOTPATH_LEGACY)
