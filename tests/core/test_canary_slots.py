"""Header-table slot reuse in the index-addressed canary registry.

The canary unit stores live-object metadata in parallel flat arrays
(``_slot_addr``/``_slot_size``/``_slot_real``/``_slot_record``) indexed
by slot, with freed indices recycled through ``_free_slots``.  A free
followed by a same-size malloc lands on the same heap block AND the same
slot — these tests pin that no stale state (canary bytes, context
index, record pointer) survives the recycling, on either hot path.
"""

import pytest

from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.core.config import HOTPATH_BATCHED, HOTPATH_LEGACY
from repro.heap.layout import CSOD_HEADER_SIZE, HEADER_IDENTIFIER
from repro.workloads.base import SimProcess

SITE_A = CallSite("SLOT", "a.c", 1, "alloc_a")
SITE_B = CallSite("SLOT", "b.c", 2, "alloc_b")


@pytest.fixture(params=[HOTPATH_LEGACY, HOTPATH_BATCHED])
def env(request):
    process = SimProcess(seed=17)
    runtime = CSODRuntime(
        process.machine,
        process.heap,
        CSODConfig(hotpath=request.param),
        seed=17,
    )
    process.symbols.add(SITE_A)
    process.symbols.add(SITE_B)
    return process, runtime


def _malloc(process, site, size):
    thread = process.main_thread
    with thread.call_stack.calling(site):
        return process.heap.malloc(thread, size)


def test_free_then_same_size_malloc_reuses_slot_and_block(env):
    process, runtime = env
    canary = runtime.canary
    first = _malloc(process, SITE_A, 64)
    slot = canary._addr_slot[first]
    old_record = canary._slot_record[slot]
    process.heap.free(process.main_thread, first)
    assert canary._slot_record[slot] is None
    assert slot in canary._free_slots
    second = _malloc(process, SITE_B, 64)
    # First-fit allocator hands back the same block; the registry must
    # hand back the same slot with fully rewritten metadata.
    assert second == first
    assert canary._addr_slot[second] == slot
    assert slot not in canary._free_slots
    new_record = canary._slot_record[slot]
    assert new_record is not old_record
    assert canary._slot_addr[slot] == second
    assert canary._slot_size[slot] == 64


def test_reused_slot_header_carries_new_context_index(env):
    process, runtime = env
    canary = runtime.canary
    memory = process.machine.memory
    first = _malloc(process, SITE_A, 48)
    process.heap.free(process.main_thread, first)
    second = _malloc(process, SITE_B, 48)
    assert second == first
    real, size, context_ptr, identifier = memory.read_words(
        second - CSOD_HEADER_SIZE, 4
    )
    record = canary._slot_record[canary._addr_slot[second]]
    assert identifier == HEADER_IDENTIFIER
    assert size == 48
    assert real == second - CSOD_HEADER_SIZE
    # The context pointer must be SITE_B's key, not the stale SITE_A one.
    assert context_ptr == record.key.first_level_ra
    assert record.key.first_level_ra == SITE_B.return_address


def test_reused_block_has_fresh_canary_bytes(env):
    """A corruption reported at free must not haunt the block's reuser."""
    process, runtime = env
    thread = process.main_thread
    first = _malloc(process, SITE_A, 32)
    # Overflow into the canary via a raw write (no CPU access, no trap).
    process.machine.memory.write_word(first + 32, 0x41414141)
    process.heap.free(thread, first)
    assert runtime.canary.corruption_count == 1
    assert len(runtime.reports) == 1
    second = _malloc(process, SITE_B, 32)
    assert second == first  # same bytes, recycled
    process.heap.free(thread, second)
    # The wrap rewrote the canary, so the reuse is clean: no new report.
    assert runtime.canary.corruption_count == 1
    assert len(runtime.reports) == 1


def test_slot_count_stays_flat_under_churn(env):
    """Steady-state churn recycles slots instead of growing the arrays."""
    process, runtime = env
    canary = runtime.canary
    thread = process.main_thread
    for _ in range(200):
        address = _malloc(process, SITE_A, 64)
        process.heap.free(thread, address)
    assert len(canary._slot_addr) <= 2
    assert canary.live_count() == 0


def test_interleaved_sizes_do_not_cross_slots(env):
    process, runtime = env
    canary = runtime.canary
    thread = process.main_thread
    a = _malloc(process, SITE_A, 64)
    b = _malloc(process, SITE_B, 128)
    slot_a = canary._addr_slot[a]
    slot_b = canary._addr_slot[b]
    assert slot_a != slot_b
    process.heap.free(thread, a)
    c = _malloc(process, SITE_B, 24)  # smaller: fits the freed gap
    slot_c = canary._addr_slot[c]
    assert slot_c == slot_a  # recycled index...
    assert canary._slot_size[slot_c] == 24  # ...with the new size
    assert canary._slot_size[slot_b] == 128  # neighbour untouched
    process.heap.free(thread, b)
    process.heap.free(thread, c)
