"""Parity between the pure transition model and the live sampler.

The adversarial solver (``repro.oracle.adversarial``) searches over the
pure ``SamplerState`` transitions instead of instantiating a runtime;
every witness it emits is only as trustworthy as this file.  Each test
drives the live :class:`SamplingManagementUnit` and the pure model
through the same schedule and asserts the snapshots agree exactly —
probabilities bit-for-bit, window bookkeeping field-by-field.
"""

import random

import pytest

from repro.callstack.contexts import ContextInterner
from repro.callstack.frames import CallSite, CallStack
from repro.core.config import CSODConfig
from repro.core.rng import PerThreadRNG
from repro.core.sampling import (
    SamplerState,
    SamplingManagementUnit,
    allocation_transition,
    allocations_to_floor,
    degrade_transition,
    initial_state,
    revive_period_ns,
    revive_transition,
    throttle_transition,
    throttle_window_ns,
    watch_transition,
)
from repro.machine.clock import NANOS_PER_SECOND, VirtualClock


def make_unit(config=None, seed=0):
    clock = VirtualClock()
    unit = SamplingManagementUnit(
        config or CSODConfig(),
        clock,
        PerThreadRNG(seed),
        ContextInterner(),
    )
    return unit, clock


def stack(name="alloc", frame_size=48):
    s = CallStack()
    s.push(CallSite("APP", "main.c", 1, "main", frame_size=64))
    s.push(CallSite("APP", "a.c", 2, name, frame_size=frame_size))
    return s


def snapshot(record):
    """The live record projected onto the pure state's fields."""
    return SamplerState(
        probability=record.probability,
        window_start_ns=record.window_start_ns,
        window_alloc_count=record.window_alloc_count,
        throttled_until_ns=record.throttled_until_ns,
        floor_since_ns=record.floor_since_ns,
    )


def test_initial_state_matches_fresh_record_pre_rules():
    config = CSODConfig()
    assert initial_state(config).probability == config.initial_probability


def test_single_allocation_parity():
    config = CSODConfig()
    unit, _ = make_unit(config)
    record = unit.on_allocation(stack())
    model, _ = allocation_transition(initial_state(config), 0, config)
    assert snapshot(record) == model


def test_watched_allocation_parity():
    config = CSODConfig()
    unit, _ = make_unit(config)
    record = unit.on_allocation(stack())
    unit.on_watched(record)
    model, _ = allocation_transition(
        initial_state(config), 0, config, watched=True
    )
    assert snapshot(record) == model


def test_lockstep_parity_over_random_schedules():
    """200 random (watched?, advance?) steps, three seeds, exact match."""
    config = CSODConfig()
    for seed in (0, 1, 2):
        unit, clock = make_unit(config)
        # Pin the revive draw to "failed" so the live unit's probability
        # stays model-predictable (the model treats the draw as a free
        # variable); the draw *sites* are still compared below.
        unit._rng.uniform = lambda tid: 1.0
        schedule = random.Random(seed)
        s = stack()
        model = initial_state(config)
        record = None
        draws = []
        for step in range(200):
            if schedule.random() < 0.2:
                clock.advance(
                    schedule.choice(
                        (1, 1_000_000, NANOS_PER_SECOND, 31 * NANOS_PER_SECOND)
                    )
                )
            watched = schedule.random() < 0.5
            record = unit.on_allocation(s)
            if watched:
                unit.on_watched(record)
            model, draw_made = allocation_transition(
                model, clock.now_ns, config, watched=watched
            )
            draws.append(draw_made)
            assert snapshot(record) == model, f"seed {seed} step {step}"
        assert record.allocation_count == 200
        # The long-advance branch makes at least one revive draw
        # reachable, so the lockstep run was not vacuous.
        assert any(draws)


def test_degrade_transition_is_floor_clamped():
    config = CSODConfig()
    state = SamplerState(probability=config.floor_probability)
    assert (
        degrade_transition(state, config).probability
        == config.floor_probability
    )


def test_throttle_transition_boundary_rolls_window():
    """An allocation exactly at start + window is counted in the next
    half-open window and is not throttled — the corner the solver's
    throttle-edge witness lands on."""
    config = CSODConfig()
    window = throttle_window_ns(config)
    state = initial_state(config)
    for _ in range(config.throttle_alloc_threshold + 1):
        state = throttle_transition(state, 0, config)
    assert state.throttled_until_ns == window  # engaged
    state = throttle_transition(state, window, config)
    assert state.window_start_ns == window
    assert state.window_alloc_count == 1
    assert state.throttled_until_ns <= window  # strict >: expired


def test_throttle_live_parity_at_boundary():
    config = CSODConfig()
    unit, clock = make_unit(config)
    s = stack()
    model = initial_state(config)
    for _ in range(config.throttle_alloc_threshold + 1):
        record = unit.on_allocation(s)
        model, _ = allocation_transition(model, clock.now_ns, config)
    assert snapshot(record) == model
    assert record.throttled_until_ns == throttle_window_ns(config)
    clock.advance(throttle_window_ns(config))
    record = unit.on_allocation(s)
    model, _ = allocation_transition(model, clock.now_ns, config)
    assert snapshot(record) == model
    assert unit.effective_probability(record) == record.probability


def test_revive_transition_draw_sites_match_live_unit():
    config = CSODConfig()
    unit, clock = make_unit(config)
    drawn = []
    unit._rng.uniform = lambda tid: drawn.append(tid) or 1.0
    s = stack()
    model = initial_state(config)
    floor_count = allocations_to_floor(config)
    for _ in range(floor_count):
        unit.on_watched(unit.on_allocation(s))
        model, draw = allocation_transition(
            model, clock.now_ns, config, watched=True
        )
        assert not draw
    assert model.probability == config.floor_probability
    # The floor was reached by the watch halving, which runs *after*
    # the revive rule — so the floor timer is not started yet; the next
    # allocation (seeing the floor pre-watch) starts it.
    assert model.floor_since_ns == -1
    unit.on_allocation(s)
    model, draw = allocation_transition(model, clock.now_ns, config)
    assert not draw
    assert model.floor_since_ns == clock.now_ns
    assert not drawn
    clock.advance(revive_period_ns(config))
    unit.on_allocation(s)
    model, draw = allocation_transition(model, clock.now_ns, config)
    assert draw  # the model predicts the draw...
    assert drawn == [0]  # ...and the live unit consumed exactly one


def test_watch_transition_clamps_to_unit_interval():
    config = CSODConfig()
    high = SamplerState(probability=1.0)
    assert watch_transition(high, config).probability == pytest.approx(0.5)
    low = SamplerState(probability=config.floor_probability)
    assert (
        watch_transition(low, config).probability == config.floor_probability
    )


def test_revive_transition_resets_timer_above_floor():
    config = CSODConfig()
    state = SamplerState(probability=0.25, floor_since_ns=123)
    state, draw = revive_transition(state, 456, config)
    assert not draw
    assert state.floor_since_ns == -1


def test_allocations_to_floor_matches_live_unit():
    config = CSODConfig()
    count = allocations_to_floor(config)
    assert count == 15  # the paper's constants
    unit, _ = make_unit(config)
    s = stack()
    record = None
    for step in range(count):
        record = unit.on_allocation(s)
        unit.on_watched(record)
        if step < count - 1:
            assert record.probability > config.floor_probability
    assert record.probability == config.floor_probability
