"""Per-thread RNG streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rng import PerThreadRNG, XorShiftStream
from repro.machine.syscall_cost import CostLedger, EVENT_RNG_DRAW


def test_stream_deterministic():
    a = XorShiftStream(seed=5)
    b = XorShiftStream(seed=5)
    assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]


def test_different_seeds_differ():
    a = XorShiftStream(seed=1)
    b = XorShiftStream(seed=2)
    assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]


def test_zero_seed_not_stuck():
    stream = XorShiftStream(seed=0)
    values = {stream.next_u64() for _ in range(100)}
    assert len(values) == 100


def test_uniform_in_unit_interval():
    stream = XorShiftStream(seed=3)
    for _ in range(1000):
        value = stream.uniform()
        assert 0.0 <= value < 1.0


def test_uniform_mean_reasonable():
    stream = XorShiftStream(seed=9)
    mean = sum(stream.uniform() for _ in range(20_000)) / 20_000
    assert 0.48 < mean < 0.52


def test_below_bounds():
    stream = XorShiftStream(seed=4)
    for _ in range(500):
        assert 0 <= stream.below(7) < 7


def test_below_rejects_nonpositive():
    with pytest.raises(ValueError):
        XorShiftStream(seed=1).below(0)


def test_per_thread_streams_are_independent():
    rng = PerThreadRNG(process_seed=11)
    seq1 = [rng.next_u64(tid=1) for _ in range(5)]
    seq2 = [rng.next_u64(tid=2) for _ in range(5)]
    assert seq1 != seq2
    assert rng.streams_created() == 2


def test_same_process_seed_reproducible():
    a = PerThreadRNG(process_seed=11)
    b = PerThreadRNG(process_seed=11)
    assert [a.uniform(1) for _ in range(10)] == [b.uniform(1) for _ in range(10)]


def test_different_process_seeds_differ():
    a = PerThreadRNG(process_seed=1)
    b = PerThreadRNG(process_seed=2)
    assert [a.uniform(1) for _ in range(5)] != [b.uniform(1) for _ in range(5)]


def test_draws_charged_to_ledger():
    ledger = CostLedger()
    rng = PerThreadRNG(0, ledger)
    rng.uniform(1)
    rng.below(1, 10)
    assert ledger.count(EVENT_RNG_DRAW) == 2


@given(st.integers(min_value=0, max_value=2**63), st.integers(min_value=1, max_value=10**6))
@settings(max_examples=200, deadline=None)
def test_below_always_in_range(seed, bound):
    assert 0 <= XorShiftStream(seed).below(bound) < bound


@given(st.integers(min_value=0, max_value=2**63))
@settings(max_examples=100, deadline=None)
def test_uniform_always_in_unit_interval(seed):
    stream = XorShiftStream(seed)
    for _ in range(20):
        assert 0.0 <= stream.uniform() < 1.0
