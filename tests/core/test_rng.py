"""Per-thread RNG streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rng import PerThreadRNG, XorShiftStream
from repro.machine.syscall_cost import CostLedger, EVENT_RNG_DRAW


def test_stream_deterministic():
    a = XorShiftStream(seed=5)
    b = XorShiftStream(seed=5)
    assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]


def test_different_seeds_differ():
    a = XorShiftStream(seed=1)
    b = XorShiftStream(seed=2)
    assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]


def test_zero_seed_not_stuck():
    stream = XorShiftStream(seed=0)
    values = {stream.next_u64() for _ in range(100)}
    assert len(values) == 100


def test_uniform_in_unit_interval():
    stream = XorShiftStream(seed=3)
    for _ in range(1000):
        value = stream.uniform()
        assert 0.0 <= value < 1.0


def test_uniform_mean_reasonable():
    stream = XorShiftStream(seed=9)
    mean = sum(stream.uniform() for _ in range(20_000)) / 20_000
    assert 0.48 < mean < 0.52


def test_below_bounds():
    stream = XorShiftStream(seed=4)
    for _ in range(500):
        assert 0 <= stream.below(7) < 7


def test_below_rejects_nonpositive():
    with pytest.raises(ValueError):
        XorShiftStream(seed=1).below(0)


def test_per_thread_streams_are_independent():
    rng = PerThreadRNG(process_seed=11)
    seq1 = [rng.next_u64(tid=1) for _ in range(5)]
    seq2 = [rng.next_u64(tid=2) for _ in range(5)]
    assert seq1 != seq2
    assert rng.streams_created() == 2


def test_same_process_seed_reproducible():
    a = PerThreadRNG(process_seed=11)
    b = PerThreadRNG(process_seed=11)
    assert [a.uniform(1) for _ in range(10)] == [b.uniform(1) for _ in range(10)]


def test_different_process_seeds_differ():
    a = PerThreadRNG(process_seed=1)
    b = PerThreadRNG(process_seed=2)
    assert [a.uniform(1) for _ in range(5)] != [b.uniform(1) for _ in range(5)]


def test_draws_charged_to_ledger():
    ledger = CostLedger()
    rng = PerThreadRNG(0, ledger)
    rng.uniform(1)
    rng.below(1, 10)
    assert ledger.count(EVENT_RNG_DRAW) == 2


@given(st.integers(min_value=0, max_value=2**63), st.integers(min_value=1, max_value=10**6))
@settings(max_examples=200, deadline=None)
def test_below_always_in_range(seed, bound):
    assert 0 <= XorShiftStream(seed).below(bound) < bound


@given(st.integers(min_value=0, max_value=2**63))
@settings(max_examples=100, deadline=None)
def test_uniform_always_in_unit_interval(seed):
    stream = XorShiftStream(seed)
    for _ in range(20):
        assert 0.0 <= stream.uniform() < 1.0


# ----------------------------------------------------------------------
# Draw-order conformance: block replenishment is pure amortization
# ----------------------------------------------------------------------
# An independent serial reimplementation of the generator — splitmix
# seeding plus the xorshift64* recurrence, one draw at a time, no
# buffering.  If block replenishment (or the batched hot path's primed
# buffers) ever reordered, dropped, or duplicated a draw, these
# conformance tests break.
_MASK64 = (1 << 64) - 1


def _serial_reference(seed, count):
    state = (seed + 0x9E3779B97F4A7C15) & _MASK64
    state = ((state ^ (state >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    state = ((state ^ (state >> 27)) * 0x94D049BB133111EB) & _MASK64
    x = (state ^ (state >> 31)) or 1
    out = []
    for _ in range(count):
        x ^= (x >> 12) & _MASK64
        x = (x ^ (x << 25)) & _MASK64
        x ^= x >> 27
        out.append((x * 0x2545F4914F6CDD1D) & _MASK64)
    return out


def test_block_replenished_draws_match_serial_order():
    # 600 draws cross two block boundaries (blocks of 256).
    stream = XorShiftStream(seed=42)
    assert [stream.next_u64() for _ in range(600)] == _serial_reference(42, 600)


def test_uniform_matches_serial_reference():
    stream = XorShiftStream(seed=7)
    expected = [(u >> 11) * (1.0 / (1 << 53)) for u in _serial_reference(7, 300)]
    assert [stream.uniform() for _ in range(300)] == expected


def test_mixed_draw_kinds_consume_one_sequence():
    """next_u64/uniform/below all consume the same u64 stream in order."""
    stream = XorShiftStream(seed=13)
    reference = _serial_reference(13, 300)
    for i in range(300):
        kind = i % 3
        if kind == 0:
            assert stream.next_u64() == reference[i]
        elif kind == 1:
            assert stream.uniform() == (reference[i] >> 11) * (1.0 / (1 << 53))
        else:
            assert stream.below(1000) == reference[i] % 1000


def test_priming_a_stream_does_not_change_its_draws():
    """The batched driver refills a fresh stream's buffer eagerly.

    Priming must be invisible: the first draw after an eager ``_refill``
    is the same first draw a lazy stream produces.
    """
    lazy = XorShiftStream(seed=99)
    primed = XorShiftStream(seed=99)
    primed._refill()  # what FastAllocDealloc._stream does on acquisition
    assert [primed.uniform() for _ in range(300)] == [
        lazy.uniform() for _ in range(300)
    ]


def test_interleaved_tids_keep_per_thread_serial_order():
    """A multithreaded draw trace: each tid sees its own serial stream."""
    rng = PerThreadRNG(process_seed=5)
    trace = [1, 2, 1, 3, 3, 2, 1, 2, 3, 1, 1, 2] * 60  # 720 interleaved draws
    observed = {1: [], 2: [], 3: []}
    for tid in trace:
        observed[tid].append(rng.next_u64(tid))
    for tid, draws in observed.items():
        solo = PerThreadRNG(process_seed=5)
        assert draws == [solo.next_u64(tid) for _ in range(len(draws))]
