"""Replacement policies (§III-C2)."""

import pytest

from repro.core.config import POLICY_NAIVE, POLICY_NEAR_FIFO, POLICY_RANDOM
from repro.core.policies import (
    NaivePolicy,
    NearFifoPolicy,
    RandomPolicy,
    make_policy,
)
from repro.core.rng import PerThreadRNG
from repro.errors import CSODError

FULL = [(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]


@pytest.fixture
def rng():
    return PerThreadRNG(7)


def test_make_policy_by_name():
    assert isinstance(make_policy(POLICY_NAIVE), NaivePolicy)
    assert isinstance(make_policy(POLICY_RANDOM), RandomPolicy)
    assert isinstance(make_policy(POLICY_NEAR_FIFO), NearFifoPolicy)


def test_make_policy_unknown():
    with pytest.raises(CSODError):
        make_policy("mru")


def test_naive_never_preempts(rng):
    policy = NaivePolicy()
    assert policy.select_victim(FULL, 0.99, rng, tid=1) is None


def test_random_declines_when_all_stronger(rng):
    policy = RandomPolicy()
    assert policy.select_victim(FULL, 0.1, rng, tid=1) is None


def test_random_finds_the_single_weak_slot(rng):
    policy = RandomPolicy()
    slots = [(0, 0.9), (1, 0.9), (2, 0.05), (3, 0.9)]
    for _ in range(20):
        assert policy.select_victim(slots, 0.5, rng, tid=1) == 2


def test_random_spreads_over_equal_slots(rng):
    policy = RandomPolicy()
    chosen = {policy.select_victim(FULL, 0.5, rng, tid=1) for _ in range(200)}
    assert chosen == {0, 1, 2, 3}


def test_random_empty_slots(rng):
    assert RandomPolicy().select_victim([], 0.5, rng, tid=1) is None


def test_near_fifo_starts_at_pointer(rng):
    policy = NearFifoPolicy()
    assert policy.select_victim(FULL, 0.5, rng, tid=1) == 0


def test_near_fifo_pointer_advances_on_replacement(rng):
    policy = NearFifoPolicy()
    victim = policy.select_victim(FULL, 0.5, rng, tid=1)
    policy.on_replaced(victim)
    assert policy.select_victim(FULL, 0.5, rng, tid=1) == 1


def test_near_fifo_wraps(rng):
    policy = NearFifoPolicy()
    for expected in (0, 1, 2, 3, 0):
        victim = policy.select_victim(FULL, 0.5, rng, tid=1)
        assert victim == expected
        policy.on_replaced(victim)


def test_near_fifo_skips_stronger_slots(rng):
    policy = NearFifoPolicy()
    slots = [(0, 0.9), (1, 0.9), (2, 0.1), (3, 0.9)]
    assert policy.select_victim(slots, 0.5, rng, tid=1) == 2


def test_near_fifo_declines_when_all_stronger(rng):
    policy = NearFifoPolicy()
    assert policy.select_victim(FULL, 0.2, rng, tid=1) is None


def test_near_fifo_handles_holes(rng):
    """Deallocations leave holes; the pointer scan must skip them."""
    policy = NearFifoPolicy()
    slots = [(1, 0.25), (3, 0.25)]  # slots 0 and 2 are free
    assert policy.select_victim(slots, 0.5, rng, tid=1) == 1


def test_equal_probability_does_not_evict(rng):
    """Replacement needs strictly greater probability (§III-C2)."""
    assert RandomPolicy().select_victim(FULL, 0.25, rng, tid=1) is None
    assert NearFifoPolicy().select_victim(FULL, 0.25, rng, tid=1) is None


def test_policy_names():
    assert NaivePolicy().name == POLICY_NAIVE
    assert RandomPolicy().name == POLICY_RANDOM
    assert NearFifoPolicy().name == POLICY_NEAR_FIFO
