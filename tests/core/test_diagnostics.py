"""Runtime diagnostics snapshots."""

import pytest

from repro.core import CSODConfig, CSODRuntime
from repro.core.diagnostics import render_snapshot, snapshot
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for


@pytest.fixture
def live_runtime():
    process = SimProcess(seed=4)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=4)
    app_for("memcached").run(process)
    return process, runtime


def test_snapshot_counts(live_runtime):
    _, runtime = live_runtime
    snap = snapshot(runtime)
    assert snap.allocations == 442
    assert snap.watched_times >= 4
    assert sum(count for _, count in snap.probability_histogram) == 74


def test_snapshot_top_contexts_sorted(live_runtime):
    _, runtime = live_runtime
    snap = snapshot(runtime, top_contexts=5)
    assert len(snap.contexts) == 5
    allocs = [c.allocations for c in snap.contexts]
    assert allocs == sorted(allocs, reverse=True)


def test_snapshot_watch_rows():
    from repro.callstack.frames import CallSite

    process = SimProcess(seed=4)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=4)
    site = CallSite("APP", "w.c", 1, "alloc")
    with process.main_thread.call_stack.calling(site):
        for _ in range(4):
            process.heap.malloc(process.main_thread, 64)
    snap = snapshot(runtime)
    assert len(snap.watches) == 4  # live objects hold all four slots
    for watch in snap.watches:
        assert watch.watch_address == watch.object_address + watch.object_size


def test_pinned_context_visible_after_detection():
    process = SimProcess(seed=1)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    app_for("gzip").run(process)
    snap = snapshot(runtime)
    assert any(c.pinned for c in snap.contexts)
    assert snap.probability_histogram[0][1] >= 1  # the pinned bucket


def test_render_snapshot(live_runtime):
    _, runtime = live_runtime
    out = render_snapshot(snapshot(runtime))
    assert "Probability distribution" in out
    assert "Hottest contexts" in out
    # memcached's teardown freed every object, so no slots are armed
    # and the watchpoint table is omitted.
    assert "Armed watchpoints" not in out


def test_render_snapshot_with_armed_watches():
    from repro.callstack.frames import CallSite

    process = SimProcess(seed=4)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=4)
    site = CallSite("APP", "w.c", 1, "alloc")
    with process.main_thread.call_stack.calling(site):
        process.heap.malloc(process.main_thread, 64)
    out = render_snapshot(snapshot(runtime))
    assert "Armed watchpoints" in out


def test_cli_inspect(capsys):
    from repro.cli import main

    assert main(["inspect", "memcached", "--seed", "2", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "Hottest contexts" in out


def test_cli_run_json(capsys):
    import json

    from repro.cli import main

    assert main(["run", "gzip", "--json"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[: out.rindex("]") + 1])
    assert payload[0]["kind"] == "over-write"
