"""The Signal Handling Unit: trap -> dual-context report."""

import pytest

from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.core.reporting import KIND_OVER_READ, KIND_OVER_WRITE, SOURCE_WATCHPOINT
from repro.machine.signals import SIGTRAP, SigInfo
from repro.workloads.base import SimProcess


@pytest.fixture
def env():
    process = SimProcess(seed=2)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=2)
    alloc_site = CallSite("APP", "alloc.c", 5, "make_buffer")
    access_site = CallSite("APP", "use.c", 9, "copy_loop")
    process.symbols.add_all([alloc_site, access_site])
    with process.main_thread.call_stack.calling(alloc_site):
        address = process.heap.malloc(process.main_thread, 64)
    return process, runtime, address, access_site


def overflow(process, address, size, kind="w"):
    thread = process.main_thread
    if kind == "w":
        process.machine.cpu.store(thread, address + size, b"\xaa" * 8)
    else:
        process.machine.cpu.load(thread, address + size, 8)


def test_overwrite_produces_watchpoint_report(env):
    process, runtime, address, access_site = env
    with process.main_thread.call_stack.calling(access_site):
        overflow(process, address, 64, "w")
    (report,) = [r for r in runtime.reports if r.source == SOURCE_WATCHPOINT]
    assert report.kind == KIND_OVER_WRITE
    assert report.object_address == address
    assert report.fault_address == address + 64


def test_overread_classified(env):
    process, runtime, address, access_site = env
    with process.main_thread.call_stack.calling(access_site):
        overflow(process, address, 64, "r")
    assert runtime.reports[0].kind == KIND_OVER_READ


def test_report_contains_both_contexts(env):
    process, runtime, address, access_site = env
    with process.main_thread.call_stack.calling(access_site):
        overflow(process, address, 64)
    text = runtime.reports[0].render(process.symbols)
    assert "APP/use.c:9" in text  # the overflowing site
    assert "APP/alloc.c:5" in text  # the allocation site
    assert "detected at:" in text
    assert "allocated at:" in text


def test_detection_pins_context(env):
    process, runtime, address, access_site = env
    record = runtime.wmu.find_by_object_address(address).record
    with process.main_thread.call_stack.calling(access_site):
        overflow(process, address, 64)
    assert record.pinned()


def test_repeated_faults_deduplicated(env):
    process, runtime, address, access_site = env
    with process.main_thread.call_stack.calling(access_site):
        for _ in range(5):
            overflow(process, address, 64)
    watchpoint_reports = [r for r in runtime.reports if r.source == SOURCE_WATCHPOINT]
    assert len(watchpoint_reports) == 1
    assert runtime.signal_unit.traps_handled == 5


def test_distinct_fault_sites_reported_separately(env):
    process, runtime, address, access_site = env
    other_site = CallSite("APP", "other.c", 3, "other_loop")
    process.symbols.add(other_site)
    with process.main_thread.call_stack.calling(access_site):
        overflow(process, address, 64)
    with process.main_thread.call_stack.calling(other_site):
        overflow(process, address, 64)
    assert len([r for r in runtime.reports if r.source == SOURCE_WATCHPOINT]) == 2


def test_stale_fd_ignored(env):
    process, runtime, _, _ = env
    runtime.signal_unit._handle(
        SIGTRAP, SigInfo(signo=SIGTRAP, si_fd=424242), process.main_thread
    )
    assert runtime.signal_unit.traps_ignored == 1
    assert not runtime.reports


def test_report_thread_id(env):
    process, runtime, address, access_site = env
    with process.main_thread.call_stack.calling(access_site):
        overflow(process, address, 64)
    assert runtime.reports[0].thread_id == process.main_thread.tid
