"""The Watchpoint Management Unit."""

import pytest

from repro.callstack.contexts import ContextInterner
from repro.callstack.frames import CallSite, CallStack
from repro.core.config import CSODConfig, POLICY_NAIVE, POLICY_RANDOM
from repro.core.rng import PerThreadRNG
from repro.core.sampling import SamplingManagementUnit
from repro.core.watchpoints import WatchpointManagementUnit
from repro.machine.clock import NANOS_PER_SECOND
from repro.machine.machine import Machine

BASE = 0x7F00_0000_0000


class Harness:
    def __init__(self, policy=POLICY_RANDOM, config=None):
        self.machine = Machine(seed=5)
        self.machine.map_heap_arena()
        self.config = config or CSODConfig(replacement_policy=policy)
        self.rng = PerThreadRNG(5, self.machine.ledger)
        self.sampling = SamplingManagementUnit(
            self.config, self.machine.clock, self.rng, ContextInterner()
        )
        self.wmu = WatchpointManagementUnit(
            self.config,
            self.machine.perf,
            self.machine.threads,
            self.machine.clock,
            self.sampling,
            self.rng,
            self.machine.ledger,
        )
        self._next = BASE

    def record(self, name="ctx"):
        stack = CallStack()
        stack.push(CallSite("APP", "m.c", 1, "main"))
        stack.push(CallSite("APP", "a.c", 2, name))
        return self.sampling.on_allocation(stack)

    def watch(self, record=None, size=64, checked=True):
        record = record or self.record()
        address = self._next
        self._next += 256
        return self.wmu.try_watch(
            self.machine.main_thread,
            address,
            size,
            address + size,
            record,
            probability_checked=checked,
        )


def test_free_slot_install_regardless_of_probability():
    h = Harness()
    record = h.record()
    record.probability = 0.0  # would never pass a draw
    watched = h.watch(record, checked=False)
    assert watched is not None  # "installation due to availability"


def test_install_arms_all_alive_threads():
    h = Harness()
    h.machine.threads.create("w1")
    h.machine.threads.create("w2")
    watched = h.watch()
    assert set(watched.fds) == {t.tid for t in h.machine.threads.alive_threads()}
    for thread in h.machine.threads.alive_threads():
        assert thread.debug_registers.free_slots() == 3


def test_install_halves_context_probability():
    h = Harness()
    record = h.record()
    before = record.probability
    h.watch(record)
    assert record.probability == pytest.approx(before / 2)


def test_install_captures_install_probability():
    h = Harness()
    record = h.record()
    before = h.sampling.effective_probability(record)
    watched = h.watch(record)
    assert watched.install_probability == pytest.approx(before)


def test_four_slots_then_replacement():
    h = Harness()
    for _ in range(4):
        assert h.watch() is not None
    assert h.wmu.free_slots() == 0
    # A fifth candidate with a strong record preempts a halved slot.
    strong = h.record("fresh")
    watched = h.watch(strong)
    assert watched is not None
    assert h.wmu.replace_count == 1


def test_replacement_requires_probability_check():
    h = Harness()
    for _ in range(4):
        h.watch()
    blocked = h.watch(h.record("fresh"), checked=False)
    assert blocked is None


def test_naive_policy_never_replaces():
    h = Harness(policy=POLICY_NAIVE)
    for _ in range(4):
        h.watch()
    assert h.watch(h.record("fresh")) is None
    assert h.wmu.declined_count == 1


def test_weak_candidate_declined():
    h = Harness()
    for _ in range(4):
        h.watch()
    weak = h.record("weak")
    weak.probability = 1e-5
    assert h.watch(weak) is None


def test_deallocation_removes_watch():
    h = Harness()
    watched = h.watch()
    assert h.wmu.on_deallocation(watched.object_address)
    assert h.wmu.free_slots() == 4
    assert h.machine.main_thread.debug_registers.free_slots() == 4


def test_deallocation_of_unwatched_is_noop():
    h = Harness()
    h.watch()
    assert not h.wmu.on_deallocation(0xDEAD)


def test_find_by_object_address():
    h = Harness()
    watched = h.watch()
    assert h.wmu.find_by_object_address(watched.object_address) is watched
    assert h.wmu.find_by_object_address(0x1) is None


def test_find_by_fd_matches_one_by_one():
    h = Harness()
    watched = h.watch()
    fd = next(iter(watched.fds.values()))
    assert h.wmu.find_by_fd(fd) is watched
    assert h.wmu.fd_comparisons >= 1
    assert h.wmu.find_by_fd(999999) is None


def test_new_thread_gets_existing_watchpoints():
    h = Harness()
    watched = h.watch()
    late = h.machine.threads.create("late")
    assert late.tid in watched.fds
    assert late.debug_registers.free_slots() == 3


def test_thread_exit_drops_fd():
    h = Harness()
    worker = h.machine.threads.create("w")
    watched = h.watch()
    assert worker.tid in watched.fds
    h.machine.threads.exit(worker.tid)
    assert worker.tid not in watched.fds


def test_ageing_halves_slot_probability():
    h = Harness()
    watched = h.watch()
    base = h.wmu.effective_slot_probability(watched)
    h.machine.clock.advance(int(10.5 * NANOS_PER_SECOND))
    aged = h.wmu.effective_slot_probability(watched)
    assert aged == pytest.approx(base / 2)
    h.machine.clock.advance(int(10 * NANOS_PER_SECOND))
    assert h.wmu.effective_slot_probability(watched) == pytest.approx(base / 4)


def test_remove_all():
    h = Harness()
    for _ in range(3):
        h.watch()
    h.wmu.remove_all()
    assert h.wmu.free_slots() == 4
    assert h.machine.perf.enabled_event_count() == 0


def test_install_counts_per_thread_syscalls():
    h = Harness()
    h.machine.threads.create("w")
    before = h.machine.ledger.count("syscall")
    h.watch()
    # open + 4 fcntl + 1 ioctl = 6 syscalls per thread, two threads.
    assert h.machine.ledger.count("syscall") - before == 12
