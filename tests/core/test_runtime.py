"""The assembled CSODRuntime."""

import pytest

from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess, SyntheticBuggyApp


def test_preloads_into_interposer():
    process = SimProcess(seed=1)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    assert process.heap.active_library is runtime.monitor


def test_shutdown_unloads_and_tears_down(tiny_write_app):
    process = SimProcess(seed=1)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    tiny_write_app.run(process)
    runtime.shutdown()
    assert process.heap.active_library is process.heap.raw
    assert process.machine.perf.enabled_event_count() == 0


def test_no_evidence_mode_has_no_canary_units():
    process = SimProcess(seed=1)
    runtime = CSODRuntime(
        process.machine, process.heap, CSODConfig(evidence_enabled=False), seed=1
    )
    assert runtime.canary is None
    assert runtime.termination is None


def test_detects_tiny_overwrite(tiny_write_app):
    process = SimProcess(seed=1)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    tiny_write_app.run(process)
    runtime.shutdown()
    assert runtime.detected_by_watchpoint
    assert runtime.reports[0].kind == "over-write"


def test_detects_tiny_overread(tiny_read_app):
    process = SimProcess(seed=1)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    tiny_read_app.run(process)
    runtime.shutdown()
    assert runtime.detected_by_watchpoint
    assert runtime.reports[0].kind == "over-read"


def test_overread_leaves_no_canary_evidence(tiny_read_app):
    """Over-reads cannot corrupt canaries — only the watchpoint sees them."""
    process = SimProcess(seed=1)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    tiny_read_app.run(process)
    runtime.shutdown()
    assert all(r.source == "watchpoint" for r in runtime.reports)


def test_no_false_positives_on_clean_program():
    from repro.workloads.perf import perf_app_for

    process = SimProcess(seed=1)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    perf_app_for("streamcluster", 2000).run(process, runtime)
    runtime.shutdown()
    assert not runtime.detected


def test_stats_snapshot(tiny_write_app):
    process = SimProcess(seed=1)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    tiny_write_app.run(process)
    stats = runtime.stats()
    assert stats.allocations == 1
    assert stats.frees == 1
    assert stats.contexts == 1
    assert stats.watched_times == 1
    assert stats.traps_handled >= 1


def test_same_seed_reproducible(tiny_write_app):
    outcomes = []
    for _ in range(2):
        process = SimProcess(seed=77)
        runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=77)
        tiny_write_app.run(process)
        runtime.shutdown()
        outcomes.append([r.summary() for r in runtime.reports])
    assert outcomes[0] == outcomes[1]


def test_evidence_disabled_still_detects_via_watchpoint(tiny_write_app):
    process = SimProcess(seed=1)
    runtime = CSODRuntime(
        process.machine, process.heap, CSODConfig(evidence_enabled=False), seed=1
    )
    tiny_write_app.run(process)
    runtime.shutdown()
    assert runtime.detected_by_watchpoint
