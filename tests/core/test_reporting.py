"""OverflowReport rendering (Fig. 6 format)."""

from repro.callstack.contexts import CallingContext
from repro.callstack.frames import CallSite, CallStack
from repro.callstack.symbols import SymbolTable
from repro.core.reporting import (
    KIND_OVER_READ,
    KIND_OVER_WRITE,
    OverflowReport,
    SOURCE_EXIT_CANARY,
    SOURCE_FREE_CANARY,
    SOURCE_WATCHPOINT,
)


def build(kind=KIND_OVER_READ, source=SOURCE_WATCHPOINT):
    alloc_sites = [
        CallSite("OPENSSL", "crypto/mem.c", 312, "CRYPTO_malloc"),
        CallSite("NGINX", "http/ngx_http_request.c", 577, "ngx_http_alloc"),
    ]
    # Pushed outermost-first: the innermost frame (the memcpy) is the
    # faulting statement and must render first, as in Fig. 6.
    access_sites = [
        CallSite("OPENSSL", "ssl/t1_lib.c", 2588, "tls1_process_heartbeat"),
        CallSite("GLIBC", "memcpy-sse2-unaligned.S", 81, "memcpy"),
    ]
    symbols = SymbolTable(alloc_sites + access_sites)
    stack = CallStack()
    for site in alloc_sites:
        stack.push(site)
    context = CallingContext(
        return_addresses=stack.return_addresses(),
        frames=stack.frames_innermost_first(),
    )
    access_stack = CallStack()
    for site in access_sites:
        access_stack.push(site)
    report = OverflowReport(
        kind=kind,
        source=source,
        fault_address=0x7F0000001040,
        object_address=0x7F0000001000,
        object_size=64,
        thread_id=3,
        time_ns=123,
        allocation_context=context,
        access_return_addresses=access_stack.return_addresses(),
        access_frames=access_stack.frames_innermost_first(),
    )
    return report, symbols


def test_render_matches_figure6_layout():
    report, symbols = build()
    text = report.render(symbols)
    lines = text.splitlines()
    assert lines[0] == "A buffer over-read problem is detected at:"
    assert lines[1] == "GLIBC/memcpy-sse2-unaligned.S:81"
    assert lines[2] == "OPENSSL/ssl/t1_lib.c:2588"
    assert "This object is allocated at:" in lines
    assert "NGINX/http/ngx_http_request.c:577" in text


def test_render_without_symbols_prints_addresses():
    report, _ = build()
    text = report.render(None)
    assert "0x" in text


def test_render_stripped_module():
    report, symbols = build()
    symbols.strip_module("GLIBC")
    text = report.render(symbols)
    assert "GLIBC/" not in text.splitlines()[1]
    assert text.splitlines()[1].startswith("0x")


def test_canary_sources_have_no_faulting_statement():
    for source in (SOURCE_FREE_CANARY, SOURCE_EXIT_CANARY):
        report, symbols = build(kind=KIND_OVER_WRITE, source=source)
        text = report.render(symbols)
        assert "corrupted canary" in text
        assert "t1_lib" not in text.splitlines()[1]


def test_summary_one_line():
    report, _ = build()
    summary = report.summary()
    assert "\n" not in summary
    assert "over-read" in summary
    assert "watchpoint" in summary


def test_summary_without_frames():
    report, _ = build()
    bare = OverflowReport(
        kind=report.kind,
        source=report.source,
        fault_address=report.fault_address,
        object_address=report.object_address,
        object_size=report.object_size,
        thread_id=report.thread_id,
        time_ns=report.time_ns,
        allocation_context=report.allocation_context,
    )
    assert hex(report.fault_address) in bare.summary()


def test_signature_stable_across_executions():
    # Same program locations, different synthetic addresses/timestamps
    # (a second execution): the signatures must collapse.
    report, _ = build()
    from dataclasses import replace

    other = replace(
        report,
        fault_address=report.fault_address + 0x1000,
        object_address=report.object_address + 0x1000,
        thread_id=9,
        time_ns=999_999,
    )
    assert report.signature() == other.signature()


def test_signature_distinguishes_kind_and_contexts():
    read_report, _ = build(kind=KIND_OVER_READ)
    write_report, _ = build(kind=KIND_OVER_WRITE)
    assert read_report.signature() != write_report.signature()
    # A canary report of the same allocation context has no access
    # context, so it aggregates separately from the watchpoint report.
    canary = build(kind=KIND_OVER_WRITE, source=SOURCE_EXIT_CANARY)[0]
    no_access = OverflowReport(
        kind=canary.kind,
        source=canary.source,
        fault_address=canary.fault_address,
        object_address=canary.object_address,
        object_size=canary.object_size,
        thread_id=canary.thread_id,
        time_ns=canary.time_ns,
        allocation_context=canary.allocation_context,
    )
    assert no_access.signature() != write_report.signature()
    assert no_access.signature().endswith("access:-")


def test_signature_uses_locations_not_addresses():
    report, _ = build()
    signature = report.signature()
    assert "OPENSSL/crypto/mem.c:312" in signature
    assert hex(report.fault_address) not in signature


def test_coarse_signature_top_k_allocation_frames_only():
    from repro.core.reporting import coarse_signature_of

    watchpoint, _ = build(kind=KIND_OVER_WRITE)
    canary = OverflowReport(
        kind=watchpoint.kind,
        source=SOURCE_FREE_CANARY,
        fault_address=watchpoint.fault_address,
        object_address=watchpoint.object_address,
        object_size=watchpoint.object_size,
        thread_id=watchpoint.thread_id,
        time_ns=watchpoint.time_ns,
        allocation_context=watchpoint.allocation_context,
    )
    # Exact signatures differ (access side), coarse signatures agree.
    assert watchpoint.signature() != canary.signature()
    assert watchpoint.coarse_signature() == canary.coarse_signature()
    assert watchpoint.coarse_signature() == coarse_signature_of(
        KIND_OVER_WRITE,
        [f.site.location() for f in watchpoint.allocation_context.frames][:3],
    )


def test_coarse_signature_respects_top_k():
    report, _ = build()
    assert report.coarse_signature(top_k=1) != report.coarse_signature(top_k=2)
    assert report.coarse_signature(top_k=1).count(">") == 0


def test_to_dict_exposes_both_signatures():
    report, symbols = build()
    payload = report.to_dict(symbols)
    assert payload["signature"] == report.signature()
    assert payload["coarse_signature"] == report.coarse_signature()
