"""The Termination Handling Unit: exit sweeps, crash sweeps, persistence."""

import json
import os

import pytest

from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.core.reporting import SOURCE_EXIT_CANARY
from repro.core.termination import load_persisted
from repro.errors import SegmentationFault
from repro.workloads.base import SimProcess


def make(tmp_path, seed=4):
    path = str(tmp_path / "evidence.json")
    process = SimProcess(seed=seed)
    runtime = CSODRuntime(
        process.machine, process.heap, CSODConfig(persistence_path=path), seed=seed
    )
    return process, runtime, path


def leak_corrupted_object(process):
    site = CallSite("APP", "leak.c", 7, "leaky_alloc")
    process.symbols.add(site)
    with process.main_thread.call_stack.calling(site):
        address = process.heap.malloc(process.main_thread, 64)
    # Corrupt without going through the CPU (no watchpoint detection) —
    # purely evidence-based discovery.
    process.machine.memory.write_bytes(address + 64, b"\x00" * 8)
    return address


def test_exit_sweep_finds_leaked_corruption(tmp_path):
    process, runtime, path = make(tmp_path)
    leak_corrupted_object(process)
    reports = runtime.shutdown()
    assert any(r.source == SOURCE_EXIT_CANARY for r in reports)
    assert runtime.detected


def test_exit_sweep_runs_once(tmp_path):
    process, runtime, path = make(tmp_path)
    leak_corrupted_object(process)
    first = runtime.termination.on_exit()
    second = runtime.termination.on_exit()
    assert first and not second


def test_persistence_written_on_exit(tmp_path):
    process, runtime, path = make(tmp_path)
    leak_corrupted_object(process)
    runtime.shutdown()
    persisted = load_persisted(path)
    assert len(persisted) == 1
    assert "leak.c:7" in next(iter(persisted))


def test_clean_exit_persists_nothing(tmp_path):
    process, runtime, path = make(tmp_path)
    site = CallSite("APP", "ok.c", 1, "fine")
    with process.main_thread.call_stack.calling(site):
        address = process.heap.malloc(process.main_thread, 32)
    process.heap.free(process.main_thread, address)
    runtime.shutdown()
    assert load_persisted(path) == set()


def test_crash_sweep_on_sigsegv(tmp_path):
    process, runtime, path = make(tmp_path)
    leak_corrupted_object(process)
    with pytest.raises(SegmentationFault):
        process.machine.cpu.load(process.main_thread, 0x10, 8)
    # The common handler ran the sweep and persisted before the death.
    assert runtime.termination.crash_sweeps == 1
    assert load_persisted(path)


def test_persisted_evidence_merges_across_runs(tmp_path):
    process, runtime, path = make(tmp_path, seed=4)
    leak_corrupted_object(process)
    runtime.shutdown()
    first = load_persisted(path)
    process2, runtime2, _ = make(tmp_path, seed=5)
    site = CallSite("APP", "leak2.c", 8, "other_leak")
    with process2.main_thread.call_stack.calling(site):
        address = process2.heap.malloc(process2.main_thread, 32)
    process2.machine.memory.write_bytes(address + 32, b"\x00" * 8)
    runtime2.shutdown()
    merged = load_persisted(path)
    assert first < merged


def test_load_persisted_missing_file():
    assert load_persisted("/nonexistent/file.json") == set()
    assert load_persisted(None) == set()


def test_load_persisted_garbage_file(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{not json")
    assert load_persisted(str(path)) == set()


def test_load_persisted_wrong_version(tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"version": 99, "contexts": ["x"]}))
    assert load_persisted(str(path)) == set()


def test_second_run_starts_pinned(tmp_path):
    process, runtime, path = make(tmp_path, seed=4)
    leak_corrupted_object(process)
    runtime.shutdown()

    process2, runtime2, _ = make(tmp_path, seed=99)
    site = CallSite("APP", "leak.c", 7, "leaky_alloc")
    with process2.main_thread.call_stack.calling(site):
        process2.heap.malloc(process2.main_thread, 64)
    # Same source location => preloaded as known-bad => pinned at 100%.
    records = list(runtime2.sampling.records())
    assert any(r.pinned() for r in records)
