"""The §V-B custom-syscall extension (batched install/remove)."""

import pytest

from repro.core import CSODConfig, CSODRuntime
from repro.errors import DebugRegisterError
from repro.machine.machine import Machine
from repro.machine.perf_events import PerfEventAttr
from repro.machine.signals import SIGTRAP
from repro.machine.syscall_cost import EVENT_SYSCALL
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for


def test_batch_install_arms_all_threads():
    machine = Machine(seed=1)
    machine.map_heap_arena()
    tids = [machine.main_thread.tid] + [machine.threads.create().tid for _ in range(3)]
    before = machine.ledger.count(EVENT_SYSCALL)
    fds = machine.perf.batch_install(
        PerfEventAttr(bp_addr=0x7F00_0000_0040), tids, SIGTRAP
    )
    assert set(fds) == set(tids)
    assert machine.ledger.count(EVENT_SYSCALL) - before == 1  # ONE syscall
    for tid in tids:
        assert machine.threads.get(tid).debug_registers.free_slots() == 3


def test_batch_remove_single_syscall():
    machine = Machine(seed=1)
    machine.map_heap_arena()
    fds = machine.perf.batch_install(
        PerfEventAttr(bp_addr=0x7F00_0000_0040), [machine.main_thread.tid], SIGTRAP
    )
    machine.quantum.advance()  # a later scheduler quantum
    before = machine.ledger.count(EVENT_SYSCALL)
    machine.perf.batch_remove(fds.values())
    assert machine.ledger.count(EVENT_SYSCALL) - before == 1
    assert machine.main_thread.debug_registers.free_slots() == 4


def test_batch_calls_within_one_quantum_coalesce():
    """All batch ops issued in one scheduler quantum cost one syscall."""
    machine = Machine(seed=1)
    machine.map_heap_arena()
    tid = machine.main_thread.tid
    machine.quantum.advance()
    before = machine.ledger.count(EVENT_SYSCALL)
    fds = machine.perf.batch_install(
        PerfEventAttr(bp_addr=0x7F00_0000_0040), [tid], SIGTRAP
    )
    machine.perf.batch_remove(fds.values())
    machine.perf.batch_install(
        PerfEventAttr(bp_addr=0x7F00_0000_0080), [tid], SIGTRAP
    )
    assert machine.ledger.count(EVENT_SYSCALL) - before == 1
    assert machine.perf.batch_calls == 3
    assert machine.perf.batches_coalesced == 2
    # The next quantum pays again.
    machine.quantum.advance()
    machine.perf.batch_install(
        PerfEventAttr(bp_addr=0x7F00_0000_00C0), [tid], SIGTRAP
    )
    assert machine.ledger.count(EVENT_SYSCALL) - before == 2


def test_batch_install_is_all_or_nothing():
    machine = Machine(seed=1)
    machine.map_heap_arena()
    tid = machine.main_thread.tid
    for i in range(4):
        machine.perf.batch_install(
            PerfEventAttr(bp_addr=0x7F00_0000_0000 + 16 * i), [tid], SIGTRAP
        )
    other = machine.threads.create().tid
    with pytest.raises(DebugRegisterError):
        machine.perf.batch_install(
            PerfEventAttr(bp_addr=0x7F00_0000_0100), [other, tid], SIGTRAP
        )
    # The partial install on `other` was rolled back.
    assert machine.threads.get(other).debug_registers.free_slots() == 4


def test_batched_runtime_detects_identically():
    for batched in (False, True):
        process = SimProcess(seed=3)
        csod = CSODRuntime(
            process.machine,
            process.heap,
            CSODConfig(batched_syscalls=batched),
            seed=3,
        )
        app_for("gzip").run(process)
        csod.shutdown()
        assert csod.detected_by_watchpoint, f"batched={batched}"


def test_batched_mode_saves_syscalls():
    def syscalls(batched):
        process = SimProcess(seed=3)
        for _ in range(7):
            process.spawn_thread()
        csod = CSODRuntime(
            process.machine,
            process.heap,
            CSODConfig(batched_syscalls=batched),
            seed=3,
        )
        app_for("libdwarf").run(process)
        csod.shutdown()
        return process.machine.ledger.count(EVENT_SYSCALL)

    plain = syscalls(False)
    batched = syscalls(True)
    assert batched < plain / 5


def test_batched_trap_still_carries_fd():
    process = SimProcess(seed=3)
    csod = CSODRuntime(
        process.machine, process.heap, CSODConfig(batched_syscalls=True), seed=3
    )
    app_for("libtiff").run(process)
    csod.shutdown()
    report = next(r for r in csod.reports if r.source == "watchpoint")
    assert report.kind == "over-write"


def test_late_thread_covered_in_batched_mode():
    from repro.callstack.frames import CallSite

    process = SimProcess(seed=3)
    csod = CSODRuntime(
        process.machine, process.heap, CSODConfig(batched_syscalls=True), seed=3
    )
    site = CallSite("APP", "a.c", 1, "alloc")
    process.symbols.add(site)
    with process.main_thread.call_stack.calling(site):
        address = process.heap.malloc(process.main_thread, 64)
    late = process.spawn_thread("late")
    use = CallSite("APP", "u.c", 2, "use")
    process.symbols.add(use)
    with late.call_stack.calling(use):
        process.machine.cpu.store(late, address + 64, b"x" * 8)
    assert csod.detected_by_watchpoint
