"""The Alloc/Dealloc Monitoring Unit, through a full runtime."""

import pytest

from repro.core import CSODConfig, CSODRuntime
from repro.heap import layout
from repro.workloads.base import SimProcess


def make(evidence=True, seed=3):
    process = SimProcess(seed=seed)
    config = CSODConfig() if evidence else CSODConfig(evidence_enabled=False)
    runtime = CSODRuntime(process.machine, process.heap, config, seed=seed)
    return process, runtime


def push_context(process, name="alloc"):
    from repro.callstack.frames import CallSite

    site = CallSite("APP", "m.c", 1, name)
    process.symbols.add(site)
    return process.main_thread.call_stack.calling(site)


def test_malloc_returns_writable_object():
    process, runtime = make()
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 64)
    process.machine.memory.write_bytes(address, b"\x11" * 64)
    assert process.machine.memory.read_bytes(address, 64) == b"\x11" * 64


def test_evidence_malloc_wraps_with_header():
    process, runtime = make(evidence=True)
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 64)
    assert layout.read_header(process.machine.memory, address).is_valid


def test_no_evidence_malloc_is_raw():
    process, runtime = make(evidence=False)
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 64)
    assert process.allocator.is_live(address)


def test_usable_size_with_evidence():
    process, runtime = make(evidence=True)
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 50)
    assert runtime.monitor.usable_size(address) == 50


def test_usable_size_without_evidence_rounds_up():
    process, runtime = make(evidence=False)
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 50)
    assert runtime.monitor.usable_size(address) == 64


def test_free_with_evidence_returns_block():
    process, runtime = make(evidence=True)
    live_before = process.allocator.stats.live_blocks
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 64)
    process.heap.free(process.main_thread, address)
    assert process.allocator.stats.live_blocks == live_before


def test_free_of_unwrapped_object_falls_back_to_raw():
    # Regression: an object allocated before CSOD interposition (or by a
    # bypassing allocator) carries no header; free used to raise
    # CSODError out of the canary check, crashing the application.
    process, runtime = make(evidence=True)
    address = process.raw_heap.malloc(process.main_thread, 64)
    live_before = process.allocator.stats.live_blocks
    process.heap.free(process.main_thread, address)
    assert process.allocator.stats.live_blocks == live_before - 1


def test_free_removes_watchpoint():
    process, runtime = make()
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 64)
    assert runtime.wmu.find_by_object_address(address) is not None
    process.heap.free(process.main_thread, address)
    assert runtime.wmu.find_by_object_address(address) is None


def test_corrupted_canary_reported_at_free():
    process, runtime = make()
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 64)
    process.machine.memory.write_bytes(address + 64, b"overflow")
    process.heap.free(process.main_thread, address)
    assert any(r.source == "free-canary" for r in runtime.reports)


def test_corrupted_canary_boosts_context():
    process, runtime = make()
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 64)
    record = runtime.wmu.find_by_object_address(address).record
    process.machine.memory.write_bytes(address + 64, b"overflow")
    process.heap.free(process.main_thread, address)
    assert record.pinned()


def test_first_allocations_watched_by_availability():
    process, runtime = make()
    with push_context(process):
        for _ in range(4):
            process.heap.malloc(process.main_thread, 32)
    assert runtime.wmu.free_slots() == 0
    assert runtime.stats().watched_times == 4


def test_memalign_through_monitor():
    process, runtime = make()
    with push_context(process):
        address = process.heap.memalign(process.main_thread, 512, 64)
    assert address % 512 == 0
    process.heap.free(process.main_thread, address)


def test_allocation_and_free_counters():
    process, runtime = make()
    with push_context(process):
        a = process.heap.malloc(process.main_thread, 16)
        b = process.heap.malloc(process.main_thread, 16)
    process.heap.free(process.main_thread, a)
    stats = runtime.stats()
    assert stats.allocations == 2
    assert stats.frees == 1


def test_rng_draw_happens_every_allocation():
    process, runtime = make()
    before = process.machine.ledger.count("csod.rng_draw")
    with push_context(process):
        for _ in range(10):
            process.heap.malloc(process.main_thread, 16)
    assert process.machine.ledger.count("csod.rng_draw") - before >= 10


def test_watch_address_is_object_boundary():
    process, runtime = make()
    with push_context(process):
        address = process.heap.malloc(process.main_thread, 40)
    watched = runtime.wmu.find_by_object_address(address)
    assert watched.watch_address == address + 40
