"""The HeapTherapy-style evidence-only configuration (§VII contrast)."""

import pytest

from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess
from repro.workloads.buggy import BUGGY_APPS, app_for

EVIDENCE_ONLY = CSODConfig(watchpoints_enabled=False)


def run(name, seed=1, config=EVIDENCE_ONLY):
    process = SimProcess(seed=seed)
    csod = CSODRuntime(process.machine, process.heap, config, seed=seed)
    app_for(name).run(process)
    csod.shutdown()
    return csod


def test_no_watchpoints_installed():
    csod = run("gzip")
    assert csod.stats().watched_times == 0
    assert csod.stats().traps_handled == 0


def test_overwrites_still_detected_via_canary():
    csod = run("gzip")
    assert csod.detected
    assert not csod.detected_by_watchpoint
    assert all(r.source in ("free-canary", "exit-canary") for r in csod.reports)


def test_evidence_reports_lack_faulting_statement():
    """The precision CSOD adds over canary-only tools: the overflowing
    statement's context exists only in watchpoint reports."""
    csod = run("gzip")
    report = csod.reports[0]
    assert not report.access_frames
    assert "corrupted canary" in report.render()


def test_overreads_invisible_to_evidence_only():
    """HeapTherapy-style tools cannot see Heartbleed."""
    for name in ("heartbleed", "libdwarf", "zziplib"):
        csod = run(name)
        assert not csod.detected, name


def test_all_overwrites_caught_every_run():
    for name, spec in BUGGY_APPS.items():
        if spec.bug_kind != "over-write":
            continue
        for seed in range(3):
            assert run(name, seed=seed).detected, name


def test_watchpoints_enabled_flag_composable():
    config = CSODConfig(watchpoints_enabled=False).with_policy("random")
    assert not config.watchpoints_enabled
    csod = run("gzip", config=config)
    assert csod.stats().watched_times == 0
