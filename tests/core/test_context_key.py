"""The bucketed calling-context hash table."""

import pytest

from repro.callstack.contexts import ContextKey
from repro.core.context_key import ContextHashTable, LOOKUP_COST_NS
from repro.machine.syscall_cost import CostLedger, EVENT_CONTEXT_LOOKUP


def key(ra=0x400100, offset=96):
    return ContextKey(first_level_ra=ra, stack_offset=offset)


def test_get_missing_returns_none():
    assert ContextHashTable().get(key()) is None


def test_put_then_get():
    table = ContextHashTable()
    table.put(key(), "record")
    assert table.get(key()) == "record"


def test_put_replaces():
    table = ContextHashTable()
    table.put(key(), "a")
    table.put(key(), "b")
    assert table.get(key()) == "b"
    assert len(table) == 1


def test_distinct_keys_coexist():
    table = ContextHashTable()
    table.put(key(ra=0x1), "a")
    table.put(key(ra=0x2), "b")
    assert table.get(key(ra=0x1)) == "a"
    assert table.get(key(ra=0x2)) == "b"
    assert len(table) == 2


def test_contains():
    table = ContextHashTable()
    table.put(key(), 1)
    assert key() in table
    assert key(ra=0x999) not in table


def test_items_and_values():
    table = ContextHashTable()
    table.put(key(ra=1), "a")
    table.put(key(ra=2), "b")
    assert dict(table.items()) == {key(ra=1): "a", key(ra=2): "b"}
    assert sorted(table.values()) == ["a", "b"]


def test_chaining_under_forced_conflicts():
    table = ContextHashTable(bucket_count=1)  # everything collides
    for i in range(20):
        table.put(key(ra=i), i)
    assert len(table) == 20
    assert all(table.get(key(ra=i)) == i for i in range(20))
    assert table.conflicted_buckets() == 1
    assert table.max_chain_length() == 20


def test_large_table_has_few_conflicts():
    table = ContextHashTable()
    for i in range(1200):  # MySQL-scale context count
        table.put(key(ra=0x400000 + i * 0x20, offset=i * 16), i)
    assert table.conflicted_buckets() <= 2


def test_lock_acquisitions_counted():
    table = ContextHashTable()
    table.put(key(), 1)
    table.get(key())
    assert table.lock_acquisitions == 2


def test_lookup_cost_charged():
    ledger = CostLedger()
    table = ContextHashTable(ledger=ledger)
    table.get(key())
    assert ledger.nanos(EVENT_CONTEXT_LOOKUP) == LOOKUP_COST_NS


def test_invalid_bucket_count():
    with pytest.raises(ValueError):
        ContextHashTable(bucket_count=0)
