"""Call sites, frames, and stacks."""

import pytest

from repro.callstack.frames import CallSite, CallStack
from repro.errors import ReproError


def site(function="f", frame_size=48, module="APP"):
    return CallSite(module, "file.c", 10, function, frame_size=frame_size)


def test_call_sites_get_unique_return_addresses():
    a, b = site("a"), site("b")
    assert a.return_address != b.return_address


def test_location_format():
    s = CallSite("OPENSSL", "ssl/t1_lib.c", 2588, "tls1_process_heartbeat")
    assert s.location() == "OPENSSL/ssl/t1_lib.c:2588"
    assert str(s) == s.location()


def test_site_rejects_bad_frame_size():
    with pytest.raises(ReproError):
        CallSite("A", "f.c", 1, "f", frame_size=0)


def test_site_rejects_negative_line():
    with pytest.raises(ReproError):
        CallSite("A", "f.c", -5, "f")


def test_push_pop():
    stack = CallStack()
    frame = stack.push(site())
    assert stack.depth == 1
    assert stack.top() is frame
    assert stack.pop() is frame
    assert stack.depth == 0


def test_pop_empty_rejected():
    with pytest.raises(ReproError):
        CallStack().pop()


def test_stack_offset_tracks_frame_sizes():
    stack = CallStack()
    stack.push(site("a", frame_size=64))
    stack.push(site("b", frame_size=32))
    assert stack.stack_offset == 96
    stack.pop()
    assert stack.stack_offset == 64


def test_calling_context_manager():
    stack = CallStack()
    with stack.calling(site("a")):
        assert stack.depth == 1
        with stack.calling(site("b")):
            assert stack.depth == 2
    assert stack.depth == 0


def test_context_manager_pops_on_exception():
    stack = CallStack()
    with pytest.raises(RuntimeError):
        with stack.calling(site()):
            raise RuntimeError("boom")
    assert stack.depth == 0


def test_caller_levels():
    stack = CallStack()
    a, b = site("a"), site("b")
    stack.push(a)
    stack.push(b)
    assert stack.caller(0).site is b
    assert stack.caller(1).site is a
    assert stack.caller(2) is None


def test_frames_innermost_first():
    stack = CallStack()
    a, b = site("a"), site("b")
    stack.push(a)
    stack.push(b)
    frames = stack.frames_innermost_first()
    assert [f.site for f in frames] == [b, a]


def test_return_addresses_order():
    stack = CallStack()
    a, b = site("a"), site("b")
    stack.push(a)
    stack.push(b)
    assert stack.return_addresses() == (b.return_address, a.return_address)


def test_empty_stack_top_is_none():
    stack = CallStack()
    assert stack.top() is None
    assert len(stack) == 0


def test_iteration_outermost_first():
    stack = CallStack()
    a, b = site("a"), site("b")
    stack.push(a)
    stack.push(b)
    assert [f.site for f in stack] == [a, b]
