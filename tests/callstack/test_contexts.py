"""Context keys and interning, including collision behaviour."""

from repro.callstack.backtrace import Backtracer
from repro.callstack.contexts import ContextInterner, ContextKey
from repro.callstack.frames import CallSite, CallStack
from repro.machine.syscall_cost import CostLedger, EVENT_BACKTRACE_FULL


def chain(*names, frame_size=48):
    return [CallSite("APP", "f.c", i, n, frame_size=frame_size) for i, n in enumerate(names)]


def push_all(stack, sites):
    for site in sites:
        stack.push(site)


def test_key_combines_ra_and_offset():
    stack = CallStack()
    sites = chain("main", "alloc")
    push_all(stack, sites)
    key = ContextInterner().key_for(stack)
    assert key.first_level_ra == sites[-1].return_address
    assert key.stack_offset == stack.stack_offset


def test_intern_miss_then_hit():
    interner = ContextInterner()
    stack = CallStack()
    push_all(stack, chain("main", "alloc"))
    key1, ctx1 = interner.intern(stack)
    key2, ctx2 = interner.intern(stack)
    assert key1 == key2
    assert ctx1 is ctx2
    assert interner.misses == 1
    assert interner.hits == 1


def test_different_chains_different_keys():
    interner = ContextInterner()
    s1, s2 = CallStack(), CallStack()
    push_all(s1, chain("main", "a"))
    push_all(s2, chain("main", "b"))
    k1, _ = interner.intern(s1)
    k2, _ = interner.intern(s2)
    assert k1 != k2


def test_full_backtrace_only_on_miss():
    ledger = CostLedger()
    interner = ContextInterner(Backtracer(ledger))
    stack = CallStack()
    push_all(stack, chain("main", "mid", "alloc"))
    interner.intern(stack)
    unwinds_after_miss = ledger.count(EVENT_BACKTRACE_FULL)
    interner.intern(stack)
    assert ledger.count(EVENT_BACKTRACE_FULL) == unwinds_after_miss == 1


def test_context_records_frames_and_addresses():
    interner = ContextInterner()
    stack = CallStack()
    sites = chain("main", "alloc")
    push_all(stack, sites)
    _, context = interner.intern(stack)
    assert context.depth == 2
    assert context.return_addresses == stack.return_addresses()
    assert "f.c:1" in str(context)


def test_collision_aliases_contexts():
    """The paper's accepted imprecision: same (RA, offset) => same record."""
    interner = ContextInterner()
    shared_alloc = CallSite("APP", "alloc.c", 9, "alloc", frame_size=16)
    a, b = CallSite("APP", "a.c", 1, "a", frame_size=32), CallSite(
        "APP", "b.c", 2, "b", frame_size=32
    )
    s1, s2 = CallStack(), CallStack()
    push_all(s1, [a, shared_alloc])
    push_all(s2, [b, shared_alloc])
    assert s1.stack_offset == s2.stack_offset
    k1, ctx1 = interner.intern(s1)
    k2, ctx2 = interner.intern(s2)
    assert k1 == k2
    assert ctx1 is ctx2  # the second context is silently aliased


def test_distinct_offsets_prevent_collision():
    interner = ContextInterner()
    shared_alloc = CallSite("APP", "alloc.c", 9, "alloc", frame_size=16)
    a = CallSite("APP", "a.c", 1, "a", frame_size=32)
    b = CallSite("APP", "b.c", 2, "b", frame_size=64)  # different frame size
    s1, s2 = CallStack(), CallStack()
    push_all(s1, [a, shared_alloc])
    push_all(s2, [b, shared_alloc])
    k1, _ = interner.intern(s1)
    k2, _ = interner.intern(s2)
    assert k1 != k2


def test_lookup_by_key():
    interner = ContextInterner()
    stack = CallStack()
    push_all(stack, chain("main", "alloc"))
    key, context = interner.intern(stack)
    assert interner.lookup(key) is context
    assert key in interner
    assert len(interner) == 1


def test_lookup_unknown_key():
    assert ContextInterner().lookup(ContextKey(0x1, 2)) is None
