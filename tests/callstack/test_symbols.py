"""Symbolization (addr2line analogue)."""

import pytest

from repro.callstack.frames import CallSite
from repro.callstack.symbols import SymbolTable


def test_addr2line_known():
    site = CallSite("NGINX", "core/nginx.c", 415, "main")
    table = SymbolTable([site])
    assert table.addr2line(site.return_address) == "NGINX/core/nginx.c:415"


def test_addr2line_unknown_prints_hex():
    table = SymbolTable()
    assert table.addr2line(0x400123) == "0x400123"


def test_stripped_module_prints_hex():
    """§III-D2: stripped binaries report raw addresses."""
    site = CallSite("LIBHX.SO", "hx.c", 10, "HX_split")
    table = SymbolTable([site])
    table.strip_module("LIBHX.SO")
    assert table.addr2line(site.return_address) == hex(site.return_address)


def test_symbolize_whole_context():
    sites = [CallSite("A", "a.c", 1, "a"), CallSite("B", "b.c", 2, "b")]
    table = SymbolTable(sites)
    lines = table.symbolize([s.return_address for s in sites])
    assert lines == ["A/a.c:1", "B/b.c:2"]


def test_add_idempotent_for_same_site():
    site = CallSite("A", "a.c", 1, "a")
    table = SymbolTable()
    table.add(site)
    table.add(site)
    assert len(table) == 1


def test_add_conflicting_site_rejected():
    site = CallSite("A", "a.c", 1, "a")
    clone = CallSite("B", "b.c", 2, "b")
    object.__setattr__(clone, "return_address", site.return_address)
    table = SymbolTable([site])
    with pytest.raises(ValueError):
        table.add(clone)


def test_site_for():
    site = CallSite("A", "a.c", 1, "a")
    table = SymbolTable([site])
    assert table.site_for(site.return_address) is site
    assert table.site_for(0xBAD) is None


def test_add_all():
    sites = [CallSite("A", "a.c", i, f"f{i}") for i in range(5)]
    table = SymbolTable()
    table.add_all(sites)
    assert len(table) == 5
