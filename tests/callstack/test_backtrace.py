"""Cheap peek vs. expensive full unwind."""

from repro.callstack.backtrace import (
    Backtracer,
    FULL_UNWIND_BASE_NS,
    FULL_UNWIND_PER_FRAME_NS,
    PEEK_COST_NS,
)
from repro.callstack.frames import CallSite, CallStack
from repro.machine.syscall_cost import CostLedger, EVENT_BACKTRACE_FULL


def stack_of(depth):
    stack = CallStack()
    for i in range(depth):
        stack.push(CallSite("APP", "f.c", i, f"f{i}"))
    return stack


def test_peek_returns_top():
    stack = stack_of(3)
    tracer = Backtracer()
    assert tracer.peek_caller(stack).site.function == "f2"
    assert tracer.peek_caller(stack, level=2).site.function == "f0"


def test_peek_on_empty_stack():
    assert Backtracer().peek_caller(CallStack()) is None


def test_full_backtrace_order():
    stack = stack_of(3)
    addresses = Backtracer().full_backtrace(stack)
    assert addresses == stack.return_addresses()


def test_full_frames_match_backtrace():
    stack = stack_of(4)
    tracer = Backtracer()
    frames = tracer.full_frames(stack)
    assert tuple(f.return_address for f in frames) == stack.return_addresses()


def test_peek_is_cheap():
    ledger = CostLedger()
    tracer = Backtracer(ledger)
    tracer.peek_caller(stack_of(50))
    assert ledger.total_nanos() == PEEK_COST_NS


def test_full_unwind_cost_scales_with_depth():
    ledger = CostLedger()
    tracer = Backtracer(ledger)
    tracer.full_backtrace(stack_of(10))
    expected = FULL_UNWIND_BASE_NS + 10 * FULL_UNWIND_PER_FRAME_NS
    assert ledger.nanos(EVENT_BACKTRACE_FULL) == expected


def test_cost_asymmetry():
    """The §III-A1 rationale: peeking is orders cheaper than unwinding."""
    ledger = CostLedger()
    tracer = Backtracer(ledger)
    stack = stack_of(20)
    tracer.peek_caller(stack)
    peek = ledger.total_nanos()
    tracer.full_backtrace(stack)
    assert ledger.total_nanos() - peek > 50 * peek
