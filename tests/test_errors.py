"""The exception hierarchy."""

import pytest

from repro import errors


def test_hierarchy():
    assert issubclass(errors.MachineError, errors.ReproError)
    assert issubclass(errors.SegmentationFault, errors.MachineError)
    assert issubclass(errors.HeapError, errors.ReproError)
    assert issubclass(errors.OutOfMemoryError, errors.HeapError)
    assert issubclass(errors.DoubleFreeError, errors.InvalidFreeError)
    assert issubclass(errors.CSODError, errors.ReproError)
    assert issubclass(errors.WorkloadError, errors.ReproError)


def test_segfault_carries_details():
    fault = errors.SegmentationFault(0xDEAD, size=8, kind="write")
    assert fault.address == 0xDEAD
    assert fault.size == 8
    assert "write" in str(fault)
    assert "0xdead" in str(fault)


def test_oom_carries_request():
    oom = errors.OutOfMemoryError(1 << 40)
    assert oom.requested == 1 << 40


def test_invalid_free_message():
    error = errors.InvalidFreeError(0x100, reason="wild pointer")
    assert "wild pointer" in str(error)


def test_double_free_message():
    assert "double free" in str(errors.DoubleFreeError(0x100))


def test_catching_base_class_catches_everything():
    for exc in (
        errors.SegmentationFault(1),
        errors.OutOfMemoryError(1),
        errors.CSODError("x"),
        errors.WorkloadError("y"),
    ):
        with pytest.raises(errors.ReproError):
            raise exc
