"""CPU access execution, watchpoint traps, and hooks."""

import pytest

from repro.errors import SegmentationFault
from repro.machine.machine import Machine
from repro.machine.perf_events import (
    F_SETOWN,
    F_SETSIG,
    PERF_EVENT_IOC_ENABLE,
    PerfEventAttr,
)
from repro.machine.signals import SIGTRAP, ProcessTerminated

BASE = 0x7F00_0000_0000


@pytest.fixture
def machine():
    m = Machine(seed=1)
    m.map_heap_arena()
    return m


def armed_fd(machine, address, tid=None):
    tid = tid or machine.main_thread.tid
    fd = machine.perf.perf_event_open(PerfEventAttr(bp_addr=address), tid)
    machine.perf.fcntl(fd, F_SETSIG, SIGTRAP)
    machine.perf.fcntl(fd, F_SETOWN, tid)
    machine.perf.ioctl(fd, PERF_EVENT_IOC_ENABLE)
    return fd


def test_store_then_load_roundtrip(machine):
    thread = machine.main_thread
    machine.cpu.store(thread, BASE, b"abcdefgh")
    assert machine.cpu.load(thread, BASE, 8) == b"abcdefgh"


def test_word_helpers(machine):
    thread = machine.main_thread
    machine.cpu.store_word(thread, BASE, 123456789)
    assert machine.cpu.load_word(thread, BASE) == 123456789


def test_unmapped_load_faults(machine):
    with pytest.raises(SegmentationFault):
        machine.cpu.load(machine.main_thread, 0x10, 8)


def test_unmapped_store_faults(machine):
    with pytest.raises(SegmentationFault):
        machine.cpu.store(machine.main_thread, 0x10, b"x")


def test_segv_handler_runs_before_fault_propagates(machine):
    seen = []
    machine.signals.sigaction(11, lambda s, info, t: seen.append(info.fault_address))
    with pytest.raises(SegmentationFault):
        machine.cpu.load(machine.main_thread, 0x10, 8)
    assert seen == [0x10]


def test_watchpoint_fires_sigtrap_with_fd(machine):
    thread = machine.main_thread
    seen = []
    machine.signals.sigaction(SIGTRAP, lambda s, info, t: seen.append(info))
    fd = armed_fd(machine, BASE + 64)
    machine.cpu.load(thread, BASE + 64, 8)
    assert len(seen) == 1
    assert seen[0].si_fd == fd
    assert seen[0].access_kind == "r"


def test_watchpoint_fires_on_write(machine):
    thread = machine.main_thread
    seen = []
    machine.signals.sigaction(SIGTRAP, lambda s, info, t: seen.append(info))
    armed_fd(machine, BASE + 64)
    machine.cpu.store(thread, BASE + 64, b"overflow")
    assert seen[0].access_kind == "w"


def test_write_lands_before_trap(machine):
    """x86 data watchpoints are traps: the access completes first."""
    thread = machine.main_thread
    observed = []
    machine.signals.sigaction(
        SIGTRAP,
        lambda s, info, t: observed.append(machine.memory.read_bytes(BASE + 64, 4)),
    )
    armed_fd(machine, BASE + 64)
    machine.cpu.store(thread, BASE + 64, b"xyzw")
    assert observed == [b"xyzw"]


def test_partial_overlap_fires(machine):
    thread = machine.main_thread
    seen = []
    machine.signals.sigaction(SIGTRAP, lambda s, info, t: seen.append(1))
    armed_fd(machine, BASE + 64)
    machine.cpu.store(thread, BASE + 60, b"12345678")  # overlaps first 4 bytes
    assert seen


def test_non_overlapping_access_silent(machine):
    thread = machine.main_thread
    seen = []
    machine.signals.sigaction(SIGTRAP, lambda s, info, t: seen.append(1))
    armed_fd(machine, BASE + 64)
    machine.cpu.load(thread, BASE, 8)
    machine.cpu.load(thread, BASE + 72, 8)
    assert not seen


def test_watchpoint_is_per_thread(machine):
    other = machine.threads.create()
    seen = []
    machine.signals.sigaction(SIGTRAP, lambda s, info, t: seen.append(t.tid))
    armed_fd(machine, BASE + 64, tid=machine.main_thread.tid)
    # `other` has no armed registers: its access is silent.
    machine.cpu.load(other, BASE + 64, 8)
    assert not seen
    machine.cpu.load(machine.main_thread, BASE + 64, 8)
    assert seen == [machine.main_thread.tid]


def test_trap_count(machine):
    thread = machine.main_thread
    machine.signals.sigaction(SIGTRAP, lambda *a: None)
    armed_fd(machine, BASE + 64)
    machine.cpu.load(thread, BASE + 64, 8)
    machine.cpu.load(thread, BASE + 64, 8)
    assert machine.cpu.trap_count == 2


def test_access_hooks_observe_accesses(machine):
    thread = machine.main_thread
    seen = []
    machine.cpu.add_access_hook(lambda t, a, s, k: seen.append((a, s, k)))
    machine.cpu.store(thread, BASE, b"ab")
    machine.cpu.load(thread, BASE, 2)
    assert seen == [(BASE, 2, "w"), (BASE, 2, "r")]


def test_access_hook_removal(machine):
    thread = machine.main_thread
    seen = []
    hook = lambda t, a, s, k: seen.append(1)
    machine.cpu.add_access_hook(hook)
    machine.cpu.remove_access_hook(hook)
    machine.cpu.load(thread, BASE, 8)
    assert not seen
