"""The Machine facade wiring."""

from repro.machine.machine import DEFAULT_HEAP_BASE, Machine


def test_components_wired():
    machine = Machine(seed=3)
    assert machine.cpu is not None
    assert machine.perf is not None
    assert machine.main_thread is machine.threads.main_thread


def test_ledger_drives_clock():
    machine = Machine(seed=0, charge_time=True)
    machine.ledger.record("x", nanos_each=50)
    assert machine.clock.now_ns == 50


def test_charge_time_off():
    machine = Machine(seed=0, charge_time=False)
    machine.ledger.record("x", nanos_each=50)
    assert machine.clock.now_ns == 0


def test_map_heap_arena():
    machine = Machine()
    region = machine.map_heap_arena()
    assert region.start == DEFAULT_HEAP_BASE
    assert machine.memory.is_mapped(region.start, 4096)


def test_new_scheduler_uses_machine_seed():
    machine = Machine(seed=9)
    sched = machine.new_scheduler()
    assert sched is not None


def test_repr():
    assert "seed=5" in repr(Machine(seed=5))
