"""Signal dispositions and delivery."""

import pytest

from repro.errors import InvalidSignalError
from repro.machine.signals import (
    SIGABRT,
    SIGSEGV,
    SIGTRAP,
    ProcessTerminated,
    SigInfo,
    SignalTable,
    signal_name,
)
from repro.machine.threads import ThreadRegistry


@pytest.fixture
def table():
    return SignalTable()


@pytest.fixture
def thread():
    return ThreadRegistry().main_thread


def test_signal_names():
    assert signal_name(SIGTRAP) == "SIGTRAP"
    assert signal_name(SIGSEGV) == "SIGSEGV"
    assert signal_name(SIGABRT) == "SIGABRT"


def test_unknown_signal_name_rejected():
    with pytest.raises(InvalidSignalError):
        signal_name(99)


def test_handler_receives_siginfo(table, thread):
    seen = []
    table.sigaction(SIGTRAP, lambda s, info, t: seen.append((s, info.si_fd, t.tid)))
    table.deliver(SIGTRAP, SigInfo(signo=SIGTRAP, si_fd=42), thread)
    assert seen == [(SIGTRAP, 42, thread.tid)]


def test_handled_delivery_returns_true(table, thread):
    table.sigaction(SIGTRAP, lambda *a: None)
    assert table.deliver(SIGTRAP, SigInfo(signo=SIGTRAP), thread)


def test_unhandled_sigtrap_is_ignored(table, thread):
    assert not table.deliver(SIGTRAP, SigInfo(signo=SIGTRAP), thread)


def test_unhandled_sigsegv_terminates(table, thread):
    with pytest.raises(ProcessTerminated) as excinfo:
        table.deliver(SIGSEGV, SigInfo(signo=SIGSEGV), thread)
    assert excinfo.value.signo == SIGSEGV


def test_unhandled_sigabrt_terminates(table, thread):
    with pytest.raises(ProcessTerminated):
        table.deliver(SIGABRT, SigInfo(signo=SIGABRT), thread)


def test_handled_sigsegv_does_not_terminate(table, thread):
    table.sigaction(SIGSEGV, lambda *a: None)
    assert table.deliver(SIGSEGV, SigInfo(signo=SIGSEGV), thread)


def test_sigaction_none_resets(table, thread):
    table.sigaction(SIGTRAP, lambda *a: None)
    table.sigaction(SIGTRAP, None)
    assert table.handler_for(SIGTRAP) is None


def test_sigaction_unknown_signal_rejected(table):
    with pytest.raises(InvalidSignalError):
        table.sigaction(7, lambda *a: None)


def test_deliver_unknown_signal_rejected(table, thread):
    with pytest.raises(InvalidSignalError):
        table.deliver(7, SigInfo(signo=7), thread)


def test_delivery_log(table, thread):
    table.sigaction(SIGTRAP, lambda *a: None)
    table.deliver(SIGTRAP, SigInfo(signo=SIGTRAP, si_fd=1), thread)
    table.deliver(SIGTRAP, SigInfo(signo=SIGTRAP, si_fd=2), thread)
    assert table.delivery_count(SIGTRAP) == 2
    assert [d.si_fd for d in table.deliveries(SIGTRAP)] == [1, 2]


def test_clear_log(table, thread):
    table.sigaction(SIGTRAP, lambda *a: None)
    table.deliver(SIGTRAP, SigInfo(signo=SIGTRAP), thread)
    table.clear_log()
    assert table.delivery_count() == 0
