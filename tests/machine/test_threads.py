"""Thread registry and interposition hooks."""

import pytest

from repro.errors import ThreadError
from repro.machine.threads import ThreadRegistry


def test_main_thread_exists():
    registry = ThreadRegistry()
    assert registry.main_thread.tid == 1
    assert registry.main_thread.alive


def test_create_assigns_unique_tids():
    registry = ThreadRegistry()
    a = registry.create("a")
    b = registry.create("b")
    assert a.tid != b.tid != registry.main_thread.tid


def test_alive_threads_lists_all():
    registry = ThreadRegistry()
    registry.create()
    assert len(registry.alive_threads()) == 2
    assert len(registry) == 2


def test_exit_removes_from_alive():
    registry = ThreadRegistry()
    thread = registry.create()
    registry.exit(thread.tid)
    assert not thread.alive
    assert len(registry) == 1


def test_double_exit_rejected():
    registry = ThreadRegistry()
    thread = registry.create()
    registry.exit(thread.tid)
    with pytest.raises(ThreadError):
        registry.exit(thread.tid)


def test_main_thread_cannot_exit():
    registry = ThreadRegistry()
    with pytest.raises(ThreadError):
        registry.exit(registry.main_thread.tid)


def test_get_unknown_tid_rejected():
    with pytest.raises(ThreadError):
        ThreadRegistry().get(999)


def test_create_hook_fires():
    registry = ThreadRegistry()
    seen = []
    registry.on_create(lambda t: seen.append(t.tid))
    thread = registry.create()
    assert seen == [thread.tid]


def test_create_hook_not_fired_for_preexisting_main():
    registry = ThreadRegistry()
    seen = []
    registry.on_create(lambda t: seen.append(t.tid))
    assert seen == []


def test_exit_hook_fires():
    registry = ThreadRegistry()
    seen = []
    registry.on_exit(lambda t: seen.append(t.tid))
    thread = registry.create()
    registry.exit(thread.tid)
    assert seen == [thread.tid]


def test_each_thread_has_own_debug_registers():
    registry = ThreadRegistry()
    a = registry.create()
    assert a.debug_registers is not registry.main_thread.debug_registers


def test_each_thread_has_own_call_stack():
    registry = ThreadRegistry()
    a = registry.create()
    assert a.call_stack is not registry.main_thread.call_stack


def test_default_names():
    registry = ThreadRegistry()
    thread = registry.create()
    assert thread.name == f"thread-{thread.tid}"
