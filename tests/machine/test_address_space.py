"""AddressSpace mapping and contents."""

import pytest

from repro.errors import MachineError, SegmentationFault
from repro.machine.address_space import PAGE_SIZE, AddressSpace

BASE = 0x10_0000


@pytest.fixture
def memory():
    space = AddressSpace()
    space.map_region(BASE, 64 * PAGE_SIZE, "test")
    return space


def test_mapped_range_is_mapped(memory):
    assert memory.is_mapped(BASE, 8)
    assert memory.is_mapped(BASE + 64 * PAGE_SIZE - 1, 1)


def test_unmapped_range_is_not_mapped(memory):
    assert not memory.is_mapped(BASE - 1, 1)
    assert not memory.is_mapped(BASE + 64 * PAGE_SIZE, 1)


def test_range_straddling_end_is_not_mapped(memory):
    assert not memory.is_mapped(BASE + 64 * PAGE_SIZE - 4, 8)


def test_zero_size_is_not_mapped(memory):
    assert not memory.is_mapped(BASE, 0)


def test_adjacent_regions_count_as_contiguous():
    space = AddressSpace()
    space.map_region(BASE, PAGE_SIZE, "lo")
    space.map_region(BASE + PAGE_SIZE, PAGE_SIZE, "hi")
    assert space.is_mapped(BASE + PAGE_SIZE - 4, 8)


def test_overlapping_map_rejected(memory):
    with pytest.raises(MachineError):
        memory.map_region(BASE + PAGE_SIZE, PAGE_SIZE, "overlap")


def test_empty_map_rejected():
    with pytest.raises(MachineError):
        AddressSpace().map_region(BASE, 0)


def test_out_of_canonical_range_rejected():
    with pytest.raises(MachineError):
        AddressSpace().map_region(1 << 47, (1 << 47) + 16)


def test_unmap_removes_region(memory):
    memory.unmap_region(BASE)
    assert not memory.is_mapped(BASE, 1)


def test_unmap_unknown_start_rejected(memory):
    with pytest.raises(MachineError):
        memory.unmap_region(BASE + 1)


def test_region_at(memory):
    region = memory.region_at(BASE + 100)
    assert region is not None
    assert region.name == "test"
    assert memory.region_at(BASE - 1) is None


def test_write_then_read_roundtrip(memory):
    memory.write_bytes(BASE + 10, b"hello world")
    assert memory.read_bytes(BASE + 10, 11) == b"hello world"


def test_unwritten_memory_reads_zero(memory):
    assert memory.read_bytes(BASE, 16) == bytes(16)


def test_write_across_page_boundary(memory):
    address = BASE + PAGE_SIZE - 3
    memory.write_bytes(address, b"abcdef")
    assert memory.read_bytes(address, 6) == b"abcdef"


def test_word_roundtrip(memory):
    memory.write_word(BASE + 8, 0xDEADBEEF_CAFEBABE)
    assert memory.read_word(BASE + 8) == 0xDEADBEEF_CAFEBABE


def test_word_wraps_to_64_bits(memory):
    memory.write_word(BASE, (1 << 64) + 5)
    assert memory.read_word(BASE) == 5


def test_read_unmapped_faults(memory):
    with pytest.raises(SegmentationFault) as excinfo:
        memory.read_bytes(BASE - 8, 8)
    assert excinfo.value.address == BASE - 8


def test_write_unmapped_faults(memory):
    with pytest.raises(SegmentationFault):
        memory.write_bytes(BASE + 64 * PAGE_SIZE, b"x")


def test_fault_reports_kind(memory):
    with pytest.raises(SegmentationFault) as excinfo:
        memory.write_bytes(0, b"x")
    assert excinfo.value.kind == "write"


def test_touched_pages_lazy(memory):
    assert memory.touched_pages() == 0
    memory.write_bytes(BASE, b"x")
    assert memory.touched_pages() == 1


def test_unmap_drops_private_pages():
    space = AddressSpace()
    space.map_region(BASE, PAGE_SIZE, "a")
    space.write_bytes(BASE, b"data")
    space.unmap_region(BASE)
    space.map_region(BASE, PAGE_SIZE, "b")
    assert space.read_bytes(BASE, 4) == bytes(4)
