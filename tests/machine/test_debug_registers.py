"""The 4-slot debug register file."""

import pytest

from repro.errors import DebugRegisterError
from repro.machine.debug_registers import (
    NUM_USABLE_DEBUG_REGISTERS,
    TOTAL_DEBUG_REGISTERS,
    DebugRegisterFile,
    HardwareWatchpoint,
    WATCH_READ,
    WATCH_READWRITE,
    WATCH_WRITE,
)


def wp(address=0x1000, length=8, kind=WATCH_READWRITE, cookie=1):
    return HardwareWatchpoint(address=address, length=length, kind=kind, cookie=cookie)


def test_hardware_constants_match_x86():
    assert TOTAL_DEBUG_REGISTERS == 6
    assert NUM_USABLE_DEBUG_REGISTERS == 4


def test_arm_returns_slot_indexes_in_order():
    drf = DebugRegisterFile()
    assert [drf.arm(wp(cookie=i)) for i in range(4)] == [0, 1, 2, 3]


def test_fifth_arm_fails():
    drf = DebugRegisterFile()
    for i in range(4):
        drf.arm(wp(cookie=i))
    with pytest.raises(DebugRegisterError):
        drf.arm(wp(cookie=99))


def test_disarm_frees_slot():
    drf = DebugRegisterFile()
    slot = drf.arm(wp())
    drf.disarm(slot)
    assert drf.free_slots() == 4


def test_disarm_empty_slot_fails():
    with pytest.raises(DebugRegisterError):
        DebugRegisterFile().disarm(0)


def test_disarm_out_of_range_fails():
    with pytest.raises(DebugRegisterError):
        DebugRegisterFile().disarm(4)


def test_disarm_cookie():
    drf = DebugRegisterFile()
    drf.arm(wp(cookie=7))
    assert drf.disarm_cookie(7)
    assert not drf.disarm_cookie(7)


def test_invalid_length_rejected():
    with pytest.raises(DebugRegisterError):
        HardwareWatchpoint(address=0x1000, length=3)


def test_invalid_kind_rejected():
    with pytest.raises(DebugRegisterError):
        HardwareWatchpoint(address=0x1000, kind="x")


def test_negative_address_rejected():
    with pytest.raises(DebugRegisterError):
        HardwareWatchpoint(address=-1)


def test_triggers_on_overlap():
    watch = wp(address=0x1000, length=8)
    assert watch.triggers_on(0x1000, 8, WATCH_READ)
    assert watch.triggers_on(0x0FFC, 8, WATCH_WRITE)  # straddles the start
    assert watch.triggers_on(0x1007, 1, WATCH_READ)  # last byte


def test_does_not_trigger_outside():
    watch = wp(address=0x1000, length=8)
    assert not watch.triggers_on(0x0FF8, 8, WATCH_READ)
    assert not watch.triggers_on(0x1008, 8, WATCH_READ)


def test_read_only_watch_ignores_writes():
    watch = wp(kind=WATCH_READ)
    assert watch.triggers_on(0x1000, 8, WATCH_READ)
    assert not watch.triggers_on(0x1000, 8, WATCH_WRITE)


def test_write_only_watch_ignores_reads():
    watch = wp(kind=WATCH_WRITE)
    assert not watch.triggers_on(0x1000, 8, WATCH_READ)
    assert watch.triggers_on(0x1000, 8, WATCH_WRITE)


def test_check_access_returns_hit():
    drf = DebugRegisterFile()
    drf.arm(wp(address=0x2000, cookie=5))
    hit = drf.check_access(0x2000, 8, WATCH_READ)
    assert hit is not None and hit.cookie == 5


def test_check_access_misses():
    drf = DebugRegisterFile()
    drf.arm(wp(address=0x2000))
    assert drf.check_access(0x3000, 8, WATCH_READ) is None


def test_armed_lists_only_live():
    drf = DebugRegisterFile()
    drf.arm(wp(cookie=1))
    slot = drf.arm(wp(address=0x2000, cookie=2))
    drf.disarm(slot)
    assert [w.cookie for w in drf.armed()] == [1]
