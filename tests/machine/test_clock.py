"""VirtualClock behaviour."""

import pytest

from repro.machine.clock import NANOS_PER_SECOND, VirtualClock


def test_starts_at_zero():
    assert VirtualClock().now_ns == 0


def test_custom_start():
    assert VirtualClock(start_ns=50).now_ns == 50


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(start_ns=-1)


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(10)
    clock.advance(15)
    assert clock.now_ns == 25


def test_advance_returns_new_time():
    clock = VirtualClock()
    assert clock.advance(7) == 7


def test_advance_zero_is_noop():
    clock = VirtualClock()
    clock.advance(0)
    assert clock.now_ns == 0


def test_negative_advance_rejected():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_now_seconds():
    clock = VirtualClock()
    clock.advance(3 * NANOS_PER_SECOND)
    assert clock.now_seconds == pytest.approx(3.0)


def test_advance_seconds():
    clock = VirtualClock()
    clock.advance_seconds(1.5)
    assert clock.now_ns == 1_500_000_000


def test_advance_seconds_negative_rejected():
    with pytest.raises(ValueError):
        VirtualClock().advance_seconds(-0.1)


def test_reset():
    clock = VirtualClock()
    clock.advance(100)
    clock.reset()
    assert clock.now_ns == 0


def test_repr_mentions_time():
    clock = VirtualClock(start_ns=5)
    assert "5" in repr(clock)
