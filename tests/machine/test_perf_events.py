"""The perf_event_open watchpoint protocol."""

import pytest

from repro.errors import DebugRegisterError, PerfEventError
from repro.machine.perf_events import (
    F_GETFL,
    F_SETFL,
    F_SETOWN,
    F_SETSIG,
    HW_BREAKPOINT_RW,
    PERF_EVENT_IOC_DISABLE,
    PERF_EVENT_IOC_ENABLE,
    PerfEventAttr,
    PerfEventManager,
)
from repro.machine.signals import SIGTRAP
from repro.machine.syscall_cost import CostLedger, EVENT_SYSCALL
from repro.machine.threads import ThreadRegistry


@pytest.fixture
def setup():
    threads = ThreadRegistry()
    ledger = CostLedger()
    return threads, ledger, PerfEventManager(threads, ledger)


def open_event(perf, tid, addr=0x1000):
    return perf.perf_event_open(PerfEventAttr(bp_addr=addr), tid)


def test_open_returns_distinct_fds(setup):
    threads, _, perf = setup
    fd1 = open_event(perf, threads.main_thread.tid)
    fd2 = open_event(perf, threads.main_thread.tid)
    assert fd1 != fd2


def test_open_validates_tid(setup):
    _, _, perf = setup
    with pytest.raises(Exception):
        open_event(perf, 999)


def test_open_rejects_non_breakpoint_type(setup):
    threads, _, perf = setup
    with pytest.raises(PerfEventError):
        perf.perf_event_open(PerfEventAttr(type=0), threads.main_thread.tid)


def test_enable_arms_debug_register(setup):
    threads, _, perf = setup
    tid = threads.main_thread.tid
    fd = open_event(perf, tid, addr=0x2000)
    perf.ioctl(fd, PERF_EVENT_IOC_ENABLE)
    hit = threads.main_thread.debug_registers.check_access(0x2000, 8, "r")
    assert hit is not None and hit.cookie == fd


def test_enable_is_idempotent(setup):
    threads, _, perf = setup
    fd = open_event(perf, threads.main_thread.tid)
    perf.ioctl(fd, PERF_EVENT_IOC_ENABLE)
    perf.ioctl(fd, PERF_EVENT_IOC_ENABLE)
    assert threads.main_thread.debug_registers.free_slots() == 3


def test_disable_disarms(setup):
    threads, _, perf = setup
    fd = open_event(perf, threads.main_thread.tid)
    perf.ioctl(fd, PERF_EVENT_IOC_ENABLE)
    perf.ioctl(fd, PERF_EVENT_IOC_DISABLE)
    assert threads.main_thread.debug_registers.free_slots() == 4


def test_fifth_enable_on_same_thread_fails(setup):
    threads, _, perf = setup
    tid = threads.main_thread.tid
    for i in range(4):
        perf.ioctl(open_event(perf, tid, addr=0x1000 + 16 * i), PERF_EVENT_IOC_ENABLE)
    fd = open_event(perf, tid, addr=0x9000)
    with pytest.raises(DebugRegisterError):
        perf.ioctl(fd, PERF_EVENT_IOC_ENABLE)


def test_four_watchpoints_per_thread_not_global(setup):
    threads, _, perf = setup
    other = threads.create()
    for tid in (threads.main_thread.tid, other.tid):
        for i in range(4):
            fd = open_event(perf, tid, addr=0x1000 + 16 * i)
            perf.ioctl(fd, PERF_EVENT_IOC_ENABLE)
    assert perf.enabled_event_count() == 8


def test_fcntl_setsig_and_setown(setup):
    threads, _, perf = setup
    tid = threads.main_thread.tid
    fd = open_event(perf, tid)
    perf.fcntl(fd, F_SETSIG, SIGTRAP)
    perf.fcntl(fd, F_SETOWN, tid)
    event = perf.event(fd)
    assert event.signo == SIGTRAP
    assert event.owner_tid == tid


def test_fcntl_setown_validates_tid(setup):
    threads, _, perf = setup
    fd = open_event(perf, threads.main_thread.tid)
    with pytest.raises(Exception):
        perf.fcntl(fd, F_SETOWN, 12345)


def test_fcntl_getfl_and_setfl(setup):
    threads, _, perf = setup
    fd = open_event(perf, threads.main_thread.tid)
    flags = perf.fcntl(fd, F_GETFL)
    perf.fcntl(fd, F_SETFL, flags)
    assert perf.event(fd).async_notify


def test_fcntl_unknown_command_rejected(setup):
    threads, _, perf = setup
    fd = open_event(perf, threads.main_thread.tid)
    with pytest.raises(PerfEventError):
        perf.fcntl(fd, "F_BOGUS")


def test_ioctl_unknown_command_rejected(setup):
    threads, _, perf = setup
    fd = open_event(perf, threads.main_thread.tid)
    with pytest.raises(PerfEventError):
        perf.ioctl(fd, "BOGUS")


def test_close_tears_down_enabled_event(setup):
    threads, _, perf = setup
    fd = open_event(perf, threads.main_thread.tid)
    perf.ioctl(fd, PERF_EVENT_IOC_ENABLE)
    perf.close(fd)
    assert threads.main_thread.debug_registers.free_slots() == 4
    with pytest.raises(PerfEventError):
        perf.event(fd)


def test_double_close_rejected(setup):
    threads, _, perf = setup
    fd = open_event(perf, threads.main_thread.tid)
    perf.close(fd)
    with pytest.raises(PerfEventError):
        perf.close(fd)


def test_operations_on_bad_fd_rejected(setup):
    _, _, perf = setup
    with pytest.raises(PerfEventError):
        perf.ioctl(12345, PERF_EVENT_IOC_ENABLE)


def test_syscalls_are_charged(setup):
    threads, ledger, perf = setup
    tid = threads.main_thread.tid
    fd = open_event(perf, tid)
    perf.fcntl(fd, F_GETFL)
    perf.fcntl(fd, F_SETFL)
    perf.fcntl(fd, F_SETSIG, SIGTRAP)
    perf.fcntl(fd, F_SETOWN, tid)
    perf.ioctl(fd, PERF_EVENT_IOC_ENABLE)
    perf.ioctl(fd, PERF_EVENT_IOC_DISABLE)
    perf.close(fd)
    # open + 4 fcntl + 2 ioctl + close = the paper's 8 syscalls.
    assert ledger.count(EVENT_SYSCALL) == 8
