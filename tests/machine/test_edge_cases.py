"""Edge cases across the machine substrate."""

import pytest

from repro.errors import SegmentationFault
from repro.machine.address_space import AddressSpace, PAGE_SIZE
from repro.machine.machine import Machine
from repro.machine.signals import SIGTRAP, SigInfo, SignalTable
from repro.machine.threads import ThreadRegistry

BASE = 0x50_0000
HEAP = 0x7F00_0000_0000


def test_zero_length_write_is_noop_even_unmapped():
    space = AddressSpace()
    space.write_bytes(0xDEAD, b"")  # memcpy(p, q, 0) never faults


def test_zero_length_read_is_noop_even_unmapped():
    assert AddressSpace().read_bytes(0xDEAD, 0) == b""


def test_zero_length_cpu_store_does_not_trap():
    machine = Machine(seed=1)
    machine.map_heap_arena()
    seen = []
    machine.signals.sigaction(SIGTRAP, lambda *a: seen.append(1))
    from repro.machine.perf_events import (
        F_SETOWN,
        F_SETSIG,
        PERF_EVENT_IOC_ENABLE,
        PerfEventAttr,
    )

    tid = machine.main_thread.tid
    fd = machine.perf.perf_event_open(PerfEventAttr(bp_addr=HEAP + 64), tid)
    machine.perf.fcntl(fd, F_SETSIG, SIGTRAP)
    machine.perf.fcntl(fd, F_SETOWN, tid)
    machine.perf.ioctl(fd, PERF_EVENT_IOC_ENABLE)
    machine.cpu.store(machine.main_thread, HEAP + 64, b"")
    assert not seen


def test_handler_exception_propagates():
    table = SignalTable()
    registry = ThreadRegistry()

    def bad_handler(signo, info, thread):
        raise RuntimeError("handler bug")

    table.sigaction(SIGTRAP, bad_handler)
    with pytest.raises(RuntimeError):
        table.deliver(SIGTRAP, SigInfo(signo=SIGTRAP), registry.main_thread)


def test_access_straddling_region_boundary_faults_cleanly():
    space = AddressSpace()
    space.map_region(BASE, PAGE_SIZE, "only")
    with pytest.raises(SegmentationFault):
        space.read_bytes(BASE + PAGE_SIZE - 4, 8)
    # The mapped prefix is untouched and still readable.
    assert space.read_bytes(BASE + PAGE_SIZE - 4, 4) == bytes(4)


def test_word_access_at_region_edge():
    space = AddressSpace()
    space.map_region(BASE, PAGE_SIZE, "r")
    space.write_word(BASE + PAGE_SIZE - 8, 0x1234)
    assert space.read_word(BASE + PAGE_SIZE - 8) == 0x1234


def test_clock_survives_huge_advances():
    machine = Machine(seed=0)
    machine.clock.advance(10**15)  # ~11.5 virtual days
    machine.ledger.record("x", nanos_each=10)
    assert machine.clock.now_ns == 10**15 + 10


def test_many_threads_each_get_four_registers():
    machine = Machine(seed=0)
    threads = [machine.threads.create() for _ in range(64)]
    for thread in threads:
        assert thread.debug_registers.free_slots() == 4
