"""Property-based DR6/DR7 roundtrips (hypothesis).

``test_dr_encoding.py`` pins the manual's bit patterns example by
example; these properties sweep the whole space — every combination of
rw-kind, watch length, and slot enables must survive an
encode -> decode roundtrip.
"""

from hypothesis import given, settings, strategies as st

from repro.machine.dr_encoding import (
    NUM_SLOTS,
    decode_dr6,
    decode_dr7,
    encode_dr6,
    encode_dr7,
)

# One slot descriptor: disabled, or any (kind, length) combination the
# hardware can express.
slot = st.one_of(
    st.none(),
    st.tuples(
        st.sampled_from(["r", "w", "rw"]),
        st.sampled_from([1, 2, 4, 8]),
    ),
)
slots = st.lists(slot, min_size=0, max_size=NUM_SLOTS)


def normalized(descriptor):
    """Hardware has no pure-read data watch: 'r' installs as 'rw'."""
    if descriptor is None:
        return None
    kind, length = descriptor
    return ("rw" if kind in ("r", "rw") else "w", length)


@given(slots)
@settings(max_examples=300, deadline=None)
def test_dr7_roundtrips_every_combination(descriptors):
    decoded = decode_dr7(encode_dr7(descriptors))
    expected = {
        index: normalized(descriptor)
        for index, descriptor in enumerate(descriptors)
        if descriptor is not None
    }
    assert decoded == expected


@given(slots)
@settings(max_examples=300, deadline=None)
def test_dr7_enable_bits_match_occupied_slots(descriptors):
    value = encode_dr7(descriptors)
    for index in range(NUM_SLOTS):
        enabled = bool(value & (1 << (index * 2 + 1)))
        occupied = index < len(descriptors) and descriptors[index] is not None
        assert enabled == occupied


@given(st.sets(st.integers(min_value=0, max_value=NUM_SLOTS - 1)))
@settings(max_examples=100, deadline=None)
def test_dr6_roundtrips_every_hit_combination(hits):
    assert decode_dr6(encode_dr6(sorted(hits))) == sorted(hits)


@given(slots)
@settings(max_examples=100, deadline=None)
def test_encoding_is_deterministic(descriptors):
    assert encode_dr7(descriptors) == encode_dr7(list(descriptors))
