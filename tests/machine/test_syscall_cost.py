"""CostLedger accounting."""

import pytest

from repro.machine.clock import VirtualClock
from repro.machine.syscall_cost import CostLedger


def test_counts_events():
    ledger = CostLedger()
    ledger.record("x")
    ledger.record("x", count=2)
    assert ledger.count("x") == 3


def test_unknown_event_counts_zero():
    assert CostLedger().count("nothing") == 0


def test_nanos_accumulate():
    ledger = CostLedger()
    ledger.record("x", count=3, nanos_each=10)
    assert ledger.nanos("x") == 30


def test_total_nanos_spans_events():
    ledger = CostLedger()
    ledger.record("a", nanos_each=5)
    ledger.record("b", count=2, nanos_each=7)
    assert ledger.total_nanos() == 19


def test_clock_charged():
    clock = VirtualClock()
    ledger = CostLedger(clock)
    ledger.record("x", count=4, nanos_each=25)
    assert clock.now_ns == 100


def test_zero_cost_event_does_not_touch_clock():
    clock = VirtualClock()
    CostLedger(clock).record("x")
    assert clock.now_ns == 0


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        CostLedger().record("x", count=-1)


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        CostLedger().record("x", nanos_each=-5)


def test_counts_snapshot_is_copy():
    ledger = CostLedger()
    ledger.record("x")
    snapshot = ledger.counts()
    snapshot["x"] = 99
    assert ledger.count("x") == 1


def test_merge_folds_counts_without_clock():
    clock = VirtualClock()
    a = CostLedger(clock)
    b = CostLedger()
    b.record("y", count=2, nanos_each=10)
    a.merge(b)
    assert a.count("y") == 2
    assert a.nanos("y") == 20
    assert clock.now_ns == 0  # merge never advances time


def test_reset_clears_everything():
    ledger = CostLedger()
    ledger.record("x", nanos_each=10)
    ledger.reset()
    assert ledger.count("x") == 0
    assert ledger.total_nanos() == 0
