"""Bit-level DR6/DR7 encoding."""

import pytest

from repro.errors import DebugRegisterError
from repro.machine.debug_registers import DebugRegisterFile, HardwareWatchpoint
from repro.machine.dr_encoding import (
    RW_READWRITE,
    RW_WRITE,
    decode_dr6,
    decode_dr7,
    encode_dr6,
    encode_dr7,
    encode_len,
)


def test_len_encoding_matches_the_manual():
    assert encode_len(1) == 0b00
    assert encode_len(2) == 0b01
    assert encode_len(4) == 0b11
    assert encode_len(8) == 0b10


def test_len_encoding_rejects_odd_lengths():
    with pytest.raises(DebugRegisterError):
        encode_len(3)


def test_dr7_single_slot():
    value = encode_dr7([("rw", 8)])
    assert value & 0b10  # G0 set
    assert (value >> 16) & 0b11 == RW_READWRITE
    assert (value >> 18) & 0b11 == 0b10  # LEN=8


def test_dr7_write_only_slot():
    value = encode_dr7([None, ("w", 4)])
    assert value & 0b1000  # G1
    assert (value >> 20) & 0b11 == RW_WRITE
    assert (value >> 22) & 0b11 == 0b11  # LEN=4


def test_dr7_roundtrip():
    slots = [("rw", 8), None, ("w", 2), ("rw", 1)]
    decoded = decode_dr7(encode_dr7(slots))
    assert decoded == {0: ("rw", 8), 2: ("w", 2), 3: ("rw", 1)}


def test_dr7_empty():
    assert encode_dr7([None, None, None, None]) == 0
    assert decode_dr7(0) == {}


def test_dr7_rejects_too_many_slots():
    with pytest.raises(DebugRegisterError):
        encode_dr7([("rw", 8)] * 5)


def test_dr7_rejects_execute_condition():
    # RW=00 is an execute breakpoint; CSOD only uses data watches.
    with pytest.raises(DebugRegisterError):
        decode_dr7(0b10)  # G0 enabled, RW field 00


def test_dr6_roundtrip():
    assert decode_dr6(encode_dr6([0, 3])) == [0, 3]
    assert decode_dr6(0) == []


def test_dr6_rejects_bad_slot():
    with pytest.raises(DebugRegisterError):
        encode_dr6([4])


def test_register_file_exposes_dr7():
    drf = DebugRegisterFile()
    drf.arm(HardwareWatchpoint(address=0x1000, length=8, kind="rw", cookie=1))
    decoded = decode_dr7(drf.dr7)
    assert decoded == {0: ("rw", 8)}


def test_register_file_dr6_is_sticky():
    drf = DebugRegisterFile()
    drf.arm(HardwareWatchpoint(address=0x1000, length=8, cookie=1))
    drf.check_access(0x1000, 8, "r")
    drf.check_access(0x9000, 8, "r")  # miss: must not clear B0
    assert decode_dr6(drf.dr6) == [0]
    drf.clear_dr6()
    assert drf.dr6 == 0


def test_register_file_dr_addresses():
    drf = DebugRegisterFile()
    drf.arm(HardwareWatchpoint(address=0x2000, length=8, cookie=1))
    assert drf.dr_address(0) == 0x2000
    assert drf.dr_address(1) == 0
    with pytest.raises(DebugRegisterError):
        drf.dr_address(4)
