"""Cooperative scheduler determinism and interleaving."""

import pytest

from repro.errors import ThreadError
from repro.machine.scheduler import RoundRobinScheduler
from repro.machine.threads import ThreadRegistry


def make(seed=0, jitter=True):
    registry = ThreadRegistry()
    return registry, RoundRobinScheduler(registry, seed=seed, jitter=jitter)


def body(log, name, steps):
    for i in range(steps):
        log.append((name, i))
        yield


def test_single_thread_runs_to_completion():
    _, sched = make()
    log = []
    sched.spawn(body(log, "a", 3))
    sched.run()
    assert log == [("a", 0), ("a", 1), ("a", 2)]


def test_all_threads_complete():
    _, sched = make()
    log = []
    sched.spawn(body(log, "a", 5))
    sched.spawn(body(log, "b", 5))
    sched.run()
    assert len(log) == 10
    assert {name for name, _ in log} == {"a", "b"}


def test_same_seed_same_interleaving():
    logs = []
    for _ in range(2):
        _, sched = make(seed=7)
        log = []
        sched.spawn(body(log, "a", 10))
        sched.spawn(body(log, "b", 10))
        sched.run()
        logs.append(log)
    assert logs[0] == logs[1]


def test_different_seeds_differ():
    logs = []
    for seed in (1, 2):
        _, sched = make(seed=seed)
        log = []
        sched.spawn(body(log, "a", 20))
        sched.spawn(body(log, "b", 20))
        sched.run()
        logs.append(log)
    assert logs[0] != logs[1]


def test_no_jitter_is_round_robin_on_first():
    _, sched = make(jitter=False)
    log = []
    sched.spawn(body(log, "a", 2))
    sched.spawn(body(log, "b", 2))
    sched.run()
    # Without jitter the scheduler always drains the first runnable.
    assert log == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]


def test_spawned_threads_registered_and_exited():
    registry, sched = make()
    log = []
    thread = sched.spawn(body(log, "a", 1))
    assert thread.alive
    sched.run()
    assert not thread.alive


def test_adopt_main():
    registry, sched = make()
    log = []
    thread = sched.adopt_main(body(log, "main", 2))
    assert thread is registry.main_thread
    sched.run()
    assert thread.alive  # main never pthread_exits
    assert len(log) == 2


def test_adopt_main_twice_rejected():
    _, sched = make()
    sched.adopt_main(body([], "m", 1))
    with pytest.raises(ThreadError):
        sched.adopt_main(body([], "m", 1))


def test_max_steps_guard():
    _, sched = make()

    def forever():
        while True:
            yield

    sched.spawn(forever())
    with pytest.raises(ThreadError):
        sched.run(max_steps=100)


def test_step_count():
    _, sched = make()
    sched.spawn(body([], "a", 3))
    sched.run()
    assert sched.steps == 4  # 3 yields + StopIteration
