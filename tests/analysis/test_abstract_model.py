"""The abstract detection model vs the full simulation."""

import pytest

from repro.analysis import AbstractDetector, estimate_detection_rate
from repro.core import CSODConfig, CSODRuntime
from repro.core.config import POLICY_NAIVE, POLICY_RANDOM
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for


def full_simulation_rate(name, policy, runs=60):
    app = app_for(name)
    hits = 0
    for seed in range(runs):
        process = SimProcess(seed=seed)
        csod = CSODRuntime(
            process.machine,
            process.heap,
            CSODConfig(replacement_policy=policy),
            seed=seed,
        )
        app.run(process)
        csod.shutdown()
        hits += csod.detected_by_watchpoint
    return hits / runs


def test_trivial_app_always_detected():
    spec = app_for("gzip").spec
    assert estimate_detection_rate(spec, runs=20) == 1.0


def test_naive_policy_split_matches():
    for name, expected in (("libdwarf", 1.0), ("memcached", 0.0)):
        spec = app_for(name).spec
        rate = estimate_detection_rate(
            spec, CSODConfig(replacement_policy=POLICY_NAIVE), runs=20
        )
        assert rate == expected, name


@pytest.mark.parametrize("name", ["memcached", "zziplib", "heartbleed"])
def test_agrees_with_full_simulation(name):
    spec = app_for(name).spec
    config = CSODConfig(replacement_policy=POLICY_RANDOM)
    abstract = estimate_detection_rate(spec, config, runs=120)
    full = full_simulation_rate(name, POLICY_RANDOM, runs=60)
    assert abs(abstract - full) < 0.15, (name, abstract, full)


def test_single_run_is_deterministic():
    spec = app_for("memcached").spec
    a = AbstractDetector(spec, seed=7).run()
    b = AbstractDetector(spec, seed=7).run()
    assert a == b


def test_different_seeds_vary():
    spec = app_for("memcached").spec
    outcomes = {AbstractDetector(spec, seed=s).run() for s in range(40)}
    assert outcomes == {True, False}


def test_watched_times_counted():
    spec = app_for("libdwarf").spec
    detector = AbstractDetector(spec, seed=1)
    detector.run()
    assert detector.watched_times >= 4


def test_knob_direction_matches_full_model():
    """The ablation finding: the 0.5 default beats both extremes on a
    late-victim workload (see benchmarks/test_ablation_sampling_knobs)."""
    spec = app_for("memcached").spec
    rates = {
        initial: estimate_detection_rate(
            spec,
            CSODConfig(
                replacement_policy=POLICY_RANDOM, initial_probability=initial
            ),
            runs=150,
        )
        for initial in (0.1, 0.5, 0.9)
    }
    assert rates[0.5] >= rates[0.1]
    assert rates[0.5] >= rates[0.9]
