"""The abstract model's sampling rules must track the real unit exactly.

The abstract detector re-implements §III-B2 for speed; this property
test drives both implementations with identical operation sequences and
requires bit-identical probabilities — any drift between them would
silently invalidate every abstract-model result.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.abstract_model import AbstractDetector
from repro.callstack.contexts import ContextInterner
from repro.callstack.frames import CallSite, CallStack
from repro.core.config import CSODConfig
from repro.core.rng import PerThreadRNG
from repro.core.sampling import SamplingManagementUnit
from repro.machine.clock import VirtualClock
from repro.workloads.base import BuggyAppSpec


def _real_unit(config):
    clock = VirtualClock()
    unit = SamplingManagementUnit(
        config, clock, PerThreadRNG(0), ContextInterner()
    )
    stacks = []
    for i in range(5):
        stack = CallStack()
        stack.push(CallSite("EQ", "m.c", 1, "main"))
        stack.push(CallSite("EQ", "a.c", 10 + i, f"ctx{i}"))
        stacks.append(stack)
    return unit, clock, stacks


def _abstract_unit(config):
    spec = BuggyAppSpec(
        name="eq",
        bug_kind="over-write",
        vuln_module="EQ",
        reference="eq",
        total_contexts=1,
        total_allocations=1,
        before_contexts=1,
        before_allocations=1,
        victim_alloc_index=1,
    )
    return AbstractDetector(spec, config, seed=0)


# (context index, watched?, clock advance ns); revive_chance is pinned
# to the deterministic extremes so no RNG enters the comparison.
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.booleans(),
        st.integers(min_value=0, max_value=40_000_000_000),
    ),
    max_size=120,
)


@given(operations, st.sampled_from([0.0, 1.0]))
@settings(max_examples=80, deadline=None)
def test_probability_evolution_identical(ops, revive_chance):
    config = CSODConfig(
        replacement_policy="random", revive_chance=revive_chance
    )
    real, clock, stacks = _real_unit(config)
    abstract = _abstract_unit(config)

    for index, watched, advance in ops:
        clock.advance(advance)
        abstract._now_ns += advance
        real_record = real.on_allocation(stacks[index])
        abstract_ctx = abstract._on_allocation(index)
        if watched:
            real.on_watched(real_record)
            abstract._on_watched(abstract_ctx)
        assert abstract_ctx.probability == real_record.probability, (
            index,
            watched,
        )
        assert abstract._effective(abstract_ctx) == real.effective_probability(
            real_record
        )
        assert abstract_ctx.allocation_count == real_record.allocation_count


@given(operations)
@settings(max_examples=40, deadline=None)
def test_throttle_state_identical(ops):
    config = CSODConfig(
        replacement_policy="random",
        revive_chance=0.0,
        throttle_alloc_threshold=10,  # engage it quickly
    )
    real, clock, stacks = _real_unit(config)
    abstract = _abstract_unit(config)
    for index, _watched, advance in ops:
        clock.advance(advance)
        abstract._now_ns += advance
        record = real.on_allocation(stacks[index])
        ctx = abstract._on_allocation(index)
        assert ctx.throttled_until_ns == record.throttled_until_ns
        assert ctx.window_alloc_count == record.window_alloc_count
