"""The persistent bug database: status machine, atomicity, determinism."""

import json
import os

import pytest

from repro.triage.bugdb import (
    STATUS_NEW,
    STATUS_REGRESSED,
    STATUS_REPRODUCED,
    BugDatabase,
)
from repro.triage.clustering import cluster_reports

from tests.triage.conftest import report


def clusters(**kwargs):
    return cluster_reports([report(**kwargs)])


def other_clusters():
    return cluster_reports(
        [
            report(
                signature="over-read|alloc:R|access:B",
                kind="over-read",
                allocation_context=("R/a.c:1",),
            )
        ]
    )


# ----------------------------------------------------------------------
# Status machine
# ----------------------------------------------------------------------
def test_first_sighting_is_new():
    db = BugDatabase()
    update = db.update(clusters(), campaign_id="c1")
    assert update.new and not update.reproduced and not update.regressed
    entry = db.entries()[0]
    assert entry.status == STATUS_NEW
    assert entry.first_seen_campaign == "c1"
    assert entry.first_seen_seq == 1


def test_back_to_back_sighting_is_reproduced():
    db = BugDatabase()
    db.update(clusters(), campaign_id="c1")
    update = db.update(clusters(), campaign_id="c2")
    assert update.reproduced and not update.new
    entry = db.entries()[0]
    assert entry.status == STATUS_REPRODUCED
    assert entry.campaigns_seen == 2
    assert entry.last_seen_campaign == "c2"


def test_sighting_after_gap_is_regressed():
    db = BugDatabase()
    db.update(clusters(), campaign_id="c1")
    db.update(other_clusters(), campaign_id="c2")  # original bug absent
    update = db.update(clusters(), campaign_id="c3")
    assert update.regressed
    assert db.entries()[0].status == STATUS_REGRESSED


def test_absent_bugs_keep_their_state():
    db = BugDatabase()
    db.update(clusters(), campaign_id="c1")
    db.update(other_clusters(), campaign_id="c2")
    stale = [e for e in db.entries() if e.status == STATUS_NEW]
    assert len(stale) == 2  # both still "new"; nothing was deleted
    assert len(db) == 2


def test_counts_accumulate_across_campaigns():
    db = BugDatabase()
    db.update(clusters(count=5, executions=3), total_executions=10)
    db.update(clusters(count=2, executions=2), total_executions=10)
    entry = db.entries()[0]
    assert entry.occurrences == 7
    assert entry.executions == 5
    assert db.executions_total == 20


def test_sources_accumulate_and_survive_reload(tmp_path):
    path = str(tmp_path / "bugs.json")
    db = BugDatabase(path)
    db.update(clusters(sources={"watchpoint": 3}))
    db.update(clusters(sources={"free-canary": 2}))
    reloaded = BugDatabase(path)
    assert reloaded.entries()[0].sources == {
        "watchpoint": 3,
        "free-canary": 2,
    }


def test_campaigns_since_seen():
    db = BugDatabase()
    db.update(clusters(), campaign_id="c1")
    db.update(other_clusters(), campaign_id="c2")
    since = db.campaigns_since_seen()
    values = sorted(since.values())
    assert values == [0, 1]


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def test_round_trip_through_file(tmp_path):
    path = str(tmp_path / "bugs.json")
    db = BugDatabase(path)
    db.update(clusters(), campaign_id="c1")
    db.update(clusters(), campaign_id="c2")
    reloaded = BugDatabase(path)
    assert len(reloaded) == 1
    assert reloaded.campaigns == 2
    assert reloaded.entries()[0].status == STATUS_REPRODUCED
    # The reloaded clock keeps ticking correctly.
    update = reloaded.update(clusters(), campaign_id="c3")
    assert update.seq == 3
    assert update.reproduced


def test_identical_histories_produce_identical_files(tmp_path):
    paths = [str(tmp_path / f"bugs{i}.json") for i in (1, 2)]
    for path in paths:
        db = BugDatabase(path)
        db.update(clusters(), campaign_id="c1", total_executions=10)
        db.update(clusters(), campaign_id="c2", total_executions=10)
    with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
        assert a.read() == b.read()


def test_flush_is_atomic_no_tmp_left_behind(tmp_path):
    path = str(tmp_path / "bugs.json")
    db = BugDatabase(path)
    db.update(clusters())
    assert os.path.exists(path)
    assert not os.path.exists(path + ".tmp")
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["version"] == 1


def test_version_mismatch_rejected(tmp_path):
    path = str(tmp_path / "bugs.json")
    with open(path, "w") as handle:
        json.dump({"version": 99, "bugs": []}, handle)
    with pytest.raises(ValueError, match="version"):
        BugDatabase(path)


def test_attach_repro_persists(tmp_path):
    path = str(tmp_path / "bugs.json")
    db = BugDatabase(path)
    db.update(clusters())
    cluster_id = db.entries()[0].cluster_id
    db.attach_repro(cluster_id, {"app": "libtiff", "seed": 2})
    reloaded = BugDatabase(path)
    assert reloaded.get(cluster_id).repro == {"app": "libtiff", "seed": 2}
    with pytest.raises(KeyError):
        db.attach_repro("no-such-id", {})


def test_db_only_clusters_are_rankable():
    from repro.triage.ranking import rank_clusters

    db = BugDatabase()
    db.update(clusters(), total_executions=100)
    rebuilt = db.clusters()
    assert len(rebuilt) == 1
    assert rebuilt[0].cluster_id == db.entries()[0].cluster_id
    ranked = rank_clusters(rebuilt, total_executions=db.executions_total)
    assert ranked[0].score > 0  # sources survived, quality is nonzero


def test_in_memory_database_never_writes(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    db = BugDatabase()
    db.update(clusters())
    assert os.listdir(tmp_path) == []


# ----------------------------------------------------------------------
# Detector annotations
# ----------------------------------------------------------------------
def test_record_detectors_ranks_the_cheapest_production_arm(tmp_path):
    path = tmp_path / "bugs.json"
    db = BugDatabase(path=str(path))
    db.update(clusters())
    cluster_id = db.entries()[0].cluster_id
    db.record_detectors(cluster_id, ["ASAN", "gwp", "csod"])
    entry = db.entries()[0]
    assert entry.detected_by == ("asan", "csod", "gwp-asan")
    assert entry.cheapest_arm == "gwp-asan"  # lowest modeled overhead
    reloaded = BugDatabase(path=str(path))
    assert reloaded.entries()[0].detected_by == ("asan", "csod", "gwp-asan")
    assert reloaded.entries()[0].cheapest_arm == "gwp-asan"


def test_record_detectors_merges_and_skips_noop_flushes(tmp_path):
    path = tmp_path / "bugs.json"
    db = BugDatabase(path=str(path))
    db.update(clusters())
    cluster_id = db.entries()[0].cluster_id
    db.record_detectors(cluster_id, ["csod"])
    before = path.read_bytes()
    db.record_detectors(cluster_id, ["csod"])  # no new information
    assert path.read_bytes() == before
    db.record_detectors(cluster_id, ["doubletake"])
    entry = db.entries()[0]
    assert entry.detected_by == ("csod", "doubletake")
    assert entry.cheapest_arm == "doubletake"  # 4.1% beats csod's 6.7%


def test_record_detectors_unknown_cluster_raises():
    db = BugDatabase()
    with pytest.raises(KeyError):
        db.record_detectors("bug-ffffffffffff", ["csod"])


def test_record_detectors_with_only_nonviable_arms_recommends_nothing():
    db = BugDatabase()
    db.update(clusters())
    cluster_id = db.entries()[0].cluster_id
    db.record_detectors(cluster_id, ["asan"])
    entry = db.entries()[0]
    assert entry.detected_by == ("asan",)
    assert entry.cheapest_arm == ""  # asan is not production-viable
