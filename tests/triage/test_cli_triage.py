"""The ``repro triage`` verb: validation, pipeline, exports."""

import json
import os

import pytest

from repro.cli import main


# ----------------------------------------------------------------------
# Flag validation: exit code 2, message names the flag
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "argv, flag",
    [
        (["triage", "--app", "libtiff", "--executions", "0"], "--executions"),
        (["triage", "--app", "libtiff", "--workers", "0"], "--workers"),
        (["triage", "--app", "libtiff", "--top-k", "0"], "--top-k"),
        (
            ["triage", "--app", "libtiff", "--max-edit-distance", "-1"],
            "--max-edit-distance",
        ),
        (
            ["triage", "--app", "libtiff", "--seed-checks", "0"],
            "--seed-checks",
        ),
        (
            ["triage", "--app", "libtiff", "--export", "xml"],
            "--export",
        ),
    ],
)
def test_invalid_values_fail_naming_the_flag(capsys, argv, flag):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert flag in err
    assert "repro triage: error:" in err


def test_unknown_export_format_names_the_value(capsys):
    assert main(["triage", "--app", "libtiff", "--export", "xml"]) == 2
    err = capsys.readouterr().err
    assert "--export" in err and "'xml'" in err
    assert "json" in err and "sarif" in err  # the valid choices


def test_export_out_path_that_is_a_file_rejected(capsys, tmp_path):
    blocker = tmp_path / "occupied"
    blocker.write_text("not a directory\n")
    assert (
        main(
            [
                "triage",
                "--app",
                "libtiff",
                "--export",
                "json",
                "--out",
                str(blocker),
            ]
        )
        == 2
    )
    err = capsys.readouterr().err
    assert "--out" in err and "not a directory" in err
    # Fail-fast: rejected before any campaign ran, nothing was written.
    assert blocker.read_text() == "not a directory\n"


def test_export_without_formats_never_touches_out(capsys, tmp_path, monkeypatch):
    # --out is only consulted when --export asks for files.
    blocker = tmp_path / "occupied"
    blocker.write_text("left alone\n")
    monkeypatch.chdir(tmp_path)
    code = main(
        [
            "triage",
            "--app",
            "gzip",
            "--executions",
            "5",
            "--out",
            str(blocker),
        ]
    )
    assert code in (0, 1)  # campaign ran; no export, no --out error
    assert blocker.read_text() == "left alone\n"


def test_non_writable_db_path_rejected(capsys, tmp_path):
    blocked = tmp_path / "blocked"
    blocked.mkdir()
    target = str(blocked / "bugs.json")
    os.chmod(blocked, 0o500)  # r-x: parent not writable
    try:
        if os.access(str(blocked), os.W_OK):  # running as root: skip
            pytest.skip("permission bits not enforced for this user")
        assert main(["triage", "--app", "libtiff", "--db", target]) == 2
        err = capsys.readouterr().err
        assert "--db" in err and "not writable" in err
    finally:
        os.chmod(blocked, 0o700)


def test_db_path_that_is_a_directory_rejected(capsys, tmp_path):
    assert main(["triage", "--app", "libtiff", "--db", str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "--db" in err and "not writable" in err


def test_missing_aggregate_file_rejected(capsys, tmp_path):
    missing = str(tmp_path / "nope.json")
    assert main(["triage", "--aggregate", missing]) == 2
    err = capsys.readouterr().err
    assert "--aggregate" in err and "not found" in err


def test_nothing_to_triage_rejected(capsys):
    assert main(["triage"]) == 2
    assert "nothing to triage" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Pipeline behaviour
# ----------------------------------------------------------------------
def test_campaign_to_db_to_exports(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    db = str(tmp_path / "bugs.json")
    out = str(tmp_path / "out")
    assert (
        main(
            [
                "triage",
                "--app",
                "libtiff",
                "--executions",
                "6",
                "--db",
                db,
                "--export",
                "json",
                "--export",
                "sarif",
                "--out",
                out,
            ]
        )
        == 0
    )
    captured = capsys.readouterr().out
    assert "clusters" in captured and "new" in captured
    with open(os.path.join(out, "triage.sarif")) as handle:
        sarif = json.load(handle)
    assert sarif["version"] == "2.1.0"
    assert sarif["runs"][0]["results"]
    with open(os.path.join(out, "triage.json")) as handle:
        triage = json.load(handle)
    assert triage["clusters"]
    with open(db) as handle:
        assert json.load(handle)["bugs"]


def test_triage_from_aggregate_file(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    fleet_out = str(tmp_path / "fleet-out")
    main(
        [
            "fleet",
            "--app",
            "libtiff",
            "--executions",
            "6",
            "--workers",
            "1",
            "--out",
            fleet_out,
        ]
    )
    capsys.readouterr()
    aggregate = os.path.join(fleet_out, "aggregate.json")
    assert main(["triage", "--aggregate", aggregate]) == 0
    out = capsys.readouterr().out
    assert "signatures ->" in out
    assert "Triage" in out


def test_db_only_mode_ranks_stored_bugs(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    db = str(tmp_path / "bugs.json")
    assert (
        main(["triage", "--app", "libtiff", "--executions", "6", "--db", db])
        == 0
    )
    capsys.readouterr()
    assert main(["triage", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "database-only" in out
    assert "new" in out


def test_empty_corpus_exits_nonzero(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    aggregate = tmp_path / "aggregate.json"
    aggregate.write_text(json.dumps({"reports": [], "executions_ok": 4}))
    assert main(["triage", "--aggregate", str(aggregate)]) == 1
