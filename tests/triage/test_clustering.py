"""Similarity clustering: coarse keys, edit distance, determinism."""

import pytest

from repro.core.reporting import coarse_signature_of
from repro.triage.clustering import (
    BugCluster,
    cluster_reports,
    coarse_key_of,
    edit_distance,
    matches_cluster,
    reports_from_aggregate,
    stack_distance,
)

from tests.triage.conftest import report


# ----------------------------------------------------------------------
# Edit distance
# ----------------------------------------------------------------------
def test_edit_distance_identity():
    assert edit_distance(("a", "b"), ("a", "b")) == 0


def test_edit_distance_empty_sides():
    assert edit_distance((), ("a", "b", "c")) == 3
    assert edit_distance(("a",), ()) == 1
    assert edit_distance((), ()) == 0


def test_edit_distance_substitution_insertion_deletion():
    assert edit_distance(("a", "b", "c"), ("a", "x", "c")) == 1
    assert edit_distance(("a", "c"), ("a", "b", "c")) == 1
    assert edit_distance(("a", "b", "c"), ("a", "c")) == 1


def test_edit_distance_is_symmetric():
    a, b = ("f1", "f2", "f3"), ("f1", "f9")
    assert edit_distance(a, b) == edit_distance(b, a)


# ----------------------------------------------------------------------
# Coarse keys
# ----------------------------------------------------------------------
def test_coarse_key_uses_top_k_allocation_frames_only():
    a = report(access_context=("LIB/copy.c:40",))
    b = report(
        signature="over-write|alloc:A|access:-",
        access_context=(),
    )
    assert coarse_key_of(a) == coarse_key_of(b)


def test_coarse_signature_of_truncates():
    key = coarse_signature_of("over-read", ("f1", "f2", "f3", "f4"), top_k=2)
    assert key == "over-read|alloc:f1>f2"
    assert coarse_signature_of("over-read", ()) == "over-read|alloc:-"


# ----------------------------------------------------------------------
# Clustering
# ----------------------------------------------------------------------
def test_watchpoint_and_canary_variants_merge():
    """One bug, two exact signatures (the motivating case)."""
    watchpoint = report(
        signature="over-write|alloc:A|access:B",
        access_context=("LIB/copy.c:40",),
        sources={"watchpoint": 5},
    )
    canary = report(
        signature="over-write|alloc:A|access:-",
        access_context=(),
        sources={"free-canary": 2},
        count=2,
        executions=2,
    )
    clusters = cluster_reports([watchpoint, canary])
    assert len(clusters) == 1
    cluster = clusters[0]
    assert cluster.count == 7
    assert cluster.signatures == (
        "over-write|alloc:A|access:-",
        "over-write|alloc:A|access:B",
    )
    assert cluster.sources == {"watchpoint": 5, "free-canary": 2}
    # Merged views prefer the deepest stacks.
    assert cluster.access_context == ("LIB/copy.c:40",)


def test_different_kinds_never_merge():
    a = report(signature="over-write|alloc:A|access:B")
    b = report(signature="over-read|alloc:A|access:B", kind="over-read")
    assert len(cluster_reports([a, b])) == 2


def test_different_allocation_sites_never_merge():
    a = report()
    b = report(
        signature="over-write|alloc:Z|access:B",
        allocation_context=("OTHER/x.c:1", "OTHER/y.c:2", "OTHER/z.c:3"),
    )
    assert len(cluster_reports([a, b])) == 2


def test_far_access_stacks_split_within_one_bucket():
    """Same coarse key but disjoint access stacks = two bugs behind one
    allocation wrapper."""
    a = report(access_context=("LIB/copy.c:40", "LIB/a.c:1"))
    b = report(
        signature="over-write|alloc:A|access:Z",
        access_context=("X/1.c:1", "X/2.c:2", "X/3.c:3", "X/4.c:4", "X/5.c:5"),
    )
    clusters = cluster_reports([a, b], max_edit_distance=3)
    assert len(clusters) == 2


def test_jittered_allocation_tail_merges():
    """Frames beyond the top-K prefix may differ within the threshold."""
    a = report(
        allocation_context=(
            "LIB/wrap.c:10",
            "LIB/parse.c:20",
            "LIB/main.c:30",
            "LIB/deep.c:1",
        )
    )
    b = report(
        signature="over-write|alloc:A2|access:B",
        allocation_context=(
            "LIB/wrap.c:10",
            "LIB/parse.c:20",
            "LIB/main.c:30",
            "LIB/deep.c:2",
        ),
    )
    assert len(cluster_reports([a, b])) == 1


def test_clustering_is_input_order_independent():
    reports = [
        report(signature=f"over-write|alloc:A|access:{i}", count=i + 1)
        for i in range(4)
    ]
    forward = cluster_reports(reports)
    backward = cluster_reports(list(reversed(reports)))
    assert [c.to_dict() for c in forward] == [c.to_dict() for c in backward]


def test_cluster_ids_are_stable_content_addresses():
    reports = [report(), report(signature="over-write|alloc:A|access:-",
                                access_context=())]
    first = cluster_reports(reports)[0].cluster_id
    second = cluster_reports(list(reversed(reports)))[0].cluster_id
    assert first == second
    assert len(first) == 16
    int(first, 16)  # hex content address


def test_clusters_sorted_most_seen_first():
    big = report(signature="over-read|alloc:R|access:B", kind="over-read",
                 allocation_context=("R/a.c:1",), count=100)
    small = report(count=1)
    clusters = cluster_reports([big, small])
    assert clusters[0].count == 100


def test_first_seen_spec_comes_from_earliest_member():
    early = report(signature="over-write|alloc:A|access:-", first_seen=0,
                   seed=7, access_context=())
    late = report(first_seen=5, seed=12)
    cluster = cluster_reports([early, late])[0]
    assert cluster.first_seen_spec() == {"app": "libtiff", "seed": 7,
                                         "index": 0}


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        cluster_reports([], top_k=0)
    with pytest.raises(ValueError):
        cluster_reports([], max_edit_distance=-1)


# ----------------------------------------------------------------------
# matches_cluster (the bisection re-trigger rule)
# ----------------------------------------------------------------------
def test_matches_cluster_accepts_fresh_equivalent_report():
    cluster = cluster_reports([report()])[0]
    assert matches_cluster(
        cluster,
        "over-write",
        ("LIB/wrap.c:10", "LIB/parse.c:20", "LIB/main.c:30"),
        ("LIB/copy.c:40",),
    )


def test_matches_cluster_accepts_canary_probe_without_access_stack():
    cluster = cluster_reports([report()])[0]
    assert matches_cluster(
        cluster,
        "over-write",
        ("LIB/wrap.c:10", "LIB/parse.c:20", "LIB/main.c:30"),
        (),
    )


def test_matches_cluster_rejects_other_bug():
    cluster = cluster_reports([report()])[0]
    assert not matches_cluster(cluster, "over-read",
                               ("LIB/wrap.c:10", "LIB/parse.c:20"))
    assert not matches_cluster(cluster, "over-write", ("X/other.c:1",))


# ----------------------------------------------------------------------
# aggregate.json round-trip
# ----------------------------------------------------------------------
def test_reports_from_aggregate_round_trips_cluster_ids():
    original = [report(), report(signature="over-write|alloc:A|access:-",
                                 access_context=())]
    direct = cluster_reports(original)
    rows = []
    for r in original:
        rows.append(
            {
                "signature": r.signature,
                "kind": r.kind,
                "count": r.count,
                "executions": r.executions,
                "first_seen": r.first_seen,
                "first_seen_spec": r.first_seen_spec(),
                "sources": dict(r.sources),
                "allocation_context": list(r.allocation_context),
                "access_context": list(r.access_context),
            }
        )
    rebuilt = reports_from_aggregate({"reports": rows})
    assert [c.cluster_id for c in cluster_reports(rebuilt)] == [
        c.cluster_id for c in direct
    ]


def test_bug_cluster_to_dict_is_json_ready():
    import json

    cluster = cluster_reports([report()])[0]
    payload = cluster.to_dict()
    json.dumps(payload)
    assert payload["cluster_id"] == cluster.cluster_id
    assert payload["first_seen_spec"]["app"] == "libtiff"
