"""Shared builders for triage tests."""

import pytest

from repro.fleet.aggregate import AggregatedReport


def report(
    signature="over-write|alloc:A|access:B",
    kind=None,
    allocation_context=("LIB/wrap.c:10", "LIB/parse.c:20", "LIB/main.c:30"),
    access_context=("LIB/copy.c:40",),
    count=5,
    executions=3,
    first_seen=2,
    app="libtiff",
    seed=2,
    sources=None,
):
    return AggregatedReport(
        signature=signature,
        kind=kind or signature.split("|")[0],
        count=count,
        executions=executions,
        first_seen=first_seen,
        first_seen_app=app,
        first_seen_seed=seed,
        sources=dict(sources or {"watchpoint": count}),
        allocation_context=tuple(allocation_context),
        access_context=tuple(access_context),
    )


@pytest.fixture
def make_report():
    return report
