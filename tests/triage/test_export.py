"""JSON / SARIF export and the structural SARIF validator."""

import json

from repro.triage.bugdb import BugDatabase
from repro.triage.clustering import cluster_reports
from repro.triage.export import (
    SARIF_VERSION,
    parse_frame,
    render_triage_report,
    to_sarif,
    triage_to_json,
    validate_sarif,
)
from repro.triage.ranking import rank_clusters

from tests.triage.conftest import report


def ranked_pair():
    clusters = cluster_reports(
        [
            report(),
            report(
                signature="over-read|alloc:R|access:B",
                kind="over-read",
                allocation_context=("R/a.c:1",),
                count=2,
                executions=2,
            ),
        ]
    )
    return rank_clusters(clusters, total_executions=100)


def test_parse_frame():
    assert parse_frame("LIBTIFF.SO/alloc.c:500") == ("LIBTIFF.SO/alloc.c", 500)
    assert parse_frame("0x7f001234") == ("0x7f001234", 1)
    assert parse_frame("weird:0") == ("weird", 1)  # clamped to >= 1


def test_triage_to_json_shape():
    ranked = ranked_pair()
    payload = triage_to_json(ranked, total_executions=100)
    json.dumps(payload)  # JSON-serializable
    assert payload["total_executions"] == 100
    assert len(payload["clusters"]) == 2
    row = payload["clusters"][0]
    assert row["cluster_id"] == ranked[0].cluster.cluster_id
    assert row["ranking"]["score"] == ranked[0].score


def test_triage_to_json_includes_db_status():
    ranked = ranked_pair()
    db = BugDatabase()
    db.update([r.cluster for r in ranked], campaign_id="c1")
    payload = triage_to_json(ranked, 100, db=db)
    assert all(row["status"] == "new" for row in payload["clusters"])


def test_sarif_document_validates():
    sarif = to_sarif(ranked_pair(), tool_version="1.2.3")
    assert validate_sarif(sarif) == []
    assert sarif["version"] == SARIF_VERSION
    json.dumps(sarif)


def test_sarif_levels_follow_kind():
    sarif = to_sarif(ranked_pair())
    levels = {
        result["ruleId"]: result["level"]
        for result in sarif["runs"][0]["results"]
    }
    ranked = ranked_pair()
    for item in ranked:
        expected = "error" if item.cluster.kind == "over-write" else "warning"
        assert levels[item.cluster.cluster_id] == expected


def test_sarif_rules_match_results():
    sarif = to_sarif(ranked_pair())
    run = sarif["runs"][0]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert result["partialFingerprints"]["csodClusterId/v1"] == (
            result["ruleId"]
        )


def test_sarif_locations_parse_frames():
    sarif = to_sarif(ranked_pair())
    location = sarif["runs"][0]["results"][0]["locations"][0]
    physical = location["physicalLocation"]
    assert physical["artifactLocation"]["uri"] == "LIB/copy.c"
    assert physical["region"]["startLine"] == 40


def test_sarif_carries_db_status_and_repro():
    ranked = ranked_pair()
    db = BugDatabase()
    db.update([r.cluster for r in ranked], campaign_id="c1")
    target = ranked[0].cluster.cluster_id
    db.attach_repro(target, {"app": "libtiff", "seed": 2})
    sarif = to_sarif(ranked, db=db)
    by_rule = {
        r["ruleId"]: r["properties"] for r in sarif["runs"][0]["results"]
    }
    assert by_rule[target]["status"] == "new"
    assert by_rule[target]["minimalRepro"]["app"] == "libtiff"
    assert validate_sarif(sarif) == []


def test_validator_flags_structural_breakage():
    sarif = to_sarif(ranked_pair())
    assert validate_sarif({"version": "9.9.9"})  # wrong version, no runs
    broken = json.loads(json.dumps(sarif))
    broken["runs"][0]["results"][0]["level"] = "catastrophic"
    assert any("level" in e for e in validate_sarif(broken))
    broken = json.loads(json.dumps(sarif))
    broken["runs"][0]["results"][0]["ruleId"] = "unknown-rule"
    assert any("ruleId" in e for e in validate_sarif(broken))
    broken = json.loads(json.dumps(sarif))
    del broken["runs"][0]["tool"]["driver"]["name"]
    assert any("name" in e for e in validate_sarif(broken))
    broken = json.loads(json.dumps(sarif))
    broken["runs"][0]["results"][0]["message"] = {}
    assert any("message" in e for e in validate_sarif(broken))


def test_render_triage_report_lists_every_cluster():
    ranked = ranked_pair()
    text = render_triage_report(ranked, 100, title="T")
    for item in ranked:
        assert item.cluster.cluster_id[:12] in text
    db = BugDatabase()
    db.update([r.cluster for r in ranked])
    assert "new" in render_triage_report(ranked, 100, db=db)
