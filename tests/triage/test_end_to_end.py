"""The acceptance pipeline: fleet -> cluster -> bug DB across campaigns.

Two buggy apps with distinct bugs, fixed seeds: triage must produce at
least one cluster per bug, never merge across bugs, key the bug
database on byte-identical cluster ids, and track new -> reproduced ->
regressed across consecutive campaigns on the same database file.
"""

import json

import pytest

from repro.fleet.runner import run_fleet
from repro.triage import (
    BugDatabase,
    cluster_reports,
    rank_clusters,
    to_sarif,
    validate_sarif,
)

APPS = ("libtiff", "zziplib")  # over-write and over-read bugs
EXECUTIONS = 30


def run_campaign_reports(seed_base=0):
    reports = []
    executions = 0
    for app in APPS:
        fleet = run_fleet(app, executions=EXECUTIONS, seed_base=seed_base)
        reports.extend(fleet.aggregator.reports())
        executions += fleet.aggregator.executions_ok
    return reports, executions


@pytest.fixture(scope="module")
def campaign():
    return run_campaign_reports()


def test_one_cluster_per_distinct_bug_no_cross_merges(campaign):
    reports, _ = campaign
    clusters = cluster_reports(reports)
    # Each app carries exactly one bug -> one cluster per app.
    apps = [c.first_seen_spec()["app"] for c in clusters]
    assert sorted(apps) == sorted(APPS)
    # Zero cross-bug merges: every member of a cluster originates from
    # the cluster's own app (module names are embedded in the frames).
    for cluster in clusters:
        app = cluster.first_seen_spec()["app"]
        for member in cluster.members:
            assert app.upper() in member.allocation_context[0]


def test_clustering_merges_signature_jitter(campaign):
    reports, _ = campaign
    clusters = cluster_reports(reports)
    # libtiff raises both watchpoint and free-canary signatures for its
    # single bug; they must collapse into one cluster.
    assert len(reports) > len(clusters)
    libtiff = next(
        c for c in clusters if c.first_seen_spec()["app"] == "libtiff"
    )
    assert len(libtiff.signatures) >= 2


def test_cluster_ids_byte_identical_across_reruns(campaign):
    reports, _ = campaign
    first = [c.cluster_id for c in cluster_reports(reports)]
    rerun_reports, _ = run_campaign_reports()
    second = [c.cluster_id for c in cluster_reports(rerun_reports)]
    assert first == second


def test_bug_db_survives_two_consecutive_campaigns(tmp_path, campaign):
    db_path = str(tmp_path / "bugs.json")
    reports, executions = campaign

    db = BugDatabase(db_path)
    first = db.update(
        cluster_reports(reports),
        campaign_id="nightly-1",
        total_executions=executions,
    )
    assert len(first.new) == len(APPS)

    # Second campaign, different seeds, same database file.
    rerun_reports, rerun_executions = run_campaign_reports(seed_base=1000)
    db2 = BugDatabase(db_path)
    second = db2.update(
        cluster_reports(rerun_reports),
        campaign_id="nightly-2",
        total_executions=rerun_executions,
    )
    assert second.seq == 2
    assert sorted(second.reproduced) == sorted(first.new)
    assert not second.new  # same bugs, same content addresses

    # A campaign that misses a bug, then one that sees it again.
    libtiff_only = [
        r for r in rerun_reports
        if "LIBTIFF" in r.allocation_context[0]
    ]
    db3 = BugDatabase(db_path)
    db3.update(cluster_reports(libtiff_only), campaign_id="nightly-3")
    db4 = BugDatabase(db_path)
    fourth = db4.update(cluster_reports(rerun_reports), campaign_id="nightly-4")
    assert len(fourth.regressed) == 1  # the zziplib bug came back

    final = BugDatabase(db_path)
    assert final.campaigns == 4
    statuses = {
        e.first_seen_spec.get("app"): e.status for e in final.entries()
    }
    assert statuses["libtiff"] == "reproduced"
    assert statuses["zziplib"] == "regressed"


def test_full_export_validates_as_sarif(campaign, tmp_path):
    reports, executions = campaign
    clusters = cluster_reports(reports)
    db = BugDatabase(str(tmp_path / "bugs.json"))
    db.update(clusters, total_executions=executions)
    ranked = rank_clusters(clusters, total_executions=executions)
    sarif = to_sarif(ranked, tool_version="test", db=db)
    assert validate_sarif(sarif) == []
    # Round-trips through serialization without losing validity.
    assert validate_sarif(json.loads(json.dumps(sarif))) == []


def test_fleet_runner_feeds_bug_db_and_telemetry(tmp_path):
    db = BugDatabase(str(tmp_path / "bugs.json"))
    fleet = run_fleet(
        "libtiff",
        executions=6,
        seed_base=0,
        bug_db=db,
        campaign_id="wired",
    )
    assert fleet.triage is not None
    assert fleet.triage.campaign_id == "wired"
    assert fleet.triage.clusters >= 1
    assert len(db) >= 1
    counters = fleet.metrics.snapshot()["counters"]
    assert counters["triage_clusters"] >= 1
    assert counters["triage_bugs_new"] >= 1
    assert counters["triage_signatures_merged"] >= 0
