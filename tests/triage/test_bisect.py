"""Minimal-reproducer bisection: search logic and real re-execution."""

import json

import pytest

from repro.core.config import CSODConfig
from repro.errors import ReproError
from repro.fleet.pool import execute_spec
from repro.fleet.runner import run_fleet
from repro.fleet.specs import ExecutionResult, ReportRecord
from repro.triage.bisect import Bisector, MinimalRepro, bisect_cluster
from repro.triage.clustering import cluster_reports

from tests.triage.conftest import report


# ----------------------------------------------------------------------
# Search logic against a stubbed executor
# ----------------------------------------------------------------------
def stub_result(triggers=True, evidence=("CTX|A",)):
    reports = []
    if triggers:
        reports.append(
            ReportRecord(
                signature="over-write|alloc:A|access:B",
                kind="over-write",
                source="watchpoint",
                allocation_context=(
                    "LIB/wrap.c:10",
                    "LIB/parse.c:20",
                    "LIB/main.c:30",
                ),
                access_context=("LIB/copy.c:40",),
            )
        )
    return ExecutionResult(
        app="libtiff",
        seed=0,
        index=0,
        detected=triggers,
        detected_by_watchpoint=triggers,
        reports=reports,
        new_evidence=tuple(evidence) if triggers else (),
    )


def test_always_triggering_bug_shrinks_to_no_evidence(monkeypatch):
    monkeypatch.setattr(
        "repro.triage.bisect.execute_spec", lambda spec: stub_result()
    )
    cluster = cluster_reports([report()])[0]
    repro = bisect_cluster(cluster)
    assert repro.verified
    assert repro.seed_independent
    assert repro.evidence == ()  # all preloaded evidence dropped
    assert repro.scale is not None  # schedule shrank below the default
    stages = {step.stage for step in repro.steps}
    assert {"reproduce", "determinise", "drop-evidence", "shrink",
            "verify"} <= stages


def test_never_retriggering_cluster_gives_up(monkeypatch):
    monkeypatch.setattr(
        "repro.triage.bisect.execute_spec",
        lambda spec: stub_result(triggers=False),
    )
    cluster = cluster_reports([report()])[0]
    repro = bisect_cluster(cluster)
    assert not repro.verified
    assert not repro.seed_independent
    assert repro.executions == 1  # the replay probe only


def test_executor_exceptions_count_as_non_triggering(monkeypatch):
    calls = {"n": 0}

    def flaky(spec):
        calls["n"] += 1
        if spec.scale is not None and spec.scale < 0.1:
            raise ValueError("scale too small for the app's structure")
        return stub_result()

    monkeypatch.setattr("repro.triage.bisect.execute_spec", flaky)
    cluster = cluster_reports([report()])[0]
    repro = bisect_cluster(cluster)
    assert repro.verified
    assert repro.scale is None or repro.scale >= 0.1


def test_seed_dependent_bug_falls_back_to_replay(monkeypatch):
    origin_seed = cluster_reports([report()])[0].first_seen_spec()["seed"]

    def seed_bound(spec):
        return stub_result(triggers=spec.seed == origin_seed)

    monkeypatch.setattr("repro.triage.bisect.execute_spec", seed_bound)
    cluster = cluster_reports([report()])[0]
    repro = bisect_cluster(cluster, seed_checks=2)
    # Fresh seeds never re-trigger -> not seed-independent, but the
    # same-seed replay is still a verified reproducer.
    assert not repro.seed_independent
    assert repro.verified
    assert repro.seed == origin_seed
    assert repro.evidence == ()
    assert repro.scale is None


def test_cluster_without_first_seen_spec_rejected():
    bad = report(app="", seed=-1)
    cluster = cluster_reports([bad])[0]
    with pytest.raises(ReproError, match="first-seen spec"):
        Bisector(cluster)


def test_seed_checks_must_be_positive():
    cluster = cluster_reports([report()])[0]
    with pytest.raises(ValueError, match="seed_checks"):
        Bisector(cluster, seed_checks=0)


def test_minimal_repro_round_trips_through_json(monkeypatch):
    monkeypatch.setattr(
        "repro.triage.bisect.execute_spec", lambda spec: stub_result()
    )
    cluster = cluster_reports([report()])[0]
    repro = bisect_cluster(cluster)
    payload = json.loads(json.dumps(repro.to_dict()))
    rebuilt = MinimalRepro.from_dict(payload)
    assert rebuilt.cluster_id == repro.cluster_id
    assert rebuilt.config == repro.config
    assert rebuilt.to_spec() == repro.to_spec()
    assert rebuilt.steps == repro.steps


# ----------------------------------------------------------------------
# Real re-execution on the simulated machine (the acceptance check)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def libtiff_cluster():
    fleet = run_fleet("libtiff", executions=6, seed_base=0)
    clusters = cluster_reports(fleet.aggregator.reports())
    assert clusters
    return clusters[0]


def test_bisected_libtiff_repro_is_verified_and_minimal(libtiff_cluster):
    repro = bisect_cluster(libtiff_cluster, seed_checks=2)
    assert repro.verified
    assert repro.seed_independent
    # Smaller than the original campaign execution along some dimension.
    assert repro.scale is not None or repro.evidence
    assert repro.steps[-1].stage == "verify"
    assert repro.steps[-1].triggered


def test_stored_minimal_spec_retriggers_on_reexecution(libtiff_cluster):
    """The acceptance criterion: the *stored* spec re-triggers."""
    from repro.triage.clustering import matches_cluster

    repro = bisect_cluster(libtiff_cluster, seed_checks=1)
    assert repro.verified
    stored = MinimalRepro.from_dict(
        json.loads(json.dumps(repro.to_dict()))
    )
    result = execute_spec(stored.to_spec())
    assert result.ok
    assert any(
        matches_cluster(
            libtiff_cluster,
            record.kind,
            record.allocation_context,
            record.access_context,
        )
        for record in result.reports
    )
