"""Severity/confidence ranking of clusters."""

from repro.triage.clustering import cluster_reports
from repro.triage.ranking import (
    RECENCY_DECAY,
    evidence_quality,
    rank_clusters,
    score_cluster,
)

from tests.triage.conftest import report


def one_cluster(**kwargs):
    return cluster_reports([report(**kwargs)])[0]


def test_over_write_outranks_over_read():
    write = one_cluster()
    read = one_cluster(
        signature="over-read|alloc:R|access:B",
        kind="over-read",
        allocation_context=("R/a.c:1",),
    )
    ranked = rank_clusters([write, read], total_executions=100)
    assert ranked[0].cluster.kind == "over-write"
    assert ranked[0].score > ranked[1].score


def test_watchpoint_evidence_outranks_canary():
    assert evidence_quality({"watchpoint": 1}) > evidence_quality(
        {"free-canary": 1}
    )
    assert evidence_quality({"free-canary": 1}) > evidence_quality(
        {"exit-canary": 1}
    )
    assert evidence_quality({}) == 0.0
    # The best source any member carried wins.
    assert evidence_quality({"exit-canary": 9, "watchpoint": 1}) == (
        evidence_quality({"watchpoint": 1})
    )


def test_higher_detection_rate_scores_higher():
    frequent = one_cluster(executions=90, count=90)
    rare = one_cluster(
        signature="over-write|alloc:A|access:Z",
        access_context=("Z/far.c:1", "Z/far.c:2", "Z/far.c:3", "Z/far.c:4",
                        "Z/far.c:5"),
        executions=2,
        count=2,
    )
    scores = {
        r.cluster.cluster_id: r.score
        for r in rank_clusters([frequent, rare], total_executions=100)
    }
    assert scores[frequent.cluster_id] > scores[rare.cluster_id]


def test_confidence_is_wilson_lower_bound():
    from repro.experiments.campaign import wilson_interval

    cluster = one_cluster(executions=30, count=30)
    ranked = score_cluster(cluster, total_executions=100)
    lower, _ = wilson_interval(30, 100)
    assert ranked.confidence == round(lower, 6)


def test_recency_decay_penalises_stale_bugs():
    cluster = one_cluster()
    fresh = score_cluster(cluster, 100, campaigns_since_seen=0)
    stale = score_cluster(cluster, 100, campaigns_since_seen=3)
    assert stale.recency == round(RECENCY_DECAY**3, 6)
    assert stale.score < fresh.score


def test_rank_clusters_uses_per_bug_staleness_map():
    a = one_cluster()
    b = one_cluster(
        signature="over-write|alloc:B|access:B",
        allocation_context=("B/b.c:1",),
    )
    ranked = rank_clusters(
        [a, b],
        total_executions=100,
        campaigns_since_seen={a.cluster_id: 5, b.cluster_id: 0},
    )
    by_id = {r.cluster.cluster_id: r for r in ranked}
    assert by_id[a.cluster_id].recency < by_id[b.cluster_id].recency


def test_ranking_is_deterministic_with_id_tiebreak():
    a = one_cluster()
    b = one_cluster(
        signature="over-write|alloc:A|access:Z",
        access_context=("Z/1.c:1", "Z/2.c:2", "Z/3.c:3", "Z/4.c:4",
                        "Z/5.c:5"),
    )
    first = rank_clusters([a, b], 100)
    second = rank_clusters([b, a], 100)
    assert [r.cluster.cluster_id for r in first] == [
        r.cluster.cluster_id for r in second
    ]


def test_ranked_cluster_to_dict_decomposes_score():
    ranked = score_cluster(one_cluster(), 100)
    payload = ranked.to_dict()
    assert set(payload) == {
        "cluster_id",
        "score",
        "severity",
        "evidence_quality",
        "confidence",
        "prevalence",
        "recency",
    }
