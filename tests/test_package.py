"""Package-level imports and public API surface."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_machine_public_api():
    import repro.machine as machine

    for name in machine.__all__:
        assert hasattr(machine, name), name


def test_heap_public_api():
    import repro.heap as heap

    for name in heap.__all__:
        assert hasattr(heap, name), name


def test_callstack_public_api():
    import repro.callstack as callstack

    for name in callstack.__all__:
        assert hasattr(callstack, name), name


def test_core_public_api():
    import repro.core as core

    for name in core.__all__:
        assert hasattr(core, name), name


def test_asan_public_api():
    import repro.asan as asan

    for name in asan.__all__:
        assert hasattr(asan, name), name


def test_workloads_public_api():
    import repro.workloads as workloads
    import repro.workloads.buggy as buggy
    import repro.workloads.perf as perf

    for module in (workloads, buggy, perf):
        for name in module.__all__:
            assert hasattr(module, name), (module.__name__, name)


def test_perfmodel_public_api():
    import repro.perfmodel as perfmodel

    for name in perfmodel.__all__:
        assert hasattr(perfmodel, name), name


def test_analysis_public_api():
    import repro.analysis as analysis

    for name in analysis.__all__:
        assert hasattr(analysis, name), name


def test_guardpage_public_api():
    import repro.guardpage as guardpage

    for name in guardpage.__all__:
        assert hasattr(guardpage, name), name


def test_sampler_public_api():
    import repro.sampler as sampler

    for name in sampler.__all__:
        assert hasattr(sampler, name), name


def test_cli_public_api():
    import repro.cli as cli

    for name in cli.__all__:
        assert hasattr(cli, name), name


def test_experiments_importable():
    from repro.experiments import (
        characteristics,
        effectiveness,
        evidence,
        memory_usage,
        paper_data,
        performance,
        tables,
    )

    assert all(
        m is not None
        for m in (
            characteristics,
            effectiveness,
            evidence,
            memory_usage,
            paper_data,
            performance,
            tables,
        )
    )
