"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import CSODConfig, CSODRuntime
from repro.machine.machine import Machine
from repro.workloads.base import BuggyAppSpec, SimProcess, SyntheticBuggyApp


@pytest.fixture
def machine():
    """A fresh simulated machine (time charging on)."""
    return Machine(seed=42)


@pytest.fixture
def process():
    """A fresh simulated process with a mapped heap."""
    return SimProcess(seed=42)


@pytest.fixture
def csod(process):
    """A CSOD runtime preloaded into ``process`` (evidence on)."""
    return CSODRuntime(process.machine, process.heap, CSODConfig(), seed=42)


@pytest.fixture
def csod_no_evidence(process):
    return CSODRuntime(
        process.machine, process.heap, CSODConfig(evidence_enabled=False), seed=42
    )


@pytest.fixture
def tiny_write_spec():
    """A one-object over-write program (gzip-shaped)."""
    return BuggyAppSpec(
        name="tinywrite",
        bug_kind="over-write",
        vuln_module="TINY",
        reference="test",
        total_contexts=1,
        total_allocations=1,
        before_contexts=1,
        before_allocations=1,
        victim_alloc_index=1,
    )


@pytest.fixture
def tiny_read_spec():
    """A one-object over-read program."""
    return BuggyAppSpec(
        name="tinyread",
        bug_kind="over-read",
        vuln_module="TINY.SO",
        reference="test",
        total_contexts=1,
        total_allocations=1,
        before_contexts=1,
        before_allocations=1,
        victim_alloc_index=1,
    )


@pytest.fixture
def tiny_write_app(tiny_write_spec):
    return SyntheticBuggyApp(tiny_write_spec)


@pytest.fixture
def tiny_read_app(tiny_read_spec):
    return SyntheticBuggyApp(tiny_read_spec)
