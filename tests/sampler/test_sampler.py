"""The Sampler-style PMU baseline."""

import pytest

from repro.callstack.frames import CallSite
from repro.errors import ReproError
from repro.sampler import SamplerConfig, SamplerRuntime
from repro.workloads.base import SimProcess


def make(period=1, seed=4):
    process = SimProcess(seed=seed)
    runtime = SamplerRuntime(
        process.machine, process.heap, SamplerConfig(sample_period=period), seed=seed
    )
    return process, runtime


def alloc(process, size=64):
    site = CallSite("APP", "a.c", 7, "make_buf")
    try:
        process.symbols.add(site)
    except ValueError:
        pass
    with process.main_thread.call_stack.calling(site):
        return process.heap.malloc(process.main_thread, size)


def test_config_validation():
    with pytest.raises(ReproError):
        SamplerConfig(sample_period=0)


def test_every_access_sampled_catches_overflow():
    process, runtime = make(period=1)
    address = alloc(process)
    process.machine.cpu.store(process.main_thread, address + 64, b"!" * 8)
    assert runtime.detected
    report = runtime.reports[0]
    assert report.object_address == address
    assert "a.c:7" in str(report.allocation_context)


def test_in_bounds_accesses_never_reported():
    process, runtime = make(period=1)
    address = alloc(process)
    for offset in range(0, 64, 8):
        process.machine.cpu.store(process.main_thread, address + offset, b"x" * 8)
    assert not runtime.detected


def test_sparse_sampling_misses_single_shot_overflow():
    process, runtime = make(period=10_000)
    address = alloc(process)
    process.machine.cpu.store(process.main_thread, address + 64, b"!" * 8)
    assert not runtime.detected  # the one bad access was not the sample


def test_repeated_overflow_eventually_sampled():
    process, runtime = make(period=50)
    address = alloc(process)
    for _ in range(200):
        process.machine.cpu.load(process.main_thread, address + 64, 8)
    assert runtime.detected


def test_sampling_rate_honoured():
    process, runtime = make(period=10)
    address = alloc(process)
    for _ in range(100):
        process.machine.cpu.load(process.main_thread, address, 8)
    assert 8 <= runtime.samples_taken <= 12


def test_free_clears_tripwire():
    process, runtime = make(period=1)
    address = alloc(process)
    process.heap.free(process.main_thread, address)
    # The address range may be reused; no stale tripwire reports.
    fresh = alloc(process, 64)
    process.machine.cpu.store(process.main_thread, fresh, b"y" * 8)
    assert not runtime.detected


def test_shutdown_detaches():
    process, runtime = make(period=1)
    runtime.shutdown()
    address = alloc(process)
    process.machine.cpu.store(process.main_thread, address + 64, b"!" * 8)
    assert not runtime.detected


def test_usable_size_excludes_tripwire():
    process, runtime = make(period=1)
    address = alloc(process, 40)
    assert runtime.usable_size(address) == 40
