"""Fleet aggregation: dedup, first-seen, Wilson statistics."""

import pytest

from repro.experiments.campaign import wilson_interval
from repro.fleet.aggregate import FleetAggregator, render_fleet_report
from repro.fleet.specs import (
    OUTCOME_CRASH,
    ExecutionResult,
    ReportRecord,
)


def record(signature="over-write|alloc:A|access:B", source="watchpoint"):
    return ReportRecord(
        signature=signature,
        kind=signature.split("|")[0],
        source=source,
        allocation_context=("LIB/a.c:1",),
        access_context=("LIB/b.c:2",),
    )


def result(index, reports=(), detected=None, outcome="ok"):
    reports = list(reports)
    return ExecutionResult(
        app="libtiff",
        seed=index,
        index=index,
        outcome=outcome,
        detected=bool(reports) if detected is None else detected,
        detected_by_watchpoint=any(r.source == "watchpoint" for r in reports),
        reports=reports,
    )


def test_dedup_by_signature():
    aggregator = FleetAggregator()
    aggregator.add(result(0, [record(), record()]))
    aggregator.add(result(1, [record()]))
    assert aggregator.raw_reports == 3
    assert aggregator.unique_reports() == 1
    assert aggregator.dedup_ratio == 3.0
    entry = aggregator.reports()[0]
    assert entry.count == 3
    assert entry.executions == 2  # two distinct executions saw it


def test_distinct_signatures_stay_separate():
    aggregator = FleetAggregator()
    aggregator.add(
        result(0, [record("over-write|alloc:A|access:B")]),
    )
    aggregator.add(
        result(1, [record("over-read|alloc:A|access:C")]),
    )
    assert aggregator.unique_reports() == 2
    kinds = {entry.kind for entry in aggregator.reports()}
    assert kinds == {"over-write", "over-read"}


def test_first_seen_is_earliest_execution_index():
    aggregator = FleetAggregator()
    aggregator.add(result(0, []))
    aggregator.add(result(3, [record()]))
    aggregator.add(result(1, [record()]))
    assert aggregator.reports()[0].first_seen == 1


def test_sources_tallied():
    aggregator = FleetAggregator()
    aggregator.add(
        result(0, [record(source="watchpoint"), record(source="exit-canary")])
    )
    assert aggregator.reports()[0].sources == {
        "watchpoint": 1,
        "exit-canary": 1,
    }


def test_wilson_rate_matches_campaign_interval():
    aggregator = FleetAggregator()
    for index in range(10):
        aggregator.add(result(index, [record()] if index < 3 else []))
    assert aggregator.executions_detected == 3
    assert aggregator.detection_rate_interval() == wilson_interval(3, 10)
    entry = aggregator.reports()[0]
    assert entry.rate_interval(10) == wilson_interval(3, 10)


def test_failed_executions_excluded_from_rates():
    aggregator = FleetAggregator()
    aggregator.add(result(0, [record()]))
    aggregator.add(result(1, outcome=OUTCOME_CRASH, detected=False))
    assert aggregator.executions == 2
    assert aggregator.executions_ok == 1
    assert len(aggregator.failed) == 1
    assert aggregator.detection_rate_interval() == wilson_interval(1, 1)


def test_empty_aggregator():
    aggregator = FleetAggregator()
    assert aggregator.dedup_ratio == 0.0
    assert aggregator.detection_rate_interval() == (0.0, 0.0)
    assert aggregator.to_dict()["reports"] == []


def test_to_dict_is_deterministic_and_address_free():
    def build():
        aggregator = FleetAggregator()
        aggregator.add(result(0, [record(), record("over-read|alloc:A|access:C")]))
        aggregator.add(result(1, [record()]))
        return aggregator.to_dict()

    first, second = build(), build()
    assert first == second
    assert first["dedup_ratio"] == 1.5
    assert first["reports"][0]["count"] == 2  # most-seen first


def test_render_fleet_report():
    aggregator = FleetAggregator()
    aggregator.add(result(0, [record()]))
    text = render_fleet_report(aggregator, title="T")
    assert "T" in text
    assert "95% CI" in text
    assert "dedup=1.00x" in text
    assert "LIB/a.c:1" in text


# ----------------------------------------------------------------------
# PartialAggregate: the mergeable worker-side fold
# ----------------------------------------------------------------------
def _partial_for(results):
    from repro.fleet.aggregate import PartialAggregate

    partial = PartialAggregate()
    for one in results:
        partial.observe(one)
    return partial


def _results_fixture():
    return [
        result(0, [record(), record("over-read|alloc:A|access:C")]),
        result(1, [record()]),
        result(2, []),
        result(3, [record(source="exit-canary")]),
        result(4, outcome=OUTCOME_CRASH, detected=False),
        result(5, [record("over-read|alloc:A|access:C")]),
    ]


def test_merge_partial_equals_add():
    # Folding worker-side and merging centrally must be byte-for-byte
    # the same as adding every result serially.
    results = _results_fixture()
    serial = FleetAggregator()
    for one in results:
        serial.add(one)
    merged = FleetAggregator()
    merged.merge_partial(_partial_for(results[:2]))
    merged.merge_partial(_partial_for(results[2:5]))
    merged.merge_partial(_partial_for(results[5:]))
    assert merged.to_dict() == serial.to_dict()
    assert merged.executions == serial.executions
    assert merged.executions_ok == serial.executions_ok


def test_partial_merge_is_associative_and_commutative():
    # However the coordinator chunks the specs and in whatever order
    # the chunk results land, the aggregate cannot change.
    import itertools

    results = _results_fixture()
    chunks = [results[:2], results[2:4], results[4:]]

    def aggregate(order, pairing):
        partials = [_partial_for(chunks[i]) for i in order]
        if pairing == "left":
            merged = partials[0].merge(partials[1]).merge(partials[2])
        else:
            partials[1].merge(partials[2])
            merged = partials[0].merge(partials[1])
        aggregator = FleetAggregator()
        aggregator.merge_partial(merged)
        return aggregator.to_dict()

    views = [
        aggregate(list(order), pairing)
        for order in itertools.permutations(range(3))
        for pairing in ("left", "right")
    ]
    assert all(view == views[0] for view in views)


def test_partial_merge_identity():
    from repro.fleet.aggregate import PartialAggregate

    partial = _partial_for(_results_fixture())
    before = FleetAggregator()
    before.merge_partial(partial)
    merged_with_empty = _partial_for(_results_fixture()).merge(
        PartialAggregate()
    )
    after = FleetAggregator()
    after.merge_partial(merged_with_empty)
    assert before.to_dict() == after.to_dict()


def test_partial_first_seen_takes_minimum():
    late = _partial_for([result(7, [record()])])
    early = _partial_for([result(2, [record()])])
    late.merge(early)
    aggregator = FleetAggregator()
    aggregator.merge_partial(late)
    assert aggregator.reports()[0].first_seen == 2


# ----------------------------------------------------------------------
# First-seen spec identities (the bisection starting point)
# ----------------------------------------------------------------------
def test_to_dict_reports_carry_first_seen_spec():
    aggregator = FleetAggregator()
    aggregator.add(result(3, [record()]))
    aggregator.add(result(1, [record()]))
    rows = aggregator.to_dict()["reports"]
    assert rows[0]["first_seen_spec"] == {
        "app": "libtiff",
        "seed": 1,
        "index": 1,
    }


def test_first_seen_spec_follows_earliest_index_across_merges():
    late = _partial_for([result(7, [record()])])
    early = _partial_for([result(2, [record()])])
    late.merge(early)
    aggregator = FleetAggregator()
    aggregator.merge_partial(late)
    entry = aggregator.reports()[0]
    assert entry.first_seen_spec() == {"app": "libtiff", "seed": 2, "index": 2}


def test_first_seen_spec_per_signature():
    aggregator = FleetAggregator()
    aggregator.add(result(0, [record()]))
    aggregator.add(result(4, [record("over-read|alloc:A|access:C")]))
    specs = {
        row["signature"]: row["first_seen_spec"]
        for row in aggregator.to_dict()["reports"]
    }
    assert specs["over-write|alloc:A|access:B"]["index"] == 0
    assert specs["over-read|alloc:A|access:C"]["index"] == 4
