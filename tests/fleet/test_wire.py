"""The binary result-row codec: exact pickle↔binary equivalence.

Property-based: random batches of :class:`LeanExecutionResult`s (full
unicode, maximum-width signatures, extreme counters) must survive the
encode/decode round trip *identically* — the shm wire is only allowed
to exist because it cannot change a single result bit — and partial
aggregates refolded from decoded rows must merge associatively.
"""

import dataclasses
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet.aggregate import PartialAggregate
from repro.fleet.specs import LeanExecutionResult, ReportRecord
from repro.fleet.wire import (
    WireError,
    decode_chunk_outcome,
    encode_chunk_outcome,
)

# Signatures and frames: printable-ish unicode including astral planes,
# plus the degenerate empty string.
_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40
)
_wide_text = st.one_of(
    _text,
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)),
        min_size=200,
        max_size=400,
    ),
)
_u64 = st.integers(min_value=0, max_value=2**64 - 1)
_i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
# observe() takes log2 of wall milliseconds, so the aggregate tests use
# physically plausible wall times; the codec itself must preserve any
# finite double (the round-trip test keeps the full range).
_wall = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def _lean_strategy(float_strategy):
    return st.builds(
        LeanExecutionResult,
        app=_text,
        seed=_i64,
        index=st.integers(min_value=0, max_value=2**32 - 1),
        outcome=st.sampled_from(["ok", "worker-crash", "timeout"]),
        detected=st.booleans(),
        detected_by_watchpoint=st.booleans(),
        reports=st.lists(
            st.tuples(_wide_text, _text, _text), max_size=4
        ).map(tuple),
        new_evidence=st.lists(_wide_text, max_size=3).map(tuple),
        allocations=_u64,
        contexts=_u64,
        watched_times=_u64,
        traps_handled=_u64,
        canary_corruptions=_u64,
        wall_seconds=float_strategy,
        attempts=st.integers(min_value=0, max_value=255),
        error=st.one_of(st.none(), _wide_text),
        retry_wall_ms=float_strategy,
    )


_lean = _lean_strategy(_finite)
_lean_observable = _lean_strategy(_wall)

_contexts = st.dictionaries(
    keys=_wide_text,
    values=st.tuples(
        st.lists(_text, max_size=5).map(tuple),
        st.lists(_text, max_size=5).map(tuple),
    ),
    max_size=4,
)


@settings(deadline=None, max_examples=60)
@given(
    results=st.lists(_lean, max_size=8),
    contexts=_contexts,
    crashes=st.integers(min_value=0, max_value=2**32 - 1),
    retries=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_roundtrip_is_identity(results, contexts, crashes, retries):
    blob = encode_chunk_outcome(results, contexts, crashes, retries)
    out_results, out_contexts, out_crashes, out_retries = (
        decode_chunk_outcome(blob)
    )
    assert out_results == results
    assert out_contexts == contexts
    assert (out_crashes, out_retries) == (crashes, retries)
    # The decoded rows are indistinguishable from pickled ones.
    assert pickle.loads(pickle.dumps(results)) == out_results


def _observe_all(leans, contexts):
    """Refold decoded rows the way the coordinator does."""
    partial = PartialAggregate()
    for lean in leans:
        partial.observe(lean.hydrate(contexts))
    return partial


@settings(deadline=None, max_examples=40)
@given(
    results=st.lists(_lean_observable, min_size=3, max_size=9),
    contexts=_contexts,
    split=st.tuples(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
    ),
)
def test_merge_is_associative_over_binary_rows(results, contexts, split):
    a, b = sorted(min(s, len(results)) for s in split)
    chunks = [results[:a], results[a:b], results[b:]]
    decoded = [
        decode_chunk_outcome(encode_chunk_outcome(chunk, contexts))[0]
        for chunk in chunks
    ]
    partials = lambda: [_observe_all(chunk, contexts) for chunk in decoded]
    p0, p1, p2 = partials()
    left = p0.merge(p1).merge(p2)
    q0, q1, q2 = partials()
    right = q0.merge(q1.merge(q2))
    serial = _observe_all([l for chunk in decoded for l in chunk], contexts)
    assert dataclasses.asdict(left) == dataclasses.asdict(right)
    assert dataclasses.asdict(left) == dataclasses.asdict(serial)


def test_decode_rejects_foreign_bytes():
    with pytest.raises(WireError):
        decode_chunk_outcome(b"")
    with pytest.raises(WireError):
        decode_chunk_outcome(b"\x00" * 64)
    blob = encode_chunk_outcome([], {}, 0, 0)
    with pytest.raises(WireError):
        decode_chunk_outcome(blob + b"\x00")  # trailing garbage
    with pytest.raises(WireError):
        decode_chunk_outcome(blob[:-1])  # truncated


def test_none_error_distinct_from_empty_string():
    with_none = LeanExecutionResult(app="a", seed=1, index=0, error=None)
    with_empty = LeanExecutionResult(app="a", seed=1, index=0, error="")
    for lean in (with_none, with_empty):
        (decoded,), _, _, _ = decode_chunk_outcome(
            encode_chunk_outcome([lean], {})
        )
        assert decoded.error == lean.error


def test_hydrated_results_match_reportrecord_shape():
    contexts = {"sig": (("alloc.c:1",), ("access.c:9",))}
    lean = LeanExecutionResult(
        app="gzip", seed=7, index=3, detected=True,
        reports=(("sig", "over-write", "canary"),),
    )
    (decoded,), out_contexts, _, _ = decode_chunk_outcome(
        encode_chunk_outcome([lean], contexts)
    )
    result = decoded.hydrate(out_contexts)
    assert result.reports == [
        ReportRecord(
            signature="sig",
            kind="over-write",
            source="canary",
            allocation_context=("alloc.c:1",),
            access_context=("access.c:9",),
        )
    ]
