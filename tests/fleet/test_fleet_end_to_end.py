"""End-to-end fleet campaigns: parallel run, aggregation, determinism."""

import json

from repro.fleet import (
    EvidenceStore,
    JsonlEventLog,
    read_jsonl,
    run_fleet,
)

EXECUTIONS = 8
WORKERS = 2


def small_campaign(seed_base=0, workers=WORKERS, **kwargs):
    return run_fleet(
        "libtiff",
        executions=EXECUTIONS,
        workers=workers,
        seed_base=seed_base,
        **kwargs,
    )


def test_parallel_campaign_detects_and_aggregates(tmp_path):
    log = JsonlEventLog(str(tmp_path / "telemetry.jsonl"))
    with log:
        result = small_campaign(event_log=log)
    aggregator = result.aggregator
    assert aggregator.executions == EXECUTIONS
    assert aggregator.executions_ok == EXECUTIONS
    assert aggregator.executions_detected > 0
    # libtiff raises a watchpoint and a canary report per execution:
    # the fleet view collapses them to stable signatures.
    assert aggregator.raw_reports > aggregator.unique_reports()
    assert aggregator.dedup_ratio > 1.0
    lo, hi = aggregator.detection_rate_interval()
    assert 0.0 <= lo <= hi <= 1.0

    events = read_jsonl(log.path)
    kinds = [event["event"] for event in events]
    assert kinds.count("execution") == EXECUTIONS
    assert kinds.count("campaign") == 1
    assert kinds.count("report") == aggregator.unique_reports()

    counters = result.metrics.snapshot()["counters"]
    assert counters["executions_run"] == EXECUTIONS
    assert counters["reports_raised"] == aggregator.raw_reports
    assert counters["watchpoint_arms"] > 0


def test_aggregated_signatures_deterministic_for_fixed_seed():
    first = small_campaign(seed_base=42)
    second = small_campaign(seed_base=42)
    as_bytes = lambda r: json.dumps(  # noqa: E731
        r.aggregator.to_dict(), sort_keys=True
    ).encode()
    assert as_bytes(first) == as_bytes(second)


def test_worker_count_does_not_change_results():
    serial = small_campaign(workers=1)
    as_bytes = lambda r: json.dumps(  # noqa: E731
        r.aggregator.to_dict(), sort_keys=True
    ).encode()
    for workers in (2, 4):
        parallel = small_campaign(workers=workers)
        assert as_bytes(parallel) == as_bytes(serial)
        assert parallel.detections == serial.detections


def test_chunk_size_does_not_change_results():
    default = small_campaign(workers=2)
    for chunk_size in (1, 3, EXECUTIONS):
        chunked = small_campaign(workers=2, chunk_size=chunk_size)
        assert chunked.aggregator.to_dict() == default.aggregator.to_dict()
        assert chunked.detections == default.detections


def test_pinned_wave_size_makes_shared_evidence_worker_invariant():
    # Wave boundaries are the evidence-visibility contract.  By default
    # they track the worker count (the historical protocol); pinning
    # wave_size fixes the boundaries, so even *shared-evidence*
    # campaigns are byte-identical at any worker count.
    def run(workers):
        return run_fleet(
            "memcached",
            executions=12,
            workers=workers,
            seed_base=5,
            share_evidence=True,
            wave_size=4,
        )

    serial = run(1)
    for workers in (2, 4):
        parallel = run(workers)
        assert parallel.aggregator.to_dict() == serial.aggregator.to_dict()
        assert parallel.detections == serial.detections
        assert parallel.evidence == serial.evidence


def test_retry_wall_is_observed_and_does_not_block_other_specs():
    # A crashing spec is retried worker-side; the rest of the wave
    # completes normally and the retry's cost lands in telemetry.
    from repro.workloads.buggy import registry

    class _CrashOnce:
        def __init__(self):
            self.crashed = False

        def run(self, process):
            if not self.crashed:
                self.crashed = True
                raise RuntimeError("transient")
            from repro.workloads.buggy import app_for

            return app_for("libtiff").run(process)

    registry._app_cache[("crash-once-e2e", 1.0)] = _CrashOnce()
    try:
        result = run_fleet("crash-once-e2e", executions=4, workers=2)
    finally:
        registry._app_cache.pop(("crash-once-e2e", 1.0), None)
    assert all(r.ok for r in result.results)
    retried = [r for r in result.results if r.attempts == 2]
    assert len(retried) >= 1
    snapshot = result.metrics.snapshot()
    assert snapshot["counters"]["worker_retries"] >= 1
    assert snapshot["counters"]["executor_rebuilds"] == 0
    retry_wall = snapshot["histograms"]["retry_wall_ms"]
    assert retry_wall["count"] >= 1
    assert retry_wall["max"] > 0


def test_shared_evidence_campaign_deterministic(tmp_path):
    def run(out):
        store = EvidenceStore(str(tmp_path / out))
        return run_fleet(
            "memcached",
            executions=EXECUTIONS,
            workers=WORKERS,
            seed_base=7,
            share_evidence=True,
            evidence_store=store,
        )

    first = run("ev1.json")
    second = run("ev2.json")
    assert first.aggregator.to_dict() == second.aggregator.to_dict()
    assert first.evidence == second.evidence


def test_fleet_evidence_accelerates_detection():
    # memcached's watchpoint-only detection rate is well below 100%;
    # once any execution's canary uploads evidence, later waves watch
    # the guilty context from their first allocation.
    independent = run_fleet(
        "memcached", executions=16, workers=WORKERS, seed_base=0
    )
    shared = run_fleet(
        "memcached",
        executions=16,
        workers=WORKERS,
        seed_base=0,
        share_evidence=True,
    )
    assert sum(shared.detections) > sum(independent.detections)
    assert len(shared.evidence) > 0
