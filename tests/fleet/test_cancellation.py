"""Campaign cancellation: worker teardown, telemetry drain, no leaks.

The regression this file pins: a KeyboardInterrupt (or a service-side
cancel) arriving mid-wave used to leave the ``ProcessPoolExecutor``
alive — worker processes kept running their chunks to completion and
campaign telemetry was never recorded.  Cancellation must terminate the
workers, dispose the executor, and still drain the campaign event into
the metrics/event log.
"""

import threading
import time

import pytest

from repro.errors import CampaignCancelled
from repro.fleet.pool import FleetPool
from repro.fleet.runner import FleetCampaign
from repro.fleet.specs import ExecutionSpec
from repro.fleet.telemetry import JsonlEventLog


def _specs(count, app="gzip"):
    return [
        ExecutionSpec(app=app, seed=index, index=index)
        for index in range(count)
    ]


def _pids(pool):
    executor = pool.executor
    if executor is None:
        return []
    return [process.pid for process in (executor._processes or {}).values()]


def test_serial_pool_stops_between_specs():
    pool = FleetPool(workers=1)
    pool.request_stop()
    with pytest.raises(CampaignCancelled):
        pool.run_wave(_specs(4))


def test_pre_stopped_parallel_pool_raises_before_dispatch():
    pool = FleetPool(workers=2)
    pool.request_stop()
    with pytest.raises(CampaignCancelled):
        pool.run_wave(_specs(4))
    assert pool.executor is None


def test_stop_mid_wave_terminates_worker_processes():
    pool = FleetPool(workers=2)
    # Warm the pool with a tiny wave so worker processes exist.
    pool.run_wave(_specs(2))
    pids = _pids(pool)
    assert pids, "expected live worker processes"

    # Fire the stop from another thread while a bigger wave runs: the
    # sliced future wait must notice within a poll slice and unwind.
    stopper = threading.Timer(0.1, pool.request_stop)
    stopper.start()
    try:
        with pytest.raises(CampaignCancelled):
            pool.run_wave(_specs(64))
    finally:
        stopper.cancel()

    assert pool.executor is None  # disposed, not leaked
    deadline = time.monotonic() + 10.0
    import os

    def alive(pid):
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
        # Terminated children linger as zombies until reaped; a zombie
        # is not running.  waitpid with WNOHANG reaps if it's ours.
        try:
            os.waitpid(pid, os.WNOHANG)
        except ChildProcessError:
            pass
        try:
            with open(f"/proc/{pid}/stat") as handle:
                return handle.read().split(")")[-1].split()[0] != "Z"
        except OSError:
            return False

    while any(alive(pid) for pid in pids):
        if time.monotonic() > deadline:
            pytest.fail(f"worker processes survived cancellation: {pids}")
        time.sleep(0.05)


def test_cancelled_campaign_drains_telemetry(tmp_path):
    log_path = tmp_path / "telemetry.jsonl"
    with JsonlEventLog(str(log_path)) as log:
        campaign = FleetCampaign(
            "gzip", executions=12, workers=1, wave_size=2, event_log=log
        )
        assert campaign.run_next_wave() is not None
        campaign.cancel()
        with pytest.raises(CampaignCancelled):
            campaign.run_next_wave()
        result = campaign.finish(cancelled=True)
    assert result.cancelled is True
    assert len(result.results) == 2  # the one completed wave
    from repro.fleet.telemetry import read_jsonl

    events = read_jsonl(str(log_path))
    campaign_events = [e for e in events if e["event"] == "campaign"]
    assert len(campaign_events) == 1
    assert campaign_events[0]["cancelled"] is True
    assert campaign_events[0]["executions"] == 2


def test_run_fleet_drains_telemetry_on_cancel(tmp_path):
    """The run_fleet wrapper finishes (cancelled) before re-raising."""
    from repro.fleet.runner import run_fleet

    log_path = tmp_path / "telemetry.jsonl"
    campaign_holder = {}

    # Cancel from a timer thread, as Ctrl-C or a service cancel would.
    original_init = FleetCampaign.__init__

    def capturing_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        campaign_holder["campaign"] = self

    with JsonlEventLog(str(log_path)) as log:
        FleetCampaign.__init__ = capturing_init
        try:
            timer = threading.Timer(
                0.3, lambda: campaign_holder["campaign"].cancel()
            )
            timer.start()
            with pytest.raises(CampaignCancelled):
                run_fleet(
                    "gzip",
                    executions=500,
                    workers=1,
                    wave_size=2,
                    event_log=log,
                )
            timer.cancel()
        finally:
            FleetCampaign.__init__ = original_init

    from repro.fleet.telemetry import read_jsonl

    events = read_jsonl(str(log_path))
    campaign_events = [e for e in events if e["event"] == "campaign"]
    assert len(campaign_events) == 1
    assert campaign_events[0]["cancelled"] is True
    pool = campaign_holder["campaign"].pool
    assert pool.executor is None


def test_completed_campaign_event_has_no_cancelled_key(tmp_path):
    """Byte-compat: completed campaigns' logs look exactly as before."""
    from repro.fleet.runner import run_fleet
    from repro.fleet.telemetry import read_jsonl

    log_path = tmp_path / "telemetry.jsonl"
    with JsonlEventLog(str(log_path)) as log:
        run_fleet("gzip", executions=4, workers=1, event_log=log)
    events = read_jsonl(str(log_path))
    campaign_events = [e for e in events if e["event"] == "campaign"]
    assert len(campaign_events) == 1
    assert "cancelled" not in campaign_events[0]


def test_finish_is_single_shot():
    campaign = FleetCampaign("gzip", executions=2, workers=1)
    while campaign.run_next_wave() is not None:
        pass
    campaign.finish()
    with pytest.raises(RuntimeError, match="already finished"):
        campaign.finish()
    with pytest.raises(RuntimeError, match="already finished"):
        campaign.run_next_wave()
