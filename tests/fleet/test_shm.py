"""The shared-memory data plane: segments, claims, and lifecycle.

Every test that creates segments also proves they are gone afterwards —
segment leaks are the failure mode this file exists to pin down.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.fleet.pool import FleetPool
from repro.fleet.shm import (
    WIRE_PICKLE,
    WIRE_SHM,
    BlobHandle,
    RingSegment,
    SegmentCorrupt,
    SegmentFull,
    ShmDataPlane,
    StringLogSegment,
    WorkerPlane,
    shm_supported,
)
from repro.fleet.specs import ExecutionSpec

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="POSIX shared memory unavailable"
)


def _shm_names():
    try:
        return sorted(n for n in os.listdir("/dev/shm") if n.startswith("csod"))
    except FileNotFoundError:  # pragma: no cover — non-tmpfs platforms
        return []


# ----------------------------------------------------------------------
# String log
# ----------------------------------------------------------------------
def test_string_log_roundtrip_with_continuation_slots():
    log = StringLogSegment.create("csodtestlog1", capacity_slots=64)
    try:
        records = [
            "short",
            "",
            "x" * 500,  # spans multiple 192-byte slots
            "unicode-é中文-sig",
        ]
        log.append(records)
        log.publish(epoch=1)
        reader = StringLogSegment.attach("csodtestlog1")
        try:
            assert reader.published_slots == log.published_slots
            assert reader.epoch == 1
            assert reader.read_from(0, reader.published_slots) == records
        finally:
            reader.close()
    finally:
        log.unlink()
        log.close()
    assert "csodtestlog1" not in _shm_names()


def test_string_log_publish_gates_visibility():
    log = StringLogSegment.create("csodtestlog2", capacity_slots=8)
    try:
        log.append(["sig-a"])
        assert log.published_slots == 0  # appended but not published
        log.publish(epoch=3)
        assert log.published_slots == 1
        assert log.epoch == 3
        log.append(["sig-b"])
        assert log.published_slots == 1  # still only the first record
        log.publish(epoch=4)
        assert log.read_from(0, log.published_slots) == ["sig-a", "sig-b"]
    finally:
        log.unlink()
        log.close()


def test_string_log_full_appends_nothing():
    log = StringLogSegment.create("csodtestlog3", capacity_slots=2)
    try:
        log.append(["first"])
        with pytest.raises(SegmentFull):
            log.append(["x" * 400])  # needs 3 slots, only 1 left
        log.publish(epoch=1)
        # The failed append staged nothing: the log is still coherent.
        assert log.read_from(0, log.published_slots) == ["first"]
    finally:
        log.unlink()
        log.close()


def test_string_log_incremental_cursors():
    log = StringLogSegment.create("csodtestlog4", capacity_slots=16)
    try:
        log.append(["a", "b"])
        log.publish(epoch=1)
        first = log.published_slots
        log.append(["c"])
        log.publish(epoch=2)
        assert log.read_from(0, first) == ["a", "b"]
        assert log.read_from(first, log.published_slots) == ["c"]
    finally:
        log.unlink()
        log.close()


# ----------------------------------------------------------------------
# Result ring
# ----------------------------------------------------------------------
def test_ring_roundtrip_across_wrap():
    ring = RingSegment.create("csodtestring1", data_bytes=256)
    writer = RingSegment.attach_writer("csodtestring1")
    try:
        # Far more bytes than capacity: exercises the skip-the-tail
        # wrap path many times over.
        for i in range(50):
            payload = bytes([i]) * (17 + (i * 13) % 90)
            written = writer.write_blob(payload)
            assert written is not None, f"blob {i} refused"
            voff, length, seq = written
            assert ring.read_blob(voff, length, seq) == payload
    finally:
        writer.close()
        ring.unlink()
        ring.close()


def test_ring_refuses_overwriting_unread_bytes():
    ring = RingSegment.create("csodtestring2", data_bytes=256)
    writer = RingSegment.attach_writer("csodtestring2")
    try:
        # Each 104-byte payload makes a 128-byte frame: two fill the ring.
        first = writer.write_blob(b"a" * 104)
        assert first is not None
        assert writer.write_blob(b"b" * 104) is not None
        # Nobody read anything: a third frame would overwrite the first
        # and must be refused, not silently corrupted.
        assert writer.write_blob(b"c" * 104) is None
        voff, length, seq = first
        assert ring.read_blob(voff, length, seq) == b"a" * 104
        # Drained one frame: now it fits.
        assert writer.write_blob(b"c" * 104) is not None
    finally:
        writer.close()
        ring.unlink()
        ring.close()


def test_ring_read_verifies_sequence():
    ring = RingSegment.create("csodtestring3", data_bytes=256)
    writer = RingSegment.attach_writer("csodtestring3")
    try:
        voff, length, seq = writer.write_blob(b"payload")
        with pytest.raises(SegmentCorrupt):
            ring.read_blob(voff, length, seq + 7)
        with pytest.raises(SegmentCorrupt):
            ring.read_blob(voff, length + 1, seq)
    finally:
        writer.close()
        ring.unlink()
        ring.close()


def test_oversized_blob_ships_inline():
    plane = ShmDataPlane.create(rings=1, ring_bytes=256)
    try:
        worker = WorkerPlane(plane.names())
        assert worker.slot == 0
        handle = worker.ship(b"z" * 1024)  # larger than the whole ring
        assert handle.slot == -1 and handle.inline is not None
        assert plane.fetch(handle) == b"z" * 1024
        # A fitting blob rides the ring.
        handle = worker.ship(b"ok")
        assert handle.slot == 0 and handle.inline is None
        assert plane.fetch(handle) == b"ok"
    finally:
        plane.unlink()
    assert _shm_names() == []


# ----------------------------------------------------------------------
# Claims and plane lifecycle
# ----------------------------------------------------------------------
def test_claim_protocol_assigns_rings_exclusively():
    plane = ShmDataPlane.create(rings=2)
    try:
        names = plane.names()
        first = WorkerPlane(names)
        second = WorkerPlane(names)
        third = WorkerPlane(names)
        assert {first.slot, second.slot} == {0, 1}
        assert third.slot == -1  # no ring left: ships inline
        assert third.ship(b"inline").inline == b"inline"
        # Executor rebuild: claims reset, replacement worker re-claims.
        plane.reset_claims()
        replacement = WorkerPlane(names)
        assert replacement.slot == 0
    finally:
        plane.unlink()
    assert _shm_names() == []


def test_evidence_published_before_visible_to_workers():
    plane = ShmDataPlane.create(rings=1, evidence=["base-1", "base-2"])
    try:
        worker = WorkerPlane(plane.names())
        base_slots = plane.evidence_slots
        assert worker.evidence_at(base_slots) == {"base-1", "base-2"}
        plane.evidence_append(["merged-3"], epoch=1)
        assert worker.evidence_at(plane.evidence_slots) == {
            "base-1",
            "base-2",
            "merged-3",
        }
        # Cursor never moves backwards.
        with pytest.raises(SegmentCorrupt):
            worker.evidence_at(base_slots)
    finally:
        plane.unlink()


def test_registry_folds_into_shipped_set():
    plane = ShmDataPlane.create(rings=1)
    try:
        worker = WorkerPlane(plane.names())
        shipped = set()
        worker.refresh_shipped(shipped)
        assert shipped == set()
        plane.registry_append(["sig-x", "sig-y"])
        worker.refresh_shipped(shipped)
        assert shipped == {"sig-x", "sig-y"}
    finally:
        plane.unlink()


def test_plane_unlink_is_idempotent():
    plane = ShmDataPlane.create(rings=2)
    created = _shm_names()
    assert len(created) >= 4  # evidence + registry + 2 rings
    plane.unlink()
    plane.unlink()
    assert _shm_names() == []


def test_fetch_inline_handle_needs_no_ring():
    plane = ShmDataPlane.create(rings=1)
    try:
        assert plane.fetch(BlobHandle(slot=-1, inline=b"bytes")) == b"bytes"
        with pytest.raises(SegmentCorrupt):
            plane.fetch(BlobHandle(slot=9, voff=0, length=1, seq=1))
    finally:
        plane.unlink()


# ----------------------------------------------------------------------
# Pool-level lifecycle regressions
# ----------------------------------------------------------------------
def test_executor_rebuild_reuses_plane_without_leaking():
    pool = FleetPool(workers=2, timeout_seconds=30.0, wire=WIRE_SHM)
    try:
        specs = [
            ExecutionSpec(app="imgpipe", seed=40 + i, index=i)
            for i in range(4)
        ]
        first = pool.run_wave(specs)
        assert pool.active_wire == WIRE_SHM
        # Simulate the hung-worker path: workers terminated, executor
        # dropped, plane kept.  The next wave rebuilds the executor and
        # replacement workers must re-claim the same rings.
        pool._dispose()
        second = pool.run_wave(specs)
        assert [r.detected for r in first.results] == [
            r.detected for r in second.results
        ]
        assert pool.active_wire == WIRE_SHM
    finally:
        pool.close()
    assert _shm_names() == []


def test_close_after_failed_wave_unlinks_everything():
    pool = FleetPool(workers=2, timeout_seconds=30.0, wire=WIRE_SHM)
    specs = [ExecutionSpec(app="imgpipe", seed=40, index=0)]
    pool.run_wave(specs)
    pool.close()
    pool.close()  # idempotent
    assert _shm_names() == []


_CANCELLED_CAMPAIGN_SCRIPT = textwrap.dedent(
    """
    import os
    import threading

    from repro.errors import CampaignCancelled
    from repro.fleet.runner import FleetCampaign

    campaign = FleetCampaign(
        "imgpipe", executions=64, workers=2, share_evidence=True,
        timeout_seconds=30.0, wave_size=4,
    )
    progress = campaign.run_next_wave()
    assert progress is not None
    assert campaign.pool.active_wire in ("shm", "pickle")
    # Cancel from another thread mid-campaign, like the service does.
    threading.Thread(target=campaign.cancel).start()
    try:
        while campaign.run_next_wave() is not None:
            pass
    except CampaignCancelled:
        pass
    campaign.finish(cancelled=True)
    leftovers = [n for n in os.listdir("/dev/shm") if n.startswith("csod")]
    print("LEFTOVERS:" + ",".join(leftovers))
    """
)


def test_cancelled_campaign_leaves_no_segments():
    """A cancelled campaign must unlink every /dev/shm segment, and the
    interpreter must exit without resource_tracker leak warnings (a
    warning means a segment survived to interpreter shutdown)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.run(
        [sys.executable, "-c", _CANCELLED_CAMPAIGN_SCRIPT],
        capture_output=True,
        text=True,
        timeout=240,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "LEFTOVERS:\n" in proc.stdout.replace("\r", "")
    assert "resource_tracker" not in proc.stderr
    assert "leaked shared_memory" not in proc.stderr
