"""The fleet evidence store and its termination-unit interoperability."""

import json
import os

from repro.core.termination import load_persisted
from repro.fleet.evidence_store import EvidenceStore, TemporaryEvidenceStore


def test_merge_counts_only_new(tmp_path):
    store = EvidenceStore(str(tmp_path / "ev.json"))
    assert store.merge({"a", "b"}) == 2
    assert store.merge({"b", "c"}) == 1
    assert store.merge({"a"}) == 0
    assert store.snapshot() == {"a", "b", "c"}
    assert "b" in store and len(store) == 3


def test_store_survives_reload(tmp_path):
    path = str(tmp_path / "ev.json")
    EvidenceStore(path).merge({"sig1", "sig2"})
    reloaded = EvidenceStore(path)
    assert reloaded.snapshot() == {"sig1", "sig2"}


def test_file_format_matches_termination_persistence(tmp_path):
    path = str(tmp_path / "ev.json")
    EvidenceStore(path).merge({"LIB/a.c:1|LIB/main.c:9"})
    # The termination unit can read a store file directly...
    assert load_persisted(path) == {"LIB/a.c:1|LIB/main.c:9"}
    payload = json.load(open(path))
    assert payload["version"] == 1
    assert payload["contexts"] == ["LIB/a.c:1|LIB/main.c:9"]


def test_no_write_when_nothing_new(tmp_path):
    path = str(tmp_path / "ev.json")
    store = EvidenceStore(path)
    store.merge({"a"})
    before = os.stat(path).st_mtime_ns
    os.utime(path, ns=(before - 10_000_000, before - 10_000_000))
    store.merge({"a"})
    assert os.stat(path).st_mtime_ns < before


def test_in_memory_store():
    store = EvidenceStore()
    assert store.merge({"a"}) == 1
    assert store.path is None
    assert store.snapshot() == {"a"}


def test_temporary_store_cleans_up():
    with TemporaryEvidenceStore() as store:
        directory = os.path.dirname(store.path)
        store.merge({"a"})
        assert os.path.exists(store.path)
    assert not os.path.exists(directory)
