"""The fleet evidence store and its termination-unit interoperability."""

import json
import os

from repro.core.termination import load_persisted
from repro.fleet.evidence_store import EvidenceStore, TemporaryEvidenceStore


def test_merge_counts_only_new(tmp_path):
    store = EvidenceStore(str(tmp_path / "ev.json"))
    assert store.merge({"a", "b"}) == 2
    assert store.merge({"b", "c"}) == 1
    assert store.merge({"a"}) == 0
    assert store.snapshot() == {"a", "b", "c"}
    assert "b" in store and len(store) == 3


def test_store_survives_reload(tmp_path):
    path = str(tmp_path / "ev.json")
    EvidenceStore(path).merge({"sig1", "sig2"})
    reloaded = EvidenceStore(path)
    assert reloaded.snapshot() == {"sig1", "sig2"}


def test_file_format_matches_termination_persistence(tmp_path):
    path = str(tmp_path / "ev.json")
    EvidenceStore(path).merge({"LIB/a.c:1|LIB/main.c:9"})
    # The termination unit can read a store file directly...
    assert load_persisted(path) == {"LIB/a.c:1|LIB/main.c:9"}
    payload = json.load(open(path))
    assert payload["version"] == 1
    assert payload["contexts"] == ["LIB/a.c:1|LIB/main.c:9"]


def test_no_write_when_nothing_new(tmp_path):
    path = str(tmp_path / "ev.json")
    store = EvidenceStore(path)
    store.merge({"a"})
    before = os.stat(path).st_mtime_ns
    os.utime(path, ns=(before - 10_000_000, before - 10_000_000))
    store.merge({"a"})
    assert os.stat(path).st_mtime_ns < before


def test_in_memory_store():
    store = EvidenceStore()
    assert store.merge({"a"}) == 1
    assert store.path is None
    assert store.snapshot() == {"a"}


def test_temporary_store_cleans_up():
    with TemporaryEvidenceStore() as store:
        directory = os.path.dirname(store.path)
        store.merge({"a"})
        assert os.path.exists(store.path)
    assert not os.path.exists(directory)


# ----------------------------------------------------------------------
# Incremental merge + concurrent writers/readers
# ----------------------------------------------------------------------
def test_flush_keeps_contexts_sorted_incrementally(tmp_path):
    path = str(tmp_path / "ev.json")
    store = EvidenceStore(path)
    store.absorb({"m", "c"})
    store.absorb({"z", "a"})
    store.absorb({"k"})
    payload = json.load(open(path))
    assert payload["contexts"] == ["a", "c", "k", "m", "z"]
    assert store.snapshot() == {"a", "c", "k", "m", "z"}


def test_absorb_returns_exactly_the_new_signatures(tmp_path):
    store = EvidenceStore(str(tmp_path / "ev.json"))
    assert store.absorb({"a", "b"}) == {"a", "b"}
    assert store.absorb({"b", "c"}) == {"c"}
    assert store.absorb({"a"}) == frozenset()


def test_external_writer_is_unioned_in(tmp_path):
    path = str(tmp_path / "ev.json")
    ours = EvidenceStore(path)
    ours.absorb({"ours-1"})
    theirs = EvidenceStore(path)  # a second coordinator, same file
    new = theirs.absorb({"theirs-1"})
    assert new == {"theirs-1"}  # ours-1 was already on disk
    assert theirs.snapshot() == {"ours-1", "theirs-1"}
    # Our next merge notices the file moved underneath us and unions
    # the other writer's signatures in before flushing.
    ours.absorb({"ours-2"})
    assert ours.snapshot() == {"ours-1", "ours-2", "theirs-1"}
    payload = json.load(open(path))
    assert payload["contexts"] == sorted(["ours-1", "ours-2", "theirs-1"])


def test_external_union_never_drops_either_side(tmp_path):
    path = str(tmp_path / "ev.json")
    left = EvidenceStore(path)
    right = EvidenceStore(path)
    for i in range(10):
        left.absorb({f"left-{i}"})
        right.absorb({f"right-{i}"})
    # right always refreshed before writing, so nothing left wrote is
    # lost; left needs one more refresh to see right's final batch.
    left.absorb({"left-final"})
    expected = (
        {f"left-{i}" for i in range(10)}
        | {f"right-{i}" for i in range(10)}
        | {"left-final"}
    )
    assert left.snapshot() == expected
    assert set(load_persisted(path)) == expected


def test_atomic_writes_under_concurrent_reader(tmp_path):
    """A reader polling the file mid-merge must only ever see a complete,
    valid document (the write-temp+rename contract), and no .tmp file
    may survive."""
    import threading

    path = str(tmp_path / "ev.json")
    store = EvidenceStore(path)
    store.absorb({"seed"})
    failures = []
    done = threading.Event()

    def reader():
        while not done.is_set():
            try:
                payload = json.load(open(path))
            except FileNotFoundError:
                failures.append("file vanished")
                break
            except json.JSONDecodeError as exc:
                failures.append(f"partial write observed: {exc}")
                break
            if payload.get("version") != 1 or "contexts" not in payload:
                failures.append(f"malformed payload: {payload!r}")
                break

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for batch in range(200):
            store.absorb({f"sig-{batch}-{j}" for j in range(5)})
    finally:
        done.set()
        thread.join(timeout=30)
    assert failures == []
    assert len(store) == 1 + 200 * 5
    assert not os.path.exists(path + ".tmp")
