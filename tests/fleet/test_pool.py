"""The worker pool: fan-out, crash retry, timeouts, determinism."""

import dataclasses
import time
from dataclasses import dataclass, field

import pytest

from repro.core import CSODConfig
from repro.fleet.pool import FleetPool, execute_spec
from repro.fleet.specs import (
    OUTCOME_CRASH,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    ExecutionSpec,
)


def specs_for(app, count, evidence=()):
    return [
        ExecutionSpec(app=app, seed=index, index=index, evidence=tuple(evidence))
        for index in range(count)
    ]


def test_execute_spec_returns_plain_data():
    result = execute_spec(ExecutionSpec(app="libtiff", seed=0, index=0))
    assert result.outcome == OUTCOME_OK
    assert result.detected
    assert result.allocations > 0
    assert result.reports and result.reports[0].signature.startswith("over-")
    # Everything in the result must survive pickling (the upload path).
    import pickle

    assert pickle.loads(pickle.dumps(result)) == result


def test_execute_spec_preloads_evidence():
    baseline = execute_spec(ExecutionSpec(app="libtiff", seed=0, index=0))
    assert baseline.new_evidence  # the canary observed the over-write
    replay = execute_spec(
        ExecutionSpec(
            app="libtiff", seed=1, index=1, evidence=baseline.new_evidence
        )
    )
    # Known-bad contexts are watched from the first allocation (§IV-B).
    assert replay.detected_by_watchpoint


def test_inline_pool_matches_direct_execution():
    pool = FleetPool(workers=1)
    results = pool.run(specs_for("libtiff", 3))
    assert [r.index for r in results] == [0, 1, 2]
    assert all(r.outcome == OUTCOME_OK for r in results)
    direct = execute_spec(ExecutionSpec(app="libtiff", seed=1, index=1))
    assert results[1].reports == direct.reports


def test_parallel_pool_matches_inline(
):
    serial = FleetPool(workers=1).run(specs_for("libtiff", 4))
    parallel = FleetPool(workers=2).run(specs_for("libtiff", 4))
    assert [r.index for r in parallel] == [0, 1, 2, 3]
    assert [r.reports for r in parallel] == [r.reports for r in serial]
    assert [r.new_evidence for r in parallel] == [r.new_evidence for r in serial]


def test_crashed_execution_is_retried_then_reported():
    pool = FleetPool(workers=1)
    bad = ExecutionSpec(app="no-such-app", seed=0, index=0)
    results = pool.run([bad])
    assert results[0].outcome == OUTCOME_CRASH
    assert results[0].attempts == 2  # retried once
    assert "no-such-app" in results[0].error
    assert pool.retries == 1


def test_one_bad_spec_never_kills_the_campaign():
    pool = FleetPool(workers=2)
    specs = [
        ExecutionSpec(app="libtiff", seed=0, index=0),
        ExecutionSpec(app="no-such-app", seed=1, index=1),
        ExecutionSpec(app="libtiff", seed=2, index=2),
    ]
    results = pool.run(specs)
    assert [r.index for r in results] == [0, 1, 2]
    assert results[0].outcome == OUTCOME_OK
    assert results[1].outcome == OUTCOME_CRASH
    assert results[2].outcome == OUTCOME_OK


def test_retry_can_be_disabled():
    pool = FleetPool(workers=1, retry_crashed=False)
    results = pool.run([ExecutionSpec(app="no-such-app", seed=0, index=0)])
    assert results[0].outcome == OUTCOME_CRASH
    assert results[0].attempts == 1
    assert pool.retries == 0


def test_timeout_marks_execution_not_campaign():
    # A timeout far below one execution's wall time: the execution is
    # recorded as timed out, and the campaign still returns a result
    # for every spec.
    pool = FleetPool(workers=2, timeout_seconds=1e-5)
    results = pool.run(specs_for("libtiff", 2))
    assert len(results) == 2
    assert results[0].outcome == OUTCOME_TIMEOUT
    assert pool.timeouts >= 1


class _HangingApp:
    """A fake registry app whose run() never returns."""

    def run(self, process):
        while True:
            time.sleep(0.1)


def test_hanging_spec_times_out_and_pool_recovers():
    # Regression: `future.cancel()` cannot cancel a *running* future, so
    # a hung worker used to linger forever (wedging interpreter exit),
    # and timeouts measured from the start of each wait gave later specs
    # unbounded allowances.  Now every spec's deadline runs from its
    # submission and a timeout terminates the worker and rebuilds the
    # pool.
    from repro.workloads.buggy import registry

    registry._app_cache[("hang-forever", 1.0)] = _HangingApp()
    try:
        pool = FleetPool(workers=2, timeout_seconds=2.0)
        specs = [
            ExecutionSpec(app="hang-forever", seed=0, index=0),
            ExecutionSpec(app="libtiff", seed=1, index=1),
            ExecutionSpec(app="libtiff", seed=2, index=2),
        ]
        start = time.monotonic()
        results = pool.run(specs)
        elapsed = time.monotonic() - start
        assert [r.index for r in results] == [0, 1, 2]
        assert results[0].outcome == OUTCOME_TIMEOUT
        assert results[1].outcome == OUTCOME_OK
        assert results[2].outcome == OUTCOME_OK
        assert pool.timeouts == 1
        assert pool.executor_rebuilds == 1
        assert elapsed < 30  # the hang is bounded by its own deadline
    finally:
        registry._app_cache.pop(("hang-forever", 1.0), None)


@dataclass(frozen=True)
class _DerivedConfig(CSODConfig):
    """A config subclass with a derived (non-init) field."""

    fleet_tag: str = "prod"
    cache_key: str = field(init=False, default="")

    def __post_init__(self):
        super().__post_init__()
        object.__setattr__(
            self, "cache_key", f"{self.fleet_tag}:{self.replacement_policy}"
        )


def test_execute_spec_clones_configs_with_derived_fields(tmp_path):
    # Regression: cloning via ``CSODConfig(**config.__dict__)`` passed
    # derived fields back into __init__ (TypeError) and silently dropped
    # the subclass type; dataclasses.replace preserves both.
    config = _DerivedConfig(persistence_path=str(tmp_path / "evidence.jsonl"))
    result = execute_spec(
        ExecutionSpec(app="libtiff", seed=0, index=0, config=config)
    )
    assert result.outcome == OUTCOME_OK
    stripped = dataclasses.replace(config, persistence_path=None)
    assert type(stripped) is _DerivedConfig
    assert stripped.cache_key == "prod:near_fifo"


def test_rejects_negative_workers():
    with pytest.raises(ValueError):
        FleetPool(workers=-1)


def test_rejects_bad_chunk_size():
    with pytest.raises(ValueError):
        FleetPool(workers=2, chunk_size=0)


def test_empty_spec_list():
    assert FleetPool(workers=2).run([]) == []


# ----------------------------------------------------------------------
# Persistent executor
# ----------------------------------------------------------------------
def test_executor_persists_across_waves():
    # One executor per campaign: two waves reuse the same pool of
    # processes, and executor_rebuilds only moves on timeout/breakage.
    with FleetPool(workers=2) as pool:
        first = pool.run(specs_for("libtiff", 2))
        executor = pool.executor
        assert executor is not None
        second = pool.run(
            [
                ExecutionSpec(app="libtiff", seed=2, index=2),
                ExecutionSpec(app="libtiff", seed=3, index=3),
            ]
        )
        assert pool.executor is executor  # identity stable across waves
        assert pool.executor_rebuilds == 0
        assert [r.index for r in first + second] == [0, 1, 2, 3]
        assert all(r.outcome == OUTCOME_OK for r in first + second)
    assert pool.executor is None  # close() tears it down


def test_inline_pool_has_no_executor():
    pool = FleetPool(workers=1)
    pool.run(specs_for("libtiff", 2))
    assert pool.executor is None


# ----------------------------------------------------------------------
# Chunked dispatch
# ----------------------------------------------------------------------
def test_explicit_chunk_size_matches_inline():
    serial = FleetPool(workers=1).run(specs_for("libtiff", 5))
    with FleetPool(workers=2, chunk_size=2) as pool:
        chunked = pool.run(specs_for("libtiff", 5))
    assert [r.index for r in chunked] == [0, 1, 2, 3, 4]
    assert [r.reports for r in chunked] == [r.reports for r in serial]


# ----------------------------------------------------------------------
# Delta evidence broadcast
# ----------------------------------------------------------------------
def test_delta_evidence_reaches_parallel_workers():
    baseline = execute_spec(ExecutionSpec(app="libtiff", seed=0, index=0))
    assert baseline.new_evidence
    with FleetPool(workers=2) as pool:
        pool.advance_evidence(baseline.new_evidence)
        assert pool.evidence_epoch == 1
        results = pool.run(
            [
                ExecutionSpec(app="libtiff", seed=1, index=0),
                ExecutionSpec(app="libtiff", seed=2, index=1),
            ]
        )
    # Known-bad contexts are watched from the first allocation, exactly
    # as if the full evidence tuple had been shipped on each spec.
    assert all(r.detected_by_watchpoint for r in results)
    direct = execute_spec(
        ExecutionSpec(
            app="libtiff", seed=1, index=0, evidence=baseline.new_evidence
        )
    )
    assert results[0].reports == direct.reports


def test_evidence_base_ships_via_initializer():
    baseline = execute_spec(ExecutionSpec(app="libtiff", seed=0, index=0))
    with FleetPool(workers=2) as pool:
        pool.set_evidence_base(baseline.new_evidence)
        results = pool.run([ExecutionSpec(app="libtiff", seed=1, index=0)])
        assert results[0].detected_by_watchpoint
        with pytest.raises(RuntimeError):
            pool.set_evidence_base(())  # too late: workers hold the base


def test_zero_new_signatures_leave_epoch_unchanged():
    pool = FleetPool(workers=2)
    baseline = execute_spec(ExecutionSpec(app="libtiff", seed=0, index=0))
    assert pool.advance_evidence(baseline.new_evidence) == 1
    # A wave that merged nothing must not advance the epoch (the delta
    # payload stays identical, and workers have nothing new to apply).
    assert pool.advance_evidence(()) == 1
    assert pool.advance_evidence(baseline.new_evidence) == 1
    assert pool.evidence_epoch == 1


# ----------------------------------------------------------------------
# Pool-side retries (never inline in the coordinator)
# ----------------------------------------------------------------------
class _CrashOnceApp:
    """Raises on the first run() in a process, succeeds after — and
    records which process executed it."""

    def __init__(self, pid_path):
        self.pid_path = pid_path
        self.crashed = False

    def run(self, process):
        import os

        with open(self.pid_path, "a") as handle:
            handle.write(f"{os.getpid()}\n")
        if not self.crashed:
            self.crashed = True
            raise RuntimeError("transient crash")


def test_crash_retry_runs_in_worker_not_coordinator(tmp_path):
    # Regression: crashed specs used to be re-executed inline in the
    # coordinator, stalling dispatch while workers sat idle.  Retries
    # now happen worker-side (in-chunk) or via pool resubmission.
    import os

    from repro.workloads.buggy import registry

    pid_path = tmp_path / "pids.txt"
    registry._app_cache[("crash-once", 1.0)] = _CrashOnceApp(str(pid_path))
    try:
        with FleetPool(workers=2) as pool:
            specs = [
                ExecutionSpec(app="crash-once", seed=0, index=0),
                ExecutionSpec(app="libtiff", seed=1, index=1),
            ]
            results = pool.run(specs)
        assert results[0].outcome == OUTCOME_OK
        assert results[0].attempts == 2  # retried once, in the worker
        assert results[1].outcome == OUTCOME_OK
        assert pool.retries == 1
        assert pool.executor_rebuilds == 0
        # Both attempts ran in a worker process, never the coordinator.
        pids = {line for line in pid_path.read_text().split() if line}
        assert pids and str(os.getpid()) not in pids
        # The retry's wall-clock is accounted for observability.
        assert len(pool.retry_wall_ms) == 1
        assert pool.retry_wall_ms[0] > 0
    finally:
        registry._app_cache.pop(("crash-once", 1.0), None)
