"""Telemetry: counters, histograms, JSONL round-trip."""

import pytest

from repro.fleet.telemetry import (
    Counter,
    Histogram,
    JsonlEventLog,
    MetricsRegistry,
    read_jsonl,
)


def test_counter_increments():
    counter = Counter("executions")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_decrease():
    with pytest.raises(ValueError):
        Counter("x").inc(-1)


def test_histogram_summary():
    histogram = Histogram("wall_ms")
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 4
    assert summary["mean"] == 2.5
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0
    assert summary["p50"] == 2.0


def test_histogram_percentiles():
    histogram = Histogram("x")
    for value in range(1, 101):
        histogram.observe(value)
    assert histogram.percentile(50) == 50
    assert histogram.percentile(95) == 95
    assert histogram.percentile(100) == 100
    with pytest.raises(ValueError):
        histogram.percentile(101)


def test_empty_histogram():
    histogram = Histogram("x")
    assert histogram.summary() == {"count": 0}
    assert histogram.percentile(50) == 0.0


def test_registry_reuses_instruments():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").inc()
    registry.histogram("h").observe(1)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a": 2}
    assert snapshot["histograms"]["h"]["count"] == 1


def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "telemetry.jsonl")
    with JsonlEventLog(path) as log:
        log.emit("execution", index=0, detected=True)
        log.emit("report", signature="s", count=3)
    events = read_jsonl(path)
    assert events == [
        {"event": "execution", "index": 0, "detected": True},
        {"event": "report", "signature": "s", "count": 3},
    ]


def test_jsonl_append_and_malformed_lines(tmp_path):
    path = str(tmp_path / "telemetry.jsonl")
    with JsonlEventLog(path) as log:
        log.emit("a")
    with open(path, "a") as handle:
        handle.write("not json\n")
    with JsonlEventLog(path) as log:  # append mode: earlier events survive
        log.emit("b")
    events = read_jsonl(path)
    assert [e["event"] for e in events] == ["a", "b"]


def test_in_memory_event_log():
    log = JsonlEventLog()
    log.emit("x", value=1)
    assert log.buffered() == [{"event": "x", "value": 1}]
    assert log.events_written == 1
