"""Telemetry: counters, histograms, JSONL round-trip."""

import pytest

from repro.fleet.telemetry import (
    Counter,
    Histogram,
    JsonlEventLog,
    MetricsRegistry,
    read_jsonl,
)


def test_counter_increments():
    counter = Counter("executions")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_decrease():
    with pytest.raises(ValueError):
        Counter("x").inc(-1)


def test_histogram_summary():
    histogram = Histogram("wall_ms")
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 4
    assert summary["mean"] == 2.5
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0
    assert summary["p50"] == 2.0


def test_histogram_percentiles():
    histogram = Histogram("x")
    for value in range(1, 101):
        histogram.observe(value)
    assert histogram.percentile(50) == 50
    assert histogram.percentile(95) == 95
    assert histogram.percentile(100) == 100
    with pytest.raises(ValueError):
        histogram.percentile(101)


def test_empty_histogram():
    histogram = Histogram("x")
    assert histogram.summary() == {"count": 0}
    assert histogram.percentile(50) == 0.0


def test_registry_reuses_instruments():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").inc()
    registry.histogram("h").observe(1)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a": 2}
    assert snapshot["histograms"]["h"]["count"] == 1


def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "telemetry.jsonl")
    with JsonlEventLog(path) as log:
        log.emit("execution", index=0, detected=True)
        log.emit("report", signature="s", count=3)
    events = read_jsonl(path)
    assert events == [
        {"event": "execution", "index": 0, "detected": True},
        {"event": "report", "signature": "s", "count": 3},
    ]


def test_jsonl_append_and_malformed_lines(tmp_path):
    path = str(tmp_path / "telemetry.jsonl")
    with JsonlEventLog(path) as log:
        log.emit("a")
    with open(path, "a") as handle:
        handle.write("not json\n")
    with JsonlEventLog(path) as log:  # append mode: earlier events survive
        log.emit("b")
    events = read_jsonl(path)
    assert [e["event"] for e in events] == ["a", "b"]


def test_in_memory_event_log():
    log = JsonlEventLog()
    log.emit("x", value=1)
    assert log.buffered() == [{"event": "x", "value": 1}]
    assert log.events_written == 1


# ----------------------------------------------------------------------
# Line-atomic writes + tail reading (live consumers)
# ----------------------------------------------------------------------
def test_tail_jsonl_incremental_reads(tmp_path):
    from repro.fleet.telemetry import tail_jsonl

    path = str(tmp_path / "telemetry.jsonl")
    with JsonlEventLog(path) as log:
        log.emit("a", n=1)
        events, offset = tail_jsonl(path)
        assert [e["event"] for e in events] == ["a"]
        log.emit("b", n=2)
        log.emit("c", n=3)
        more, offset = tail_jsonl(path, offset)
        assert [e["event"] for e in more] == ["b", "c"]
        empty, offset_again = tail_jsonl(path, offset)
        assert empty == [] and offset_again == offset


def test_tail_jsonl_missing_file_is_empty():
    from repro.fleet.telemetry import tail_jsonl

    events, offset = tail_jsonl("/nonexistent/telemetry.jsonl", 0)
    assert events == [] and offset == 0


def test_tail_jsonl_tolerates_torn_final_line(tmp_path):
    """A reader racing the writer only ever parses complete lines."""
    from repro.fleet.telemetry import tail_jsonl

    path = str(tmp_path / "telemetry.jsonl")
    with JsonlEventLog(path) as log:
        log.emit("a", n=1)
    # Simulate a write caught mid-line (torn by the OS or a crash).
    with open(path, "ab") as handle:
        handle.write(b'{"event": "b", "n"')
    events, offset = tail_jsonl(path)
    assert [e["event"] for e in events] == ["a"]
    # The torn tail finishes; the next read picks the line up whole.
    with open(path, "ab") as handle:
        handle.write(b': 2}\n')
    more, _ = tail_jsonl(path, offset)
    assert [e["event"] for e in more] == ["b"]


def test_jsonl_concurrent_writer_and_tail_reader(tmp_path):
    """One write() per event: a live tail never sees interleaved halves."""
    import threading

    from repro.fleet.telemetry import tail_jsonl

    path = str(tmp_path / "telemetry.jsonl")
    total = 400
    seen = []
    stop = threading.Event()

    def reader():
        offset = 0
        while True:
            # Sample the flag BEFORE the read: an empty read only proves
            # completion if the writer had already finished going in.
            writer_done = stop.is_set()
            events, offset = tail_jsonl(path, offset)
            seen.extend(events)
            if writer_done and not events:
                return

    thread = threading.Thread(target=reader)
    with JsonlEventLog(path) as log:
        thread.start()
        for index in range(total):
            # A payload long enough that a non-atomic write would tear.
            log.emit("tick", index=index, payload="x" * 256)
    stop.set()
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert [e["index"] for e in seen] == list(range(total))
    assert all(len(e["payload"]) == 256 for e in seen)


def test_jsonl_multithreaded_writers_produce_whole_lines(tmp_path):
    """Unbuffered single-write appends stay line-atomic across threads."""
    import threading

    path = str(tmp_path / "telemetry.jsonl")
    with JsonlEventLog(path) as log:

        def write_burst(tag):
            for index in range(100):
                log.emit("burst", tag=tag, index=index, pad="y" * 128)

        threads = [
            threading.Thread(target=write_burst, args=(tag,))
            for tag in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    events = read_jsonl(path)
    assert len(events) == 400  # no torn or merged lines
    for tag in range(4):
        indices = [e["index"] for e in events if e["tag"] == tag]
        assert indices == list(range(100))  # per-thread order preserved
