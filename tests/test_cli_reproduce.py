"""The one-command reproduction driver."""

import os

from repro.cli import main


def test_reproduce_writes_all_artifacts(tmp_path, capsys):
    out = str(tmp_path / "artifacts")
    assert main(["reproduce", "--out", out, "--runs", "3", "--cap", "400"]) == 0
    names = sorted(os.listdir(out))
    assert names == [
        "evidence.txt",
        "figure6.txt",
        "figure7.txt",
        "table1.txt",
        "table2.txt",
        "table3.txt",
        "table4.txt",
        "table5.txt",
    ]
    table2 = (tmp_path / "artifacts" / "table2.txt").read_text()
    assert "AVERAGE" in table2
    figure7 = (tmp_path / "artifacts" / "figure7.txt").read_text()
    assert "clipped" in figure7  # the chart rendering is included
