"""CLI coverage of the experiment subcommands."""

import pytest

from repro.cli import main


def test_table3(capsys):
    assert main(["table", "3"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out and "mysql" in out


def test_table4_small_cap(capsys):
    assert main(["table", "4", "--cap", "500"]) == 0
    out = capsys.readouterr().out
    assert "Table IV" in out and "WT" in out


def test_figure7_small_cap(capsys):
    assert main(["figure7", "--cap", "300"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "AVERAGE" in out


def test_evidence_subcommand(capsys):
    assert main(["evidence", "--attempts", "4"]) == 0
    out = capsys.readouterr().out
    assert "guarantee" in out


def test_run_with_policy(capsys):
    assert main(["run", "libdwarf", "--policy", "naive", "--seed", "2"]) == 0
    assert "detected: True" in capsys.readouterr().out


def test_effectiveness_multiple_apps(capsys):
    assert main(["effectiveness", "gzip", "polymorph", "--runs", "2"]) == 0
    out = capsys.readouterr().out
    assert "gzip" in out and "polymorph" in out
