"""The GWP-ASan-style guard-page baseline."""

import pytest

from repro.callstack.frames import CallSite
from repro.errors import ReproError, SegmentationFault
from repro.guardpage import GuardPageConfig, GuardPageReport, GuardPageRuntime
from repro.machine.address_space import PAGE_SIZE
from repro.workloads.base import SimProcess


def make(sample_every=1, seed=3, **kwargs):
    process = SimProcess(seed=seed)
    runtime = GuardPageRuntime(
        process.machine,
        process.heap,
        GuardPageConfig(sample_every=sample_every, **kwargs),
        seed=seed,
    )
    return process, runtime


def alloc(process, size=64, name="alloc_site"):
    site = CallSite("APP", "a.c", 1, name)
    try:
        process.symbols.add(site)
    except ValueError:
        pass
    with process.main_thread.call_stack.calling(site):
        return process.heap.malloc(process.main_thread, size)


def test_config_validation():
    with pytest.raises(ReproError):
        GuardPageConfig(sample_every=0)
    with pytest.raises(ReproError):
        GuardPageConfig(max_guarded=0)


def test_sampled_object_is_usable():
    process, runtime = make(sample_every=1)
    address = alloc(process, 64)
    assert runtime.guarded_live() == 1
    process.machine.cpu.store(process.main_thread, address, b"x" * 64)
    assert runtime.usable_size(address) == 64


def test_overflow_into_guard_page_faults_and_reports():
    process, runtime = make(sample_every=1)
    address = alloc(process, 64)  # 64 is 16-aligned: no slack
    with pytest.raises(SegmentationFault):
        process.machine.cpu.store(process.main_thread, address + 64, b"!" * 8)
    assert runtime.detected
    report = runtime.reports[0]
    assert report.kind == "overflow"
    assert report.object_address == address
    assert "a.c:1" in str(report.allocation_context)


def test_unsampled_allocations_pass_through():
    process, runtime = make(sample_every=10**9)
    address = alloc(process, 64)
    assert runtime.guarded_live() == 0
    # Overflow goes undetected — the uniform-sampling blind spot.
    process.machine.cpu.store(process.main_thread, address + 64, b"!" * 8)
    assert not runtime.detected
    process.heap.free(process.main_thread, address)


def test_slack_hides_small_overflows_of_unaligned_sizes():
    """The classic GWP-ASan imprecision: right-alignment slack."""
    process, runtime = make(sample_every=1)
    address = alloc(process, 24)  # 8 bytes of slack before the guard
    process.machine.cpu.store(process.main_thread, address + 24, b"!" * 8)
    assert not runtime.detected  # landed in the slack, not the guard


def test_use_after_free_faults():
    process, runtime = make(sample_every=1)
    address = alloc(process, 64)
    process.heap.free(process.main_thread, address)
    with pytest.raises(SegmentationFault):
        process.machine.cpu.load(process.main_thread, address, 8)
    assert runtime.reports[0].kind == "use-after-free"


def test_pool_cap_limits_guarded_objects():
    process, runtime = make(sample_every=1, max_guarded=2)
    for _ in range(5):
        alloc(process, 64)
    assert runtime.guarded_live() == 2


def test_memory_overhead_counts_pages():
    process, runtime = make(sample_every=1)
    a = alloc(process, 64)
    alloc(process, 64)
    process.heap.free(process.main_thread, a)  # quarantined page
    assert runtime.memory_overhead_bytes() == 2 * PAGE_SIZE


def test_large_objects_never_guarded():
    process, runtime = make(sample_every=1)
    site = CallSite("APP", "big.c", 1, "big")
    with process.main_thread.call_stack.calling(site):
        process.heap.malloc(process.main_thread, PAGE_SIZE + 1)
    assert runtime.guarded_live() == 0


def test_detection_rate_tracks_sample_rate():
    """Uniform sampling: detection per execution ~ 1/sample_every."""
    from repro.workloads.buggy import app_for

    hits = 0
    runs = 30
    for seed in range(runs):
        process = SimProcess(seed=seed)
        runtime = GuardPageRuntime(
            process.machine,
            process.heap,
            GuardPageConfig(sample_every=50),
            seed=seed,
        )
        try:
            app_for("memcached").run(process)
        except SegmentationFault:
            pass
        runtime.shutdown()
        hits += runtime.detected
    # 442 allocations, 1/50 sampling, 16-slot pool: the victim is
    # sampled only occasionally — far below CSOD's ~15% on this app.
    assert hits <= runs * 0.25


def test_shutdown_restores_interposer():
    process, runtime = make()
    runtime.shutdown()
    address = alloc(process, 32)
    assert process.allocator.is_live(address)
