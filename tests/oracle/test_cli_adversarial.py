"""The ``repro adversarial`` verb: validation and the solved pipeline."""

import json

import pytest

from repro.cli import main


# ----------------------------------------------------------------------
# Flag validation: exit code 2, message names the flag
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "argv, flag",
    [
        (["adversarial", "--workers", "0"], "--workers"),
        (["adversarial", "--executions", "0"], "--executions"),
        (["adversarial", "--node-budget", "0"], "--node-budget"),
        (["adversarial", "--targets", ""], "--targets"),
        (["adversarial", "--targets", "no-such-corner"], "--targets"),
        (["adversarial", "--targets", "floor-pin,bogus"], "--targets"),
    ],
)
def test_invalid_values_fail_naming_the_flag(capsys, argv, flag):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert flag in err
    assert "repro adversarial: error:" in err


def test_unknown_target_error_lists_the_corners(capsys):
    assert main(["adversarial", "--targets", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "floor-pin" in err and "gwp-countdown" in err
    assert "bogus" in err


def test_out_path_that_is_a_file_rejected(capsys, tmp_path):
    blocker = tmp_path / "occupied"
    blocker.write_text("not a directory\n")
    assert main(["adversarial", "--out", str(blocker)]) == 2
    err = capsys.readouterr().err
    assert "--out" in err and "repro adversarial: error:" in err


# ----------------------------------------------------------------------
# End to end (cheap corners)
# ----------------------------------------------------------------------
def test_cheap_corner_campaign_is_clean_and_writes_outputs(capsys, tmp_path):
    out = tmp_path / "adv-out"
    code = main(
        [
            "adversarial",
            "--seed",
            "0",
            "--targets",
            "floor-pin,watch-exhaust",
            "--executions",
            "1",
            "--out",
            str(out),
        ]
    )
    captured = capsys.readouterr().out
    assert code == 0  # solved, corners reached, 0 unexplained, 0 FPs
    assert "floor-pin" in captured and "corner reached" in captured
    scorecard = json.loads((out / "scorecard_adversarial.json").read_text())
    assert set(scorecard["targets"]) == {"floor-pin", "watch-exhaust"}
    for block in scorecard["targets"].values():
        assert block["solution"]["solved"]
        assert block["corner"]["reached"]
    lines = (out / "telemetry.jsonl").read_text().splitlines()
    events = [json.loads(line)["event"] for line in lines]
    assert "adversarial_scorecard" in events


def test_submissions_accept_adv_names():
    from repro.service.queue import CampaignSubmission

    CampaignSubmission(app="adv:s0:tfloor-pin", executions=1).validate()


def test_submissions_reject_malformed_adv_names():
    from repro.errors import ServiceError
    from repro.service.queue import CampaignSubmission

    with pytest.raises(ServiceError) as excinfo:
        CampaignSubmission(app="adv:s0:tnot-a-corner", executions=1).validate()
    assert "app:" in str(excinfo.value)
    with pytest.raises(ServiceError) as excinfo:
        CampaignSubmission(app="advent-calendar", executions=1).validate()
    assert "adv:s<seed>:t<target>" in str(excinfo.value)
