"""The five pre-existing arms still produce byte-identical scorecards.

The golden file was captured before the detector registry existed.  If
the refactor changed a single config default, classification branch, or
ordering decision for the legacy arms, these bytes move.  The golden's
settings block predates the ``arms`` field, so the test injects the
now-always-emitted key before comparing.
"""

import json
from pathlib import Path

import pytest

from repro.oracle.runner import OracleSettings, run_oracle
from repro.oracle.scorecard import render_scorecard

GOLDEN = Path(__file__).parent / "golden" / "scorecard_legacy5.json"
LEGACY5 = ("csod", "csod-random", "csod-noevidence", "asan", "guardpage")
LEGACY_MIX = {
    defect: 1.0
    for defect in (
        "over-read",
        "over-write",
        "off-by-n",
        "underflow",
        "uaf",
        "benign",
    )
}


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_legacy_five_arm_scorecard_is_byte_identical(workers):
    golden = json.loads(GOLDEN.read_text())
    golden["settings"]["arms"] = list(LEGACY5)
    result = run_oracle(
        OracleSettings(
            budget=12,
            seed=3,
            executions_per_app=2,
            defect_mix=dict(LEGACY_MIX),
            workers=workers,
            arms=LEGACY5,
        )
    )
    assert render_scorecard(result.scorecard) == render_scorecard(golden)
