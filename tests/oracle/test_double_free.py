"""The double-free defect class, end to end across all seven arms."""

import pytest

from repro.fleet.pool import execute_spec
from repro.fleet.specs import ExecutionSpec
from repro.oracle.generator import generate
from repro.oracle.grammar import (
    ALL_ARMS,
    ARM_ASAN,
    ARM_CSOD,
    ARM_CSOD_NOEVIDENCE,
    ARM_CSOD_RANDOM,
    ARM_DOUBLETAKE,
    ARM_GUARDPAGE,
    ARM_GWP_ASAN,
    CAP_DETERMINISTIC,
    CAP_NONE,
    DEFECT_DOUBLE_FREE,
    expectations,
)
from repro.oracle.harness import classify_csod_results, observe_app
from repro.oracle.invariants import probe_invariants
from repro.oracle.runner import arm_configs


@pytest.fixture(scope="module")
def program():
    return generate(seed=4, index=0, defect=DEFECT_DOUBLE_FREE)


def test_manifest_shape(program):
    truth = program.truth
    assert truth.defect == DEFECT_DOUBLE_FREE
    assert truth.access_kind == "free"
    assert truth.access_length == 0
    assert not truth.benign
    assert set(truth.expected) == set(ALL_ARMS)


def test_capability_matrix(program):
    truth = program.truth
    # The second free hits surviving state in every arm but one.
    assert truth.capability(ARM_CSOD) == CAP_DETERMINISTIC
    assert truth.capability(ARM_CSOD_RANDOM) == CAP_DETERMINISTIC
    assert truth.capability(ARM_ASAN) == CAP_DETERMINISTIC
    assert truth.capability(ARM_GUARDPAGE) == CAP_DETERMINISTIC
    assert truth.capability(ARM_GWP_ASAN) == CAP_DETERMINISTIC
    assert truth.capability(ARM_DOUBLETAKE) == CAP_DETERMINISTIC
    # Without the 32-byte header there is nothing to diagnose from.
    assert truth.capability(ARM_CSOD_NOEVIDENCE) == CAP_NONE


def test_asan_catches_double_free_even_in_library_code():
    # ASan's free interposition is allocator-side, not compiler-side:
    # uninstrumented modules do not dodge it.
    expected = expectations(
        DEFECT_DOUBLE_FREE, "free", 0, 0, True, 64
    )
    assert expected[ARM_ASAN].capability == CAP_DETERMINISTIC


def test_inline_arms_detect_with_zero_false_positives(program):
    obs = observe_app(program, program.base_seed)
    for arm in (ARM_ASAN, ARM_GUARDPAGE, ARM_GWP_ASAN, ARM_DOUBLETAKE):
        observation = obs.arms[arm]
        assert observation.detected, arm
        assert observation.fp_reports == 0, arm
        assert "double-free" in observation.kinds, arm


def test_csod_header_state_diagnoses_the_second_free(program):
    configs = arm_configs()
    result = execute_spec(
        ExecutionSpec(
            app=program.name,
            seed=program.base_seed,
            index=0,
            config=configs[ARM_CSOD],
        )
    )
    observation = classify_csod_results(program, ARM_CSOD, [result])
    assert observation.detected
    assert observation.fp_reports == 0
    assert any("double-free" in kind for kind in observation.kinds)


def test_noevidence_arm_sees_nothing(program):
    configs = arm_configs()
    result = execute_spec(
        ExecutionSpec(
            app=program.name,
            seed=program.base_seed,
            index=0,
            config=configs[ARM_CSOD_NOEVIDENCE],
        )
    )
    observation = classify_csod_results(
        program, ARM_CSOD_NOEVIDENCE, [result]
    )
    assert not observation.detected
    assert observation.fp_reports == 0


def test_invariant_probe_survives_the_allocator_abort(program):
    configs = arm_configs()
    probe = probe_invariants(
        program.name,
        program.base_seed,
        config=configs[ARM_CSOD],
        victim_marker=program.truth.victim_marker,
    )
    assert probe.ok
    assert probe.detected


def test_generation_is_deterministic(program):
    again = generate(seed=4, index=0, defect=DEFECT_DOUBLE_FREE)
    assert again.name == program.name
    assert again.truth.to_dict() == program.truth.to_dict()
