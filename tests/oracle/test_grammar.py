"""The defect taxonomy and the capability matrix."""

import pytest

from repro.errors import WorkloadError
from repro.oracle import grammar
from repro.oracle.grammar import (
    ALL_ARMS,
    ALL_DEFECTS,
    ARM_ASAN,
    ARM_CSOD,
    ARM_CSOD_NOEVIDENCE,
    ARM_CSOD_RANDOM,
    ARM_GUARDPAGE,
    CAP_DETERMINISTIC,
    CAP_INCIDENTAL,
    CAP_NONE,
    CAP_SAMPLED,
    DEFECT_BENIGN,
    DEFECT_OFF_BY_N,
    DEFECT_OVER_READ,
    DEFECT_OVER_WRITE,
    DEFECT_UAF,
    DEFECT_UNDERFLOW,
    expectations,
    guard_slack,
)


# ----------------------------------------------------------------------
# The grammar's geometry constants must track the real runtimes
# ----------------------------------------------------------------------
def test_geometry_constants_match_the_runtimes():
    from repro.heap.layout import CANARY_SIZE
    from repro.heap.size_classes import MIN_ALIGNMENT

    assert grammar.CANARY_BYTES == CANARY_SIZE
    assert grammar.GUARD_ALIGNMENT == MIN_ALIGNMENT
    assert grammar.WATCH_WORD_BYTES == 8  # one debug-register watch


def test_guard_slack_is_the_alignment_remainder():
    assert guard_slack(16) == 0
    assert guard_slack(24) == 8
    assert guard_slack(48) == 0
    for size in range(16, 256):
        assert 0 <= guard_slack(size) < grammar.GUARD_ALIGNMENT
        assert (size + guard_slack(size)) % grammar.GUARD_ALIGNMENT == 0


# ----------------------------------------------------------------------
# Capability matrix
# ----------------------------------------------------------------------
def matrix(defect, kind="read", offset=0, length=8, library=False, size=64):
    return expectations(defect, kind, offset, length, library, size)


def test_every_arm_gets_an_expectation():
    for defect in ALL_DEFECTS:
        offset = {"underflow": -72, "uaf": -64, "benign": -16}.get(defect, 0)
        expected = matrix(defect, offset=offset)
        assert set(expected) == set(ALL_ARMS)


def test_benign_is_uncatchable_everywhere():
    expected = matrix(DEFECT_BENIGN, offset=-16)
    for arm in ALL_ARMS:
        assert expected[arm].capability == CAP_NONE


def test_overflow_write_matrix():
    expected = matrix(DEFECT_OVER_WRITE, kind="write")
    assert expected[ARM_ASAN].capability == CAP_DETERMINISTIC
    # An 8-byte write at offset 0 crosses the guard for slack-0 sizes.
    assert expected[ARM_GUARDPAGE].capability == CAP_DETERMINISTIC
    # The canary makes boundary-word writes deterministic in evidence
    # mode but only sampled without it.
    assert expected[ARM_CSOD].capability == CAP_DETERMINISTIC
    assert expected[ARM_CSOD_RANDOM].capability == CAP_DETERMINISTIC
    assert expected[ARM_CSOD_NOEVIDENCE].capability == CAP_SAMPLED


def test_overflow_read_is_sampled_under_csod():
    expected = matrix(DEFECT_OVER_READ, kind="read")
    assert expected[ARM_CSOD].capability == CAP_SAMPLED
    assert expected[ARM_CSOD_NOEVIDENCE].capability == CAP_SAMPLED
    assert expected[ARM_ASAN].capability == CAP_DETERMINISTIC


def test_library_defects_are_invisible_to_asan_only():
    expected = matrix(DEFECT_OVER_WRITE, kind="write", library=True)
    assert expected[ARM_ASAN].capability == CAP_NONE
    assert ".SO" in expected[ARM_ASAN].reason or "uninstrumented" in (
        expected[ARM_ASAN].reason
    )
    assert expected[ARM_GUARDPAGE].capability == CAP_DETERMINISTIC
    assert expected[ARM_CSOD].capability == CAP_DETERMINISTIC


def test_off_by_n_within_slack_evades_the_guard():
    # size 24 leaves 8 bytes of alignment slack; a 4-byte poke at the
    # boundary fits inside it.
    expected = matrix(DEFECT_OFF_BY_N, kind="write", length=4, size=24)
    assert guard_slack(24) == 8
    assert expected[ARM_GUARDPAGE].capability == CAP_NONE
    # ASan's 16-byte redzone still catches it.
    assert expected[ARM_ASAN].capability == CAP_DETERMINISTIC
    # It overlaps the boundary word, so the canary still catches it.
    assert expected[ARM_CSOD].capability == CAP_DETERMINISTIC


def test_underflow_matrix():
    expected = matrix(DEFECT_UNDERFLOW, offset=-72, size=64)
    assert expected[ARM_ASAN].capability == CAP_DETERMINISTIC
    assert expected[ARM_GUARDPAGE].capability == CAP_NONE
    assert expected[ARM_CSOD].capability == CAP_NONE
    # Raw-heap adjacency: the previous object's boundary word may
    # coincide with the underflowed bytes.
    assert expected[ARM_CSOD_NOEVIDENCE].capability == CAP_INCIDENTAL


def test_uaf_matrix():
    expected = matrix(DEFECT_UAF, offset=-64, size=64)
    assert expected[ARM_ASAN].capability == CAP_DETERMINISTIC
    assert expected[ARM_GUARDPAGE].capability == CAP_DETERMINISTIC
    assert expected[ARM_CSOD].capability == CAP_NONE
    assert expected[ARM_CSOD_NOEVIDENCE].capability == CAP_INCIDENTAL


def test_unknown_defect_rejected():
    with pytest.raises(WorkloadError):
        expectations("wild-write", "read", 0, 8, False, 64)


def test_ground_truth_to_dict_sorts_arms():
    from repro.oracle.generator import generate

    truth = generate(3, 1, DEFECT_OVER_READ).truth
    payload = truth.to_dict()
    assert list(payload["expected"]) == sorted(payload["expected"])
    assert payload["defect"] == DEFECT_OVER_READ
    assert payload["victim_marker"].endswith("/alloc.c:500")
