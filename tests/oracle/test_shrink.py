"""Mismatch shrinking through the triage bisector."""

from repro.oracle import OracleSettings, run_oracle
from repro.oracle.generator import parse_name
from repro.oracle.shrink import shrink_app_mismatch


def test_seeded_mismatch_is_auto_shrunk_to_a_minimal_repro():
    # Budget 12 at seed 7 seeds in-library defects: CSOD catches them,
    # ASan (uninstrumented .SO) cannot — a guaranteed cross-detector
    # mismatch with CSOD reports to bisect.
    run = run_oracle(
        OracleSettings(
            budget=12, seed=7, workers=1, executions_per_app=2, shrink=1
        )
    )
    assert run.mismatches, "campaign produced no mismatches to shrink"
    assert run.shrunk, "no mismatch was shrunk"
    repro = run.shrunk[0]
    assert repro.verified
    assert repro.seed_independent
    # The minimal repro is itself a generated program, smaller than the
    # original (the bisector halved the schedule scale).
    parse_name(repro.app)  # still a valid oracle name
    assert repro.scale is not None and repro.scale < 1.0
    # And it rides the fleet like any other spec.
    from repro.fleet.pool import execute_spec

    result = execute_spec(repro.to_spec())
    assert result.detected


def test_shrink_returns_none_without_reports():
    assert shrink_app_mismatch("oracle:s1:i1:benign", []) is None
