"""End-to-end conformance for the two newest defect classes.

``realloc-shrink-over-read`` (a read past the post-shrink boundary into
bytes the object used to own) and ``cross-thread-uaf`` (free on one
thread, use on another) complete the taxonomy; this file pins them into
the scorecard's defect axis and checks the results are byte-identical
however the campaign is parallelised.
"""

import pytest

from repro.oracle import OracleSettings, render_scorecard, run_oracle
from repro.oracle.grammar import (
    ALL_DEFECTS,
    DEFECT_CROSS_THREAD_UAF,
    DEFECT_REALLOC_SHRINK,
    expectations,
)
from repro.oracle.runner import defect_sequence

NEW_DEFECTS = (DEFECT_REALLOC_SHRINK, DEFECT_CROSS_THREAD_UAF)

SETTINGS = OracleSettings(
    budget=4,
    seed=3,
    workers=1,
    executions_per_app=2,
    defect_mix={DEFECT_REALLOC_SHRINK: 1, DEFECT_CROSS_THREAD_UAF: 1},
)


@pytest.fixture(scope="module")
def campaign():
    return run_oracle(SETTINGS)


def test_new_defects_are_registered():
    for defect in NEW_DEFECTS:
        assert defect in ALL_DEFECTS
    # Uniform apportionment reaches them without any explicit mix.
    sequence = defect_sequence(2 * len(ALL_DEFECTS))
    for defect in NEW_DEFECTS:
        assert sequence.count(defect) == 2


def test_expectations_cover_all_seven_arms():
    for defect in NEW_DEFECTS:
        expected = expectations(
            defect,
            access_kind="read" if defect == DEFECT_REALLOC_SHRINK else "write",
            access_offset=0,
            access_length=8,
            in_library=False,
            victim_size=64,
        )
        assert len(expected) == 7, defect


def test_defect_axis_has_both_classes_for_every_arm(campaign):
    scorecard = campaign.scorecard
    assert scorecard["programs"]["by_defect"] == {
        DEFECT_CROSS_THREAD_UAF: 2,
        DEFECT_REALLOC_SHRINK: 2,
    }
    for arm, by_defect in scorecard["conformance"].items():
        for defect in NEW_DEFECTS:
            assert defect in by_defect, (arm, defect)
            assert by_defect[defect]["apps"] == 2


def test_new_defect_campaign_is_clean(campaign):
    scorecard = campaign.scorecard
    assert scorecard["mismatches"]["unexplained"] == 0
    for arm in scorecard["arms"].values():
        assert arm["fp_reports"] == 0
    inv = scorecard["csod_invariants"]
    assert not inv["armed_violations"]
    assert not inv["monotonic_violations"]
    assert inv["fn_attribution"]["logic"] == 0


@pytest.mark.parametrize("workers", (2, 4))
def test_scorecard_byte_identical_across_worker_counts(campaign, workers):
    parallel = run_oracle(
        OracleSettings(
            budget=SETTINGS.budget,
            seed=SETTINGS.seed,
            workers=workers,
            executions_per_app=SETTINGS.executions_per_app,
            defect_mix=SETTINGS.defect_mix,
        )
    )
    assert render_scorecard(parallel.scorecard) == render_scorecard(
        campaign.scorecard
    )
