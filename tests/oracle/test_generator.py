"""The seeded generator: name codec, determinism, registry resolution."""

import pytest

from repro.errors import DoubleFreeError, WorkloadError
from repro.oracle.generator import (
    OracleApp,
    encode_name,
    generate,
    oracle_app_from_name,
    parse_name,
    program_from_name,
)
from repro.oracle.grammar import ALL_DEFECTS, DEFECT_UAF
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for


# ----------------------------------------------------------------------
# Name codec
# ----------------------------------------------------------------------
def test_name_roundtrip():
    for defect in ALL_DEFECTS:
        name = encode_name(11, 3, defect)
        assert parse_name(name) == (11, 3, defect)


@pytest.mark.parametrize(
    "bad",
    [
        "oracle:s1:i2",  # missing defect
        "oracle:1:2:over-read",  # missing s/i markers
        "oracle:sx:i2:over-read",  # non-integer seed
        "oracle:s1:i2:wild-write",  # unknown defect
        "oracle:s-1:i2:over-read",  # negative seed
        "fleet:s1:i2:over-read",  # wrong prefix
    ],
)
def test_malformed_names_rejected(bad):
    with pytest.raises(WorkloadError):
        parse_name(bad)


# ----------------------------------------------------------------------
# Determinism: the name is the program
# ----------------------------------------------------------------------
def test_generate_is_deterministic():
    a = generate(7, 4, "over-write")
    b = generate(7, 4, "over-write")
    assert a.spec == b.spec
    assert a.truth.to_dict() == b.truth.to_dict()
    assert a.base_seed == b.base_seed


def test_programs_differ_across_indexes():
    specs = {generate(7, i, "over-read").spec for i in range(6)}
    assert len(specs) > 1  # the genome actually varies the structure


def test_rebuild_from_name_matches():
    program = generate(5, 2, "underflow")
    rebuilt = program_from_name(program.name)
    assert rebuilt.spec == program.spec
    assert rebuilt.truth.to_dict() == program.truth.to_dict()


def test_registry_resolves_oracle_names():
    name = encode_name(9, 0, "over-read")
    app = app_for(name)
    assert isinstance(app, OracleApp)
    assert app.spec.name == name
    # Cached: the same object comes back (fleet workers rely on this).
    assert app_for(name) is app


def test_scaled_rebuild_preserves_the_defect_class():
    name = encode_name(9, 1, "underflow")
    full = oracle_app_from_name(name)
    shrunk = oracle_app_from_name(name, scale=0.5)
    assert shrunk.spec.total_allocations < full.spec.total_allocations
    assert shrunk.spec.defect == full.spec.defect == "underflow"
    # Size-relative geometry re-resolved against the shrunk schedule.
    result = shrunk.run(SimProcess(seed=1))
    assert result.overflow_performed


# ----------------------------------------------------------------------
# The programs actually run (every defect class)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("defect", ALL_DEFECTS)
def test_every_defect_class_executes(defect):
    program = generate(3, 0, defect)
    if defect == "double-free":
        # On a bare heap the second free is an allocator abort — the
        # defect manifesting is the proof of execution here.
        with pytest.raises(DoubleFreeError):
            program.app().run(SimProcess(seed=program.base_seed))
        return
    result = program.app().run(SimProcess(seed=program.base_seed))
    assert result.allocations == program.spec.total_allocations
    assert result.overflow_performed


def test_uaf_frees_the_victim_before_the_access():
    program = generate(3, 0, DEFECT_UAF)
    assert program.spec.free_before_access
    process = SimProcess(seed=program.base_seed)
    result = program.app().run(process)
    # The victim was freed exactly once (pre-access), not double-freed
    # at teardown: a double free would have raised in the allocator.
    assert result.overflow_performed


def test_truth_offsets_are_size_relative():
    for defect, check in [
        ("over-read", lambda t: t.access_offset == 0),
        ("underflow", lambda t: t.access_offset == -(t.victim_size + 8)),
        ("uaf", lambda t: t.access_offset == -t.victim_size),
        ("benign", lambda t: t.access_offset == -16),
    ]:
        truth = generate(5, 1, defect).truth
        assert check(truth), (defect, truth.access_offset, truth.victim_size)
