"""Seed-sweep determinism: identical seeds, byte-identical reports.

The fleet's wave determinism and the oracle's scorecard determinism
both rest on a lower-level property: one generated app, executed at a
given seed, serialises to exactly the same report bytes in any process.
This sweep pins it directly — 25 seeds, two separate OS processes,
SHA-256 over the concatenated serialised reports.
"""

import hashlib
import json
import os
import subprocess
import sys

import repro
from repro.core.config import CSODConfig
from repro.fleet.pool import execute_spec
from repro.fleet.specs import ExecutionSpec

APP = "oracle:s7:i1:over-write"
# The cheapest solved adversarial corner (16 allocations): sweeps must
# stay fast, and floor-pin exercises the solver->registry->fleet path.
ADV_APP = "adv:s0:tfloor-pin"
SEEDS = 25

_SWEEP_SCRIPT = r"""
import dataclasses, hashlib, json, sys
from repro.core.config import CSODConfig
from repro.fleet.pool import execute_spec
from repro.fleet.specs import ExecutionSpec

app, seeds = sys.argv[1], int(sys.argv[2])
digest = hashlib.sha256()
for seed in range(seeds):
    result = execute_spec(
        ExecutionSpec(app=app, seed=seed, index=seed, config=CSODConfig())
    )
    payload = {
        "seed": seed,
        "detected": result.detected,
        "reports": [dataclasses.asdict(r) for r in result.reports],
        "new_evidence": list(result.new_evidence),
    }
    digest.update(json.dumps(payload, sort_keys=True).encode())
print(digest.hexdigest())
"""


def _sweep_in_subprocess(app=APP, seeds=SEEDS):
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _SWEEP_SCRIPT, app, str(seeds)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip()


def test_identical_seeds_are_byte_identical_across_processes():
    first = _sweep_in_subprocess()
    second = _sweep_in_subprocess()
    assert first == second
    assert len(first) == 64  # a real SHA-256, not an empty line


def test_in_process_sweep_matches_itself_and_varies_by_seed():
    import dataclasses

    def run(seed):
        result = execute_spec(
            ExecutionSpec(
                app=APP, seed=seed, index=seed, config=CSODConfig()
            )
        )
        return json.dumps(
            [dataclasses.asdict(r) for r in result.reports], sort_keys=True
        )

    sweeps = [run(seed) for seed in range(SEEDS)]
    again = [run(seed) for seed in range(SEEDS)]
    assert sweeps == again  # same seed -> same bytes, in process too
    # The sweep is not vacuous: the app detects on at least one seed
    # (the canary-backed over-write detects on every seed, in fact).
    assert any(s != "[]" for s in sweeps)
    digest = hashlib.sha256("".join(sweeps).encode()).hexdigest()
    assert len(digest) == 64


def test_adversarial_genome_sweep_is_byte_identical_across_processes():
    # Solver-produced corners resolve by name in a fresh process (the
    # fleet workers depend on that) and replay byte-identically.
    first = _sweep_in_subprocess(app=ADV_APP)
    second = _sweep_in_subprocess(app=ADV_APP)
    assert first == second
    assert len(first) == 64


def test_adversarial_genome_in_process_sweep_is_deterministic():
    import dataclasses

    def run(seed):
        result = execute_spec(
            ExecutionSpec(
                app=ADV_APP, seed=seed, index=seed, config=CSODConfig()
            )
        )
        return json.dumps(
            [dataclasses.asdict(r) for r in result.reports], sort_keys=True
        )

    sweeps = [run(seed) for seed in range(SEEDS)]
    again = [run(seed) for seed in range(SEEDS)]
    assert sweeps == again
    # floor-pin keeps the victim context's probability pinned at the
    # floor, so detection is rare but the runs must never crash; the
    # sweep pins bytes, not detection counts.
    digest = hashlib.sha256("".join(sweeps).encode()).hexdigest()
    assert len(digest) == 64
