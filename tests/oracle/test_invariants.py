"""The instrumented invariant probe, on its own."""

from repro.core.config import CSODConfig
from repro.machine.debug_registers import NUM_USABLE_DEBUG_REGISTERS
from repro.oracle.generator import generate
from repro.oracle.invariants import (
    ATTRIBUTION_SAMPLING,
    _monotonic_violations,
    attribute_fn,
    evidence_converges,
    probe_invariants,
)


def test_probe_reports_clean_run():
    program = generate(6, 0, "over-write")
    report = probe_invariants(
        program.name,
        program.base_seed,
        victim_marker=program.truth.victim_marker,
    )
    assert report.ok
    assert 0 < report.max_armed <= NUM_USABLE_DEBUG_REGISTERS
    assert report.victim_signature is not None
    assert program.truth.victim_marker in report.victim_signature
    # A canary-backed over-write always produces evidence.
    assert report.detected
    assert report.new_evidence


def test_monotonicity_checker_accepts_legal_traces():
    config = CSODConfig()
    traces = {
        "degrade": [0.5, 0.25, 0.125],
        "pin": [0.5, 0.25, 1.0, 1.0],  # evidence boost
        "revive": [
            config.floor_probability,
            config.revive_probability,  # revival from the floor
        ],
    }
    assert _monotonic_violations(traces, config) == []


def test_monotonicity_checker_flags_illegal_jumps():
    config = CSODConfig()
    traces = {"bad": [0.5, 0.25, 0.4]}  # un-sanctioned increase
    violations = _monotonic_violations(traces, config)
    assert len(violations) == 1
    assert "bad" in violations[0]


def test_monotonicity_checker_flags_revival_from_above_floor():
    config = CSODConfig()
    # A revival-sized jump is only legal from at-or-below the floor;
    # 5e-5 sits above it, so this trace is illegal.
    assert config.floor_probability < 5e-5 < config.revive_probability
    traces = {"bad": [0.5, 5e-5, config.revive_probability]}
    assert _monotonic_violations(traces, config)


def test_evidence_convergence_on_a_pinned_context():
    program = generate(6, 1, "over-write")
    probe = probe_invariants(
        program.name,
        program.base_seed,
        victim_marker=program.truth.victim_marker,
    )
    assert probe.new_evidence
    assert evidence_converges(
        program.name, program.base_seed + 1, probe.new_evidence
    )


def test_attribute_fn_blames_sampling_for_read_misses():
    # Reads are only caught by a sampled watchpoint, so whenever the
    # fleet misses one, the pinned re-run must succeed.
    program = generate(6, 2, "over-read")
    verdict = attribute_fn(program, CSODConfig(), program.base_seed)
    assert verdict == ATTRIBUTION_SAMPLING
