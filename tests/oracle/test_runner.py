"""The fleet-scale campaign: conformance, determinism, attribution."""

import pytest

from repro.errors import ReproError
from repro.oracle import OracleSettings, render_scorecard, run_oracle
from repro.oracle.grammar import ALL_DEFECTS
from repro.oracle.runner import defect_sequence

SETTINGS = OracleSettings(
    budget=12, seed=7, workers=1, executions_per_app=2
)


@pytest.fixture(scope="module")
def campaign():
    """One shared campaign (the module's tests only read it)."""
    return run_oracle(SETTINGS)


# ----------------------------------------------------------------------
# Defect apportionment
# ----------------------------------------------------------------------
def test_uniform_sequence_covers_every_class():
    sequence = defect_sequence(2 * len(ALL_DEFECTS))
    assert len(sequence) == 2 * len(ALL_DEFECTS)
    for defect in ALL_DEFECTS:
        assert sequence.count(defect) == 2


def test_weighted_sequence_respects_the_mix():
    sequence = defect_sequence(10, {"over-read": 3, "uaf": 1})
    assert len(sequence) == 10
    assert sequence.count("over-read") >= 7
    assert sequence.count("uaf") >= 2
    assert set(sequence) <= {"over-read", "uaf"}


def test_sequence_interleaves_classes():
    sequence = defect_sequence(12)
    # Round-robin dealing: the first len(ALL_DEFECTS) entries are all
    # distinct, so any prefix of the campaign is representative.
    assert len(set(sequence[: len(ALL_DEFECTS)])) == len(ALL_DEFECTS)


# ----------------------------------------------------------------------
# Settings validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"budget": 0},
        {"executions_per_app": 0},
        {"shrink": -1},
        {"defect_mix": {"wild-write": 1.0}},
        {"defect_mix": {"over-read": -1.0}},
        {"defect_mix": {"over-read": 0.0}},
    ],
)
def test_bad_settings_rejected(kwargs):
    with pytest.raises(ReproError):
        OracleSettings(**kwargs)


# ----------------------------------------------------------------------
# Acceptance properties of the scorecard
# ----------------------------------------------------------------------
def test_deterministic_arms_have_zero_false_positives(campaign):
    arms = campaign.scorecard["arms"]
    assert arms["asan"]["fp_reports"] == 0
    assert arms["guardpage"]["fp_reports"] == 0


def test_no_arm_reports_false_positives(campaign):
    for arm, block in campaign.scorecard["arms"].items():
        assert block["fp_reports"] == 0, arm


def test_deterministic_arms_catch_every_eligible_defect(campaign):
    arms = campaign.scorecard["arms"]
    for arm in ("asan", "guardpage"):
        assert arms[arm]["detected"] == arms[arm]["eligible"], arm


def test_every_csod_fn_is_attributed_to_sampling(campaign):
    fn = campaign.scorecard["csod_invariants"]["fn_attribution"]
    assert fn["logic"] == 0
    assert set(fn["apps"].values()) <= {"sampling"}


def test_watchpoint_invariants_hold(campaign):
    inv = campaign.scorecard["csod_invariants"]
    assert inv["max_armed"] <= inv["armed_limit"] == 4
    assert inv["armed_violations"] == []
    assert inv["monotonic_violations"] == []
    assert inv["probed_apps"] == SETTINGS.budget


def test_evidence_convergence_holds(campaign):
    conv = campaign.scorecard["csod_invariants"]["convergence"]
    assert conv["failures"] == []
    assert conv["converged"] == conv["checked"]


def test_every_mismatch_is_explained(campaign):
    assert campaign.scorecard["mismatches"]["unexplained"] == 0


def test_rate_blocks_carry_wilson_intervals(campaign):
    for arm, block in campaign.scorecard["arms"].items():
        if block["eligible"]:
            low, high = block["ci95"]
            assert 0.0 <= low <= block["rate"] <= high <= 1.0


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_scorecard_is_deterministic_same_process(campaign):
    again = run_oracle(SETTINGS)
    assert render_scorecard(again.scorecard) == render_scorecard(
        campaign.scorecard
    )


def test_scorecard_is_worker_count_invariant(campaign):
    parallel = run_oracle(
        OracleSettings(
            budget=SETTINGS.budget,
            seed=SETTINGS.seed,
            workers=3,
            executions_per_app=SETTINGS.executions_per_app,
        )
    )
    assert render_scorecard(parallel.scorecard) == render_scorecard(
        campaign.scorecard
    )


def test_telemetry_records_every_app(campaign):
    events = []
    run_oracle(SETTINGS, telemetry=events.append)
    kinds = [e["event"] for e in events]
    assert kinds.count("oracle_app") == SETTINGS.budget
    assert kinds[-1] == "oracle_scorecard"
