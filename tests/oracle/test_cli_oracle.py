"""The ``repro oracle`` verb: validation and the end-to-end pipeline."""

import json

import pytest

from repro.cli import main


# ----------------------------------------------------------------------
# Flag validation: exit code 2, message names the flag
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "argv, flag",
    [
        (["oracle", "--budget", "0"], "--budget"),
        (["oracle", "--budget", "-3"], "--budget"),
        (["oracle", "--workers", "0"], "--workers"),
        (["oracle", "--executions", "0"], "--executions"),
        (["oracle", "--shrink", "-1"], "--shrink"),
        (["oracle", "--chunk-size", "0"], "--chunk-size"),
        (["oracle", "--timeout", "0"], "--timeout"),
        (["oracle", "--defect-mix", "over-read"], "--defect-mix"),
        (["oracle", "--defect-mix", "wild-write=1"], "--defect-mix"),
        (["oracle", "--defect-mix", "over-read=-1"], "--defect-mix"),
        (["oracle", "--defect-mix", "over-read=0"], "--defect-mix"),
        (["oracle", "--defect-mix", "over-read=x"], "--defect-mix"),
    ],
)
def test_invalid_values_fail_naming_the_flag(capsys, argv, flag):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert flag in err
    assert "repro oracle: error:" in err


def test_out_path_that_is_a_file_rejected(capsys, tmp_path):
    blocker = tmp_path / "occupied"
    blocker.write_text("not a directory\n")
    assert main(["oracle", "--out", str(blocker)]) == 2
    err = capsys.readouterr().err
    assert "--out" in err and "repro oracle: error:" in err


# ----------------------------------------------------------------------
# End to end (tiny budget)
# ----------------------------------------------------------------------
def test_small_campaign_writes_scorecard_and_telemetry(capsys, tmp_path):
    out = tmp_path / "oracle-out"
    code = main(
        [
            "oracle",
            "--budget",
            "6",
            "--seed",
            "7",
            "--executions",
            "1",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "false-positive reports" in captured
    assert "attributed to sampling" in captured

    scorecard = json.loads((out / "scorecard.json").read_text())
    assert scorecard["schema"] == "repro-oracle-scorecard-v1"
    assert scorecard["programs"]["total"] == 6
    assert scorecard["arms"]["asan"]["fp_reports"] == 0
    assert scorecard["arms"]["guardpage"]["fp_reports"] == 0

    lines = (out / "telemetry.jsonl").read_text().splitlines()
    events = [json.loads(line) for line in lines]
    assert sum(1 for e in events if e["event"] == "oracle_app") == 6
    assert events[-1]["event"] == "oracle_scorecard"


def test_defect_mix_restricts_the_classes(capsys, tmp_path):
    out = tmp_path / "mix-out"
    code = main(
        [
            "oracle",
            "--budget",
            "4",
            "--seed",
            "3",
            "--executions",
            "1",
            "--defect-mix",
            "over-write=1,benign=1",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    scorecard = json.loads((out / "scorecard.json").read_text())
    by_defect = scorecard["programs"]["by_defect"]
    assert by_defect["over-write"] == 2
    assert by_defect["benign"] == 2
    assert sum(by_defect.values()) == 4
