"""The constraint-guided adversarial generator (solver → corner → score).

Covers the name codec, solver determinism, lowering into the oracle
grammar, registry resolution, and — via the checked-in corpus — the
meta-property the whole tentpole exists for: every named corner
predicate is actually *reached* by its solved program when replayed
against the live runtime with probes attached.
"""

import json
import os

import pytest

from repro.errors import WorkloadError
from repro.oracle.adversarial import (
    ALL_TARGETS,
    DEFAULT_NODE_BUDGET,
    TARGET_FLOOR_PIN,
    TARGET_GWP_COUNTDOWN,
    TARGET_REVIVE_RACE,
    TARGET_THROTTLE_EDGE,
    TARGET_WATCH_EXHAUST,
    AdversarialApp,
    encode_adv_name,
    is_adv_name,
    lower,
    parse_adv_name,
    probe_corner,
    program_from_name,
    run_adversarial,
    solve_target,
)
from repro.workloads.buggy.registry import app_for

CORPUS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "corpus",
    "adversarial_corpus.json",
)


def load_corpus():
    with open(CORPUS_PATH) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Name codec
# ----------------------------------------------------------------------
def test_name_codec_round_trips_every_target():
    for seed in (0, 3, 41):
        for target in ALL_TARGETS:
            name = encode_adv_name(seed, target)
            assert is_adv_name(name)
            assert parse_adv_name(name) == (seed, target)


def test_name_codec_rejects_malformed_names():
    for bad in (
        "adv:",
        "adv:s0",
        "adv:s0:tfloor-pin:extra",
        "adv:sX:tfloor-pin",
        "adv:s-1:tfloor-pin",
        "adv:s0:tno-such-corner",
        "adv:i0:tfloor-pin",
        "oracle:s0:i0:over-write",
    ):
        with pytest.raises(WorkloadError):
            parse_adv_name(bad)


def test_is_adv_name_is_a_cheap_prefix_test():
    assert is_adv_name("adv:s0:tfloor-pin")
    assert not is_adv_name("oracle:s0:i0:over-write")
    assert not is_adv_name("heartbleed")


# ----------------------------------------------------------------------
# Solver
# ----------------------------------------------------------------------
def test_solver_solves_every_target():
    for target in ALL_TARGETS:
        solution = solve_target(0, target)
        assert solution.solved, target
        assert solution.nodes_explored <= DEFAULT_NODE_BUDGET


def test_solver_is_deterministic():
    for target in ALL_TARGETS:
        first = solve_target(13, target).to_dict()
        second = solve_target(13, target).to_dict()
        assert first == second


def test_solver_witnesses_are_minimal_macro_paths():
    # BFS explores shallow plans first, so the known-minimal witnesses
    # must come back at their known depths.
    assert solve_target(0, TARGET_WATCH_EXHAUST).to_dict()["allocations"] == 5
    floor = solve_target(0, TARGET_FLOOR_PIN).to_dict()
    revive = solve_target(0, TARGET_REVIVE_RACE).to_dict()
    assert floor["allocations"] < revive["allocations"]


def test_lowered_program_carries_ground_truth():
    program = lower(solve_target(0, TARGET_FLOOR_PIN))
    assert program.name == "adv:s0:tfloor-pin"
    truth = program.truth
    assert truth.access_length > 0
    assert not truth.free_before_access
    assert truth.expected  # per-arm expectations, for the 7-arm judge


# ----------------------------------------------------------------------
# Registry resolution
# ----------------------------------------------------------------------
def test_registry_resolves_adv_names():
    app = app_for("adv:s0:tfloor-pin")
    assert isinstance(app, AdversarialApp)
    assert app_for("adv:s0:tfloor-pin") is app  # cached


def test_adversarial_corners_do_not_scale():
    with pytest.raises(WorkloadError):
        app_for("adv:s0:tfloor-pin", scale=0.5)


# ----------------------------------------------------------------------
# Corpus meta-test: every corner predicate is reached
# ----------------------------------------------------------------------
def test_corpus_covers_every_target():
    corpus = load_corpus()
    assert corpus["targets"] == list(ALL_TARGETS)
    covered = {entry["target"] for entry in corpus["entries"]}
    assert covered == set(ALL_TARGETS)
    # At least two independent seeds per target keep the corpus from
    # overfitting to one RNG stream.
    for target in ALL_TARGETS:
        seeds = {
            e["seed"] for e in corpus["entries"] if e["target"] == target
        }
        assert len(seeds) >= 2, target


def test_corpus_names_resolve_and_match_recorded_witnesses():
    for entry in load_corpus()["entries"]:
        solution = solve_target(entry["seed"], entry["target"])
        d = solution.to_dict()
        assert d["solved"]
        assert d["path"] == entry["path"], entry["name"]
        assert d["allocations"] == entry["allocations"], entry["name"]
        assert encode_adv_name(entry["seed"], entry["target"]) == entry["name"]


@pytest.mark.parametrize("target", ALL_TARGETS)
def test_every_corner_predicate_is_reached_live(target):
    """The meta-property: solved programs reach their corner in the
    *live* runtime (probes attached), not just in the abstract model."""
    corpus = load_corpus()
    entries = [e for e in corpus["entries"] if e["target"] == target]
    assert entries
    for entry in entries:
        program = program_from_name(entry["name"])
        report = probe_corner(program)
        assert report.target == target
        assert report.reached, (entry["name"], report.details)


# ----------------------------------------------------------------------
# Campaign plumbing
# ----------------------------------------------------------------------
def test_run_adversarial_scores_clean_on_cheap_targets():
    run = run_adversarial(
        seed=0, targets=(TARGET_FLOOR_PIN, TARGET_WATCH_EXHAUST)
    )
    scorecard = run.scorecard
    assert scorecard["mismatches"]["unexplained"] == 0
    for arm in scorecard["arms"].values():
        assert arm["fp_reports"] == 0
    targets = scorecard["targets"]
    assert set(targets) == {TARGET_FLOOR_PIN, TARGET_WATCH_EXHAUST}
    for block in targets.values():
        assert block["solution"]["solved"]
        assert block["corner"]["reached"]


def test_run_adversarial_emits_scorecard_telemetry():
    events = []
    run_adversarial(
        seed=0, targets=(TARGET_WATCH_EXHAUST,), telemetry=events.append
    )
    kinds = [e.get("event") for e in events]
    assert "adversarial_scorecard" in kinds
