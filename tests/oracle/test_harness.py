"""Differential judging: detections, displaced attribution, zero FPs."""

import pytest

from repro.oracle.generator import generate
from repro.oracle.grammar import (
    ARM_ASAN,
    ARM_GUARDPAGE,
    CAP_DETERMINISTIC,
)
from repro.oracle.harness import (
    _judge,
    find_mismatch,
    observe_asan,
    observe_guardpage,
)


def truth_for(defect):
    program = generate(2, 0, defect)
    return program, program.truth


# ----------------------------------------------------------------------
# The report judge
# ----------------------------------------------------------------------
def test_victim_marker_match_is_a_detection():
    _, truth = truth_for("over-write")
    verdict = _judge(
        truth,
        truth.bug_kind,
        truth.bug_kind,
        ("APP/main.c:1", truth.victim_marker),
    )
    assert verdict == "victim"


def test_wrong_kind_on_the_victim_is_a_fp():
    _, truth = truth_for("over-write")
    verdict = _judge(
        truth, "over-read", "over-write", (truth.victim_marker,)
    )
    assert verdict == "fp"


def test_access_marker_match_is_incidental():
    _, truth = truth_for("underflow")
    verdict = _judge(
        truth,
        truth.bug_kind,
        truth.bug_kind,
        ("OTHER/alloc.c:9",),
        access_frames=(truth.access_marker, "APP/main.c:1"),
    )
    assert verdict == "incidental"


def test_any_report_on_a_benign_program_is_a_fp():
    _, truth = truth_for("benign")
    verdict = _judge(
        truth, truth.bug_kind, truth.bug_kind, (truth.victim_marker,)
    )
    assert verdict == "fp"


def test_fault_address_fallback_matches_the_victim_span():
    _, truth = truth_for("uaf")
    verdict = _judge(
        truth,
        "heap-use-after-free",
        "heap-use-after-free",
        (),  # ASan drops the allocation context at free
        fault_address=0x1000,
        victim_span=(0x1000, 0x1000 + truth.victim_size),
    )
    assert verdict == "victim"


# ----------------------------------------------------------------------
# Inline arms on real generated programs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("defect", ["over-write", "over-read", "uaf"])
def test_asan_is_deterministic_and_clean(defect):
    program = generate(4, 0, defect)
    if program.truth.in_library:
        pytest.skip("library defect: ASan has no capability by design")
    obs = observe_asan(program, program.base_seed)
    assert obs.detections == 1
    assert obs.fp_reports == 0


def test_asan_never_fires_on_benign():
    program = generate(4, 0, "benign")
    obs = observe_asan(program, program.base_seed)
    assert obs.detections == 0
    assert obs.fp_reports == 0


@pytest.mark.parametrize("defect", ["over-write", "uaf"])
def test_guardpage_catches_deterministic_cases(defect):
    program = generate(4, 1, defect)
    if program.truth.capability(ARM_GUARDPAGE) != CAP_DETERMINISTIC:
        pytest.skip("slack-fit geometry: guard has no capability")
    obs = observe_guardpage(program, program.base_seed)
    assert obs.detected
    assert obs.fp_reports == 0


def test_guardpage_never_fires_on_benign():
    program = generate(4, 1, "benign")
    obs = observe_guardpage(program, program.base_seed)
    assert obs.detections == 0
    assert obs.fp_reports == 0


# ----------------------------------------------------------------------
# Mismatch explanation
# ----------------------------------------------------------------------
def test_unanimous_and_clean_is_no_mismatch():
    from repro.oracle.harness import AppObservations, ArmObservation

    program = generate(4, 2, "over-write")
    obs = AppObservations(app=program.name)
    for arm in program.truth.expected:
        obs.arms[arm] = ArmObservation(arm=arm, executions=1, detections=1)
    assert find_mismatch(program, obs) is None


def test_deterministic_miss_is_unexplained():
    from repro.oracle.harness import AppObservations, ArmObservation

    program = generate(4, 2, "over-write")
    assert program.truth.capability(ARM_ASAN) == CAP_DETERMINISTIC
    obs = AppObservations(app=program.name)
    for arm in program.truth.expected:
        detected = 0 if arm == ARM_ASAN else 1
        obs.arms[arm] = ArmObservation(
            arm=arm, executions=1, detections=detected
        )
    mismatch = find_mismatch(program, obs)
    assert mismatch is not None
    assert ARM_ASAN in mismatch.unexplained
    assert not mismatch.explained


def test_sampling_miss_is_explained():
    from repro.oracle.harness import AppObservations, ArmObservation

    program = generate(4, 3, "over-read")
    obs = AppObservations(app=program.name)
    for arm in program.truth.expected:
        capability = program.truth.capability(arm)
        detected = 1 if capability == CAP_DETERMINISTIC else 0
        obs.arms[arm] = ArmObservation(
            arm=arm, executions=1, detections=detected
        )
    mismatch = find_mismatch(program, obs)
    assert mismatch is not None
    assert mismatch.explained
    assert "sampling miss" in mismatch.explanations.values()
