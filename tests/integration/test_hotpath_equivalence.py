"""Hot-path equivalence: the batched driver is indistinguishable.

``CSODConfig.hotpath="batched"`` routes every interposed allocation
through :class:`repro.core.fastpath.FastAllocDealloc` — flat header
tables, pooled watch objects, merged cost bundles, inlined allocator
surgery.  None of that may be *observable*: the cost model, the virtual
clock, every report, and every fleet/oracle scorecard must be identical
to the legacy per-object units, byte for byte.  These tests pin that
contract at three levels:

1. **Single execution** — same workload, same seed, both hot paths:
   identical ledger event counts *and* nanos, identical final virtual
   clock, identical reports (including ``time_ns``, the strongest
   mid-run clock probe), identical runtime stats.
2. **Error paths** — free(NULL), out-of-memory, double free, and
   invalid free must unwind with charge-exact ledgers and clocks.
3. **Campaign scale** — fleet scorecards are byte-identical across hot
   paths at 1, 2, and 4 workers, and the differential oracle produces
   the same scorecard whichever hot path powers the CSOD arms.
"""

import json

import pytest

from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.core.config import HOTPATH_BATCHED, HOTPATH_LEGACY
from repro.core.fastpath import FastAllocDealloc
from repro.core.monitor import AllocDeallocMonitoringUnit
from repro.errors import DoubleFreeError, InvalidFreeError, OutOfMemoryError
from repro.fleet import run_fleet
from repro.workloads.base import SimProcess
from repro.workloads.buggy import BUGGY_APPS, app_for

HOTPATHS = (HOTPATH_LEGACY, HOTPATH_BATCHED)


def _report_key(report):
    """Every observable report field, allocation context by value."""
    return (
        report.kind,
        report.source,
        report.fault_address,
        report.object_address,
        report.object_size,
        report.thread_id,
        report.time_ns,
        tuple(report.allocation_context.return_addresses),
        tuple(report.access_return_addresses),
    )


def _observe(process, runtime, exit_reports):
    """The full observable surface of one execution."""
    ledger = process.machine.ledger
    counts = ledger.counts()
    return {
        "counts": counts,
        "nanos": {event: ledger.nanos(event) for event in counts},
        "clock_ns": process.machine.clock.now_ns,
        "reports": [_report_key(r) for r in runtime.reports],
        "exit_reports": [_report_key(r) for r in exit_reports],
        "stats": runtime.stats(),
    }


def _run_app(name: str, hotpath: str, seed: int):
    process = SimProcess(seed=seed)
    runtime = CSODRuntime(
        process.machine,
        process.heap,
        CSODConfig(hotpath=hotpath),
        seed=seed,
    )
    expected = (
        FastAllocDealloc
        if hotpath == HOTPATH_BATCHED
        else AllocDeallocMonitoringUnit
    )
    assert isinstance(runtime.monitor, expected)
    app_for(name).run(process)
    exit_reports = runtime.shutdown()
    return _observe(process, runtime, exit_reports)


# ----------------------------------------------------------------------
# 1. Single-execution equivalence across every buggy app
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(BUGGY_APPS))
def test_buggy_app_observables_identical(name):
    legacy = _run_app(name, HOTPATH_LEGACY, seed=7)
    batched = _run_app(name, HOTPATH_BATCHED, seed=7)
    assert batched["counts"] == legacy["counts"]
    assert batched["nanos"] == legacy["nanos"]
    assert batched["clock_ns"] == legacy["clock_ns"]
    assert batched["reports"] == legacy["reports"]
    assert batched["exit_reports"] == legacy["exit_reports"]
    assert batched["stats"] == legacy["stats"]


@pytest.mark.parametrize("seed", [0, 3, 19])
def test_equivalence_across_seeds(seed):
    legacy = _run_app("libtiff", HOTPATH_LEGACY, seed=seed)
    batched = _run_app("libtiff", HOTPATH_BATCHED, seed=seed)
    assert batched == legacy


# ----------------------------------------------------------------------
# Hand-driven scenarios: throttling, reviving, threads, error paths
# ----------------------------------------------------------------------
# Shared across the paired runs: synthetic return addresses come from a
# process-global counter, so each scenario must intern the *same*
# CallSite objects under both hot paths for reports to compare equal.
EQ_SITE = CallSite("EQ", "eq.c", 1, "eq_alloc")
EQ_USE = CallSite("EQ", "use.c", 9, "worker_loop")


def _fresh(hotpath: str, seed: int = 11):
    process = SimProcess(seed=seed)
    runtime = CSODRuntime(
        process.machine,
        process.heap,
        CSODConfig(hotpath=hotpath),
        seed=seed,
    )
    process.symbols.add(EQ_SITE)
    return process, runtime, EQ_SITE


def _drive_hot_loop(hotpath: str):
    """6k allocations from one site: degradation -> floor -> throttle."""
    process, runtime, site = _fresh(hotpath)
    thread = process.main_thread
    heap = process.heap
    live = []
    with thread.call_stack.calling(site):
        for i in range(6000):
            address = heap.malloc(thread, 16 + (i % 7) * 16)
            if i % 3 == 0:
                live.append(address)
            else:
                heap.free(thread, address)
        while live:
            heap.free(thread, live.pop())
    exit_reports = runtime.shutdown()
    return _observe(process, runtime, exit_reports)


def test_throttle_and_floor_regime_identical():
    assert _drive_hot_loop(HOTPATH_BATCHED) == _drive_hot_loop(HOTPATH_LEGACY)


def _drive_threads(hotpath: str):
    """Interleaved allocation from three threads; one trap; one corrupt."""
    process, runtime, site = _fresh(hotpath, seed=23)
    heap = process.heap
    threads = [process.main_thread] + [
        process.spawn_thread(f"w{i}") for i in (1, 2)
    ]
    use = EQ_USE
    process.symbols.add(use)
    live = {t.tid: [] for t in threads}
    with threads[0].call_stack.calling(site):
        victim = heap.malloc(threads[0], 64)
    # A cross-thread overflow trap on the boundary watchpoint.
    with threads[1].call_stack.calling(use):
        process.machine.cpu.store(threads[1], victim + 64, b"\xaa" * 8)
    for i in range(900):
        t = threads[i % 3]
        with t.call_stack.calling(site):
            address = heap.malloc(t, 32 + (i % 5) * 8)
        if i % 2:
            heap.free(t, address)
        else:
            live[t.tid].append(address)
    # A canary corruption discovered at free time: a raw memory write
    # (no CPU access, so no trap) that the free-time check must report.
    with threads[2].call_stack.calling(site):
        corrupt = heap.malloc(threads[2], 40)
    process.machine.memory.write_word(corrupt + 40, 0xDEAD)
    heap.free(threads[2], corrupt)
    for tid in live:
        for address in live[tid]:
            heap.free(threads[0], address)
    heap.free(threads[0], victim)
    exit_reports = runtime.shutdown()
    return _observe(process, runtime, exit_reports)


def test_multithreaded_trace_identical():
    assert _drive_threads(HOTPATH_BATCHED) == _drive_threads(HOTPATH_LEGACY)


def _drive_errors(hotpath: str):
    """free(NULL), OOM, double free, invalid free: charge-exact unwinds."""
    process, runtime, site = _fresh(hotpath, seed=5)
    thread = process.main_thread
    heap = process.heap
    probes = []
    clock = process.machine.clock
    with thread.call_stack.calling(site):
        heap.free(thread, 0)  # free(NULL): no charge, no effect
        probes.append(clock.now_ns)
        address = heap.malloc(thread, 48)
        with pytest.raises(OutOfMemoryError):
            heap.malloc(thread, 1 << 40)
        probes.append(clock.now_ns)
        heap.free(thread, address)
        # A double free of a wrapped object reaches the allocator with
        # the wrapper address (the real block starts 32 bytes earlier),
        # so the diagnosis class is part of the observable contract —
        # both hot paths must raise the same one.
        with pytest.raises((DoubleFreeError, InvalidFreeError)) as first:
            heap.free(thread, address)
        probes.append((first.type.__name__, clock.now_ns))
        with pytest.raises((DoubleFreeError, InvalidFreeError)) as second:
            heap.free(thread, address + 4096 * 64)
        probes.append((second.type.__name__, clock.now_ns))
    exit_reports = runtime.shutdown()
    observed = _observe(process, runtime, exit_reports)
    observed["probes"] = probes
    return observed


def test_error_paths_charge_identically():
    assert _drive_errors(HOTPATH_BATCHED) == _drive_errors(HOTPATH_LEGACY)


def _drive_rng_trace(hotpath: str):
    """Per-thread draw conservation across an interleaved trace.

    After an identical multithreaded allocation trace, each thread's
    stream must sit at the same point in its draw sequence under both
    hot paths — the batched driver's block-replenished, primed buffers
    may not consume one draw more or fewer than the serial units.  The
    stream tails make any skew visible.
    """
    process, runtime, site = _fresh(hotpath, seed=31)
    heap = process.heap
    threads = [process.main_thread] + [
        process.spawn_thread(f"r{i}") for i in (1, 2)
    ]
    live = []
    for i in range(1200):
        t = threads[(i * 7) % 3]
        with t.call_stack.calling(site):
            address = heap.malloc(t, 16 + (i % 9) * 8)
        if i % 2:
            heap.free(t, address)
        else:
            live.append((t, address))
    for t, address in live:
        heap.free(t, address)
    runtime.shutdown()
    return {
        t.tid: [runtime.rng.uniform(t.tid) for _ in range(5)] for t in threads
    }


def test_rng_streams_aligned_after_multithreaded_trace():
    assert _drive_rng_trace(HOTPATH_BATCHED) == _drive_rng_trace(HOTPATH_LEGACY)


# ----------------------------------------------------------------------
# 3. Campaign scale: fleet and oracle scorecards
# ----------------------------------------------------------------------
def _fleet_bytes(hotpath: str, workers: int) -> bytes:
    result = run_fleet(
        "libtiff",
        executions=8,
        workers=workers,
        seed_base=42,
        config=CSODConfig(hotpath=hotpath),
    )
    return json.dumps(result.aggregator.to_dict(), sort_keys=True).encode()


def test_fleet_scorecards_byte_identical_across_hotpaths_and_workers():
    reference = _fleet_bytes(HOTPATH_LEGACY, workers=1)
    for workers in (1, 2, 4):
        assert _fleet_bytes(HOTPATH_BATCHED, workers) == reference
    assert _fleet_bytes(HOTPATH_LEGACY, workers=2) == reference


def test_oracle_scorecard_identical_across_hotpaths(monkeypatch):
    from repro.oracle import OracleSettings, render_scorecard, run_oracle
    from repro.oracle import runner as oracle_runner

    settings = OracleSettings(
        budget=8, seed=3, workers=1, executions_per_app=2
    )
    batched = run_oracle(settings)

    legacy_configs = {
        arm: config.with_hotpath(HOTPATH_LEGACY)
        for arm, config in oracle_runner.arm_configs().items()
    }
    monkeypatch.setattr(
        oracle_runner, "arm_configs", lambda: legacy_configs
    )
    legacy = run_oracle(settings)
    assert render_scorecard(batched.scorecard) == render_scorecard(
        legacy.scorecard
    )
