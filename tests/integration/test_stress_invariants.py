"""Stress: long mixed workloads with cross-layer invariant checks.

After every burst of operations: the allocator's structural invariants
hold, the WMU's logical slots exactly mirror every thread's armed debug
registers, and the canary registry matches the live allocation set.
"""

import random

import pytest

from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess


def run_stress(seed, policy, threads=3, operations=600, check_every=40):
    process = SimProcess(seed=seed)
    csod = CSODRuntime(
        process.machine,
        process.heap,
        CSODConfig(replacement_policy=policy),
        seed=seed,
    )
    workers = [process.main_thread] + [
        process.spawn_thread(f"w{i}") for i in range(threads - 1)
    ]
    sites = [CallSite("STRESS", f"s{i}.c", i, f"ctx{i}") for i in range(12)]
    rng = random.Random(seed)
    live = []
    for step in range(operations):
        thread = rng.choice(workers)
        if live and rng.random() < 0.45:
            address, owner = live.pop(rng.randrange(len(live)))
            process.heap.free(owner, address)
        else:
            site = rng.choice(sites)
            with thread.call_stack.calling(site):
                size = rng.choice((16, 32, 64, 128, 256))
                live.append((process.heap.malloc(thread, size), thread))
        if rng.random() < 0.1 and live:
            # Random in-bounds traffic (must never trap).
            address, _ = rng.choice(live)
            process.machine.cpu.store(thread, address, b"\x11" * 8)
        if step % check_every == 0:
            csod.wmu.check_invariants()
            process.allocator.check_invariants()
            assert csod.canary.live_count() == len(live)
    for address, owner in live:
        process.heap.free(owner, address)
    csod.wmu.check_invariants()
    csod.shutdown()
    return csod


@pytest.mark.parametrize("policy", ["naive", "random", "near_fifo"])
def test_stress_invariants_per_policy(policy):
    csod = run_stress(seed=11, policy=policy)
    assert not csod.detected  # clean workload: zero false positives


def test_stress_many_seeds():
    for seed in range(5):
        csod = run_stress(seed=seed, policy="random", operations=300)
        assert not csod.detected


def test_stress_with_thread_exits():
    process = SimProcess(seed=9)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=9)
    site = CallSite("STRESS", "t.c", 1, "alloc")
    rng = random.Random(9)
    for round_ in range(12):
        worker = process.spawn_thread(f"ephemeral{round_}")
        with process.main_thread.call_stack.calling(site):
            address = process.heap.malloc(process.main_thread, 64)
        csod.wmu.check_invariants()
        process.machine.threads.exit(worker.tid)
        csod.wmu.check_invariants()
        if rng.random() < 0.5:
            process.heap.free(process.main_thread, address)
        csod.wmu.check_invariants()
    csod.shutdown()
