"""Cross-execution evidence persistence (§IV-B / §V-A2)."""

import os

import pytest

from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for


def run(name, seed, path):
    process = SimProcess(seed=seed)
    csod = CSODRuntime(
        process.machine,
        process.heap,
        CSODConfig(persistence_path=path),
        seed=seed,
    )
    app_for(name).run(process)
    csod.shutdown()
    return csod


def first_missed_seed(name, path_factory, limit=40):
    for seed in range(limit):
        csod = run(name, seed, path_factory(seed))
        if not csod.detected_by_watchpoint:
            return seed
    return None


@pytest.mark.parametrize("name", ["memcached", "mysql"])
def test_second_execution_always_detects_overwrites(name, tmp_path):
    seed = first_missed_seed(name, lambda s: str(tmp_path / f"probe{s}.json"))
    assert seed is not None, f"{name} never missed; cannot exercise the path"
    path = str(tmp_path / "evidence.json")
    first = run(name, seed, path)
    assert not first.detected_by_watchpoint
    assert first.detected  # canary evidence
    assert os.path.exists(path)
    # Ten different second executions: all must detect via watchpoint.
    for second_seed in range(1000, 1010):
        second = run(name, second_seed, path)
        assert second.detected_by_watchpoint


def test_persistence_file_survives_clean_runs(tmp_path):
    path = str(tmp_path / "evidence.json")
    seed = first_missed_seed("memcached", lambda s: str(tmp_path / f"p{s}.json"))
    run("memcached", seed, path)
    size_after_first = os.path.getsize(path)
    run("memcached", seed + 500, path)  # detection run: must not lose data
    assert os.path.getsize(path) >= size_after_first


def test_overreads_not_persisted_when_missed(tmp_path):
    """Over-reads leave no canary evidence: a missed run records nothing."""
    from repro.core.termination import load_persisted

    for seed in range(30):
        path = str(tmp_path / f"evidence{seed}.json")
        csod = run("zziplib", seed, path)
        if not csod.detected_by_watchpoint:
            assert load_persisted(path) == set()
            return
    pytest.fail("zziplib detected in every run; cannot exercise the miss path")


def test_overread_watchpoint_hit_is_persisted(tmp_path):
    """A watchpoint-detected over-read pins its context and persists it."""
    from repro.core.termination import load_persisted

    for seed in range(30):
        path = str(tmp_path / f"hit{seed}.json")
        csod = run("zziplib", seed, path)
        if csod.detected_by_watchpoint:
            assert load_persisted(path)
            return
    pytest.fail("zziplib never detected in 30 runs")
