"""CSOD vs ASan on identical programs — the paper's coverage argument."""

import pytest

from repro.asan import ASanRuntime
from repro.core import CSODConfig, CSODRuntime
from repro.experiments import paper_data
from repro.workloads.base import SimProcess
from repro.workloads.buggy import BUGGY_APPS, app_for


def csod_detects_within(name, seeds):
    for seed in range(seeds):
        process = SimProcess(seed=seed)
        csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=seed)
        app_for(name).run(process)
        csod.shutdown()
        if csod.detected_by_watchpoint:
            return True
    return False


def asan_detects(name, seed=0):
    process = SimProcess(seed=seed)
    asan = ASanRuntime(process.machine, process.heap)
    app_for(name).run(process)
    asan.shutdown()
    return asan.detected


@pytest.mark.parametrize("name", sorted(paper_data.ASAN_MISSED_APPS))
def test_csod_catches_what_asan_misses(name):
    """Libtiff, LibHX, Zziplib: in-library bugs ASan cannot see."""
    assert not asan_detects(name)
    assert csod_detects_within(name, seeds=40)


@pytest.mark.parametrize(
    "name", [n for n in sorted(BUGGY_APPS) if n not in paper_data.ASAN_MISSED_APPS]
)
def test_asan_catches_instrumented_bugs(name):
    assert asan_detects(name)


def test_every_bug_caught_by_csod_across_executions():
    """§V-A: "CSOD did not miss any overflows when considering the 1,000
    executions together" — here with a smaller budget."""
    for name in sorted(BUGGY_APPS):
        assert csod_detects_within(name, seeds=40), name
