"""Failure injection: the runtime must stay consistent when the world
around it misbehaves."""

import pytest

from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.errors import InvalidFreeError, OutOfMemoryError
from repro.workloads.base import SimProcess


def make_process(heap_size=1 << 32, seed=2):
    return SimProcess(seed=seed, heap_size=heap_size)


def with_site(process, name="f"):
    site = CallSite("APP", "fi.c", 1, name)
    try:
        process.symbols.add(site)
    except ValueError:
        pass
    return process.main_thread.call_stack.calling(site)


def test_oom_propagates_and_runtime_survives():
    # A 4 KiB arena exhausts quickly under CSOD's 40-byte envelopes.
    process = make_process(heap_size=4096)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=2)
    thread = process.main_thread
    allocated = []
    with pytest.raises(OutOfMemoryError):
        with with_site(process):
            for _ in range(1000):
                allocated.append(process.heap.malloc(thread, 64))
    # The runtime is still coherent: frees work, shutdown sweeps.
    with with_site(process):
        for address in allocated:
            process.heap.free(thread, address)
    csod.shutdown()
    assert not csod.detected


def test_invalid_free_diagnosed_through_csod():
    process = make_process()
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=2)
    with pytest.raises(Exception):
        process.heap.free(process.main_thread, 0xDEAD_0000)
    csod.shutdown()


def test_double_shutdown_is_idempotent():
    process = make_process()
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=2)
    with with_site(process):
        address = process.heap.malloc(process.main_thread, 64)
    process.machine.memory.write_bytes(address + 64, b"\x00" * 8)
    first = csod.shutdown()
    second = csod.shutdown()
    assert first and not second
    assert len([r for r in csod.reports if r.source == "exit-canary"]) == 1


def test_unwritable_persistence_path_does_not_crash(tmp_path):
    path = str(tmp_path / "no" / "such" / "dir" / "evidence.json")
    process = make_process()
    csod = CSODRuntime(
        process.machine,
        process.heap,
        CSODConfig(persistence_path=path),
        seed=2,
    )
    with with_site(process):
        address = process.heap.malloc(process.main_thread, 64)
    process.machine.memory.write_bytes(address + 64, b"\x00" * 8)
    reports = csod.shutdown()  # persist() must swallow the OSError
    assert reports  # detection itself still worked
    assert csod.termination.persist() == -1


def test_allocations_after_shutdown_fall_through_to_raw():
    process = make_process()
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=2)
    csod.shutdown()
    with with_site(process):
        address = process.heap.malloc(process.main_thread, 32)
    assert process.allocator.is_live(address)
    assert csod.stats().allocations == 0


def test_free_of_object_allocated_before_preload():
    """An object malloc'd before LD_PRELOAD-time must still free safely
    through the raw path after CSOD unloads (real preload tools face
    this ordering constraint)."""
    process = make_process()
    with with_site(process):
        early = process.heap.malloc(process.main_thread, 64)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=2)
    csod.shutdown()
    process.heap.free(process.main_thread, early)
    assert not process.allocator.is_live(early)
