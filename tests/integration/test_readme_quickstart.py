"""The README's quickstart snippet must actually work as printed."""

from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess


def test_readme_quickstart_snippet():
    process = SimProcess(seed=1)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)

    site = CallSite("DEMO", "buffer.c", 12, "make_buffer")
    process.symbols.add(site)
    thread = process.main_thread
    with thread.call_stack.calling(site):
        buf = process.heap.malloc(thread, 64)
    process.machine.cpu.store(thread, buf + 64, b"overflow")

    csod.shutdown()
    rendered = csod.reports[0].render(process.symbols)
    assert "A buffer over-write problem is detected at:" in rendered
    assert "DEMO/buffer.c:12" in rendered
