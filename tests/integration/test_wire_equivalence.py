"""The shm wire may not change one byte of campaign output.

The acceptance bar for the shared-memory data plane: a fixed-seed
campaign serialises **byte-identically** across ``wire="pickle"`` and
``wire="shm"`` at 1, 2, and 4 workers, with and without fleet-wide
evidence sharing — and the oracle scorecard (which hashes its own
settings and every observation) is equally invariant.
"""

import json

import pytest

from repro.fleet.runner import run_fleet
from repro.fleet.shm import WIRE_PICKLE, WIRE_SHM, shm_supported
from repro.oracle.runner import OracleSettings, run_oracle

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="POSIX shared memory unavailable"
)

_EXECUTIONS = 8
_WAVE_SIZE = 4  # fixed so shared-evidence visibility boundaries agree


def _campaign(wire: str, workers: int, share_evidence: bool):
    result = run_fleet(
        "imgpipe",
        executions=_EXECUTIONS,
        workers=workers,
        share_evidence=share_evidence,
        seed_base=40,
        wave_size=_WAVE_SIZE,
        timeout_seconds=60.0,
        wire=wire,
    )
    return {
        "aggregate": json.dumps(
            result.aggregator.to_dict(), sort_keys=True
        ),
        "detections": result.detections,
        "outcomes": [r.outcome for r in result.results],
        "evidence": sorted(result.evidence),
    }


@pytest.mark.parametrize("share_evidence", [False, True])
def test_campaign_bytes_identical_across_wires_and_workers(share_evidence):
    baseline = _campaign(WIRE_PICKLE, 1, share_evidence)
    for wire in (WIRE_PICKLE, WIRE_SHM):
        for workers in (1, 2, 4):
            if wire == WIRE_PICKLE and workers == 1:
                continue
            got = _campaign(wire, workers, share_evidence)
            assert got == baseline, (
                f"wire={wire} workers={workers} "
                f"share_evidence={share_evidence} diverged from serial pickle"
            )


def test_oracle_scorecard_identical_across_wires():
    runs = {
        wire: run_oracle(
            OracleSettings(
                budget=3, seed=11, workers=2, executions_per_app=2, wire=wire
            )
        )
        for wire in (WIRE_PICKLE, WIRE_SHM)
    }
    cards = {
        wire: json.dumps(run.scorecard, sort_keys=True)
        for wire, run in runs.items()
    }
    assert cards[WIRE_PICKLE] == cards[WIRE_SHM]
    # The wire is a transport knob: it must not even appear in the
    # hashed settings, or equal campaigns would stop content-addressing
    # equally.
    assert "wire" not in runs[WIRE_SHM].scorecard["settings"]
