"""Seed robustness — the Table II rates are not tuned to specific seeds.

The structural knobs were calibrated against executions seeded 0..N.  If
the published-band agreement only held on those seeds, the reproduction
would be curve-fitting noise.  These tests measure disjoint seed ranges
and require consistent rates.
"""

import pytest

from repro.analysis import estimate_detection_rate
from repro.core import CSODConfig
from repro.workloads.buggy import app_for


@pytest.mark.parametrize("name", ["memcached", "heartbleed", "libdwarf"])
def test_disjoint_seed_ranges_agree(name):
    spec = app_for(name).spec
    config = CSODConfig(replacement_policy="random")
    tuned_range = estimate_detection_rate(spec, config, runs=250, seed_base=0)
    fresh_range = estimate_detection_rate(
        spec, config, runs=250, seed_base=100_000
    )
    assert abs(tuned_range - fresh_range) < 0.12, (name, tuned_range, fresh_range)


def test_full_simulation_agrees_on_fresh_seeds():
    from repro.core import CSODRuntime
    from repro.workloads.base import SimProcess

    hits = 0
    runs = 60
    for seed in range(50_000, 50_000 + runs):
        process = SimProcess(seed=seed)
        csod = CSODRuntime(
            process.machine,
            process.heap,
            CSODConfig(replacement_policy="random"),
            seed=seed,
        )
        app_for("memcached").run(process)
        csod.shutdown()
        hits += csod.detected_by_watchpoint
    # Paper band: 16.3%; accept a generous Monte-Carlo margin.
    assert 0.04 <= hits / runs <= 0.33
