"""End-to-end detection scenarios across the whole stack."""

import pytest

from repro.core import CSODConfig, CSODRuntime
from repro.core.config import POLICY_NAIVE
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for


def run(name, seed, policy="near_fifo", **config_kwargs):
    process = SimProcess(seed=seed)
    csod = CSODRuntime(
        process.machine,
        process.heap,
        CSODConfig(replacement_policy=policy, **config_kwargs),
        seed=seed,
    )
    app_for(name).run(process)
    csod.shutdown()
    return process, csod


def test_gzip_detected_every_run():
    for seed in range(10):
        _, csod = run("gzip", seed)
        assert csod.detected_by_watchpoint


def test_heartbleed_over_read_detected_sometimes():
    hits = sum(run("heartbleed", seed)[1].detected_by_watchpoint for seed in range(20))
    assert 0 < hits < 20


def test_heartbleed_report_is_an_over_read():
    for seed in range(30):
        _, csod = run("heartbleed", seed)
        if csod.detected_by_watchpoint:
            (report,) = [r for r in csod.reports if r.source == "watchpoint"]
            assert report.kind == "over-read"
            return
    pytest.fail("heartbleed never detected in 30 runs")


def test_report_symbolizes_both_contexts():
    process, csod = run("gzip", 1)
    report = next(r for r in csod.reports if r.source == "watchpoint")
    text = report.render(process.symbols)
    assert "GZIP/overflow.c:42" in text
    assert "GZIP/alloc.c:500" in text


def test_naive_policy_never_sees_late_victims():
    for seed in range(8):
        _, csod = run("zziplib", seed, policy=POLICY_NAIVE)
        assert not csod.detected_by_watchpoint


def test_overwrite_always_leaves_evidence():
    """Even when the watchpoint misses, the canary records over-writes."""
    for seed in range(8):
        _, csod = run("memcached", seed)
        assert csod.detected  # by watchpoint or canary evidence


def test_overread_leaves_no_evidence_when_missed():
    for seed in range(12):
        _, csod = run("zziplib", seed)
        if not csod.detected_by_watchpoint:
            assert not csod.detected
            return
    pytest.fail("zziplib detected in every run; cannot exercise the miss path")


def test_no_false_positives_across_apps():
    """Every report's object is the victim — never a healthy object."""
    for name in ("gzip", "libdwarf", "libhx"):
        process = SimProcess(seed=4)
        csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=4)
        result = app_for(name).run(process)
        csod.shutdown()
        for report in csod.reports:
            assert report.object_address == result.victim_address


def test_detection_rate_differs_across_policies():
    naive = sum(
        run("libdwarf", seed, policy="naive")[1].detected_by_watchpoint
        for seed in range(15)
    )
    random_policy = sum(
        run("libdwarf", seed, policy="random")[1].detected_by_watchpoint
        for seed in range(15)
    )
    assert naive == 15
    assert random_policy < 15
