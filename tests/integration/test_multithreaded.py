"""Multithreaded detection: watchpoints armed on every alive thread."""

import pytest

from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess


@pytest.fixture
def env():
    process = SimProcess(seed=8)
    runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=8)
    site = CallSite("APP", "alloc.c", 1, "make_shared_buffer")
    process.symbols.add(site)
    return process, runtime, site


def test_other_thread_overflow_detected(env):
    """Thread A allocates; thread B overflows; B's trap is reported."""
    process, runtime, site = env
    worker = process.spawn_thread("worker")
    with process.main_thread.call_stack.calling(site):
        address = process.heap.malloc(process.main_thread, 64)
    use = CallSite("APP", "worker.c", 9, "worker_loop")
    process.symbols.add(use)
    with worker.call_stack.calling(use):
        process.machine.cpu.store(worker, address + 64, b"\xbb" * 8)
    assert runtime.detected_by_watchpoint
    assert runtime.reports[0].thread_id == worker.tid


def test_late_spawned_thread_is_covered(env):
    """pthread_create interposition arms existing watchpoints."""
    process, runtime, site = env
    with process.main_thread.call_stack.calling(site):
        address = process.heap.malloc(process.main_thread, 64)
    late = process.spawn_thread("late")  # spawned AFTER the watch
    use = CallSite("APP", "late.c", 2, "late_loop")
    process.symbols.add(use)
    with late.call_stack.calling(use):
        process.machine.cpu.load(late, address + 64, 8)
    assert runtime.detected_by_watchpoint
    assert runtime.reports[0].thread_id == late.tid


def test_faulting_thread_stack_is_reported(env):
    """F_SETOWN routing: the report shows the *accessing* thread's stack."""
    process, runtime, site = env
    worker = process.spawn_thread("worker")
    with process.main_thread.call_stack.calling(site):
        address = process.heap.malloc(process.main_thread, 32)
    use = CallSite("APP", "hot.c", 77, "hot_loop")
    process.symbols.add(use)
    with worker.call_stack.calling(use):
        process.machine.cpu.store(worker, address + 32, b"x" * 8)
    text = runtime.reports[0].render(process.symbols)
    assert "APP/hot.c:77" in text


def test_free_removes_watch_from_all_threads(env):
    process, runtime, site = env
    workers = [process.spawn_thread(f"w{i}") for i in range(3)]
    with process.main_thread.call_stack.calling(site):
        address = process.heap.malloc(process.main_thread, 64)
    process.heap.free(process.main_thread, address)
    for thread in [process.main_thread] + workers:
        assert thread.debug_registers.free_slots() == 4


def test_interleaved_scheduler_execution(env):
    """Workload bodies driven by the seeded scheduler still detect."""
    process, runtime, site = env
    scheduler = process.machine.new_scheduler(seed=3)
    address_box = {}

    def allocator_body():
        with process.main_thread.call_stack.calling(site):
            address_box["address"] = process.heap.malloc(process.main_thread, 64)
        yield

    holder = {}

    def overflower_body():
        thread = holder["thread"]  # resolved lazily, at first step
        while "address" not in address_box:
            yield
        use = CallSite("APP", "ov.c", 1, "overflow_fn")
        process.symbols.add(use)
        with thread.call_stack.calling(use):
            process.machine.cpu.store(thread, address_box["address"] + 64, b"!" * 8)
        yield

    scheduler.adopt_main(allocator_body())
    holder["thread"] = scheduler.spawn(overflower_body(), name="worker")
    scheduler.run()
    assert runtime.detected_by_watchpoint
