"""The paper's §VI limitations, each demonstrated by a test.

These tests assert that the reproduction has the *same* blind spots as
the real system — a faithfulness check, not a bug list.
"""

import dataclasses

import pytest

from repro.asan import ASanRuntime
from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import BuggyAppSpec, SimProcess, SyntheticBuggyApp


def tiny_spec(**overrides):
    base = dict(
        name="limit",
        bug_kind="over-write",
        vuln_module="LIMIT",
        reference="test",
        total_contexts=1,
        total_allocations=1,
        before_contexts=1,
        before_allocations=1,
        victim_alloc_index=1,
    )
    base.update(overrides)
    return BuggyAppSpec(**base)


def run_csod(spec, seed=1, config=None):
    process = SimProcess(seed=seed)
    csod = CSODRuntime(
        process.machine, process.heap, config or CSODConfig(), seed=seed
    )
    SyntheticBuggyApp(spec).run(process)
    csod.shutdown()
    return csod


def run_asan(spec, seed=1):
    process = SimProcess(seed=seed)
    asan = ASanRuntime(process.machine, process.heap)
    SyntheticBuggyApp(spec).run(process)
    asan.shutdown()
    return asan


# ----------------------------------------------------------------------
# Limitation 2: non-continuous overflows skip the boundary watchpoint.
# ----------------------------------------------------------------------
def test_continuous_overflow_detected_by_watchpoint():
    csod = run_csod(tiny_spec(overflow_skip=0))
    assert csod.detected_by_watchpoint


def test_non_continuous_overflow_missed_by_watchpoint():
    """§VI: a stride that skips the boundary word escapes the watch."""
    csod = run_csod(tiny_spec(overflow_skip=16))
    assert not csod.detected_by_watchpoint


def test_non_continuous_overflow_also_escapes_the_canary():
    csod = run_csod(tiny_spec(overflow_skip=16))
    assert not csod.detected  # the 8-byte canary is at offset 0..8


def test_asan_catches_within_redzone_regardless_of_stride():
    """§VI: "ASan can detect overflows within redzones, regardless of
    stride or continuity, which is superior to CSOD"."""
    asan = run_asan(tiny_spec(vuln_module="LIMIT", overflow_skip=4))
    assert asan.detected


def test_asan_misses_beyond_the_redzone():
    """...and "ASan cannot detect non-continuous overflows beyond the
    redzones": some stride past the victim's 16-byte redzone (and past
    the neighbour's left redzone) lands in unpoisoned memory."""
    missed_skips = []
    for skip in (32, 40, 48, 56, 64, 80):
        asan = run_asan(
            tiny_spec(
                total_allocations=2,
                before_allocations=2,
                total_contexts=2,
                before_contexts=2,
                overflow_skip=skip,
            )
        )
        if not asan.detected:
            missed_skips.append(skip)
    assert missed_skips, "every probed stride hit a redzone"


# ----------------------------------------------------------------------
# Limitation 1: the watchpoint may be preempted before a late overflow;
# evidence still catches over-writes.
# ----------------------------------------------------------------------
def test_preempted_watchpoint_covered_by_evidence():
    spec = tiny_spec(
        total_contexts=30,
        total_allocations=120,
        before_contexts=30,
        before_allocations=120,
        victim_alloc_index=10,
        structural_seed=77,
    )
    missed_runs = 0
    for seed in range(30):
        csod = run_csod(spec, seed=seed)
        if not csod.detected_by_watchpoint:
            missed_runs += 1
            assert csod.detected  # over-write evidence is assured
    assert missed_runs > 0  # the limitation is actually exercised


# ----------------------------------------------------------------------
# Limitation 3: input-degraded contexts recover only via reviving.
# ----------------------------------------------------------------------
def test_degraded_context_has_low_rate_without_reviving():
    spec = tiny_spec(
        total_contexts=10,
        total_allocations=400,
        before_contexts=10,
        before_allocations=400,
        victim_alloc_index=395,
        victim_context_prior_allocs=40,  # heavily pre-degraded context
        structural_seed=5,
    )
    config = CSODConfig(replacement_policy="random", revive_chance=0.0)
    hits = sum(run_csod(spec, seed=s, config=config).detected_by_watchpoint
               for s in range(25))
    assert hits <= 8  # the limitation: mostly missed in one execution
