"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_apps_lists_workloads(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "heartbleed" in out
    assert "canneal" in out


def test_run_gzip_detects(capsys):
    assert main(["run", "gzip", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "A buffer over-write problem is detected at:" in out
    assert "detected: True" in out


def test_run_without_runtime(capsys):
    assert main(["run", "gzip", "--runtime", "none"]) == 0
    assert "silently" in capsys.readouterr().out


def test_run_asan_misses_library_bug(capsys):
    assert main(["run", "libtiff", "--runtime", "asan"]) == 1
    assert "detected: False" in capsys.readouterr().out


def test_run_asan_detects_app_bug(capsys):
    assert main(["run", "gzip", "--runtime", "asan"]) == 0
    out = capsys.readouterr().out
    assert "heap-buffer-overflow" in out


def test_run_no_evidence(capsys):
    assert main(["run", "polymorph", "--runtime", "csod-noevidence"]) == 0


def test_run_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["run", "doom"])


def test_table1(capsys):
    assert main(["table", "1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_table2_small(capsys):
    assert main(["effectiveness", "gzip", "--runs", "3"]) == 0
    out = capsys.readouterr().out
    assert "gzip" in out and "100.0%" in out


def test_table5(capsys):
    assert main(["table", "5"]) == 0
    assert "TOTAL" in capsys.readouterr().out


def test_evidence_persistence_via_cli(tmp_path, capsys):
    path = str(tmp_path / "ev.json")
    # First execution records evidence even if the watchpoint missed.
    main(["run", "memcached", "--seed", "0", "--evidence-file", path])
    capsys.readouterr()
    # Second execution must detect (§V-A2).
    assert main(["run", "memcached", "--seed", "123", "--evidence-file", path]) == 0
    assert "detected: True" in capsys.readouterr().out


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


def test_fleet_campaign_cli(tmp_path, capsys):
    out_dir = tmp_path / "fleet"
    assert (
        main(
            [
                "fleet",
                "--app",
                "libtiff",
                "--executions",
                "4",
                "--workers",
                "1",
                "--out",
                str(out_dir),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Fleet campaign" in out
    assert "95% CI" in out
    assert "dedup=" in out
    assert (out_dir / "aggregate.json").exists()
    assert (out_dir / "telemetry.jsonl").exists()


def test_fleet_share_evidence_writes_store(tmp_path, capsys):
    out_dir = tmp_path / "fleet"
    assert (
        main(
            [
                "fleet",
                "--app",
                "memcached",
                "--executions",
                "6",
                "--workers",
                "1",
                "--share-evidence",
                "--out",
                str(out_dir),
            ]
        )
        == 0
    )
    assert "evidence store" in capsys.readouterr().out
    assert (out_dir / "evidence.json").exists()


@pytest.mark.parametrize(
    "argv, flag",
    [
        (["fleet", "--app", "libtiff", "--executions", "0"], "--executions"),
        (["fleet", "--app", "libtiff", "--workers", "-1"], "--workers"),
        (["fleet", "--app", "libtiff", "--chunk-size", "0"], "--chunk-size"),
        (["fleet", "--app", "libtiff", "--timeout", "0"], "--timeout"),
        (["fleet", "--app", "libtiff", "--timeout", "-2.5"], "--timeout"),
    ],
)
def test_fleet_rejects_bad_values_naming_the_flag(argv, flag, capsys):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "repro fleet: error" in err
    assert flag in err  # the message names the offending flag


def test_fleet_rejects_unknown_wire_naming_the_flag(capsys):
    argv = ["fleet", "--app", "libtiff", "--wire", "carrier-pigeon"]
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "repro fleet: error" in err
    assert "--wire" in err
    assert "carrier-pigeon" in err


def test_fleet_accepts_both_wires(tmp_path, capsys):
    for wire in ("pickle", "shm"):
        out_dir = tmp_path / f"fleet-{wire}"
        argv = [
            "fleet", "--app", "gzip", "--executions", "4",
            "--workers", "2", "--wire", wire, "--out", str(out_dir),
        ]
        assert main(argv) == 0
        assert (out_dir / "aggregate.json").exists()
    pickled = (tmp_path / "fleet-pickle" / "aggregate.json").read_bytes()
    shared = (tmp_path / "fleet-shm" / "aggregate.json").read_bytes()
    assert pickled == shared
