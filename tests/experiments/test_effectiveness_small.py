"""The Table II driver at reduced run counts."""

import pytest

from repro.core.config import POLICY_NAIVE, POLICY_RANDOM
from repro.experiments.effectiveness import (
    asan_detection,
    average_detection_rate,
    figure6_report,
    render_table1,
    render_table2,
    run_app_once,
    run_table2,
    table1_rows,
)
from repro.experiments import paper_data


def test_run_app_once_returns_runtime():
    csod = run_app_once("gzip", seed=0)
    assert csod.detected_by_watchpoint


def test_simple_apps_always_detected_small():
    rows = run_table2(runs=10, apps=["gzip", "libtiff", "polymorph"])
    for row in rows:
        for policy in row.detections:
            assert row.detections[policy] == 10


def test_naive_never_detects_memcached():
    rows = run_table2(runs=10, apps=["memcached"], policies=[POLICY_NAIVE])
    assert rows[0].detections[POLICY_NAIVE] == 0
    # ...but the evidence canaries still record the over-write.
    assert rows[0].evidence_detections[POLICY_NAIVE] == 10


def test_average_detection_rate():
    rows = run_table2(runs=5, apps=["gzip", "libtiff"])
    assert average_detection_rate(rows, POLICY_RANDOM) == 1.0


def test_render_table2():
    rows = run_table2(runs=5, apps=["gzip"])
    out = render_table2(rows)
    assert "gzip" in out
    assert "AVERAGE" in out


def test_table1_rows_match_paper():
    rows = table1_rows()
    assert len(rows) == 9
    for name, kind, ref, paper_kind, paper_ref in rows:
        assert kind == paper_kind
        assert ref == paper_ref
    assert "gzip" in render_table1()


def test_asan_misses_exactly_the_library_bugs():
    results = asan_detection()
    missed = {name for name, detected in results.items() if not detected}
    assert missed == set(paper_data.ASAN_MISSED_APPS)


def test_figure6_report_shape():
    report = figure6_report()
    assert report.startswith("A buffer over-read problem is detected at:")
    assert "This object is allocated at:" in report
    assert "OPENSSL" in report
