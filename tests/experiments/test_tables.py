"""ASCII table rendering."""

from repro.experiments.tables import render_table


def test_headers_and_rows_aligned():
    out = render_table(["a", "long header"], [[1, 2], [333, 4]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert len(set(len(line.rstrip()) for line in lines[1:2])) == 1


def test_title_prepended():
    out = render_table(["x"], [[1]], title="Table T")
    assert out.splitlines()[0] == "Table T"


def test_thousands_separator():
    out = render_table(["n"], [[1234567]])
    assert "1,234,567" in out


def test_float_formatting():
    out = render_table(["f"], [[0.123456]])
    assert "0.123" in out


def test_nan_renders_dash():
    out = render_table(["f"], [[float("nan")]])
    assert "-" in out.splitlines()[-1]


def test_empty_rows():
    out = render_table(["a", "b"], [])
    assert len(out.splitlines()) == 2
