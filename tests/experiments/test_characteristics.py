"""Table III / Table IV drivers."""

from repro.experiments import paper_data
from repro.experiments.characteristics import (
    render_table3,
    render_table4,
    run_table3,
    run_table4,
)


def test_table3_small_apps_exact():
    rows = {r.app: r for r in run_table3(apps=["gzip", "zziplib", "memcached"])}
    for name in rows:
        paper = paper_data.TABLE3[name]
        row = rows[name]
        assert row.total_contexts == paper[0]
        assert row.total_allocations == paper[1]
        assert row.before_contexts == paper[2]
        assert row.before_allocations == paper[3]


def test_table3_mysql_full_scale():
    (row,) = run_table3(apps=["mysql"])
    assert row.total_allocations == 57_464
    assert row.total_contexts == 488
    assert row.before_allocations == 57_356


def test_table3_render():
    out = render_table3(run_table3(apps=["gzip"]))
    assert "Table III" in out and "gzip" in out


def test_table4_rows():
    rows = {r.app: r for r in run_table4(apps=["streamcluster", "aget"], sim_alloc_cap=2000)}
    for name, row in rows.items():
        paper = paper_data.TABLE4[name]
        assert row.loc == paper[0]
        assert row.contexts == paper[1]
        assert row.allocations == paper[2]
        assert row.paper_watched_times == paper[3]
        assert row.watched_times > 0


def test_table4_wt_same_order_of_magnitude():
    rows = run_table4(apps=["aget", "pfscan", "blackscholes"], sim_alloc_cap=2000)
    for row in rows:
        assert row.watched_times <= 10 * max(1, row.paper_watched_times)


def test_table4_render():
    out = render_table4(run_table4(apps=["aget"], sim_alloc_cap=500))
    assert "Table IV" in out and "aget" in out
