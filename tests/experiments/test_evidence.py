"""The §V-A2 evidence experiment driver."""

from repro.experiments.evidence import (
    overwrite_apps,
    render_evidence,
    run_evidence_experiment,
)


def test_six_overwrite_apps():
    assert overwrite_apps() == [
        "gzip",
        "libhx",
        "libtiff",
        "memcached",
        "mysql",
        "polymorph",
    ]


def test_guarantee_for_memcached(tmp_path):
    (result,) = run_evidence_experiment(
        apps=["memcached"], attempts=6, workdir=str(tmp_path)
    )
    assert result.first_run_missed > 0  # memcached is often missed
    assert result.guarantee_holds


def test_always_detected_apps_trivially_hold(tmp_path):
    (result,) = run_evidence_experiment(
        apps=["gzip"], attempts=4, workdir=str(tmp_path)
    )
    assert result.first_run_missed == 0
    assert result.guarantee_holds


def test_render(tmp_path):
    results = run_evidence_experiment(apps=["gzip"], attempts=2, workdir=str(tmp_path))
    out = render_evidence(results)
    assert "guarantee" in out and "gzip" in out
