"""The generic knob-sweep utility."""

import pytest

from repro.core import CSODConfig
from repro.errors import ExperimentError
from repro.experiments.sweeps import sweep_knob


def test_sweep_shape():
    result = sweep_knob(
        "initial_probability", [0.1, 0.5], ["memcached"], runs=60
    )
    assert result.values == [0.1, 0.5]
    assert set(result.rates) == {0.1, 0.5}
    assert 0.0 <= result.rates[0.5]["memcached"] <= 1.0


def test_sweep_render():
    result = sweep_knob("initial_probability", [0.5], ["gzip"], runs=5)
    out = result.render()
    assert "initial_probability" in out and "gzip" in out


def test_best_value():
    result = sweep_knob(
        "initial_probability", [0.05, 0.5], ["memcached"], runs=120
    )
    assert result.best_value("memcached") == 0.5


def test_unknown_knob_rejected():
    with pytest.raises(ExperimentError):
        sweep_knob("temperature", [1], ["gzip"], runs=1)


def test_unknown_engine_rejected():
    with pytest.raises(ExperimentError):
        sweep_knob("initial_probability", [0.5], ["gzip"], engine="quantum")


def test_full_engine_agrees_on_trivial_app():
    result = sweep_knob(
        "initial_probability", [0.5], ["gzip"], runs=5, engine="full"
    )
    assert result.rates[0.5]["gzip"] == 1.0


def test_policy_knob_sweepable():
    result = sweep_knob(
        "replacement_policy", ["naive", "random"], ["memcached"], runs=40
    )
    assert result.rates["naive"]["memcached"] == 0.0
    assert result.rates["random"]["memcached"] > 0.0
