"""The Table V driver."""

from repro.experiments.memory_usage import render_table5, run_table5, totals


def test_rows_for_all_apps():
    rows = run_table5()
    assert len(rows) == 19


def test_totals():
    t = totals(run_table5())
    assert t["csod"] > t["original"]
    assert t["asan"] > t["csod"]


def test_render_contains_total_row():
    out = render_table5(run_table5())
    assert "TOTAL" in out
    assert "Table V" in out


def test_subset():
    rows = run_table5(apps=["aget", "swaptions"])
    assert [r.app for r in rows] == ["aget", "swaptions"]
