"""Consistency of the transcribed paper data."""

from repro.experiments import paper_data


def test_table2_covers_all_table1_apps():
    assert set(paper_data.TABLE2) == set(paper_data.TABLE1)
    assert set(paper_data.TABLE3) == set(paper_data.TABLE1)


def test_table2_naive_split():
    """§V-A1: naive detects 5 apps always, 4 apps never."""
    always = [a for a, row in paper_data.TABLE2.items() if row[0] == 1000]
    never = [a for a, row in paper_data.TABLE2.items() if row[0] == 0]
    assert len(always) == 5 and len(never) == 4


def test_table2_random_average_is_58_percent():
    rates = [row[1] / 1000 for row in paper_data.TABLE2.values()]
    assert abs(sum(rates) / len(rates) - paper_data.TABLE2_AVERAGE_DETECTION) < 0.02


def test_table2_band_10_to_100():
    for row in paper_data.TABLE2.values():
        for value in row[1:]:
            assert 100 <= value <= 1000


def test_table4_and_table5_cover_19_apps():
    assert len(paper_data.TABLE4) == 19
    assert len(paper_data.TABLE5) == 19
    assert set(paper_data.TABLE4) == set(paper_data.TABLE5)


def test_table5_totals_are_consistent():
    # The printed total is 13,439 while the rows sum to 13,440 — a
    # rounding slip in the paper itself; accept +/- 2 KB.
    total_orig = sum(row[0] for row in paper_data.TABLE5.values())
    assert abs(total_orig - paper_data.TABLE5_TOTAL["original"]) <= 2


def test_freqmine_has_no_asan_row():
    assert paper_data.TABLE5["freqmine"][3] is None
    assert "freqmine" in paper_data.FIGURE7_ASAN_CRASHED


def test_headline_averages():
    assert paper_data.FIGURE7_CSOD_AVERAGE == 0.067
    assert paper_data.FIGURE7_CSOD_NO_EVIDENCE_AVERAGE == 0.043
    assert paper_data.FIGURE7_ASAN_AVERAGE == 0.39
