"""The Fig. 7 driver."""

import math

from repro.experiments.performance import (
    averages,
    measure_app,
    render_figure7,
    run_figure7,
)


def test_measure_app_series():
    row = measure_app("streamcluster", sim_alloc_cap=2000)
    assert row.csod_no_evidence >= 1.0
    assert row.csod >= row.csod_no_evidence
    assert row.asan_minimal > 1.0
    assert row.asan >= row.asan_minimal


def test_freqmine_has_no_asan_bars():
    row = measure_app("freqmine", sim_alloc_cap=2000)
    assert math.isnan(row.asan)
    assert math.isnan(row.asan_minimal)
    assert row.csod > 1.0


def test_io_bound_apps_near_baseline():
    row = measure_app("aget", sim_alloc_cap=2000)
    assert row.csod < 1.03
    assert row.asan < 1.06


def test_averages_skip_nan():
    rows = run_figure7(apps=["freqmine", "aget"], sim_alloc_cap=1000)
    avg = averages(rows)
    assert not math.isnan(avg["asan"])


def test_render_figure7():
    rows = run_figure7(apps=["aget", "pfscan"], sim_alloc_cap=500)
    out = render_figure7(rows)
    assert "Figure 7" in out
    assert "AVERAGE" in out
