"""Campaign driver and Wilson intervals."""

import math

import pytest

from repro.experiments.campaign import (
    CampaignResult,
    expected_executions,
    render_campaigns,
    run_campaign,
    wilson_interval,
)


def test_wilson_interval_contains_point_estimate():
    lo, hi = wilson_interval(30, 100)
    assert lo < 0.3 < hi


def test_wilson_interval_bounds():
    assert wilson_interval(0, 10)[0] == 0.0
    assert wilson_interval(10, 10)[1] == 1.0


def test_wilson_shrinks_with_trials():
    lo1, hi1 = wilson_interval(5, 10)
    lo2, hi2 = wilson_interval(500, 1000)
    assert (hi2 - lo2) < (hi1 - lo1)


def test_wilson_validates():
    with pytest.raises(ValueError):
        wilson_interval(1, 0)
    with pytest.raises(ValueError):
        wilson_interval(5, 3)


def test_expected_executions():
    assert expected_executions(0.5) == 2.0
    assert expected_executions(0.0) == math.inf


def test_campaign_result_properties():
    result = CampaignResult("x", 4, [False, True, False, True], False)
    assert result.hits == 2
    assert result.rate == 0.5
    assert result.first_detection == 2
    assert result.cumulative_curve() == [0.0, 1.0, 1.0, 1.0]


def test_campaign_never_detected():
    result = CampaignResult("x", 2, [False, False], False)
    assert result.first_detection is None


def test_gzip_campaign_all_hits():
    result = run_campaign("gzip", executions=5)
    assert result.rate == 1.0
    assert result.first_detection == 1


def test_memcached_campaign_eventually_catches():
    result = run_campaign("memcached", executions=40)
    assert 0 < result.hits < 40
    assert result.first_detection is not None


def test_evidence_sharing_accelerates(tmp_path):
    independent = run_campaign("memcached", executions=30)
    shared = run_campaign(
        "memcached", executions=30, share_evidence=True, workdir=str(tmp_path)
    )
    # After the first catch (or first evidence upload), a shared
    # campaign detects every execution; independent ones keep missing.
    assert shared.hits > independent.hits
    first = shared.first_detection
    assert all(shared.detections[first:])


def test_render():
    result = run_campaign("gzip", executions=3)
    out = render_campaigns([result])
    assert "gzip" in out and "95% CI" in out
