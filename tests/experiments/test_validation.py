"""The paper-claims scorecard."""

import pytest

from repro.experiments.validation import (
    ClaimResult,
    render_validation,
    validate,
)


@pytest.fixture(scope="module")
def results():
    # Small but sufficient scale; the full protocol runs in benchmarks.
    return validate(runs=25, cap=2000, evidence_attempts=5)


def test_seven_claims_checked(results):
    assert len(results) == 7


def test_all_claims_pass(results):
    failing = [r for r in results if not r.passed]
    assert not failing, render_validation(results)


def test_render(results):
    out = render_validation(results)
    assert "Paper-claims scorecard" in out
    assert "7/7 claims validated" in out


def test_claim_result_shape(results):
    for result in results:
        assert isinstance(result, ClaimResult)
        assert result.claim and result.detail
