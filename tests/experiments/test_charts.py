"""ASCII chart rendering."""

import pytest

from repro.experiments.charts import grouped_bar_chart, horizontal_bar


def test_bar_scales_to_width():
    bar = horizontal_bar(0.5, ceiling=1.0, width=10)
    assert bar.startswith("#" * 5 + "." * 5)


def test_full_bar():
    assert horizontal_bar(1.0, 1.0, 8).startswith("#" * 8)


def test_clipping_annotated():
    bar = horizontal_bar(2.3, ceiling=2.0, width=10)
    assert "clipped" in bar
    assert bar.startswith("#" * 10)


def test_nan_bar():
    assert horizontal_bar(float("nan"), 1.0, 10) == "(n/a)"


def test_grouped_chart_structure():
    out = grouped_bar_chart(
        ["appA", "appB"],
        ["csod", "asan"],
        [[1.05, 1.4], [1.1, 2.2]],
        ceiling=2.0,
        title="Figure 7",
    )
    assert out.splitlines()[0] == "Figure 7"
    assert "appA:" in out
    assert "csod" in out and "asan" in out
    assert "scale: full bar = 2.00" in out


def test_grouped_chart_auto_ceiling():
    out = grouped_bar_chart(["a"], ["s"], [[3.0]])
    assert "full bar = 3.00" in out


def test_grouped_chart_validates_shapes():
    with pytest.raises(ValueError):
        grouped_bar_chart(["a"], ["s"], [])
    with pytest.raises(ValueError):
        grouped_bar_chart(["a"], ["s1", "s2"], [[1.0]])


def test_report_to_dict_roundtrips_through_json():
    import json

    from repro.core import CSODConfig, CSODRuntime
    from repro.workloads.base import SimProcess
    from repro.workloads.buggy import app_for

    process = SimProcess(seed=1)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    app_for("gzip").run(process)
    csod.shutdown()
    payload = json.dumps([r.to_dict(process.symbols) for r in csod.reports])
    decoded = json.loads(payload)
    assert decoded[0]["kind"] == "over-write"
    assert any("alloc.c:500" in line for line in decoded[0]["allocation_context"])
