"""The ASan runtime end to end."""

import pytest

from repro.asan import ASanRuntime
from repro.asan.instrumentation import InstrumentationPolicy
from repro.callstack.frames import CallSite
from repro.errors import ReproError
from repro.workloads.base import SimProcess


def make(seed=6, **kwargs):
    process = SimProcess(seed=seed)
    asan = ASanRuntime(process.machine, process.heap, **kwargs)
    return process, asan


def app_frame(process, module="APP"):
    site = CallSite(module, "use.c", 3, "worker")
    return process.main_thread.call_stack.calling(site)


def test_malloc_object_usable():
    process, asan = make()
    with app_frame(process):
        address = process.heap.malloc(process.main_thread, 64)
        process.machine.cpu.store(process.main_thread, address, b"x" * 64)
    assert not asan.detected


def test_overflow_into_redzone_detected():
    process, asan = make()
    with app_frame(process):
        address = process.heap.malloc(process.main_thread, 64)
        process.machine.cpu.store(process.main_thread, address + 64, b"!" * 8)
    assert asan.detected
    assert asan.reports[0].kind == "heap-buffer-overflow"


def test_underflow_into_left_redzone_detected():
    process, asan = make()
    with app_frame(process):
        address = process.heap.malloc(process.main_thread, 64)
        process.machine.cpu.load(process.main_thread, address - 4, 4)
    assert asan.detected


def test_uninstrumented_module_misses():
    process, asan = make()
    with app_frame(process, module="EVIL.SO"):
        address = process.heap.malloc(process.main_thread, 64)
        process.machine.cpu.store(process.main_thread, address + 64, b"!" * 8)
    assert not asan.detected


def test_instrument_all_catches_library_bug():
    process, asan = make(instrumentation=InstrumentationPolicy(instrument_all=True))
    with app_frame(process, module="EVIL.SO"):
        address = process.heap.malloc(process.main_thread, 64)
        process.machine.cpu.store(process.main_thread, address + 64, b"!" * 8)
    assert asan.detected


def test_use_after_free_detected():
    process, asan = make()
    with app_frame(process):
        address = process.heap.malloc(process.main_thread, 64)
        process.heap.free(process.main_thread, address)
        process.machine.cpu.load(process.main_thread, address, 8)
    assert asan.reports[0].kind == "heap-use-after-free"


def test_quarantine_delays_reuse():
    process, asan = make()
    with app_frame(process):
        a = process.heap.malloc(process.main_thread, 64)
        process.heap.free(process.main_thread, a)
        b = process.heap.malloc(process.main_thread, 64)
    assert b != a  # the freed block is parked, not recycled
    assert asan.quarantine_footprint() >= 64


def test_quarantine_cap_evicts_oldest():
    process, asan = make(quarantine_bytes=256)
    with app_frame(process):
        for _ in range(16):
            address = process.heap.malloc(process.main_thread, 64)
            process.heap.free(process.main_thread, address)
    assert asan.quarantine_footprint() <= 256


def test_memalign():
    process, asan = make()
    with app_frame(process):
        address = process.heap.memalign(process.main_thread, 256, 64)
        assert address % 256 == 0
        process.machine.cpu.store(process.main_thread, address + 64, b"x")
    assert asan.detected


def test_usable_size():
    process, asan = make()
    with app_frame(process):
        address = process.heap.malloc(process.main_thread, 50)
    assert asan.usable_size(address) == 50


def test_free_unknown_pointer_rejected():
    process, asan = make()
    with pytest.raises(ReproError):
        process.heap.free(process.main_thread, 0x1234)


def test_halt_on_error():
    process, asan = make(halt_on_error=True)
    with app_frame(process):
        address = process.heap.malloc(process.main_thread, 64)
        with pytest.raises(ReproError):
            process.machine.cpu.store(process.main_thread, address + 64, b"!")


def test_shutdown_detaches():
    process, asan = make()
    asan.shutdown()
    with app_frame(process):
        address = process.heap.malloc(process.main_thread, 16)
    assert process.allocator.is_live(address)


def test_checks_counted():
    process, asan = make()
    with app_frame(process):
        address = process.heap.malloc(process.main_thread, 8)
        process.machine.cpu.load(process.main_thread, address, 8)
    assert asan.checks_performed >= 1


def test_non_continuous_overflow_within_redzone_detected():
    """ASan's advantage over CSOD (§VI): stride can skip the boundary."""
    process, asan = make()
    with app_frame(process):
        address = process.heap.malloc(process.main_thread, 64)
        # Skip the boundary word, land in the middle of the redzone.
        process.machine.cpu.store(process.main_thread, address + 72, b"zz")
    assert asan.detected
