"""Property-based shadow-memory invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.asan.shadow import ShadowMemory, TAG_FREED, TAG_REDZONE

BASE = 0x100_000

regions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4096),  # offset
        st.integers(min_value=1, max_value=256),  # size
        st.sampled_from([TAG_REDZONE, TAG_FREED, None]),  # None = unpoison
    ),
    max_size=40,
)


def apply_ops(ops):
    shadow = ShadowMemory()
    # A byte-accurate reference model.
    reference = {}
    for offset, size, tag in ops:
        address = BASE + offset * 8  # keep operations granule-aligned
        if tag is None:
            shadow.unpoison(address, size)
            for b in range(address, address + size):
                reference.pop(b, None)
        else:
            shadow.poison(address, size, tag)
            # Poisoning is granule-granular: the whole covered granule
            # range becomes poisoned in the model too.
            first = (address // 8) * 8
            last = ((address + size - 1) // 8) * 8 + 8
            for b in range(first, last):
                reference[b] = tag
    return shadow, reference


@given(regions, st.integers(min_value=0, max_value=4600))
@settings(max_examples=150, deadline=None)
def test_single_byte_checks_match_reference(ops, probe_offset):
    shadow, reference = apply_ops(ops)
    address = BASE + probe_offset
    expected = reference.get(address)
    got = shadow.check(address, 1)
    if expected is None:
        # The reference may under-approximate partial-granule encodings:
        # a clean byte must never be reported poisoned with a *freed*
        # tag, and a fully clean granule must check clean.
        granule = (address // 8) * 8
        granule_clean = all(
            reference.get(b) is None for b in range(granule, granule + 8)
        )
        if granule_clean:
            assert got is None
    else:
        assert got is not None


@given(regions)
@settings(max_examples=100, deadline=None)
def test_unpoison_everything_clears_everything(ops):
    shadow, _ = apply_ops(ops)
    shadow.unpoison(BASE - 64, 8192)
    assert shadow.check(BASE - 64, 8192) is None


@given(
    st.integers(min_value=0, max_value=512),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_object_unpoison_right_edge(offset, size):
    """After carving an object out of poison, in-bounds accesses are
    clean and the first byte past the object is poisoned."""
    shadow = ShadowMemory()
    address = BASE + offset * 16
    shadow.poison(address, ((size + 23) // 8) * 8, TAG_REDZONE)
    shadow.unpoison(address, size)
    assert shadow.check(address, size) is None
    assert shadow.check(address + size, 1) is not None
