"""Shadow memory encoding."""

import pytest

from repro.asan.shadow import (
    GRANULE,
    ShadowMemory,
    TAG_ADDRESSABLE,
    TAG_FREED,
    TAG_REDZONE,
)

BASE = 0x10_000


def test_unpoisoned_is_clean():
    assert ShadowMemory().check(BASE, 8) is None


def test_poison_then_check():
    shadow = ShadowMemory()
    shadow.poison(BASE, 16, TAG_REDZONE)
    assert shadow.check(BASE, 1) == TAG_REDZONE
    assert shadow.check(BASE + 15, 1) == TAG_REDZONE


def test_access_spanning_into_redzone_faults():
    shadow = ShadowMemory()
    shadow.poison(BASE + 16, 16, TAG_REDZONE)
    assert shadow.check(BASE + 12, 8) == TAG_REDZONE


def test_freed_tag_distinct():
    shadow = ShadowMemory()
    shadow.poison(BASE, 16, TAG_FREED)
    assert shadow.check(BASE, 8) == TAG_FREED


def test_bad_tag_rejected():
    with pytest.raises(ValueError):
        ShadowMemory().poison(BASE, 8, 0x42)


def test_unpoison_clears():
    shadow = ShadowMemory()
    shadow.poison(BASE, 32, TAG_REDZONE)
    shadow.unpoison(BASE, 32)
    assert shadow.check(BASE, 32) is None


def test_partial_granule_prefix_is_addressable():
    shadow = ShadowMemory()
    shadow.poison(BASE, 16, TAG_REDZONE)
    shadow.unpoison(BASE, 5)  # 5-byte object in an 8-byte granule
    assert shadow.check(BASE, 5) is None


def test_partial_granule_suffix_faults():
    shadow = ShadowMemory()
    shadow.poison(BASE, 16, TAG_REDZONE)
    shadow.unpoison(BASE, 5)
    assert shadow.check(BASE, 8) is not None
    assert shadow.check(BASE + 5, 1) is not None


def test_zero_size_operations_are_noops():
    shadow = ShadowMemory()
    shadow.poison(BASE, 0, TAG_REDZONE)
    shadow.unpoison(BASE, 0)
    assert shadow.check(BASE, 0) is None
    assert shadow.poisoned_granules() == 0


def test_poisoned_granules_counter():
    shadow = ShadowMemory()
    shadow.poison(BASE, 32, TAG_REDZONE)
    assert shadow.poisoned_granules() == 4


def test_intra_granule_detection_regardless_of_stride():
    """§VI: ASan detects inside redzones regardless of stride."""
    shadow = ShadowMemory()
    shadow.poison(BASE + 64, 16, TAG_REDZONE)
    for offset in range(16):
        assert shadow.check(BASE + 64 + offset, 1) == TAG_REDZONE


def test_nothing_beyond_redzone():
    """§VI: ASan cannot detect beyond the redzone."""
    shadow = ShadowMemory()
    shadow.poison(BASE + 64, 16, TAG_REDZONE)
    assert shadow.check(BASE + 80, 8) is None
