"""Per-module instrumentation policy."""

from repro.asan.instrumentation import InstrumentationPolicy


def test_application_code_covered_by_default():
    policy = InstrumentationPolicy()
    assert policy.covers("GZIP")
    assert policy.covers("MYSQL")


def test_shared_libraries_not_covered():
    policy = InstrumentationPolicy()
    assert not policy.covers("LIBTIFF.SO")
    assert not policy.covers("LIBHX.SO")
    assert not policy.covers("ZZIPLIB.SO")


def test_suffix_check_case_insensitive():
    assert not InstrumentationPolicy().covers("libfoo.so")


def test_explicitly_instrumented_library():
    policy = InstrumentationPolicy(instrumented=["LIBTIFF.SO"])
    assert policy.covers("LIBTIFF.SO")
    assert not policy.covers("LIBHX.SO")


def test_instrument_method():
    policy = InstrumentationPolicy()
    policy.instrument("LIBHX.SO")
    assert policy.covers("LIBHX.SO")


def test_instrument_all():
    policy = InstrumentationPolicy(instrument_all=True)
    assert policy.covers("ANYTHING.SO")
