"""Redzone sizing policies."""

import pytest

from repro.asan.redzones import DEFAULT_MAX_REDZONE, MIN_REDZONE, redzone_size


def test_minimal_is_16_bytes():
    """The paper's ASan configuration: minimal 16-byte redzones."""
    assert MIN_REDZONE == 16
    for size in (0, 1, 64, 4096, 1 << 20):
        assert redzone_size(size, minimal=True) == 16


def test_default_grows_with_object():
    assert redzone_size(16, minimal=False) == 16
    assert redzone_size(4096, minimal=False) > 16


def test_default_capped():
    assert redzone_size(1 << 26, minimal=False) <= DEFAULT_MAX_REDZONE


def test_default_is_power_of_two():
    for size in (100, 1000, 10_000, 100_000):
        zone = redzone_size(size, minimal=False)
        assert zone & (zone - 1) == 0


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        redzone_size(-1)
