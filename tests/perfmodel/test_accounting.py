"""Overhead accounting (Fig. 7 model)."""

import math

import pytest

from repro.asan import ASanRuntime
from repro.core import CSODConfig, CSODRuntime
from repro.perfmodel.accounting import (
    asan_crashes,
    asan_overhead_breakdown,
    asan_overhead_fraction,
    csod_overhead_breakdown,
    csod_overhead_fraction,
)
from repro.perfmodel.costs import CSOD_INIT_COST_S
from repro.workloads.base import SimProcess
from repro.workloads.perf import perf_app_for


def measure_csod(name, cap=2000, evidence=True, seed=7):
    process = SimProcess(seed=seed)
    config = CSODConfig() if evidence else CSODConfig(evidence_enabled=False)
    csod = CSODRuntime(process.machine, process.heap, config, seed=seed)
    measurement = perf_app_for(name, cap).run(process, csod)
    csod.shutdown()
    return measurement


def measure_asan(name, cap=2000, seed=7):
    process = SimProcess(seed=seed)
    asan = ASanRuntime(process.machine, process.heap)
    measurement = perf_app_for(name, cap).run(process)
    asan.shutdown()
    return measurement


def test_breakdown_components_positive():
    breakdown = csod_overhead_breakdown(measure_csod("dedup"))
    assert breakdown.per_allocation_s > 0
    assert breakdown.watchpoint_syscalls_s > 0
    assert breakdown.initialization_s == CSOD_INIT_COST_S
    assert breakdown.access_checks_s == 0
    assert breakdown.total_s == pytest.approx(
        breakdown.per_allocation_s
        + breakdown.watchpoint_syscalls_s
        + breakdown.initialization_s
    )


def test_normalized_runtime():
    breakdown = csod_overhead_breakdown(measure_csod("dedup"))
    assert breakdown.normalized_runtime == pytest.approx(1 + breakdown.fraction)


def test_evidence_costs_more_than_no_evidence():
    with_ev = csod_overhead_fraction(measure_csod("canneal", evidence=True))
    without = csod_overhead_fraction(measure_csod("canneal", evidence=False))
    assert with_ev > without


def test_allocation_heavy_app_costs_more():
    canneal = csod_overhead_fraction(measure_csod("canneal"))
    streamcluster = csod_overhead_fraction(measure_csod("streamcluster"))
    assert canneal > 3 * streamcluster


def test_per_allocation_cost_extrapolates_with_scale():
    small = csod_overhead_breakdown(measure_csod("canneal", cap=1000))
    large = csod_overhead_breakdown(measure_csod("canneal", cap=4000))
    # Different slice sizes must extrapolate to a similar full-run cost.
    assert small.per_allocation_s == pytest.approx(
        large.per_allocation_s, rel=0.25
    )


def test_asan_tracks_access_intensity_not_allocations():
    x264 = asan_overhead_fraction(measure_asan("x264"))
    aget = asan_overhead_fraction(measure_asan("aget"))
    assert x264 > 1.0  # the clipped Fig. 7 bars
    assert aget < 0.05  # IO-bound


def test_asan_default_redzones_cost_more_than_minimal():
    measurement = measure_asan("bodytrack")
    minimal = asan_overhead_fraction(measurement, minimal_redzones=True)
    default = asan_overhead_fraction(measurement, minimal_redzones=False)
    assert default > minimal


def test_asan_breakdown_has_access_term():
    breakdown = asan_overhead_breakdown(measure_asan("canneal"))
    assert breakdown.access_checks_s > 0
    assert breakdown.watchpoint_syscalls_s == 0


def test_freqmine_crashes_under_asan():
    assert asan_crashes("freqmine")
    assert not asan_crashes("canneal")
