"""The Table V memory model."""

import pytest

from repro.perfmodel.memory import (
    asan_memory_kb,
    csod_memory_kb,
    memory_for,
)
from repro.workloads.perf import PERF_APPS


def test_csod_adds_40_bytes_per_live_object():
    spec = PERF_APPS["canneal"]
    base = csod_memory_kb(spec)
    import dataclasses

    doubled = dataclasses.replace(spec, peak_live_objects=spec.peak_live_objects * 2)
    delta_kb = csod_memory_kb(doubled) - base
    assert delta_kb == pytest.approx(spec.peak_live_objects * 40 / 1024)


def test_csod_fixed_cost_dominates_tiny_apps():
    """Aget: 7 KB -> ~23 KB, almost all of it the fixed hash table."""
    footprint = memory_for(PERF_APPS["aget"])
    assert footprint.csod_percent > 250
    assert footprint.csod_kb - footprint.original_kb < 30


def test_csod_overhead_vanishes_for_large_apps():
    footprint = memory_for(PERF_APPS["pfscan"])
    assert footprint.csod_percent < 105


def test_asan_shadow_scales_with_footprint():
    facesim = memory_for(PERF_APPS["facesim"])
    assert facesim.asan_kb - facesim.original_kb > PERF_APPS[
        "facesim"
    ].mem_original_kb / 8


def test_asan_explodes_on_allocation_hot_tiny_apps():
    """Swaptions: 9 KB original, hundreds of KB under ASan."""
    footprint = memory_for(PERF_APPS["swaptions"])
    assert footprint.asan_percent > 1000
    assert footprint.csod_percent < footprint.asan_percent / 5


def test_asan_quarantine_capped():
    small = asan_memory_kb(PERF_APPS["aget"])
    # Aget's 46 allocations cannot fill the quarantine cap.
    assert small < 30


def test_csod_below_asan_for_every_multithreaded_parsec_app():
    for name in ("bodytrack", "canneal", "ferret", "raytrace", "vips"):
        footprint = memory_for(PERF_APPS[name])
        assert footprint.csod_kb < footprint.asan_kb


def test_totals_shape_matches_paper():
    """Paper: CSOD ~105% of original in total, ASan ~143%."""
    from repro.experiments.memory_usage import run_table5, totals

    t = totals(run_table5())
    assert 103 <= t["csod_pct"] <= 115
    assert 130 <= t["asan_pct"] <= 160


def test_memory_footprint_percentages():
    footprint = memory_for(PERF_APPS["mysql"])
    assert footprint.csod_percent == pytest.approx(
        100 * footprint.csod_kb / footprint.original_kb
    )
