"""The GWP-ASan detector arm wrapper (runtime in gwp_asan.py)."""

from __future__ import annotations

from typing import Tuple

from repro.detectors.base import Detector
from repro.detectors.gwp_asan import ARM_GWP_ASAN, GWP_ASAN_OVERHEAD_EVENTS


class GwpAsanDetector(Detector):
    name = ARM_GWP_ASAN
    summary = "rare-sampled guard slots with alloc/free stacks in metadata"
    production_viable = True
    # Designed for always-on fleet deployment; published overhead is a
    # fraction of a percent at production sampling rates.
    modeled_overhead_pct = 0.4
    fleet = False
    cost_events = GWP_ASAN_OVERHEAD_EVENTS

    def observe(self, program, seed: int):
        from repro.oracle.harness import observe_gwp_asan

        return observe_gwp_asan(program, seed)

    def expected_kinds(self, truth) -> Tuple[str, ...]:
        from repro.oracle.grammar import DEFECT_DOUBLE_FREE, DEFECT_UNDERFLOW

        if truth.defect == DEFECT_DOUBLE_FREE:
            return ("double-free",)
        if truth.free_before_access:
            return ("use-after-free",)
        if truth.defect == DEFECT_UNDERFLOW:
            return ("underflow",)
        return ("overflow",)
