"""The DoubleTake arm: evidence-based detection with epoch replay.

DoubleTake ("DoubleTake: Fast and Precise Error Detection via
Evidence-Based Dynamic Analysis", Liu et al.) runs almost at native
speed by deferring detection to *epoch boundaries*: every heap object
gets leading/trailing canary words, frees are deferred through a
quarantine whose bodies are filled with a known pattern, and at each
epoch end a sweep looks for corrupted canaries or fills.  When the
sweep finds *evidence*, the epoch is rolled back and re-executed with
instrumentation watching the corrupted words, attributing the precise
write that caused the damage.

In this model the rollback is a deterministic re-run of the program
under the same seed (the sim is a pure function of its seed, which is
exactly the determinism real DoubleTake gets from its process
snapshot); the replay runtime watches the faulted words through a CPU
access hook and attaches the writer's stack to the report.  Evidence
signatures flow through the fleet's :class:`EvidenceStore` so sweep
findings dedupe and persist with the same plumbing CSOD evidence uses.

Like real DoubleTake, reads are invisible: an over-read or
use-after-free *read* corrupts nothing and leaves no evidence to find.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.callstack.backtrace import Backtracer
from repro.detectors.base import DetectorReport
from repro.errors import ReproError
from repro.heap.interpose import RawHeap
from repro.machine.cpu import AccessKind
from repro.machine.machine import Machine
from repro.machine.threads import SimThread

ARM_DOUBLETAKE = "doubletake"

# The canary word written before and after every object, and the fill
# byte smeared over quarantined bodies.
CANARY_WORD = 0xD0B1E7A4_D0B1E7A4
FILL_BYTE = 0xDB
WORD_BYTES = 8
# Leading pad: 16 bytes keep the object 16-aligned; the canary word
# occupies the 8 bytes immediately before the object.
LEAD_PAD = 16

EVENT_DT_CANARY_SET = "doubletake.canary_set"
EVENT_DT_SWEEP = "doubletake.canary_sweep"
EVENT_DT_EPOCH = "doubletake.epoch_snapshot"
EVENT_DT_QUARANTINE = "doubletake.quarantine"
EVENT_DT_REPLAY = "doubletake.replay"
CANARY_SET_COST_NS = 6
SWEEP_COST_NS = 4
EPOCH_COST_NS = 5_000
QUARANTINE_COST_NS = 60
REPLAY_COST_NS = 50_000

DOUBLETAKE_OVERHEAD_EVENTS = (
    EVENT_DT_CANARY_SET,
    EVENT_DT_SWEEP,
    EVENT_DT_EPOCH,
    EVENT_DT_QUARANTINE,
    EVENT_DT_REPLAY,
)


@dataclass(frozen=True)
class DoubleTakeConfig:
    """Tunables: epoch cadence and quarantine depth."""

    epoch_every_allocs: int = 64
    quarantine_blocks: int = 256

    def __post_init__(self):
        if self.epoch_every_allocs < 1:
            raise ReproError("epoch_every_allocs must be >= 1")
        if self.quarantine_blocks < 0:
            raise ReproError("quarantine_blocks must be >= 0")


@dataclass
class _Block:
    address: int
    real: int
    size: int
    allocation_context: Tuple[str, ...]
    thread_id: int
    deallocation_context: Tuple[str, ...] = ()


class DoubleTakeRuntime:
    """Interposes on the heap; detection happens at epoch boundaries.

    Pass ``watch`` (faulted word addresses from a previous run's
    evidence) to run in *replay* mode: a CPU access hook records the
    first write into each watched word and the sweep's reports carry
    that precise access context.
    """

    def __init__(
        self,
        machine: Machine,
        interposer,
        config: Optional[DoubleTakeConfig] = None,
        seed: int = 0,
        watch: Tuple[int, ...] = (),
        evidence_store=None,
    ):
        self.machine = machine
        self.config = config or DoubleTakeConfig()
        self._raw: RawHeap = interposer.raw
        self._interposer = interposer
        self._backtracer = Backtracer(machine.ledger)
        self._live: Dict[int, _Block] = {}
        self._quarantined: Dict[int, _Block] = {}
        self._quarantine_fifo: Deque[int] = deque()
        # fault word address -> report kind, recorded once per word.
        self.evidence: Dict[int, str] = {}
        self.reports: List[DetectorReport] = []
        self.epochs = 0
        self.allocation_count = 0
        self._allocs_in_epoch = 0
        self._evidence_store = evidence_store
        self._watch: Tuple[int, ...] = tuple(sorted(watch))
        self._access_hits: Dict[int, Tuple[str, ...]] = {}
        self._hooked = False
        if self._watch:
            machine.cpu.add_access_hook(self._replay_hook)
            self._hooked = True
            machine.ledger.record(EVENT_DT_REPLAY, nanos_each=REPLAY_COST_NS)
        interposer.preload(self)

    # ------------------------------------------------------------------
    # HeapLibrary surface
    # ------------------------------------------------------------------
    def malloc(self, thread: SimThread, size: int) -> int:
        self.allocation_count += 1
        real = self._raw.malloc(thread, size + LEAD_PAD + WORD_BYTES)
        address = real + LEAD_PAD
        memory = self.machine.memory
        memory.write_word(address - WORD_BYTES, CANARY_WORD)
        memory.write_word(address + size, CANARY_WORD)
        self.machine.ledger.record(
            EVENT_DT_CANARY_SET, nanos_each=CANARY_SET_COST_NS
        )
        self._live[address] = _Block(
            address=address,
            real=real,
            size=size,
            allocation_context=self._frames_of(thread),
            thread_id=thread.tid,
        )
        self._allocs_in_epoch += 1
        if self._allocs_in_epoch >= self.config.epoch_every_allocs:
            self._close_epoch()
        return address

    def memalign(self, thread: SimThread, alignment: int, size: int) -> int:
        self.allocation_count += 1
        return self._raw.memalign(thread, alignment, size)

    def free(self, thread: SimThread, address: int) -> None:
        block = self._live.pop(address, None)
        if block is None:
            if address in self._quarantined:
                # Second free of a quarantined block: deterministic
                # double-free, reported non-fatally with both stacks.
                stale = self._quarantined[address]
                self.reports.append(
                    DetectorReport(
                        arm=ARM_DOUBLETAKE,
                        kind="double-free",
                        fault_address=address,
                        object_address=address,
                        object_size=stale.size,
                        thread_id=thread.tid,
                        allocation_context=stale.allocation_context,
                        deallocation_context=stale.deallocation_context,
                    )
                )
                return
            self._raw.free(thread, address)
            return
        block.deallocation_context = self._frames_of(thread)
        # Delayed free: smear the body so any later write shows.
        self.machine.memory.write_bytes(
            address, bytes([FILL_BYTE]) * block.size
        )
        self.machine.ledger.record(
            EVENT_DT_QUARANTINE, nanos_each=QUARANTINE_COST_NS
        )
        self._quarantined[address] = block
        self._quarantine_fifo.append(address)
        while len(self._quarantine_fifo) > self.config.quarantine_blocks:
            evicted = self._quarantined.pop(self._quarantine_fifo.popleft())
            self._sweep_block(evicted, quarantined=True)
            self._raw.free(thread, evicted.real)

    def usable_size(self, address: int) -> int:
        block = self._live.get(address)
        if block is not None:
            return block.size
        return self._raw.usable_size(address)

    @staticmethod
    def _frames_of(thread: SimThread) -> Tuple[str, ...]:
        return tuple(str(frame) for frame in thread.call_stack)

    # ------------------------------------------------------------------
    # Epoch boundary: the evidence sweep
    # ------------------------------------------------------------------
    def _close_epoch(self) -> None:
        self.epochs += 1
        self._allocs_in_epoch = 0
        self.machine.ledger.record(EVENT_DT_EPOCH, nanos_each=EPOCH_COST_NS)
        for block in list(self._live.values()):
            self._sweep_block(block, quarantined=False)
        for block in list(self._quarantined.values()):
            self._sweep_block(block, quarantined=True)

    def _sweep_block(self, block: _Block, quarantined: bool) -> None:
        memory = self.machine.memory
        self.machine.ledger.record(EVENT_DT_SWEEP, nanos_each=SWEEP_COST_NS)
        lead = block.address - WORD_BYTES
        trail = block.address + block.size
        if memory.read_word(trail) != CANARY_WORD:
            self._record("buffer-overflow-write", trail, block)
        if memory.read_word(lead) != CANARY_WORD:
            self._record("buffer-underflow-write", lead, block)
        if quarantined:
            body = memory.read_bytes(block.address, block.size)
            for offset, value in enumerate(body):
                if value != FILL_BYTE:
                    fault = block.address + (offset & ~(WORD_BYTES - 1))
                    self._record("use-after-free-write", fault, block)
                    break

    def _record(self, kind: str, fault: int, block: _Block) -> None:
        if fault in self.evidence:
            return
        self.evidence[fault] = kind
        self.reports.append(
            DetectorReport(
                arm=ARM_DOUBLETAKE,
                kind=kind,
                fault_address=fault,
                object_address=block.address,
                object_size=block.size,
                thread_id=block.thread_id,
                allocation_context=block.allocation_context,
                access_context=self._access_hits.get(fault, ()),
                deallocation_context=block.deallocation_context,
            )
        )

    # ------------------------------------------------------------------
    # Replay attribution
    # ------------------------------------------------------------------
    def _replay_hook(
        self, thread: SimThread, address: int, size: int, kind
    ) -> None:
        if kind != AccessKind.WRITE:
            return
        for fault in self._watch:
            if fault in self._access_hits:
                continue
            if address < fault + WORD_BYTES and address + size > fault:
                self._access_hits[fault] = tuple(
                    str(frame) for frame in thread.call_stack
                )

    def evidence_signatures(self) -> Tuple[str, ...]:
        """Stable signatures for the EvidenceStore (dedupe/persist)."""
        return tuple(
            f"doubletake:{kind}:{fault:#x}"
            for fault, kind in sorted(self.evidence.items())
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def detected(self) -> bool:
        return bool(self.reports)

    def shutdown(self) -> None:
        """Final epoch boundary, then tear down the interposition."""
        self._close_epoch()
        if self._evidence_store is not None and self.evidence:
            self._evidence_store.merge(self.evidence_signatures())
        if self._hooked:
            self.machine.cpu.remove_access_hook(self._replay_hook)
            self._hooked = False
        self._interposer.unload()
