"""The CSOD fleet arms: full, random-replacement, and no-evidence.

These three run through the fleet pool (that is the point of CSOD: a
fleet of cheap, sampled monitors), so the detector object contributes a
:class:`CSODConfig` and folds the pool's execution results into an
observation instead of running the program itself.
"""

from __future__ import annotations

from typing import Tuple

from repro.detectors.base import Detector
from repro.perfmodel.costs import CSOD_OVERHEAD_EVENTS


class CsodDetector(Detector):
    fleet = True
    cost_events = CSOD_OVERHEAD_EVENTS

    def __init__(
        self,
        name: str,
        summary: str,
        modeled_overhead_pct: float,
        config_factory,
    ):
        self.name = name
        self.summary = summary
        self.modeled_overhead_pct = modeled_overhead_pct
        self._config_factory = config_factory

    def config(self):
        return self._config_factory()

    def classify(self, program, results):
        from repro.oracle.harness import classify_csod_results

        return classify_csod_results(program, self.name, results)

    def expected_kinds(self, truth) -> Tuple[str, ...]:
        from repro.core.reporting import KIND_DOUBLE_FREE
        from repro.oracle.grammar import DEFECT_DOUBLE_FREE

        if truth.defect == DEFECT_DOUBLE_FREE:
            return (KIND_DOUBLE_FREE,)
        return (truth.bug_kind,)


def _config_csod():
    from repro.core.config import POLICY_NEAR_FIFO, CSODConfig

    return CSODConfig(replacement_policy=POLICY_NEAR_FIFO)


def _config_csod_random():
    from repro.core.config import POLICY_RANDOM, CSODConfig

    return CSODConfig(replacement_policy=POLICY_RANDOM)


def _config_csod_noevidence():
    from repro.core.config import POLICY_NEAR_FIFO, CSODConfig

    return CSODConfig(replacement_policy=POLICY_NEAR_FIFO).without_evidence()


def build_csod_arms() -> Tuple[CsodDetector, ...]:
    """The trio, in the canonical fleet order.

    Overheads are the paper's geo-means: ~6.7% for full CSOD (context
    lookup + sampled watchpoints + evidence canaries), slightly worse
    for random replacement (more watchpoint churn), and ~4.8% with
    evidence mode off.
    """
    return (
        CsodDetector(
            "csod",
            "context-sensitive sampled watchpoints with evidence canaries",
            6.7,
            _config_csod,
        ),
        CsodDetector(
            "csod-random",
            "CSOD ablation: random watchpoint replacement policy",
            6.9,
            _config_csod_random,
        ),
        CsodDetector(
            "csod-noevidence",
            "CSOD ablation: sampling only, no evidence canaries",
            4.8,
            _config_csod_noevidence,
        ),
    )
