"""The detector registry: names to arms, in canonical order.

Registration order is the canonical arm order everywhere — the fleet
trio first (their registration order pins the deterministic
``_csod_specs`` index layout in the oracle runner), then the inline
baselines in the order they joined the study.  ``resolve_arms`` returns
selections re-sorted into this order so a user-supplied subset can
never perturb scheduling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.detectors.base import Detector
from repro.errors import ReproError

_REGISTRY: Dict[str, Detector] = {}
_ORDER: List[str] = []

# Convenience spellings accepted by normalize(); canonical names only
# ever appear in scorecards and job hashes.
_ALIASES = {
    "gwp": "gwp-asan",
    "gwpasan": "gwp-asan",
    "gwp_asan": "gwp-asan",
    "double-take": "doubletake",
    "double_take": "doubletake",
    "address-sanitizer": "asan",
    "guard-page": "guardpage",
    "guard_page": "guardpage",
}


def register(detector: Detector) -> Detector:
    """Add an arm; duplicate names are a programming error."""
    name = detector.name
    if not name:
        raise ReproError("detector arm must have a name")
    if name in _REGISTRY:
        raise ReproError(f"detector arm {name!r} already registered")
    _REGISTRY[name] = detector
    _ORDER.append(name)
    return detector


def known_arms() -> Tuple[str, ...]:
    """All arm names, in canonical (registration) order."""
    return tuple(_ORDER)


def normalize(name: str) -> str:
    """Canonical spelling of ``name``; raises listing known arms."""
    cleaned = name.strip().lower()
    cleaned = _ALIASES.get(cleaned, cleaned)
    if cleaned not in _REGISTRY:
        raise ReproError(
            f"unknown detector arm {name!r}; known arms: "
            + ", ".join(known_arms())
        )
    return cleaned


def get(name: str) -> Detector:
    return _REGISTRY[normalize(name)]


def resolve_arms(names: Optional[Iterable[str]]) -> Tuple[str, ...]:
    """Validate a selection and return it in canonical order.

    ``None`` means the full matrix.  Duplicates collapse; an empty
    selection is rejected (an oracle run with zero arms scores
    nothing).
    """
    if names is None:
        return known_arms()
    picked = {normalize(n) for n in names}
    if not picked:
        raise ReproError("detector arm selection must name at least one arm")
    return tuple(a for a in known_arms() if a in picked)


def fleet_arms(names: Optional[Iterable[str]] = None) -> Tuple[str, ...]:
    return tuple(a for a in resolve_arms(names) if _REGISTRY[a].fleet)


def inline_arms(names: Optional[Iterable[str]] = None) -> Tuple[str, ...]:
    return tuple(a for a in resolve_arms(names) if not _REGISTRY[a].fleet)


def cheapest_production_arm(names: Iterable[str]) -> str:
    """The production-viable arm with the lowest modeled overhead.

    Used by triage to tag each bug with the cheapest detector that
    caught it.  Returns ``""`` when nothing in ``names`` is deployable
    (e.g. a bug only ASan sees).
    """
    viable = [
        _REGISTRY[normalize(n)]
        for n in names
        if _REGISTRY[normalize(n)].production_viable
    ]
    if not viable:
        return ""
    return min(viable, key=lambda d: (d.modeled_overhead_pct, d.name)).name
