"""The always-on guard-page arm (electric-fence-style baseline)."""

from __future__ import annotations

from typing import Tuple

from repro.detectors.base import Detector
from repro.guardpage.runtime import GUARDPAGE_OVERHEAD_EVENTS


class GuardPageDetector(Detector):
    name = "guardpage"
    summary = "Bernoulli-sampled guard pages, right guard only"
    production_viable = True
    # Cheap per allocation but pays a page per guarded object; modeled
    # at sub-1% runtime for production sampling rates.
    modeled_overhead_pct = 0.8
    fleet = False
    cost_events = GUARDPAGE_OVERHEAD_EVENTS

    def observe(self, program, seed: int):
        from repro.oracle.harness import observe_guardpage

        return observe_guardpage(program, seed)

    def expected_kinds(self, truth) -> Tuple[str, ...]:
        from repro.oracle.grammar import DEFECT_DOUBLE_FREE

        if truth.defect == DEFECT_DOUBLE_FREE:
            return ("double-free",)
        if truth.free_before_access:
            return ("use-after-free",)
        return ("overflow",)
