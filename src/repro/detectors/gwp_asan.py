"""The GWP-ASan arm: rare-sampled guard slots with stacks in metadata.

GWP-ASan ("GWP-ASan: Sampling-Based Detection of Memory-Safety Bugs in
Production", Serebryany et al.) guards a tiny pool of sampled
allocations with protected pages and keeps allocation *and*
deallocation stacks in per-slot metadata, so the crash handler can
print both when a fault hits a guard or a quarantined slot.

Differences from the simpler ``repro.guardpage`` baseline this repo
already had:

* **Rare sampling gate** — a next-sample countdown (mean
  ``sample_every``) instead of a per-allocation Bernoulli draw; the
  steady-state check is a single decrement.
* **Slot pool with left/right guards** — a fixed pool laid out as
  ``[G][S0][G][S1][G]...``: guard pages interleave slot pages, so every
  slot has a guard on both sides and a right-aligned object catches
  overflows while a left-aligned one would catch underflows (this model
  right-aligns, like the production default).
* **Quarantine** — freed slots stay unmapped in a FIFO quarantine and
  are only recycled when it overflows; a touch inside a quarantined
  slot is a use-after-free with both stacks, and a second free of a
  quarantined object is a double-free caught at the free site.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.callstack.backtrace import Backtracer
from repro.detectors.base import DetectorReport
from repro.errors import ReproError
from repro.heap.interpose import RawHeap
from repro.heap.size_classes import MIN_ALIGNMENT
from repro.machine.address_space import PAGE_SIZE
from repro.machine.machine import Machine
from repro.machine.signals import SIGSEGV, SigInfo
from repro.machine.threads import SimThread

ARM_GWP_ASAN = "gwp-asan"

# A reserved VA range for the slot pool, clear of the heap arena
# (0x7F00...) and the guard-page baseline's region (0x7E00...).
GWP_REGION_BASE = 0x7D00_0000_0000

# Cost model: the countdown is one decrement; a sampled allocation pays
# the slot mmap plus the two stack captures; recycling a quarantined
# slot is bookkeeping.
EVENT_GWP_SAMPLE = "gwp_asan.sample_check"
EVENT_GWP_SETUP = "gwp_asan.slot_setup"
EVENT_GWP_QUARANTINE = "gwp_asan.quarantine"
SAMPLE_CHECK_COST_NS = 1
SLOT_SETUP_COST_NS = 3_000
QUARANTINE_COST_NS = 120

GWP_ASAN_OVERHEAD_EVENTS = (
    EVENT_GWP_SAMPLE,
    EVENT_GWP_SETUP,
    EVENT_GWP_QUARANTINE,
)

STATE_FREE = "free"
STATE_LIVE = "live"
STATE_QUARANTINED = "quarantined"


@dataclass(frozen=True)
class GwpAsanConfig:
    """Tunables (production ships roughly 1/5000 over 16 slots)."""

    sample_every: int = 5000
    pool_slots: int = 16
    quarantine_slots: int = 8

    def __post_init__(self):
        if self.sample_every < 1:
            raise ReproError("sample_every must be >= 1")
        if self.pool_slots < 1:
            raise ReproError("pool_slots must be >= 1")
        if not 0 <= self.quarantine_slots <= self.pool_slots:
            raise ReproError(
                "quarantine_slots must be between 0 and pool_slots"
            )


@dataclass
class _Slot:
    """One pool slot; metadata persists across the quarantine."""

    index: int
    page_base: int
    state: str = STATE_FREE
    object_address: int = 0
    object_size: int = 0
    allocation_context: Tuple[str, ...] = ()
    deallocation_context: Tuple[str, ...] = ()
    thread_id: int = 0


class GwpAsanSlotPool:
    """The fixed slot pool with interleaved guard pages.

    Layout from ``base``: page ``2*i`` is the guard *left of* slot
    ``i``; page ``2*i + 1`` is slot ``i``'s data page; the final page
    ``2*n`` guards the right edge of the last slot.  Guard pages are
    never mapped — the pool only ever maps slot pages, so guards can
    never overlap a live slot.
    """

    def __init__(self, memory, base: int = GWP_REGION_BASE, slots: int = 16):
        self._memory = memory
        self.base = base
        self.slots: Tuple[_Slot, ...] = tuple(
            _Slot(index=i, page_base=base + (2 * i + 1) * PAGE_SIZE)
            for i in range(slots)
        )
        self._free: Deque[int] = deque(range(slots))
        self._quarantine: Deque[int] = deque()

    # -- pool state (also the property-test surface) --------------------
    def free_indexes(self) -> Tuple[int, ...]:
        return tuple(self._free)

    def quarantined_indexes(self) -> Tuple[int, ...]:
        return tuple(self._quarantine)

    def live_indexes(self) -> Tuple[int, ...]:
        return tuple(
            s.index for s in self.slots if s.state == STATE_LIVE
        )

    def guard_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Every guard page as a half-open [start, end) range."""
        return tuple(
            (self.base + 2 * i * PAGE_SIZE, self.base + (2 * i + 1) * PAGE_SIZE)
            for i in range(len(self.slots) + 1)
        )

    # -- transitions ----------------------------------------------------
    def acquire(self) -> Optional[_Slot]:
        """Hand out a free slot (never one still in quarantine)."""
        if not self._free:
            return None
        slot = self.slots[self._free.popleft()]
        slot.state = STATE_LIVE
        slot.deallocation_context = ()
        self._memory.map_region(slot.page_base, PAGE_SIZE, name="gwp-slot")
        return slot

    def retire(self, slot: _Slot, quarantine_cap: int) -> List[_Slot]:
        """Unmap and quarantine a live slot; recycle past the cap.

        Returns the slots recycled back to the free list (their
        metadata is stale from this point on).
        """
        if slot.state != STATE_LIVE:
            raise ReproError(f"slot {slot.index} is not live")
        self._memory.unmap_region(slot.page_base)
        slot.state = STATE_QUARANTINED
        self._quarantine.append(slot.index)
        recycled: List[_Slot] = []
        while len(self._quarantine) > quarantine_cap:
            stale = self.slots[self._quarantine.popleft()]
            stale.state = STATE_FREE
            self._free.append(stale.index)
            recycled.append(stale)
        return recycled

    def slot_at(self, address: int) -> Optional[_Slot]:
        """The slot whose data page covers ``address``, if any."""
        rel = address - self.base
        if rel < 0 or rel >= (2 * len(self.slots) + 1) * PAGE_SIZE:
            return None
        page_index = rel // PAGE_SIZE
        if page_index % 2 == 0:
            return None  # a guard page
        return self.slots[(page_index - 1) // 2]

    def guard_neighbors(
        self, address: int
    ) -> Tuple[Optional[_Slot], Optional[_Slot]]:
        """(left slot, right slot) around the guard page at ``address``."""
        rel = address - self.base
        if rel < 0 or rel >= (2 * len(self.slots) + 1) * PAGE_SIZE:
            return (None, None)
        page_index = rel // PAGE_SIZE
        if page_index % 2 == 1:
            return (None, None)  # a slot page, not a guard
        left = page_index // 2 - 1
        right = page_index // 2
        return (
            self.slots[left] if 0 <= left < len(self.slots) else None,
            self.slots[right] if right < len(self.slots) else None,
        )


class GwpAsanRuntime:
    """Interposes on the heap; sampled allocations land in the pool.

    Like real GWP-ASan the process still dies on the fault — the report
    is written from the crash handler.  Drivers catch the
    SegmentationFault and read ``reports``.
    """

    def __init__(
        self,
        machine: Machine,
        interposer,
        config: Optional[GwpAsanConfig] = None,
        seed: int = 0,
    ):
        from repro.core.rng import PerThreadRNG

        self.machine = machine
        self.config = config or GwpAsanConfig()
        self._raw: RawHeap = interposer.raw
        self._interposer = interposer
        self._rng = PerThreadRNG(seed, machine.ledger)
        self._backtracer = Backtracer(machine.ledger)
        self.pool = GwpAsanSlotPool(
            machine.memory, slots=self.config.pool_slots
        )
        self._by_address: Dict[int, _Slot] = {}
        self._next_sample = 0  # sample the first eligible allocation
        self.reports: List[DetectorReport] = []
        self.sampled_count = 0
        self.allocation_count = 0
        machine.signals.sigaction(SIGSEGV, self._on_segv)
        interposer.preload(self)

    # ------------------------------------------------------------------
    # HeapLibrary surface
    # ------------------------------------------------------------------
    def malloc(self, thread: SimThread, size: int) -> int:
        self.allocation_count += 1
        self.machine.ledger.record(
            EVENT_GWP_SAMPLE, nanos_each=SAMPLE_CHECK_COST_NS
        )
        if size <= PAGE_SIZE and self._should_sample(thread):
            slot = self.pool.acquire()
            if slot is not None:
                return self._guarded_alloc(thread, slot, size)
        return self._raw.malloc(thread, size)

    def memalign(self, thread: SimThread, alignment: int, size: int) -> int:
        self.allocation_count += 1
        return self._raw.memalign(thread, alignment, size)

    def free(self, thread: SimThread, address: int) -> None:
        slot = self._by_address.get(address)
        if slot is None:
            self._raw.free(thread, address)
            return
        if slot.state == STATE_QUARANTINED:
            # Second free of a slot already in quarantine: a
            # deterministic double-free, reported (non-fatally, as the
            # production tool does) with both recorded stacks.
            self.reports.append(
                DetectorReport(
                    arm=ARM_GWP_ASAN,
                    kind="double-free",
                    fault_address=address,
                    object_address=slot.object_address,
                    object_size=slot.object_size,
                    thread_id=thread.tid,
                    allocation_context=slot.allocation_context,
                    deallocation_context=slot.deallocation_context,
                )
            )
            return
        slot.deallocation_context = self._frames_of(thread)
        self.machine.ledger.record(
            EVENT_GWP_QUARANTINE, nanos_each=QUARANTINE_COST_NS
        )
        for stale in self.pool.retire(slot, self.config.quarantine_slots):
            self._by_address.pop(stale.object_address, None)

    def usable_size(self, address: int) -> int:
        slot = self._by_address.get(address)
        if slot is not None and slot.state == STATE_LIVE:
            return slot.object_size
        return self._raw.usable_size(address)

    # ------------------------------------------------------------------
    # Sampling gate
    # ------------------------------------------------------------------
    def _should_sample(self, thread: SimThread) -> bool:
        if self.config.sample_every == 1:
            return True
        if self._next_sample > 0:
            self._next_sample -= 1
            return False
        # Uniform on [1, 2*sample_every - 1]: mean sample_every, so the
        # long-run rate matches 1/sample_every without a modulo on the
        # allocation hot path.
        self._next_sample = 1 + self._rng.below(
            thread.tid, 2 * self.config.sample_every - 1
        )
        return True

    def _guarded_alloc(self, thread: SimThread, slot: _Slot, size: int) -> int:
        self.sampled_count += 1
        self.machine.ledger.record(
            EVENT_GWP_SETUP, nanos_each=SLOT_SETUP_COST_NS
        )
        # Right-align against the right guard page, subject to the
        # 16-byte allocator alignment (the classic GWP-ASan slack).
        object_address = (
            slot.page_base + PAGE_SIZE - size
        ) & ~(MIN_ALIGNMENT - 1)
        slot.object_address = object_address
        slot.object_size = size
        slot.allocation_context = self._frames_of(thread)
        slot.thread_id = thread.tid
        self._by_address[object_address] = slot
        return object_address

    def _frames_of(self, thread: SimThread) -> Tuple[str, ...]:
        frames = self._backtracer.full_frames(thread.call_stack)
        return tuple(str(f) for f in frames)

    # ------------------------------------------------------------------
    # Crash attribution
    # ------------------------------------------------------------------
    def _on_segv(self, signo: int, info: SigInfo, thread: SimThread) -> None:
        fault = info.fault_address
        left, right = self.pool.guard_neighbors(fault)
        if left is not None or right is not None:
            if left is not None and left.state == STATE_LIVE:
                self._report("overflow", fault, left, thread)
            elif right is not None and right.state == STATE_LIVE:
                self._report("underflow", fault, right, thread)
            elif left is not None and left.state == STATE_QUARANTINED:
                # Walked off the end of an already-freed object.
                self._report("use-after-free", fault, left, thread)
            return
        slot = self.pool.slot_at(fault)
        if slot is not None and slot.state == STATE_QUARANTINED:
            self._report("use-after-free", fault, slot, thread)

    def _report(
        self, kind: str, fault: int, slot: _Slot, thread: SimThread
    ) -> None:
        self.reports.append(
            DetectorReport(
                arm=ARM_GWP_ASAN,
                kind=kind,
                fault_address=fault,
                object_address=slot.object_address,
                object_size=slot.object_size,
                thread_id=thread.tid,
                allocation_context=slot.allocation_context,
                deallocation_context=slot.deallocation_context,
            )
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def detected(self) -> bool:
        return bool(self.reports)

    def memory_overhead_bytes(self) -> int:
        """Pages pinned by live + quarantined slots."""
        return (
            len(self.pool.live_indexes())
            + len(self.pool.quarantined_indexes())
        ) * PAGE_SIZE

    def shutdown(self) -> None:
        self._interposer.unload()
        self.machine.signals.sigaction(SIGSEGV, None)
