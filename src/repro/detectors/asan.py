"""The AddressSanitizer arm (inline baseline, not production-viable)."""

from __future__ import annotations

from typing import Tuple

from repro.detectors.base import Detector
from repro.perfmodel.costs import ASAN_ALLOC_EVENTS


class AsanDetector(Detector):
    name = "asan"
    summary = "redzone poisoning with per-access shadow checks"
    # The paper's comparison point: ~73% geo-mean slowdown keeps ASan a
    # testing tool, not a fleet deployment.
    production_viable = False
    modeled_overhead_pct = 73.0
    fleet = False
    cost_events = ASAN_ALLOC_EVENTS

    def observe(self, program, seed: int):
        from repro.oracle.harness import observe_asan

        return observe_asan(program, seed)

    def expected_kinds(self, truth) -> Tuple[str, ...]:
        from repro.oracle.grammar import DEFECT_DOUBLE_FREE

        if truth.defect == DEFECT_DOUBLE_FREE:
            return ("double-free",)
        if truth.free_before_access:
            return ("heap-use-after-free",)
        return ("heap-buffer-overflow",)
