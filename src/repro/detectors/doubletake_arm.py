"""The DoubleTake detector arm wrapper (runtime in doubletake.py)."""

from __future__ import annotations

from typing import Tuple

from repro.detectors.base import Detector
from repro.detectors.doubletake import (
    ARM_DOUBLETAKE,
    DOUBLETAKE_OVERHEAD_EVENTS,
)


class DoubleTakeDetector(Detector):
    name = ARM_DOUBLETAKE
    summary = "epoch-end canary sweeps with rollback-and-replay attribution"
    production_viable = True
    # The paper reports ~4% average overhead for its heap checkers.
    modeled_overhead_pct = 4.1
    fleet = False
    cost_events = DOUBLETAKE_OVERHEAD_EVENTS

    def observe(self, program, seed: int):
        from repro.oracle.harness import observe_doubletake

        return observe_doubletake(program, seed)

    def expected_kinds(self, truth) -> Tuple[str, ...]:
        from repro.oracle.grammar import DEFECT_DOUBLE_FREE

        if truth.defect == DEFECT_DOUBLE_FREE:
            return ("double-free",)
        if truth.free_before_access:
            return ("use-after-free-write",)
        if truth.access_offset < 0:
            return ("buffer-underflow-write",)
        return ("buffer-overflow-write",)
