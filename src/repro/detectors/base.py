"""The detector-arm interface.

A *detector arm* is one memory-safety detector wired into the
differential oracle: CSOD and its ablations, plus the production
baselines the paper compares against.  Every arm implements the same
contract so the oracle, the fleet scheduler, triage, and the perf model
can treat "which detector" as data instead of hard-coded call sites.

Lifecycle contract (mirrors how every runtime in this repo behaves):

* **install** — the runtime's constructor interposes on the heap
  (``interposer.preload(self)``) and registers any signal or CPU access
  hooks it needs.  Construction *is* installation.
* **per-allocation / per-access / per-free checks** — the runtime's
  ``malloc``/``free`` (HeapLibrary surface) and any registered access
  hooks.  Each check charges its modeled cost into the machine's
  :class:`~repro.perfmodel.accounting.CostLedger` via
  ``machine.ledger.record(event, nanos_each=...)`` using the event
  names the arm declares in :attr:`Detector.cost_events`.
* **teardown** — ``shutdown()`` unloads the interposer, removes hooks,
  and (for epoch-based arms) runs any final sweep.

Reports are normalized to :class:`DetectorReport` so the oracle judge
can attribute a finding to the planted defect without knowing which
runtime produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class DetectorReport:
    """One finding, normalized across arms.

    Contexts are tuples of rendered frames (``MODULE/file:line``, the
    same rendering the ground-truth markers use) so judging reduces to
    membership tests.  ``deallocation_context`` is only populated by
    arms that record free stacks (gwp-asan slot metadata, doubletake
    quarantine bookkeeping).
    """

    arm: str
    kind: str
    fault_address: int
    object_address: int
    object_size: int
    thread_id: int
    allocation_context: Tuple[str, ...]
    access_context: Tuple[str, ...] = ()
    deallocation_context: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "arm": self.arm,
            "kind": self.kind,
            "fault_address": self.fault_address,
            "object_address": self.object_address,
            "object_size": self.object_size,
            "thread_id": self.thread_id,
            "allocation_context": list(self.allocation_context),
            "access_context": list(self.access_context),
            "deallocation_context": list(self.deallocation_context),
        }


class Detector:
    """One arm of the cross-detector study.

    Subclasses fill in the class attributes and exactly one of the two
    execution styles:

    * **fleet arms** (the CSOD family) provide :meth:`config` — a
      :class:`~repro.core.config.CSODConfig` the fleet pool builds
      runtimes from — and :meth:`classify`, which folds a program's
      fleet execution results into an
      :class:`~repro.oracle.harness.ArmObservation`.
    * **inline arms** (asan, guardpage, gwp-asan, doubletake) provide
      :meth:`observe`, which runs the program under the arm's own
      runtime and judges the reports itself.
    """

    #: Canonical arm name (`repro oracle --arms` spelling).
    name: str = ""
    #: One-line description for docs and ``--arms`` error listings.
    summary: str = ""
    #: Whether the arm is deployable fleet-wide in production.  ASan's
    #: ~73% overhead keeps it a CI/testing tool; everything else here
    #: ships (or is designed to ship) on end-user machines.
    production_viable: bool = True
    #: Modeled steady-state runtime overhead (percent) used to rank
    #: arms when triage asks for the cheapest detector that caught a
    #: bug.  Sources: the CSOD paper's geo-means for the CSOD family
    #: and ASan; published figures for the baselines.
    modeled_overhead_pct: float = 0.0
    #: True when the arm executes through the fleet pool (CSOD family).
    fleet: bool = False
    #: Ledger event names the arm's checks charge costs under.
    cost_events: Tuple[str, ...] = ()

    # -- fleet arms -----------------------------------------------------
    def config(self):
        """The CSODConfig the fleet builds this arm's runtimes from."""
        raise ReproError(f"detector arm {self.name!r} is not a fleet arm")

    def classify(self, program, results):
        """Fold fleet ExecutionResults into an ArmObservation."""
        raise ReproError(f"detector arm {self.name!r} is not a fleet arm")

    # -- inline arms ----------------------------------------------------
    def observe(self, program, seed: int):
        """Run ``program`` under this arm once and judge the reports."""
        raise ReproError(
            f"detector arm {self.name!r} runs through the fleet pool"
        )

    # -- shared ---------------------------------------------------------
    def expected_kinds(self, truth) -> Tuple[str, ...]:
        """Report kinds that count as a true detection for ``truth``."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """Stable JSON-able self-description (docs, ``--arms`` help)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "production_viable": self.production_viable,
            "modeled_overhead_pct": self.modeled_overhead_pct,
            "fleet": self.fleet,
            "cost_events": list(self.cost_events),
        }
