"""repro.detectors — pluggable detector arms for the cross-detector study.

Importing this package registers the seven arms in canonical order:
the CSOD fleet trio first (csod, csod-random, csod-noevidence), then
the inline baselines (asan, guardpage, gwp-asan, doubletake).
"""

from __future__ import annotations

from repro.detectors.asan import AsanDetector
from repro.detectors.base import Detector, DetectorReport
from repro.detectors.csod import build_csod_arms
from repro.detectors.doubletake import (
    ARM_DOUBLETAKE,
    DoubleTakeConfig,
    DoubleTakeRuntime,
)
from repro.detectors.doubletake_arm import DoubleTakeDetector
from repro.detectors.guardpage import GuardPageDetector
from repro.detectors.gwp_asan import (
    ARM_GWP_ASAN,
    GwpAsanConfig,
    GwpAsanRuntime,
    GwpAsanSlotPool,
)
from repro.detectors.gwp_asan_arm import GwpAsanDetector
from repro.detectors.registry import (
    cheapest_production_arm,
    fleet_arms,
    get,
    inline_arms,
    known_arms,
    normalize,
    register,
    resolve_arms,
)

for _arm in build_csod_arms():
    register(_arm)
register(AsanDetector())
register(GuardPageDetector())
register(GwpAsanDetector())
register(DoubleTakeDetector())

__all__ = [
    "ARM_DOUBLETAKE",
    "ARM_GWP_ASAN",
    "Detector",
    "DetectorReport",
    "DoubleTakeConfig",
    "DoubleTakeRuntime",
    "GwpAsanConfig",
    "GwpAsanRuntime",
    "GwpAsanSlotPool",
    "cheapest_production_arm",
    "fleet_arms",
    "get",
    "inline_arms",
    "known_arms",
    "normalize",
    "register",
    "resolve_arms",
]
