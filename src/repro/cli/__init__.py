"""Command-line interface.

``python -m repro`` exposes the library the way the paper's artifact
would be driven:

* ``run``         — execute one buggy application under a runtime
                    (csod / csod-noevidence / asan / none) and print the
                    reports;
* ``table``       — regenerate one of the paper's tables (1-5);
* ``figure7``     — regenerate the overhead figure;
* ``evidence``    — run the §V-A2 two-execution protocol;
* ``effectiveness`` — the Table II sweep with configurable runs;
* ``fleet``       — a parallel fleet campaign with central report
                    aggregation, evidence sharing, and telemetry;
* ``apps``        — list the available workloads.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
