"""The ``python -m repro`` entry point."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.asan import ASanRuntime
from repro.core import CSODConfig, CSODRuntime
from repro.core.config import POLICY_NAIVE, POLICY_NEAR_FIFO, POLICY_RANDOM
from repro.experiments import (
    characteristics,
    effectiveness,
    evidence,
    memory_usage,
    performance,
)
from repro.workloads.base import SimProcess
from repro.workloads.buggy import BUGGY_APPS, app_for
from repro.workloads.perf import PERF_APPS

POLICIES = (POLICY_NAIVE, POLICY_RANDOM, POLICY_NEAR_FIFO)
RUNTIMES = ("csod", "csod-noevidence", "asan", "none")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSOD (CGO 2019) reproduction driver",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one buggy app under a runtime")
    run.add_argument("app", choices=sorted(BUGGY_APPS))
    run.add_argument("--runtime", choices=RUNTIMES, default="csod")
    run.add_argument("--policy", choices=POLICIES, default=POLICY_NEAR_FIFO)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--evidence-file", default=None)
    run.add_argument(
        "--json", action="store_true", help="print reports as JSON"
    )

    inspect = sub.add_parser(
        "inspect", help="run an app under CSOD and dump the sampler state"
    )
    inspect.add_argument("app", choices=sorted(BUGGY_APPS))
    inspect.add_argument("--seed", type=int, default=0)
    inspect.add_argument("--top", type=int, default=10)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    table.add_argument("--runs", type=int, default=100, help="Table II runs")
    table.add_argument("--cap", type=int, default=8000, help="Table IV cap")

    fig = sub.add_parser("figure7", help="regenerate the overhead figure")
    fig.add_argument("--cap", type=int, default=8000)

    ev = sub.add_parser("evidence", help="the §V-A2 two-execution protocol")
    ev.add_argument("--attempts", type=int, default=20)

    eff = sub.add_parser("effectiveness", help="Table II for chosen apps")
    eff.add_argument("apps", nargs="*", default=None)
    eff.add_argument("--runs", type=int, default=100)

    fleet = sub.add_parser(
        "fleet",
        help="run a parallel fleet campaign with central aggregation",
    )
    fleet.add_argument("--app", required=True, choices=sorted(BUGGY_APPS))
    fleet.add_argument("--executions", type=int, default=100)
    fleet.add_argument(
        "--workers", type=int, default=2, help="worker processes (1 = inline)"
    )
    fleet.add_argument("--policy", choices=POLICIES, default=POLICY_NEAR_FIFO)
    fleet.add_argument("--seed", type=int, default=0, help="base seed")
    fleet.add_argument(
        "--share-evidence",
        action="store_true",
        help="propagate canary evidence fleet-wide between waves",
    )
    fleet.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="specs per worker dispatch (default: ceil(wave/workers))",
    )
    fleet.add_argument(
        "--timeout", type=float, default=60.0, help="per-execution timeout (s)"
    )
    fleet.add_argument(
        "--wire",
        default=None,
        help=(
            "coordinator<->worker data plane: 'shm' (shared-memory "
            "segments + binary result rows, the default) or 'pickle' "
            "(fully-pickled legacy plane); results are byte-identical"
        ),
    )
    fleet.add_argument(
        "--out",
        default="fleet-out",
        help="directory for telemetry.jsonl / aggregate.json / evidence.json",
    )

    triage = sub.add_parser(
        "triage",
        help="cluster, rank, bisect, and persist fleet-detected bugs",
    )
    triage.add_argument(
        "--app",
        action="append",
        choices=sorted(BUGGY_APPS),
        help="run a fixed-seed campaign for APP first (repeatable)",
    )
    triage.add_argument(
        "--aggregate",
        action="append",
        help="triage an existing fleet aggregate.json (repeatable)",
    )
    triage.add_argument(
        "--executions", type=int, default=50, help="executions per --app"
    )
    triage.add_argument("--workers", type=int, default=1)
    triage.add_argument("--policy", choices=POLICIES, default=POLICY_NEAR_FIFO)
    triage.add_argument("--seed", type=int, default=0, help="base seed")
    triage.add_argument(
        "--db", default=None, help="persistent bug database path"
    )
    triage.add_argument(
        "--campaign-id", default=None, help="label for this bug-DB update"
    )
    triage.add_argument(
        "--bisect",
        action="store_true",
        help="shrink each cluster to a minimal deterministic reproducer",
    )
    triage.add_argument(
        "--export",
        action="append",
        default=None,
        metavar="FORMAT",
        help="write triage.FORMAT under --out: json or sarif (repeatable)",
    )
    triage.add_argument(
        "--out", default="triage-out", help="directory for exported files"
    )
    triage.add_argument(
        "--top-k",
        type=int,
        default=3,
        help="allocation frames in the coarse clustering key",
    )
    triage.add_argument(
        "--max-edit-distance",
        type=int,
        default=3,
        help="stack edit-distance threshold for joining a cluster",
    )
    triage.add_argument(
        "--seed-checks",
        type=int,
        default=2,
        help="distinct seeds a bisection candidate must re-trigger under",
    )

    oracle = sub.add_parser(
        "oracle",
        help="differential conformance campaign on generated ground truth",
    )
    oracle.add_argument(
        "--budget", type=int, default=50, help="generated programs"
    )
    oracle.add_argument("--seed", type=int, default=0, help="campaign seed")
    oracle.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = inline)"
    )
    oracle.add_argument(
        "--executions",
        type=int,
        default=3,
        help="executions per program per CSOD arm",
    )
    oracle.add_argument(
        "--defect-mix",
        default=None,
        metavar="MIX",
        help="weighted classes, e.g. 'over-read=2,uaf=1' (default: uniform)",
    )
    oracle.add_argument(
        "--shrink",
        type=int,
        default=0,
        help="shrink up to N mismatched programs to minimal repros",
    )
    oracle.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="specs per worker dispatch (default: ceil(wave/workers))",
    )
    oracle.add_argument(
        "--timeout", type=float, default=60.0, help="per-execution timeout (s)"
    )
    oracle.add_argument(
        "--arms",
        default=None,
        metavar="ARMS",
        help="comma-separated detector arms to run "
        "(e.g. 'csod,gwp-asan'; default: every registered arm)",
    )
    oracle.add_argument(
        "--out",
        default="oracle-out",
        help="directory for scorecard.json / telemetry.jsonl",
    )

    adversarial = sub.add_parser(
        "adversarial",
        help="solve sampler worst cases and score them on the 7-arm matrix",
    )
    adversarial.add_argument(
        "--seed", type=int, default=0, help="solver seed"
    )
    adversarial.add_argument(
        "--targets",
        default=None,
        metavar="TARGETS",
        help="comma-separated corner targets (default: all)",
    )
    adversarial.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = inline)"
    )
    adversarial.add_argument(
        "--executions",
        type=int,
        default=3,
        help="executions per program per CSOD arm",
    )
    adversarial.add_argument(
        "--node-budget",
        type=int,
        default=None,
        help="solver search budget in explored nodes",
    )
    adversarial.add_argument(
        "--out",
        default="adversarial-out",
        help="directory for scorecard_adversarial.json / telemetry.jsonl",
    )

    serve = sub.add_parser(
        "serve",
        help="run the campaign service (HTTP submissions + event streaming)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker slots shared fairly across all campaigns",
    )
    serve.add_argument(
        "--db",
        default=None,
        help="persistent bug database path (enables live bug events)",
    )
    serve.add_argument(
        "--out",
        default=None,
        help="directory for the service event log (service-events.jsonl)",
    )
    serve.add_argument(
        "--history",
        type=int,
        default=4096,
        help="events retained per channel for replay/long-poll",
    )

    submit = sub.add_parser(
        "submit", help="submit fleet campaigns to a running service"
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8765)
    submit.add_argument(
        "--app",
        action="append",
        help="buggy app, oracle genome "
        "'oracle:s<seed>:i<index>:<defect>', or solved adversarial "
        "corner 'adv:s<seed>:t<target>' (repeatable)",
    )
    submit.add_argument(
        "--executions", type=int, default=50, help="executions per campaign"
    )
    submit.add_argument(
        "--workers", type=int, default=1, help="worker slots per wave"
    )
    submit.add_argument("--policy", choices=POLICIES, default=POLICY_NEAR_FIFO)
    submit.add_argument("--seed", type=int, default=0, help="base seed")
    submit.add_argument(
        "--share-evidence",
        action="store_true",
        help="propagate canary evidence between the campaign's waves",
    )
    submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="queue priority (higher runs first)",
    )
    submit.add_argument(
        "--timeout", type=float, default=60.0, help="per-execution timeout (s)"
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until every job finishes and print its scorecard",
    )
    submit.add_argument(
        "--follow",
        action="store_true",
        help="stream job events while waiting (implies --wait)",
    )

    sub.add_parser("apps", help="list available workloads")

    reproduce = sub.add_parser(
        "reproduce",
        help="regenerate every table and figure into a directory",
    )
    reproduce.add_argument("--out", default="reproduction-out")
    reproduce.add_argument("--runs", type=int, default=100)
    reproduce.add_argument("--cap", type=int, default=8000)

    validate = sub.add_parser(
        "validate", help="re-check every qualitative paper claim"
    )
    validate.add_argument("--runs", type=int, default=40)
    validate.add_argument("--cap", type=int, default=4000)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    process = SimProcess(seed=args.seed)
    runtime = None
    if args.runtime in ("csod", "csod-noevidence"):
        config = CSODConfig(
            replacement_policy=args.policy,
            evidence_enabled=args.runtime == "csod",
            persistence_path=args.evidence_file
            if args.runtime == "csod"
            else None,
        )
        runtime = CSODRuntime(process.machine, process.heap, config, seed=args.seed)
    elif args.runtime == "asan":
        runtime = ASanRuntime(process.machine, process.heap)

    result = app_for(args.app).run(process)
    detected = False
    if isinstance(runtime, CSODRuntime):
        runtime.shutdown()
        detected = runtime.detected
        if args.json:
            import json

            print(
                json.dumps(
                    [r.to_dict(process.symbols) for r in runtime.reports],
                    indent=1,
                )
            )
        else:
            for report in runtime.reports:
                print(report.render(process.symbols))
                print()
        if not args.json:
            stats = runtime.stats()
            print(
                f"[csod] allocations={stats.allocations} "
                f"contexts={stats.contexts} watched={stats.watched_times} "
                f"traps={stats.traps_handled}"
            )
    elif isinstance(runtime, ASanRuntime):
        runtime.shutdown()
        detected = runtime.detected
        for report in runtime.reports:
            print(
                f"ASan: {report.kind} ({report.access_kind}) at "
                f"{report.fault_address:#x} in {report.module}"
            )
    else:
        print(
            f"[none] program ran: {result.allocations} allocations, "
            f"overflow performed silently"
        )
    print(f"detected: {detected}")
    return 0 if (detected or args.runtime == "none") else 1


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 1:
        print(effectiveness.render_table1())
    elif args.number == 2:
        rows = effectiveness.run_table2(runs=args.runs)
        print(effectiveness.render_table2(rows))
    elif args.number == 3:
        print(characteristics.render_table3(characteristics.run_table3()))
    elif args.number == 4:
        print(
            characteristics.render_table4(
                characteristics.run_table4(sim_alloc_cap=args.cap)
            )
        )
    else:
        print(memory_usage.render_table5(memory_usage.run_table5()))
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    rows = performance.run_figure7(sim_alloc_cap=args.cap)
    print(performance.render_figure7(rows))
    return 0


def _cmd_evidence(args: argparse.Namespace) -> int:
    results = evidence.run_evidence_experiment(attempts=args.attempts)
    print(evidence.render_evidence(results))
    return 0 if all(r.guarantee_holds for r in results) else 1


def _cmd_effectiveness(args: argparse.Namespace) -> int:
    apps = args.apps or None
    rows = effectiveness.run_table2(runs=args.runs, apps=apps)
    print(effectiveness.render_table2(rows))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.core.diagnostics import render_snapshot, snapshot

    process = SimProcess(seed=args.seed)
    runtime = CSODRuntime(
        process.machine, process.heap, CSODConfig(), seed=args.seed
    )
    app_for(args.app).run(process)
    snap = snapshot(runtime, top_contexts=args.top)
    runtime.shutdown()
    print(render_snapshot(snap))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json
    import os

    if args.executions <= 0:
        print(
            f"repro fleet: error: --executions must be positive, "
            f"got {args.executions}",
            file=sys.stderr,
        )
        return 2
    if args.workers < 0:
        print(
            f"repro fleet: error: --workers must be >= 0, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print(
            f"repro fleet: error: --chunk-size must be >= 1, "
            f"got {args.chunk_size}",
            file=sys.stderr,
        )
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print(
            f"repro fleet: error: --timeout must be positive (seconds), "
            f"got {args.timeout}",
            file=sys.stderr,
        )
        return 2
    from repro.fleet.shm import WIRES

    if args.wire is not None and args.wire not in WIRES:
        print(
            f"repro fleet: error: --wire must be one of "
            f"{'/'.join(sorted(WIRES))}, got {args.wire!r}",
            file=sys.stderr,
        )
        return 2

    from repro.fleet import (
        EvidenceStore,
        JsonlEventLog,
        render_fleet_report,
        run_fleet,
    )

    os.makedirs(args.out, exist_ok=True)
    store = (
        EvidenceStore(os.path.join(args.out, "evidence.json"))
        if args.share_evidence
        else None
    )
    with JsonlEventLog(os.path.join(args.out, "telemetry.jsonl")) as log:
        result = run_fleet(
            args.app,
            executions=args.executions,
            workers=args.workers,
            policy=args.policy,
            share_evidence=args.share_evidence,
            seed_base=args.seed,
            evidence_store=store,
            event_log=log,
            timeout_seconds=args.timeout,
            chunk_size=args.chunk_size,
            wire=args.wire,
        )
    aggregate_path = os.path.join(args.out, "aggregate.json")
    with open(aggregate_path, "w") as handle:
        json.dump(result.aggregator.to_dict(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(
        render_fleet_report(
            result.aggregator,
            title=(
                f"Fleet campaign: {args.app} x {args.executions} executions, "
                f"{args.workers} workers, policy={args.policy}"
            ),
        )
    )
    snapshot = result.metrics.snapshot()
    wall = snapshot["histograms"].get("execution_wall_ms", {})
    print(
        f"telemetry: {snapshot['counters'].get('watchpoint_arms', 0)} "
        f"watchpoint arms, "
        f"{snapshot['counters'].get('worker_retries', 0)} retries, "
        f"wall/exec p50={wall.get('p50', 0):.1f}ms "
        f"p95={wall.get('p95', 0):.1f}ms"
    )
    print(f"[fleet] wrote {aggregate_path}")
    print(f"[fleet] wrote {os.path.join(args.out, 'telemetry.jsonl')}")
    if store is not None:
        print(f"[fleet] evidence store: {store.path} ({len(store)} signatures)")
    return 0 if result.aggregator.executions_detected else 1


TRIAGE_EXPORT_FORMATS = ("json", "sarif")


def _db_writable(path: str) -> bool:
    """Can ``path`` be created or rewritten as the bug database?"""
    import os

    if os.path.isdir(path):
        return False
    if os.path.exists(path):
        return os.access(path, os.R_OK | os.W_OK)
    parent = os.path.dirname(os.path.abspath(path))
    return os.path.isdir(parent) and os.access(parent, os.W_OK)


def _cmd_triage(args: argparse.Namespace) -> int:
    import json
    import os

    if args.executions <= 0:
        print(
            f"repro triage: error: --executions must be positive, "
            f"got {args.executions}",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print(
            f"repro triage: error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.top_k < 1:
        print(
            f"repro triage: error: --top-k must be >= 1, got {args.top_k}",
            file=sys.stderr,
        )
        return 2
    if args.max_edit_distance < 0:
        print(
            f"repro triage: error: --max-edit-distance must be >= 0, "
            f"got {args.max_edit_distance}",
            file=sys.stderr,
        )
        return 2
    if args.seed_checks < 1:
        print(
            f"repro triage: error: --seed-checks must be >= 1, "
            f"got {args.seed_checks}",
            file=sys.stderr,
        )
        return 2
    for fmt in args.export or ():
        if fmt not in TRIAGE_EXPORT_FORMATS:
            print(
                f"repro triage: error: --export has unknown format {fmt!r} "
                f"(choose from {', '.join(TRIAGE_EXPORT_FORMATS)})",
                file=sys.stderr,
            )
            return 2
    if args.export and os.path.exists(args.out) and not os.path.isdir(args.out):
        print(
            f"repro triage: error: --out path {args.out!r} exists and is "
            f"not a directory",
            file=sys.stderr,
        )
        return 2
    if args.db is not None and not _db_writable(args.db):
        print(
            f"repro triage: error: --db path {args.db!r} is not writable",
            file=sys.stderr,
        )
        return 2
    for path in args.aggregate or ():
        if not os.path.isfile(path):
            print(
                f"repro triage: error: --aggregate file {path!r} not found",
                file=sys.stderr,
            )
            return 2
    if not (args.app or args.aggregate or args.db):
        print(
            "repro triage: error: nothing to triage — give --app, "
            "--aggregate, or an existing --db",
            file=sys.stderr,
        )
        return 2

    from repro import __version__ as tool_version
    from repro.triage import (
        BugDatabase,
        Bisector,
        cluster_reports,
        rank_clusters,
        render_triage_report,
        reports_from_aggregate,
        to_sarif,
        triage_to_json,
        validate_sarif,
    )

    db = BugDatabase(args.db)
    reports = []
    executions = 0

    if args.app:
        # One clustering pass over every app's reports, then a single
        # DB update for the whole batch.
        from repro.fleet.runner import run_fleet

        for app in args.app:
            fleet = run_fleet(
                app,
                executions=args.executions,
                workers=args.workers,
                policy=args.policy,
                seed_base=args.seed,
            )
            executions += fleet.aggregator.executions_ok
            reports.extend(fleet.aggregator.reports())
            print(
                f"[triage] campaign {app}: "
                f"{fleet.aggregator.executions_detected}/"
                f"{fleet.aggregator.executions_ok} executions detected, "
                f"{fleet.aggregator.unique_reports()} signatures"
            )

    for path in args.aggregate or ():
        with open(path) as handle:
            payload = json.load(handle)
        reports.extend(reports_from_aggregate(payload))
        executions += payload.get("executions_ok", payload.get("executions", 0))

    if reports:
        clusters = cluster_reports(
            reports,
            top_k=args.top_k,
            max_edit_distance=args.max_edit_distance,
        )
        update = db.update(
            clusters,
            campaign_id=args.campaign_id,
            total_executions=executions,
        )
        print(
            f"[triage] {len(reports)} signatures -> {update.clusters} "
            f"clusters ({len(update.new)} new, "
            f"{len(update.reproduced)} reproduced, "
            f"{len(update.regressed)} regressed)"
        )
    else:
        # DB-only mode: rank and export what previous campaigns stored.
        clusters = db.clusters()
        executions = db.executions_total
        print(f"[triage] database-only: {len(clusters)} stored bugs")

    if args.bisect:
        for cluster in clusters:
            bisector = Bisector(cluster, seed_checks=args.seed_checks)
            repro_spec = bisector.run()
            if not repro_spec.verified:
                print(
                    f"[triage] bisect {cluster.cluster_id}: "
                    f"no verified reproducer "
                    f"({repro_spec.executions} executions)"
                )
                continue
            if cluster.cluster_id in db:
                db.attach_repro(cluster.cluster_id, repro_spec.to_dict())
            print(
                f"[triage] bisect {cluster.cluster_id}: "
                f"verified={repro_spec.verified} "
                f"seed_independent={repro_spec.seed_independent} "
                f"evidence={len(repro_spec.evidence)} "
                f"scale={repro_spec.scale} "
                f"({repro_spec.executions} executions)"
            )

    ranked = rank_clusters(
        clusters,
        total_executions=max(1, executions),
        campaigns_since_seen=db.campaigns_since_seen(),
    )
    print(render_triage_report(ranked, max(1, executions), db=db))

    if args.export:
        os.makedirs(args.out, exist_ok=True)
    for fmt in dict.fromkeys(args.export or ()):
        if fmt == "json":
            document = triage_to_json(ranked, max(1, executions), db=db)
            out_path = os.path.join(args.out, "triage.json")
        else:
            document = to_sarif(ranked, tool_version=tool_version, db=db)
            errors = validate_sarif(document)
            if errors:
                print(
                    "repro triage: error: generated SARIF failed "
                    "validation: " + "; ".join(errors),
                    file=sys.stderr,
                )
                return 1
            out_path = os.path.join(args.out, "triage.sarif")
        with open(out_path, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"[triage] wrote {out_path}")
    if args.db:
        print(f"[triage] bug database: {args.db} ({len(db)} bugs)")
    return 0 if ranked else 1


def _parse_defect_mix(text: str):
    """``'over-read=2,uaf=1'`` -> weight dict; raises ValueError."""
    mix = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, weight = part.partition("=")
        if not sep:
            raise ValueError(
                f"malformed entry {part!r}; expected '<defect>=<weight>'"
            )
        mix[name.strip()] = float(weight)
    if not mix:
        raise ValueError("empty mix")
    return mix


def _cmd_oracle(args: argparse.Namespace) -> int:
    import json
    import os

    if args.budget < 1:
        print(
            f"repro oracle: error: --budget must be >= 1, got {args.budget}",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print(
            f"repro oracle: error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.executions < 1:
        print(
            f"repro oracle: error: --executions must be >= 1, "
            f"got {args.executions}",
            file=sys.stderr,
        )
        return 2
    if args.shrink < 0:
        print(
            f"repro oracle: error: --shrink must be >= 0, got {args.shrink}",
            file=sys.stderr,
        )
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print(
            f"repro oracle: error: --chunk-size must be >= 1, "
            f"got {args.chunk_size}",
            file=sys.stderr,
        )
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print(
            f"repro oracle: error: --timeout must be positive (seconds), "
            f"got {args.timeout}",
            file=sys.stderr,
        )
        return 2
    if os.path.exists(args.out) and not os.path.isdir(args.out):
        print(
            f"repro oracle: error: --out path {args.out!r} exists and is "
            f"not a directory",
            file=sys.stderr,
        )
        return 2

    from repro.errors import ReproError
    from repro.oracle import OracleSettings, render_scorecard, run_oracle
    from repro.oracle.runner import write_telemetry_line

    arms = None
    if args.arms is not None:
        from repro.detectors import known_arms, resolve_arms

        requested = tuple(
            part.strip() for part in args.arms.split(",") if part.strip()
        )
        if not requested:
            print(
                f"repro oracle: error: --arms is empty; known arms: "
                f"{', '.join(known_arms())}",
                file=sys.stderr,
            )
            return 2
        try:
            arms = resolve_arms(requested)
        except ReproError as exc:
            # Fail fast, before any program generation or fleet work.
            print(f"repro oracle: error: --arms {exc}", file=sys.stderr)
            return 2

    mix = None
    if args.defect_mix is not None:
        try:
            mix = _parse_defect_mix(args.defect_mix)
        except ValueError as exc:
            print(
                f"repro oracle: error: --defect-mix is invalid: {exc}",
                file=sys.stderr,
            )
            return 2
    try:
        settings = OracleSettings(
            budget=args.budget,
            seed=args.seed,
            workers=args.workers,
            executions_per_app=args.executions,
            defect_mix=mix,
            shrink=args.shrink,
            timeout_seconds=args.timeout,
            chunk_size=args.chunk_size,
            arms=arms,
        )
    except ReproError as exc:
        # Settings validation catches what argparse types cannot
        # (unknown defect names, all-zero weights).
        print(f"repro oracle: error: --defect-mix {exc}", file=sys.stderr)
        return 2

    os.makedirs(args.out, exist_ok=True)
    telemetry_path = os.path.join(args.out, "telemetry.jsonl")
    with open(telemetry_path, "w") as handle:
        run = run_oracle(
            settings, telemetry=lambda e: write_telemetry_line(handle, e)
        )
    scorecard = run.scorecard
    scorecard_path = os.path.join(args.out, "scorecard.json")
    with open(scorecard_path, "w") as handle:
        handle.write(render_scorecard(scorecard))

    arms = scorecard["arms"]
    for arm in sorted(arms):
        block = arms[arm]
        rate = block["rate"]
        print(
            f"[oracle] {arm:16s} detected {block['detected']}/"
            f"{block['eligible']} eligible"
            + (f" (rate {rate:.2f})" if rate is not None else "")
            + f", {block['fp_reports']} false-positive reports"
        )
    inv = scorecard["csod_invariants"]
    print(
        f"[oracle] invariants: max {inv['max_armed']}/"
        f"{inv['armed_limit']} watchpoints armed, "
        f"{len(inv['armed_violations'])} arming violations, "
        f"{len(inv['monotonic_violations'])} monotonicity violations"
    )
    fn = inv["fn_attribution"]
    print(
        f"[oracle] CSOD misses: {fn['sampling']} attributed to sampling, "
        f"{fn['logic']} to detector logic"
    )
    mm = scorecard["mismatches"]
    print(
        f"[oracle] mismatches: {mm['total']} total, "
        f"{mm['unexplained']} unexplained"
        + (f", {len(scorecard['shrunk'])} shrunk" if args.shrink else "")
    )
    print(f"[oracle] wrote {scorecard_path}")
    print(f"[oracle] wrote {telemetry_path}")
    clean = (
        mm["unexplained"] == 0
        and not inv["armed_violations"]
        and not inv["monotonic_violations"]
        and fn["logic"] == 0
    )
    return 0 if clean else 1


def _cmd_adversarial(args: argparse.Namespace) -> int:
    import os

    if args.workers < 1:
        print(
            f"repro adversarial: error: --workers must be >= 1, "
            f"got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.executions < 1:
        print(
            f"repro adversarial: error: --executions must be >= 1, "
            f"got {args.executions}",
            file=sys.stderr,
        )
        return 2
    if args.node_budget is not None and args.node_budget < 1:
        print(
            f"repro adversarial: error: --node-budget must be >= 1, "
            f"got {args.node_budget}",
            file=sys.stderr,
        )
        return 2
    if os.path.exists(args.out) and not os.path.isdir(args.out):
        print(
            f"repro adversarial: error: --out path {args.out!r} exists and "
            f"is not a directory",
            file=sys.stderr,
        )
        return 2

    from repro.oracle import render_scorecard
    from repro.oracle.adversarial import (
        ALL_TARGETS,
        DEFAULT_NODE_BUDGET,
        run_adversarial,
    )
    from repro.oracle.runner import write_telemetry_line

    targets = ALL_TARGETS
    if args.targets is not None:
        requested = tuple(
            part.strip() for part in args.targets.split(",") if part.strip()
        )
        unknown = [t for t in requested if t not in ALL_TARGETS]
        if not requested or unknown:
            print(
                f"repro adversarial: error: --targets must name corners "
                f"from {', '.join(ALL_TARGETS)}"
                + (f"; unknown: {', '.join(unknown)}" if unknown else ""),
                file=sys.stderr,
            )
            return 2
        targets = requested

    node_budget = (
        DEFAULT_NODE_BUDGET if args.node_budget is None else args.node_budget
    )
    os.makedirs(args.out, exist_ok=True)
    telemetry_path = os.path.join(args.out, "telemetry.jsonl")
    with open(telemetry_path, "w") as handle:
        run = run_adversarial(
            seed=args.seed,
            targets=targets,
            workers=args.workers,
            executions_per_app=args.executions,
            node_budget=node_budget,
            telemetry=lambda e: write_telemetry_line(handle, e),
        )
    scorecard = run.scorecard
    scorecard_path = os.path.join(args.out, "scorecard_adversarial.json")
    with open(scorecard_path, "w") as handle:
        handle.write(render_scorecard(scorecard))

    all_solved = True
    all_reached = True
    for target in targets:
        block = scorecard["targets"][target]
        solution = block["solution"]
        corner = block["corner"]
        solved = bool(solution and solution["solved"])
        reached = bool(corner and corner["reached"])
        all_solved = all_solved and solved
        all_reached = all_reached and reached
        detail = (
            f"solved in {solution['nodes_explored']} nodes, "
            f"{solution['allocations']} allocations"
            if solved
            else "UNSOLVED"
        )
        print(
            f"[adversarial] {target:14s} {detail}, corner "
            + ("reached" if reached else "NOT REACHED")
        )
    arms = scorecard["arms"]
    for arm in sorted(arms):
        block = arms[arm]
        rate = block["rate"]
        print(
            f"[adversarial] {arm:16s} detected {block['detected']}/"
            f"{block['eligible']} eligible"
            + (f" (rate {rate:.2f})" if rate is not None else "")
            + f", {block['fp_reports']} false-positive reports"
        )
    mm = scorecard["mismatches"]
    fp_total = sum(block["fp_reports"] for block in arms.values())
    print(
        f"[adversarial] mismatches: {mm['total']} total, "
        f"{mm['unexplained']} unexplained; {fp_total} false-positive "
        f"reports across arms"
    )
    print(f"[adversarial] wrote {scorecard_path}")
    print(f"[adversarial] wrote {telemetry_path}")
    clean = (
        all_solved
        and all_reached
        and mm["unexplained"] == 0
        and fp_total == 0
    )
    return 0 if clean else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    if not (0 <= args.port <= 65535):
        print(
            f"repro serve: error: --port must be in [0, 65535], "
            f"got {args.port}",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print(
            f"repro serve: error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.history < 1:
        print(
            f"repro serve: error: --history must be >= 1, got {args.history}",
            file=sys.stderr,
        )
        return 2
    if (
        args.out is not None
        and os.path.exists(args.out)
        and not os.path.isdir(args.out)
    ):
        print(
            f"repro serve: error: --out path {args.out!r} exists and is "
            f"not a directory",
            file=sys.stderr,
        )
        return 2
    event_log_path = None
    if args.out is not None:
        # Created before the --db check so a database nested under a
        # fresh --out (the natural layout) validates as writable.
        os.makedirs(args.out, exist_ok=True)
        event_log_path = os.path.join(args.out, "service-events.jsonl")
    if args.db is not None and not _db_writable(args.db):
        print(
            f"repro serve: error: --db path {args.db!r} is not writable",
            file=sys.stderr,
        )
        return 2

    from repro.service import ReproService
    from repro.triage import BugDatabase
    bug_db = BugDatabase(args.db) if args.db else None
    service = ReproService(
        host=args.host,
        port=args.port,
        total_workers=args.workers,
        bug_db=bug_db,
        history=args.history,
        event_log_path=event_log_path,
    )

    async def _amain() -> None:
        await service.start()
        print(
            f"[serve] listening on http://{service.host}:{service.port} "
            f"({args.workers} worker slots"
            + (f", bug db {args.db}" if args.db else "")
            + ")"
        )
        if event_log_path is not None:
            print(f"[serve] event log: {event_log_path}")
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            # Ctrl-C: asyncio.run delivers SIGINT as a cancellation of
            # this task, so this — not KeyboardInterrupt — is the
            # normal shutdown path.
            print("[serve] shutting down")
        finally:
            await service.stop()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        print("[serve] shutting down")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    if not args.app:
        print(
            "repro submit: error: --app is required (repeatable)",
            file=sys.stderr,
        )
        return 2
    if not (0 <= args.port <= 65535):
        print(
            f"repro submit: error: --port must be in [0, 65535], "
            f"got {args.port}",
            file=sys.stderr,
        )
        return 2

    from repro.errors import ServiceError
    from repro.service import FINAL_STATES, CampaignSubmission, ServiceClient

    try:
        submissions = [
            CampaignSubmission(
                app=app,
                executions=args.executions,
                workers=args.workers,
                policy=args.policy,
                share_evidence=args.share_evidence,
                seed=args.seed,
                priority=args.priority,
                timeout_seconds=args.timeout,
            )
            for app in args.app
        ]
        for submission in submissions:
            submission.validate()
    except ServiceError as exc:
        # The submission's own field-named message, CLI-prefixed.
        print(f"repro submit: error: --{exc}", file=sys.stderr)
        return 2

    client = ServiceClient(args.host, args.port)
    try:
        jobs = client.submit_batch(submissions)
    except ServiceError as exc:
        print(f"repro submit: error: {exc}", file=sys.stderr)
        return 1
    job_ids = [job["job_id"] for job in jobs]
    for job in jobs:
        print(
            f"[submit] {job['job_id']} queued: "
            f"{job['submission']['app']} x "
            f"{job['submission']['executions']} executions"
        )
    if not (args.wait or args.follow):
        return 0

    wanted = set(job_ids)
    try:
        if args.follow:
            since = 0
            finished = set()
            while finished < wanted:
                events, since = client.poll_events(
                    "firehose", since, timeout=5.0
                )
                for event in events:
                    if event.get("job_id") not in wanted:
                        continue
                    if event["event"] == "wave":
                        print(
                            f"[{event['job_id']}] wave "
                            f"{event['wave'] + 1}/{event['waves_total']}: "
                            f"{event['executions_done']}/"
                            f"{event['executions_total']} executions, "
                            f"{event['unique_reports']} unique reports, "
                            f"dedup {event['dedup_ratio']:.2f}, "
                            f"evidence epoch {event['evidence_epoch']}"
                        )
                    elif event["event"].startswith("bug_"):
                        print(
                            f"[{event['job_id']}] {event['event']}: "
                            f"{event['cluster_id']} ({event['kind']})"
                        )
                    elif event["event"] == "job":
                        print(
                            f"[{event['job_id']}] state: {event['state']}"
                        )
                        if event["state"] in FINAL_STATES:
                            finished.add(event["job_id"])
        statuses = client.wait(job_ids, timeout=3600.0)
    except ServiceError as exc:
        print(f"repro submit: error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("[submit] interrupted; jobs keep running server-side")
        return 130

    all_completed = True
    for job_id in job_ids:
        state = statuses[job_id]["state"]
        if state != "completed":
            all_completed = False
            print(f"[submit] {job_id} finished: {state}")
            continue
        payload = client.result(job_id)
        print(f"[submit] {job_id} scorecard:")
        print(json.dumps(payload["scorecard"], indent=1, sort_keys=True))
    return 0 if all_completed else 1


def _cmd_apps(args: argparse.Namespace) -> int:
    print("buggy applications (Table I):")
    for name in sorted(BUGGY_APPS):
        spec = BUGGY_APPS[name]
        print(f"  {name:12s} {spec.bug_kind:10s} {spec.reference}")
    print("performance applications (Table IV):")
    for name in PERF_APPS:
        spec = PERF_APPS[name]
        print(f"  {name:14s} {spec.suite:6s} {spec.allocations:>12,} allocations")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Every artifact, one command — the repository's headline demo."""
    import os

    os.makedirs(args.out, exist_ok=True)

    def emit(name: str, text: str) -> None:
        path = os.path.join(args.out, name)
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"[reproduce] wrote {path}")

    emit("table1.txt", effectiveness.render_table1())
    emit(
        "table2.txt",
        effectiveness.render_table2(effectiveness.run_table2(runs=args.runs)),
    )
    emit("table3.txt", characteristics.render_table3(characteristics.run_table3()))
    emit(
        "table4.txt",
        characteristics.render_table4(
            characteristics.run_table4(sim_alloc_cap=args.cap)
        ),
    )
    emit("table5.txt", memory_usage.render_table5(memory_usage.run_table5()))
    emit("figure6.txt", effectiveness.figure6_report())
    rows = performance.run_figure7(sim_alloc_cap=args.cap)
    emit(
        "figure7.txt",
        performance.render_figure7(rows)
        + "\n\n"
        + performance.render_figure7_chart(rows),
    )
    emit(
        "evidence.txt",
        evidence.render_evidence(evidence.run_evidence_experiment(attempts=10)),
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import render_validation, validate

    results = validate(runs=args.runs, cap=args.cap)
    print(render_validation(results))
    return 0 if all(r.passed for r in results) else 1


_COMMANDS = {
    "run": _cmd_run,
    "inspect": _cmd_inspect,
    "reproduce": _cmd_reproduce,
    "validate": _cmd_validate,
    "table": _cmd_table,
    "figure7": _cmd_figure7,
    "evidence": _cmd_evidence,
    "effectiveness": _cmd_effectiveness,
    "fleet": _cmd_fleet,
    "triage": _cmd_triage,
    "oracle": _cmd_oracle,
    "adversarial": _cmd_adversarial,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "apps": _cmd_apps,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
