"""Analytic overhead and memory models.

The paper's Fig. 7 and Table V measured wall-clock slowdown and peak RSS
on a 16-core Xeon testbed.  A Python simulation cannot time-travel to
that machine, but the paper itself decomposes both quantities into event
counts (§V-B: context lookups, RNG draws, watchpoint syscalls per
thread; §V-C: the 32-byte header + 8-byte canary, redzones, shadow):

* :mod:`repro.perfmodel.accounting` converts a replayed trace's event
  ledger into normalized-runtime overhead, per runtime configuration;
* :mod:`repro.perfmodel.memory` computes the Table V footprint from the
  object-envelope arithmetic;
* :mod:`repro.perfmodel.costs` pins the calibrated unit costs in one
  place.
"""

from repro.perfmodel.accounting import (
    OverheadBreakdown,
    asan_overhead_fraction,
    csod_overhead_fraction,
)
from repro.perfmodel.costs import CSOD_INIT_COST_S, CSOD_OVERHEAD_EVENTS
from repro.perfmodel.memory import MemoryFootprint, memory_for

__all__ = [
    "OverheadBreakdown",
    "asan_overhead_fraction",
    "csod_overhead_fraction",
    "CSOD_INIT_COST_S",
    "CSOD_OVERHEAD_EVENTS",
    "MemoryFootprint",
    "memory_for",
]
