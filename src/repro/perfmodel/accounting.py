"""Overhead accounting: ledger events -> normalized runtime (Fig. 7).

For CSOD the model is fully event-driven: the replayed trace charges
nanoseconds for every context lookup, RNG draw, canary operation, and
watchpoint syscall; the per-allocation portion is extrapolated linearly
from the replayed slice to the full allocation count (the
proportionality the paper asserts in §V-B), and a one-time
initialization cost is added.

For ASan the allocation-side costs (redzone poisoning, quarantine) come
from the same ledger mechanism, while the dominant per-access checking
cost is analytic: ``access_intensity x instrumented_fraction`` of the
base runtime is access work whose checks roughly double it — we cannot
replay 10^10 individual loads in Python, and the paper's own analysis
("the major component of ASan's overhead comes from its checking of
every memory access") justifies modelling it at this altitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perfmodel.costs import (
    ASAN_ALLOC_EVENTS,
    ASAN_DEFAULT_REDZONE_FACTOR,
    CSOD_INIT_COST_S,
    CSOD_OVERHEAD_EVENTS,
)
from repro.workloads.perf.app import PerfRunMeasurement


@dataclass(frozen=True)
class OverheadBreakdown:
    """Where one configuration's overhead comes from, in seconds."""

    per_allocation_s: float
    watchpoint_syscalls_s: float
    initialization_s: float
    access_checks_s: float
    base_runtime_s: float

    @property
    def total_s(self) -> float:
        return (
            self.per_allocation_s
            + self.watchpoint_syscalls_s
            + self.initialization_s
            + self.access_checks_s
        )

    @property
    def fraction(self) -> float:
        return self.total_s / self.base_runtime_s

    @property
    def normalized_runtime(self) -> float:
        return 1.0 + self.fraction


_SYSCALL_EVENTS = (
    "syscall.perf_event_open",
    "syscall.fcntl",
    "syscall.ioctl",
    "syscall.close",
    "syscall.watchpoint_batch",  # the §V-B custom-syscall extension
)


def csod_overhead_breakdown(m: PerfRunMeasurement) -> OverheadBreakdown:
    """CSOD's overhead for one replayed application."""
    syscall_ns = sum(m.nanos(e) for e in _SYSCALL_EVENTS)
    per_alloc_ns = sum(
        m.nanos(e) for e in CSOD_OVERHEAD_EVENTS if e not in _SYSCALL_EVENTS
    )
    # Per-allocation work extrapolates linearly with the allocation
    # count (§V-B's proportionality claim).  Watchpoint installation does
    # NOT: sampling probabilities collapse early in a run, so the
    # replayed slice — which covers the probability-rich start — already
    # contains the bulk of the watch activity (compare Table IV's WT
    # column: 182 installs across dedup's 4M allocations).  Its syscall
    # time is charged unscaled.
    scale_up = 1.0 / m.scale
    return OverheadBreakdown(
        per_allocation_s=per_alloc_ns * scale_up / 1e9,
        watchpoint_syscalls_s=syscall_ns / 1e9,
        initialization_s=CSOD_INIT_COST_S,
        access_checks_s=0.0,
        base_runtime_s=m.spec.base_runtime_s,
    )


def csod_overhead_fraction(m: PerfRunMeasurement) -> float:
    return csod_overhead_breakdown(m).fraction


def asan_overhead_breakdown(
    m: PerfRunMeasurement, minimal_redzones: bool = True
) -> OverheadBreakdown:
    """ASan's overhead for one replayed application.

    Returns NaN-safe numbers; the Fig. 7 driver handles the Freqmine
    crash (no ASan bar) separately.
    """
    spec = m.spec
    alloc_ns = sum(m.nanos(e) for e in ASAN_ALLOC_EVENTS)
    factor = 1.0 if minimal_redzones else ASAN_DEFAULT_REDZONE_FACTOR
    access_s = (
        spec.base_runtime_s
        * spec.access_intensity
        * spec.instrumented_fraction
        * factor
    )
    return OverheadBreakdown(
        per_allocation_s=alloc_ns * factor / m.scale / 1e9,
        watchpoint_syscalls_s=0.0,
        initialization_s=0.05,  # shadow reservation is a cheap mmap
        access_checks_s=access_s,
        base_runtime_s=spec.base_runtime_s,
    )


def asan_overhead_fraction(
    m: PerfRunMeasurement, minimal_redzones: bool = True
) -> float:
    return asan_overhead_breakdown(m, minimal_redzones).fraction


def asan_crashes(app_name: str) -> bool:
    """Freqmine crashed under ASan in the paper's environment."""
    return app_name == "freqmine"
