"""Calibrated unit costs, collected in one place.

The per-event nanosecond costs live next to the code that charges them
(hash lookup in :mod:`repro.core.context_key`, RNG in
:mod:`repro.core.rng`, syscalls in :mod:`repro.machine.perf_events`,
...).  This module re-exports them for documentation and pins the event
lists that the overhead accounting treats as runtime-attributable.

Calibration targets (all from the paper): ~215 ns of CSOD work per
allocation with evidence mode (~145 ns without), dominated by the
context lookup; ~8 syscalls per watchpoint install/remove pair per
thread at ~0.7 us each; ASan dominated by per-access checks.
"""

from __future__ import annotations

from repro.callstack.backtrace import (
    FULL_UNWIND_BASE_NS,
    FULL_UNWIND_PER_FRAME_NS,
    PEEK_COST_NS,
)
from repro.core.canary import CANARY_CHECK_COST_NS, CANARY_SET_COST_NS
from repro.core.context_key import LOOKUP_COST_NS
from repro.core.rng import RNG_DRAW_COST_NS
from repro.machine.perf_events import SYSCALL_COST_NS
from repro.machine.syscall_cost import (
    EVENT_ASAN_CHECK,
    EVENT_ASAN_POISON,
    EVENT_BACKTRACE_FULL,
    EVENT_CANARY_CHECK,
    EVENT_CANARY_SET,
    EVENT_CLOSE,
    EVENT_CONTEXT_LOOKUP,
    EVENT_FCNTL,
    EVENT_IOCTL,
    EVENT_PERF_EVENT_OPEN,
    EVENT_RNG_DRAW,
)

# One-time CSOD startup: mapping and faulting in the large context hash
# table, RNG and signal-handler setup.  The paper attributes Ferret's
# outlier overhead to initialization amplified by a <5 s runtime.
CSOD_INIT_COST_S = 0.4

# Ledger events whose nanoseconds count as CSOD runtime overhead.
CSOD_OVERHEAD_EVENTS = (
    EVENT_CONTEXT_LOOKUP,
    EVENT_RNG_DRAW,
    EVENT_BACKTRACE_FULL,
    "callstack.peek",
    EVENT_CANARY_SET,
    EVENT_CANARY_CHECK,
    EVENT_PERF_EVENT_OPEN,
    EVENT_FCNTL,
    EVENT_IOCTL,
    EVENT_CLOSE,
)

# Ledger events whose nanoseconds count as ASan allocation-side overhead
# (the access-check side is analytic; see accounting.py).
ASAN_ALLOC_EVENTS = (EVENT_ASAN_POISON, EVENT_ASAN_CHECK)

# Baseline-arm event lists (defined next to the runtimes that charge
# them, re-exported here like everything else in this module).
from repro.detectors.doubletake import (  # noqa: E402
    DOUBLETAKE_OVERHEAD_EVENTS,
)
from repro.detectors.gwp_asan import (  # noqa: E402
    GWP_ASAN_OVERHEAD_EVENTS,
)
from repro.guardpage.runtime import (  # noqa: E402
    GUARDPAGE_OVERHEAD_EVENTS,
)

# Relative extra cost of default (size-scaled) redzones over minimal
# 16-byte ones: more bytes poisoned per allocation plus cache pressure.
ASAN_DEFAULT_REDZONE_FACTOR = 1.10

__all__ = [
    "CSOD_INIT_COST_S",
    "CSOD_OVERHEAD_EVENTS",
    "ASAN_ALLOC_EVENTS",
    "GUARDPAGE_OVERHEAD_EVENTS",
    "GWP_ASAN_OVERHEAD_EVENTS",
    "DOUBLETAKE_OVERHEAD_EVENTS",
    "ASAN_DEFAULT_REDZONE_FACTOR",
    "LOOKUP_COST_NS",
    "RNG_DRAW_COST_NS",
    "PEEK_COST_NS",
    "FULL_UNWIND_BASE_NS",
    "FULL_UNWIND_PER_FRAME_NS",
    "CANARY_SET_COST_NS",
    "CANARY_CHECK_COST_NS",
    "SYSCALL_COST_NS",
]
