"""The Table V memory model.

Peak-footprint arithmetic from the paper's §V-C:

* **CSOD** adds a 32-byte header and an 8-byte canary per live object,
  plus the fixed context hash table — which dominates for tiny-footprint
  applications (Aget: 7 KB -> 23 KB) and vanishes for large ones.
* **ASan** (minimal 16-byte redzones) adds two redzones per live
  object, the 1/8 shadow of the touched footprint, a freed-memory
  quarantine, and fixed runtime state — which is why its *relative*
  overhead explodes on tiny, allocation-hot applications (Swaptions:
  9 KB -> 390 KB).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asan.redzones import MIN_REDZONE, redzone_size
from repro.heap.layout import CANARY_SIZE, CSOD_HEADER_SIZE
from repro.workloads.perf.specs import PerfAppSpec

# Fixed CSOD state: the context hash table's bucket array and runtime
# bookkeeping.  Matches the +16..23 KB the paper shows for Aget/Apache.
CSOD_FIXED_KB = 14.0
CSOD_PER_CONTEXT_BYTES = 8  # hash-table entry (key, probability, counts)

# Fixed ASan runtime state (allocator metadata, thread registry).
ASAN_FIXED_KB = 12.0
ASAN_SHADOW_FRACTION = 1.0 / 8.0
# Quarantined-freed-memory bytes grow with allocation traffic, capped.
ASAN_QUARANTINE_CAP_KB = 256.0
ASAN_QUARANTINE_BYTES_PER_ALLOC = 8  # amortized metadata + held bytes


@dataclass(frozen=True)
class MemoryFootprint:
    """One application's Table V row, in KB."""

    original_kb: float
    csod_kb: float
    asan_kb: float

    @property
    def csod_percent(self) -> float:
        return 100.0 * self.csod_kb / self.original_kb

    @property
    def asan_percent(self) -> float:
        return 100.0 * self.asan_kb / self.original_kb


def csod_memory_kb(spec: PerfAppSpec) -> float:
    per_object = CSOD_HEADER_SIZE + CANARY_SIZE
    return (
        spec.mem_original_kb
        + CSOD_FIXED_KB
        + spec.contexts * CSOD_PER_CONTEXT_BYTES / 1024.0
        + spec.peak_live_objects * per_object / 1024.0
    )


def asan_memory_kb(spec: PerfAppSpec, minimal_redzones: bool = True) -> float:
    zone = redzone_size(64, minimal_redzones)  # representative object
    redzones_kb = spec.peak_live_objects * 2 * zone / 1024.0
    shadow_kb = spec.mem_original_kb * ASAN_SHADOW_FRACTION
    quarantine_kb = min(
        ASAN_QUARANTINE_CAP_KB,
        spec.allocations * ASAN_QUARANTINE_BYTES_PER_ALLOC / 1024.0,
    )
    return (
        spec.mem_original_kb
        + shadow_kb
        + redzones_kb
        + quarantine_kb
        + ASAN_FIXED_KB
    )


def memory_for(spec: PerfAppSpec, minimal_redzones: bool = True) -> MemoryFootprint:
    return MemoryFootprint(
        original_kb=float(spec.mem_original_kb),
        csod_kb=csod_memory_kb(spec),
        asan_kb=asan_memory_kb(spec, minimal_redzones),
    )
