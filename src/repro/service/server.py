"""The fleet-as-a-service HTTP front end.

A dependency-free asyncio HTTP/1.1 server (this container ships no
``websockets``/``wsproto``, so the streaming transports are the
long-poll and Server-Sent-Events fallbacks the subsystem was designed
around — both resumable via per-channel sequence numbers, which is the
property a WebSocket transport would have to replicate anyway).

Routes::

    GET  /healthz                     liveness + queue/slot counters
    POST /submit                      one submission or {"submissions": [...]}
    GET  /jobs                        every job's status view
    GET  /jobs/<id>                   one job's status view
    GET  /jobs/<id>/result            aggregate + scorecard (409 until final)
    POST /jobs/<id>/cancel            releases the job's worker slots
    GET  /events?channel=&since=      SSE stream (default) or, with
         [&mode=poll][&timeout=]      mode=poll, a long-poll JSON batch

Channels are job ids or ``firehose``.  Every connection is
``Connection: close`` — one request per socket keeps the parser tiny
and SSE streams run until the client hangs up.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.errors import ServiceError
from repro.fleet.telemetry import JsonlEventLog
from repro.service.queue import CampaignSubmission, JobQueue, STATE_QUEUED
from repro.service.scheduler import CampaignScheduler
from repro.service.stream import FIREHOSE, EventBus, render_sse

MAX_BODY_BYTES = 1 << 20  # a batch of submissions, with headroom
POLL_TIMEOUT_CAP = 60.0


class ReproService:
    """Queue + scheduler + event bus behind one asyncio HTTP server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        total_workers: int = 2,
        bug_db=None,
        history: int = 4096,
        event_log_path: Optional[str] = None,
    ):
        self.host = host
        self.port = port  # 0 = ephemeral; the bound port lands here
        self.queue = JobQueue()
        self._sink = (
            JsonlEventLog(event_log_path) if event_log_path else None
        )
        self.bus = EventBus(history=history, sink=self._sink)
        self.scheduler = CampaignScheduler(
            self.queue, self.bus, total_workers=total_workers, bug_db=bug_db
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        # Live connection-handler tasks (SSE streams can be long-lived);
        # cancelled explicitly on stop so none outlive the loop.
        self._connections: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self.queue.attach_loop(loop)
        self.bus.attach_loop(loop)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler_task = asyncio.create_task(self.scheduler.run())
        self.bus.publish(
            FIREHOSE,
            "service",
            state="started",
            version=__version__,
            workers=self.scheduler.slots.total,
        )

    async def stop(self) -> None:
        """Graceful teardown: cancel jobs, drain events, close sockets."""
        self.bus.publish(FIREHOSE, "service", state="stopping")
        await self.scheduler.stop()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *list(self._connections), return_exceptions=True
            )
        if self._sink is not None:
            self._sink.close()

    # ------------------------------------------------------------------
    # Submission (shared by HTTP and in-process callers)
    # ------------------------------------------------------------------
    def submit(self, submission: CampaignSubmission) -> dict:
        job = self.queue.submit(submission)
        self.bus.publish(
            job.job_id,
            "job",
            job_id=job.job_id,
            state=STATE_QUEUED,
            app=submission.app,
            priority=submission.priority,
            executions=submission.executions,
        )
        return job.to_dict()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, body = request
            await self._route(method, target, body, writer)
        except ConnectionError:
            pass
        except Exception as exc:  # noqa: BLE001 — a broken request must
            # not take the accept loop down; answer 500 if we still can.
            try:
                await self._respond(
                    writer, 500, {"error": f"internal error: {exc}"}
                )
            except Exception:  # noqa: BLE001
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3:
            return None
        method, target, _ = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ServiceError(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
    ) -> None:
        reasons = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            409: "Conflict",
            500: "Internal Server Error",
        }
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}

        if path == "/healthz" and method == "GET":
            await self._respond(
                writer,
                200,
                {
                    "ok": True,
                    "version": __version__,
                    "workers_total": self.scheduler.slots.total,
                    "workers_free": self.scheduler.slots.free,
                    "jobs": self.queue.counts(),
                },
            )
            return
        if path == "/submit":
            if method != "POST":
                await self._respond(writer, 405, {"error": "POST required"})
                return
            await self._handle_submit(body, writer)
            return
        if path == "/jobs" and method == "GET":
            await self._respond(
                writer,
                200,
                {"jobs": [job.to_dict() for job in self.queue.jobs()]},
            )
            return
        if path.startswith("/jobs/"):
            await self._handle_job(method, path, writer)
            return
        if path == "/events" and method == "GET":
            await self._handle_events(query, writer)
            return
        await self._respond(writer, 404, {"error": f"no route for {path}"})

    async def _handle_submit(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await self._respond(
                writer, 400, {"error": f"invalid JSON body: {exc}"}
            )
            return
        if isinstance(payload, dict) and "submissions" in payload:
            raw_list = payload["submissions"]
            if not isinstance(raw_list, list) or not raw_list:
                await self._respond(
                    writer,
                    400,
                    {"error": "submissions: expected a non-empty list"},
                )
                return
        else:
            raw_list = [payload]
        # All-or-nothing: validate the whole batch before admitting any,
        # so a typo in submission 3 cannot half-start a batch.
        try:
            submissions = [
                CampaignSubmission.from_dict(raw) for raw in raw_list
            ]
        except ServiceError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        jobs = [self.submit(submission) for submission in submissions]
        await self._respond(writer, 200, {"jobs": jobs})

    async def _handle_job(
        self, method: str, path: str, writer: asyncio.StreamWriter
    ) -> None:
        parts = path.split("/")  # '', 'jobs', '<id>'[, verb]
        job_id = parts[2] if len(parts) > 2 else ""
        verb = parts[3] if len(parts) > 3 else ""
        job = self.queue.get(job_id)
        if job is None:
            await self._respond(
                writer, 404, {"error": f"unknown job {job_id!r}"}
            )
            return
        if verb == "" and method == "GET":
            await self._respond(writer, 200, job.to_dict())
            return
        if verb == "result" and method == "GET":
            if not job.finished or job.result_payload is None:
                await self._respond(
                    writer,
                    409,
                    {
                        "error": f"job {job_id} is {job.state}; "
                        f"result not available",
                        "state": job.state,
                    },
                )
                return
            await self._respond(writer, 200, job.result_payload)
            return
        if verb == "cancel" and method == "POST":
            job = self.queue.cancel(job_id)
            if job.finished and job.state == "cancelled" and job.campaign is None:
                # Was still queued: report the terminal state right away.
                self.bus.publish(
                    job.job_id,
                    "job",
                    job_id=job.job_id,
                    state=job.state,
                    app=job.submission.app,
                )
            await self._respond(
                writer,
                200,
                {"job_id": job_id, "state": job.state, "cancel_requested": True},
            )
            return
        await self._respond(
            writer, 405, {"error": f"unsupported {method} on {path}"}
        )

    async def _handle_events(
        self, query: Dict[str, str], writer: asyncio.StreamWriter
    ) -> None:
        channel = query.get("channel", FIREHOSE)
        try:
            since = int(query.get("since", "0"))
        except ValueError:
            await self._respond(
                writer, 400, {"error": "since: must be an integer"}
            )
            return
        mode = query.get("mode", "stream")
        if mode == "poll":
            try:
                timeout = float(query.get("timeout", "10"))
            except ValueError:
                await self._respond(
                    writer, 400, {"error": "timeout: must be a number"}
                )
                return
            timeout = max(0.0, min(timeout, POLL_TIMEOUT_CAP))
            events, next_since = await self.bus.poll(
                channel, since=since, timeout=timeout
            )
            await self._respond(
                writer,
                200,
                {"channel": channel, "events": events, "next": next_since},
            )
            return
        if mode != "stream":
            await self._respond(
                writer,
                400,
                {"error": f"mode: expected 'stream' or 'poll', got {mode!r}"},
            )
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()
        subscription = self.bus.subscribe(channel, since=since)
        try:
            while True:
                event = await subscription.get(timeout=15.0)
                if event is None:
                    writer.write(b": keep-alive\n\n")  # SSE comment frame
                else:
                    writer.write(render_sse(event))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            subscription.close()


# ----------------------------------------------------------------------
# Hosting helpers
# ----------------------------------------------------------------------
async def serve_until(
    service: ReproService, stop: asyncio.Event
) -> None:
    """Run a started service until ``stop`` is set, then tear down."""
    await service.start()
    try:
        await stop.wait()
    finally:
        await service.stop()


class ServiceThread:
    """Hosts a :class:`ReproService` on a loop in a daemon thread.

    The in-process deployment used by tests, benchmarks, and the CI
    smoke script: ``start()`` returns once the port is bound; callers
    then talk to it over real HTTP like any other tenant.
    """

    def __init__(self, **service_kwargs):
        self.service = ReproService(**service_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.service.port

    def start(self, timeout: float = 10.0) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError("service failed to start within timeout")
        if self._error is not None:
            raise ServiceError(f"service failed to start: {self._error}")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop = asyncio.Event()

        async def main() -> None:
            try:
                await self.service.start()
            except BaseException as exc:  # noqa: BLE001 — surface to caller
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            await self.service.stop()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        loop, stop = self._loop, self._stop
        if loop is None or stop is None or not loop.is_running():
            return
        loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
