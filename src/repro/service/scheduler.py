"""The campaign scheduler: many tenants, one pool of worker slots.

Each admitted job gets its own :class:`FleetCampaign` (its own
persistent worker processes, evidence store, aggregator — the unit of
determinism), but CPU concurrency is governed centrally: a campaign
must lease ``workers`` slots from the shared :class:`WorkerSlots`
before each wave and returns them the moment the wave (or its
cancellation) unwinds.  Leasing is FIFO-fair, so two jobs with equal
worker counts strictly interleave waves instead of the first admitted
one running to completion — and because a campaign's wave plan and RNG
streams depend only on its submission, the interleaving (or any other
tenant mix) cannot change a job's bytes.

Waves run through ``loop.run_in_executor`` on a thread pool sized to
the slot count: the asyncio loop stays responsive for submissions,
cancellations, and event streaming while the blocking fleet machinery
works underneath.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, Optional, Set, Tuple

from repro.errors import CampaignCancelled
from repro.fleet.runner import FleetCampaign, FleetRunResult
from repro.service.queue import (
    STATE_CANCELLED,
    STATE_COMPLETED,
    STATE_FAILED,
    JobQueue,
    JobRecord,
)
from repro.service.stream import EventBus


class WorkerSlots:
    """A FIFO-fair counting semaphore with multi-unit acquire.

    ``asyncio.Semaphore`` hands out one unit at a time; a wave needs
    ``workers`` units atomically or a two-worker job could deadlock
    against another two-worker job at one slot each.  Waiters are
    served strictly in arrival order — a large request at the head
    blocks later small ones, which is exactly the fairness guarantee
    (no starvation of wide jobs by a stream of narrow ones).
    """

    def __init__(self, total: int):
        if total < 1:
            raise ValueError(f"total worker slots must be >= 1, got {total}")
        self.total = total
        self.free = total
        self._waiters: Deque[Tuple[int, asyncio.Future]] = deque()

    def clamp(self, n: int) -> int:
        """A job may not ask for more slots than the service owns."""
        return max(1, min(n, self.total))

    async def acquire(self, n: int) -> int:
        n = self.clamp(n)
        if self.free >= n and not self._waiters:
            self.free -= n
            return n
        future = asyncio.get_running_loop().create_future()
        self._waiters.append((n, future))
        try:
            await future
        except asyncio.CancelledError:
            if not future.cancelled() and future.done():
                # Granted and cancelled in the same tick: give it back.
                self.release(n)
            else:
                self._waiters = deque(
                    (m, f) for m, f in self._waiters if f is not future
                )
            raise
        return n

    def release(self, n: int) -> None:
        self.free = min(self.total, self.free + n)
        self._drain()

    def _drain(self) -> None:
        while self._waiters:
            n, future = self._waiters[0]
            if future.cancelled():
                self._waiters.popleft()
                continue
            if self.free < n:
                return
            self._waiters.popleft()
            self.free -= n
            future.set_result(None)


def build_result_payload(job: JobRecord, result: FleetRunResult) -> dict:
    """The deterministic result document served for a finished job.

    ``aggregate`` is the full fleet view (``FleetAggregator.to_dict``)
    and ``scorecard`` the summary a dashboard renders — both contain
    only execution-stable facts, so a job's payload is byte-identical
    to the same campaign run standalone, whatever else was queued.
    """
    aggregator = result.aggregator
    lo, hi = aggregator.detection_rate_interval()
    scorecard = {
        "app": result.app,
        "executions": aggregator.executions,
        "executions_ok": aggregator.executions_ok,
        "executions_detected": aggregator.executions_detected,
        "detection_rate": (
            round(aggregator.executions_detected / aggregator.executions_ok, 6)
            if aggregator.executions_ok
            else 0.0
        ),
        "detection_rate_ci": [round(lo, 6), round(hi, 6)],
        "raw_reports": aggregator.raw_reports,
        "unique_reports": aggregator.unique_reports(),
        "dedup_ratio": round(aggregator.dedup_ratio, 4),
        "evidence_signatures": len(result.evidence),
        "share_evidence": result.share_evidence,
        "seed_base": result.seed_base,
        "workers": result.workers,
        "cancelled": result.cancelled,
        "triage": result.triage.to_dict() if result.triage else None,
    }
    return {
        "job_id": job.job_id,
        "aggregate": aggregator.to_dict(),
        "scorecard": scorecard,
    }


class CampaignScheduler:
    """Drives queued jobs to completion over shared worker slots."""

    def __init__(
        self,
        queue: JobQueue,
        bus: EventBus,
        total_workers: int = 2,
        bug_db=None,
    ):
        self.queue = queue
        self.bus = bus
        self.slots = WorkerSlots(total_workers)
        self.bug_db = bug_db
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self._tasks: Set[asyncio.Task] = set()
        self._stopping = False
        # Slot-count threads for waves, plus headroom so finish()
        # (pool teardown + triage clustering) never waits on a wave.
        self._executor = ThreadPoolExecutor(
            max_workers=total_workers + 4,
            thread_name_prefix="repro-service-wave",
        )
        if bug_db is not None:
            bug_db.subscribe(self._on_bug_event)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Admit jobs until :meth:`stop`; returns once drained."""
        while not self._stopping:
            job = self.queue.claim_next()
            if job is None:
                await self.queue.wait_for_work(timeout=0.25)
                continue
            task = asyncio.create_task(self._run_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def stop(self) -> None:
        """Cancel every live campaign and wait for jobs to settle."""
        self._stopping = True
        for job in self.queue.jobs():
            if not job.finished:
                self.queue.cancel(job.job_id)
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        self._executor.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    # One job
    # ------------------------------------------------------------------
    async def _run_job(self, job: JobRecord) -> None:
        loop = asyncio.get_running_loop()
        submission = job.submission
        config = None
        if submission.arms:
            # A validated single fleet arm: its registry config wins
            # over the policy-derived default.
            from repro.detectors import get as get_detector

            config = get_detector(submission.arms[0]).config()
        try:
            campaign = FleetCampaign(
                submission.app,
                executions=submission.executions,
                workers=submission.workers,
                policy=submission.policy,
                config=config,
                share_evidence=submission.share_evidence,
                seed_base=submission.seed,
                timeout_seconds=submission.timeout_seconds,
                chunk_size=submission.chunk_size,
                wave_size=submission.effective_wave_size(),
                bug_db=self.bug_db,
                campaign_id=job.job_id,
                wire=submission.wire,
            )
        except Exception as exc:  # noqa: BLE001 — a bad submission that
            # slipped past validation fails its own job, not the service.
            self._finalize(job, STATE_FAILED, error=str(exc))
            return
        job.campaign = campaign
        job.waves_total = campaign.waves_total
        self._publish_job(job, "running")
        lease = self.slots.clamp(submission.workers)
        try:
            while True:
                if job.cancel_requested:
                    raise CampaignCancelled("client cancellation")
                await self.slots.acquire(lease)
                try:
                    progress = await loop.run_in_executor(
                        self._executor, campaign.run_next_wave
                    )
                finally:
                    # Released on wave completion AND on cancellation
                    # mid-wave — a cancelled tenant's slots go straight
                    # back to the pool.
                    self.slots.release(lease)
                if progress is None:
                    break
                job.waves_done = progress.wave_index + 1
                job.executions_done = progress.executions_done
                job.executions_detected = progress.executions_detected
                job.unique_reports = progress.unique_reports
                job.dedup_ratio = progress.dedup_ratio
                job.evidence_epoch = progress.evidence_epoch
                self.bus.publish(
                    job.job_id,
                    "wave",
                    job_id=job.job_id,
                    wave=progress.wave_index,
                    waves_total=progress.waves_total,
                    wave_executions=progress.wave_executions,
                    executions_done=progress.executions_done,
                    executions_total=progress.executions_total,
                    executions_detected=progress.executions_detected,
                    unique_reports=progress.unique_reports,
                    raw_reports=progress.raw_reports,
                    dedup_ratio=progress.dedup_ratio,
                    new_evidence=progress.new_evidence,
                    evidence_epoch=progress.evidence_epoch,
                )
            result = await loop.run_in_executor(self._executor, campaign.finish)
            job.result_payload = build_result_payload(job, result)
            self.bus.publish(
                job.job_id,
                "result",
                job_id=job.job_id,
                scorecard=job.result_payload["scorecard"],
            )
            self._finalize(job, STATE_COMPLETED)
        except CampaignCancelled:
            result = await loop.run_in_executor(
                self._executor, lambda: campaign.finish(cancelled=True)
            )
            job.result_payload = build_result_payload(job, result)
            self._finalize(job, STATE_CANCELLED)
        except Exception as exc:  # noqa: BLE001 — job isolation: one
            # broken campaign must never take the scheduler down.
            await loop.run_in_executor(self._executor, campaign.close)
            self._finalize(job, STATE_FAILED, error=str(exc))

    def _finalize(
        self, job: JobRecord, state: str, error: Optional[str] = None
    ) -> None:
        job.state = state
        job.error = error
        job.campaign = None
        if state == STATE_COMPLETED:
            self.jobs_completed += 1
        elif state == STATE_CANCELLED:
            self.jobs_cancelled += 1
        else:
            self.jobs_failed += 1
        self._publish_job(job, state, error=error)

    def _publish_job(
        self, job: JobRecord, state: str, error: Optional[str] = None
    ) -> None:
        fields: Dict[str, object] = dict(
            job_id=job.job_id,
            state=state,
            app=job.submission.app,
            priority=job.submission.priority,
            waves_total=job.waves_total,
            waves_done=job.waves_done,
            executions_done=job.executions_done,
        )
        if error is not None:
            fields["error"] = error
        self.bus.publish(job.job_id, "job", **fields)

    # ------------------------------------------------------------------
    # Live triage events
    # ------------------------------------------------------------------
    def _on_bug_event(self, event: dict) -> None:
        """Republish a BugDatabase status change onto the job's channel.

        Fires inside ``BugDatabase.update`` — i.e. from the executor
        thread running ``campaign.finish`` — *before* the job's result
        and completion events, so subscribers always see ``bug_new``
        for a fresh bug while the job is still running.
        """
        channel = event.get("campaign_id") or FIREHOSE_FALLBACK
        self.bus.publish(
            channel,
            f"bug_{event.get('status', 'new')}",
            job_id=event.get("campaign_id"),
            cluster_id=event.get("cluster_id"),
            kind=event.get("kind"),
            status=event.get("status"),
            occurrences=event.get("occurrences"),
            campaigns_seen=event.get("campaigns_seen"),
        )


# A bug event without a campaign id (direct CLI use of a subscribed
# database) still lands somewhere watchable.
FIREHOSE_FALLBACK = "firehose"
