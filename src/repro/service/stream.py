"""The streaming layer: per-job channels plus a fleet-wide firehose.

Every event the service emits — job state transitions, per-wave
progress, dedup ratios, evidence-epoch advances, bug-database status
changes — is published to the submitting job's channel (named by its
job id) **and** mirrored onto the ``firehose`` channel that dashboards
and the CI smoke test watch.  Channels are independent monotonic
sequences, so a client can resume either kind from ``since=<seq>``
after a disconnect without gaps or duplicates (up to the bounded
history).

The bus is the bridge between the blocking fleet world and asyncio:
``publish`` may be called from the service loop *or* from a campaign
worker thread (bug-database listeners fire inside ``run_in_executor``);
off-loop publishes hop through ``call_soon_threadsafe`` so subscriber
queues are only ever touched on the loop.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.fleet.telemetry import JsonlEventLog

FIREHOSE = "firehose"


class Subscription:
    """One live subscriber: an asyncio queue fed by the bus."""

    def __init__(self, bus: "EventBus", channel: str):
        self.bus = bus
        self.channel = channel
        self.queue: "asyncio.Queue[dict]" = asyncio.Queue()

    async def get(self, timeout: Optional[float] = None) -> Optional[dict]:
        """Next event, or None on timeout."""
        try:
            if timeout is None:
                return await self.queue.get()
            return await asyncio.wait_for(self.queue.get(), timeout)
        except asyncio.TimeoutError:
            return None

    def close(self) -> None:
        self.bus.unsubscribe(self)


class EventBus:
    """Bounded-history, sequence-numbered event channels."""

    def __init__(
        self,
        history: int = 4096,
        sink: Optional[JsonlEventLog] = None,
    ):
        self.history = history
        # Every event (its firehose copy) is appended to the sink, so a
        # service run leaves a replayable JSONL artifact behind.
        self.sink = sink
        self._lock = threading.Lock()
        self._events: Dict[str, Deque[dict]] = {}
        self._seqs: Dict[str, int] = {}
        self._subscribers: Dict[str, List[Subscription]] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def attach_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------
    def publish(self, channel: str, event: str, **fields) -> dict:
        """Emit one event to ``channel`` and mirror it to the firehose.

        Returns the channel's copy (with its per-channel ``seq``).
        Thread-safe: history and sequence assignment happen under a
        lock immediately, so a poller never misses an event published
        just before its read; only subscriber-queue delivery is
        deferred to the loop.
        """
        base = {"channel": channel, "event": event, "ts": time.time()}
        base.update(fields)
        with self._lock:
            record = self._append(channel, base)
            mirror = None
            if channel != FIREHOSE:
                mirror = self._append(FIREHOSE, dict(base))
        if self.sink is not None:
            # The JSONL record keeps event="service"; the bus-level event
            # name moves to service_event so both survive round-trips.
            payload = dict(mirror or record)
            payload["service_event"] = payload.pop("event")
            self.sink.emit("service", **payload)
        self._deliver(channel, record)
        if mirror is not None:
            self._deliver(FIREHOSE, mirror)
        return record

    def _append(self, channel: str, base: dict) -> dict:
        seq = self._seqs.get(channel, 0) + 1
        self._seqs[channel] = seq
        record = dict(base, seq=seq)
        ring = self._events.get(channel)
        if ring is None:
            ring = self._events[channel] = deque(maxlen=self.history)
        ring.append(record)
        return record

    def _deliver(self, channel: str, record: dict) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            self._fanout(channel, record)
        else:
            try:
                loop.call_soon_threadsafe(self._fanout, channel, record)
            except RuntimeError:
                # Loop already closed (service shutting down): history
                # and the sink still got the event; live delivery is
                # moot with no loop to deliver on.
                pass

    def _fanout(self, channel: str, record: dict) -> None:
        for sub in list(self._subscribers.get(channel, ())):
            sub.queue.put_nowait(record)

    # ------------------------------------------------------------------
    # Consume
    # ------------------------------------------------------------------
    def latest_seq(self, channel: str) -> int:
        with self._lock:
            return self._seqs.get(channel, 0)

    def events_since(
        self, channel: str, since: int = 0, limit: Optional[int] = None
    ) -> List[dict]:
        """History replay: events with ``seq > since``, oldest first."""
        with self._lock:
            ring = self._events.get(channel, ())
            events = [event for event in ring if event["seq"] > since]
        if limit is not None:
            events = events[:limit]
        return events

    def subscribe(self, channel: str, since: int = 0) -> Subscription:
        """Live subscription, seeded with history newer than ``since``.

        Must be called on the service loop (subscriber queues are
        loop-affine).  Replay and registration happen under one lock
        pass, so no event between them can be dropped or duplicated.
        """
        sub = Subscription(self, channel)
        with self._lock:
            backlog = [
                event
                for event in self._events.get(channel, ())
                if event["seq"] > since
            ]
            self._subscribers.setdefault(channel, []).append(sub)
        for event in backlog:
            sub.queue.put_nowait(event)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            subs = self._subscribers.get(sub.channel)
            if subs and sub in subs:
                subs.remove(sub)

    # ------------------------------------------------------------------
    async def poll(
        self,
        channel: str,
        since: int = 0,
        timeout: float = 10.0,
        limit: Optional[int] = None,
    ) -> Tuple[List[dict], int]:
        """Long-poll: immediate backlog, else wait up to ``timeout``.

        Returns ``(events, next_since)`` — the cursor to pass back on
        the next poll.  An empty list after the timeout is a normal
        keep-alive answer, not an error.
        """
        events = self.events_since(channel, since, limit)
        if events:
            return events, events[-1]["seq"]
        sub = self.subscribe(channel, since)
        try:
            event = await sub.get(timeout)
        finally:
            sub.close()
        if event is None:
            return [], since
        # The wakeup event plus anything that raced in behind it.
        events = [event] + self.events_since(channel, event["seq"], limit)
        if limit is not None:
            events = events[:limit]
        return events, events[-1]["seq"]


def render_sse(event: dict) -> bytes:
    """One event in Server-Sent-Events wire form."""
    payload = json.dumps(event, sort_keys=True)
    return (
        f"id: {event.get('seq', 0)}\n"
        f"event: {event.get('event', 'message')}\n"
        f"data: {payload}\n\n"
    ).encode("utf-8")
