"""repro.service — fleet-as-a-service.

An asyncio campaign service in front of the fleet machinery: tenants
submit :class:`CampaignSubmission`\\ s over HTTP, a fair scheduler
interleaves their waves across a shared pool of worker slots, and
progress (waves, dedup ratios, evidence epochs, live bug-database
status changes) streams back over per-job and firehose channels via
long-poll or Server-Sent-Events.  Per-job results stay byte-identical
to the same campaign run standalone through ``run_fleet``, whatever
else is queued.
"""

from repro.service.client import ServiceClient
from repro.service.queue import (
    FINAL_STATES,
    STATE_CANCELLED,
    STATE_COMPLETED,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    CampaignSubmission,
    JobQueue,
    JobRecord,
)
from repro.service.scheduler import (
    CampaignScheduler,
    WorkerSlots,
    build_result_payload,
)
from repro.service.server import ReproService, ServiceThread, serve_until
from repro.service.stream import FIREHOSE, EventBus, Subscription, render_sse

__all__ = [
    "CampaignScheduler",
    "CampaignSubmission",
    "EventBus",
    "FINAL_STATES",
    "FIREHOSE",
    "JobQueue",
    "JobRecord",
    "ReproService",
    "ServiceClient",
    "ServiceThread",
    "STATE_CANCELLED",
    "STATE_COMPLETED",
    "STATE_FAILED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "Subscription",
    "WorkerSlots",
    "build_result_payload",
    "render_sse",
    "serve_until",
]
