"""Campaign submissions and the service job queue.

A :class:`CampaignSubmission` is the wire-level description of one
fleet campaign — app (hand-written or generated oracle genome), budget,
policy arm, seed, priority — everything a tenant sends to
``POST /submit``.  Validation is fail-fast and names the offending
field, matching the CLI convention.

Job ids are **deterministic**: ``job-<sha256(seq | canonical JSON)>``
over the submission's canonical form and its admission sequence number.
The same batch submitted to a fresh service always yields the same ids,
so clients can be replayed, logs diffed, and results content-addressed.

The :class:`JobQueue` itself is a priority queue (higher ``priority``
first, admission order as the tiebreak) safe to drive from the service
event loop and from foreign threads alike; an :class:`asyncio.Event`
wakes the scheduler on submission from either side.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import POLICY_NAIVE, POLICY_NEAR_FIFO, POLICY_RANDOM
from repro.errors import ServiceError, WorkloadError
from repro.fleet.shm import WIRES

POLICIES = (POLICY_NAIVE, POLICY_RANDOM, POLICY_NEAR_FIFO)

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_COMPLETED = "completed"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

FINAL_STATES = (STATE_COMPLETED, STATE_FAILED, STATE_CANCELLED)

# Non-shared campaigns have no cross-execution state, so their wave
# boundaries are a pure scheduling choice; slicing into at most this
# many waves keeps progress streaming live without changing results.
DEFAULT_WAVE_SLICES = 8


def _validate_app(app: str) -> None:
    """The app is one of the nine, an oracle genome, or an adv corner."""
    from repro.workloads.buggy import BUGGY_APPS
    from repro.workloads.buggy.registry import ADV_PREFIX, ORACLE_PREFIX

    if app in BUGGY_APPS:
        return
    if app.startswith(ORACLE_PREFIX):
        from repro.oracle.generator import parse_name

        try:
            parse_name(app)
        except WorkloadError as exc:
            raise ServiceError(f"app: {exc}") from None
        return
    if app.startswith(ADV_PREFIX):
        from repro.oracle.adversarial import parse_adv_name

        try:
            parse_adv_name(app)
        except WorkloadError as exc:
            raise ServiceError(f"app: {exc}") from None
        return
    raise ServiceError(
        f"app: unknown application {app!r}; expected one of "
        f"{sorted(BUGGY_APPS)}, an oracle genome "
        f"'{ORACLE_PREFIX}s<seed>:i<index>:<defect>', or a solved "
        f"adversarial corner '{ADV_PREFIX}s<seed>:t<target>'"
    )


@dataclass(frozen=True)
class CampaignSubmission:
    """One tenant's request for one fleet campaign."""

    app: str
    executions: int = 50
    workers: int = 1
    policy: str = POLICY_NEAR_FIFO
    share_evidence: bool = False
    seed: int = 0
    priority: int = 0
    wave_size: Optional[int] = None
    chunk_size: Optional[int] = None
    timeout_seconds: Optional[float] = 60.0
    # Fleet data plane; None takes the pool default ("shm").
    wire: Optional[str] = None
    # Detector arm override: a single fleet-capable arm name (e.g.
    # ["csod-random"]); None keeps the policy-derived CSOD config.
    # Part of the job identity, so arm variants hash to distinct jobs.
    arms: Optional[Tuple[str, ...]] = None

    def validate(self) -> None:
        """Fail fast with the offending field named, CLI-style."""
        _validate_app(self.app)
        if self.executions < 1:
            raise ServiceError(
                f"executions: must be >= 1, got {self.executions}"
            )
        if self.workers < 1:
            raise ServiceError(f"workers: must be >= 1, got {self.workers}")
        if self.policy not in POLICIES:
            raise ServiceError(
                f"policy: unknown policy {self.policy!r}; expected one of "
                f"{list(POLICIES)}"
            )
        if self.wave_size is not None and self.wave_size < 1:
            raise ServiceError(
                f"wave_size: must be >= 1, got {self.wave_size}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ServiceError(
                f"chunk_size: must be >= 1, got {self.chunk_size}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ServiceError(
                f"timeout_seconds: must be positive, got "
                f"{self.timeout_seconds}"
            )
        if self.wire is not None and self.wire not in WIRES:
            raise ServiceError(
                f"wire: must be one of {list(WIRES)}, got {self.wire!r}"
            )
        if self.arms is not None:
            from repro.detectors import get as get_detector
            from repro.detectors import resolve_arms

            try:
                resolved = resolve_arms(tuple(self.arms))
            except Exception as exc:  # ReproError -> field-named error
                raise ServiceError(f"arms: {exc}") from None
            if len(resolved) != 1:
                raise ServiceError(
                    f"arms: fleet campaigns run exactly one arm, got "
                    f"{list(resolved)}"
                )
            if not get_detector(resolved[0]).fleet:
                raise ServiceError(
                    f"arms: {resolved[0]!r} is an inline baseline, not a "
                    f"fleet arm"
                )
            object.__setattr__(self, "arms", resolved)  # frozen dataclass

    def effective_wave_size(self) -> int:
        """The wave plan — a function of the submission alone.

        Shared-evidence campaigns keep the historical ``workers``-sized
        waves (the evidence visibility protocol); non-shared campaigns
        are sliced into at most :data:`DEFAULT_WAVE_SLICES` waves, never
        smaller than the worker count, purely so progress streams while
        results stay byte-identical to any other slicing.  Depending
        only on the submission — never on queue state — is what makes a
        job's results independent of what else is running.
        """
        if self.wave_size is not None:
            return self.wave_size
        if self.share_evidence:
            return max(1, self.workers)
        slice_size = -(-self.executions // DEFAULT_WAVE_SLICES)
        return max(max(1, self.workers), slice_size)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "executions": self.executions,
            "workers": self.workers,
            "policy": self.policy,
            "share_evidence": self.share_evidence,
            "seed": self.seed,
            "priority": self.priority,
            "wave_size": self.wave_size,
            "chunk_size": self.chunk_size,
            "timeout_seconds": self.timeout_seconds,
            "wire": self.wire,
            "arms": None if self.arms is None else list(self.arms),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSubmission":
        if not isinstance(payload, dict):
            raise ServiceError(
                f"submission: expected an object, got {type(payload).__name__}"
            )
        if "app" not in payload:
            raise ServiceError("app: required field missing")
        known = {
            "app",
            "executions",
            "workers",
            "policy",
            "share_evidence",
            "seed",
            "priority",
            "wave_size",
            "chunk_size",
            "timeout_seconds",
            "wire",
            "arms",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(f"submission: unknown fields {unknown}")
        if isinstance(payload.get("arms"), list):
            payload = dict(payload, arms=tuple(payload["arms"]))
        try:
            submission = cls(**payload)
        except TypeError as exc:
            raise ServiceError(f"submission: {exc}") from None
        for name in ("executions", "workers", "seed", "priority"):
            if not isinstance(getattr(submission, name), int):
                raise ServiceError(
                    f"{name}: must be an integer, got "
                    f"{getattr(submission, name)!r}"
                )
        submission.validate()
        return submission

    def job_id(self, seq: int) -> str:
        """Content-addressed, admission-ordered, reproducible."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        digest = hashlib.sha256(f"{seq}|{canonical}".encode()).hexdigest()
        return f"job-{digest[:12]}"


@dataclass
class JobRecord:
    """One submission's lifecycle inside the service."""

    job_id: str
    seq: int
    submission: CampaignSubmission
    state: str = STATE_QUEUED
    waves_total: int = 0
    waves_done: int = 0
    executions_done: int = 0
    executions_detected: int = 0
    unique_reports: int = 0
    dedup_ratio: float = 0.0
    evidence_epoch: int = 0
    error: Optional[str] = None
    cancel_requested: bool = False
    # The deterministic result document (aggregate + scorecard),
    # populated when the job reaches a final state.
    result_payload: Optional[dict] = None
    # Runtime-only handle to the live campaign (never serialised).
    campaign: object = field(default=None, repr=False, compare=False)

    @property
    def finished(self) -> bool:
        return self.state in FINAL_STATES

    def to_dict(self) -> dict:
        """The status view served by ``GET /jobs/<id>``."""
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "state": self.state,
            "submission": self.submission.to_dict(),
            "waves_total": self.waves_total,
            "waves_done": self.waves_done,
            "executions_done": self.executions_done,
            "executions_detected": self.executions_detected,
            "unique_reports": self.unique_reports,
            "dedup_ratio": self.dedup_ratio,
            "evidence_epoch": self.evidence_epoch,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
        }


class JobQueue:
    """Priority-ordered admission of campaign jobs.

    ``submit``/``cancel``/``get`` are thread-safe; ``claim_next`` is
    meant for the single scheduler task.  Jobs are never forgotten —
    finished records stay retrievable for result pickup.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._seq = 0
        self._jobs: Dict[str, JobRecord] = {}
        self._pending: List[JobRecord] = []
        # Wired to the service loop on start; submissions from foreign
        # threads wake the scheduler through it.
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None

    def attach_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._wake = asyncio.Event()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, submission: CampaignSubmission) -> JobRecord:
        submission.validate()
        with self._lock:
            self._seq += 1
            job = JobRecord(
                job_id=submission.job_id(self._seq),
                seq=self._seq,
                submission=submission,
            )
            if job.job_id in self._jobs:
                # Same content at the same seq cannot recur; a clash
                # means a hash collision at 48 bits — fail loudly.
                raise ServiceError(f"job id collision for {job.job_id}")
            self._jobs[job.job_id] = job
            self._pending.append(job)
            # Higher priority first; admission order breaks ties.
            self._pending.sort(key=lambda j: (-j.submission.priority, j.seq))
        self._signal()
        return job

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Request cancellation; returns the record, or None if unknown.

        Queued jobs flip straight to ``cancelled``; running jobs get
        their live campaign's stop flag set and transition when the
        in-flight wave unwinds (releasing the worker slots it held).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.finished:
                return job
            job.cancel_requested = True
            if job.state == STATE_QUEUED:
                self._pending = [j for j in self._pending if j.job_id != job_id]
                job.state = STATE_CANCELLED
            campaign = job.campaign
        if campaign is not None:
            campaign.cancel()
        self._signal()
        return job

    # ------------------------------------------------------------------
    # Scheduler side
    # ------------------------------------------------------------------
    def claim_next(self) -> Optional[JobRecord]:
        """Pop the highest-priority queued job (None if queue is idle)."""
        with self._lock:
            if not self._pending:
                return None
            job = self._pending.pop(0)
            job.state = STATE_RUNNING
            return job

    async def wait_for_work(self, timeout: float = 1.0) -> None:
        """Park the scheduler until a submit/cancel or the timeout."""
        if self._wake is None:
            await asyncio.sleep(timeout)
            return
        try:
            await asyncio.wait_for(self._wake.wait(), timeout)
        except asyncio.TimeoutError:
            return
        finally:
            self._wake.clear()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobRecord]:
        """Every known job, admission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    # ------------------------------------------------------------------
    def _signal(self) -> None:
        loop, wake = self._loop, self._wake
        if loop is None or wake is None:
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            wake.set()
        else:
            try:
                loop.call_soon_threadsafe(wake.set)
            except RuntimeError:
                pass  # loop closed: nobody left to wake
