"""A blocking HTTP client for the campaign service.

Built on stdlib ``http.client`` only — usable from the CLI, tests,
benchmarks, and notebooks without any third-party dependency.  One
connection per call (the server is ``Connection: close``), except for
:meth:`stream_events`, which holds its socket open and yields SSE
frames as they arrive.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.service.queue import FINAL_STATES, CampaignSubmission


class ServiceClient:
    """Talks to a :class:`~repro.service.server.ReproService` over HTTP."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            try:
                parsed = json.loads(data.decode("utf-8")) if data else {}
            except json.JSONDecodeError:
                raise ServiceError(
                    f"{method} {path}: non-JSON response "
                    f"(status {response.status})"
                ) from None
            return response.status, parsed
        except (ConnectionError, OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"{method} {path}: cannot reach service at "
                f"{self.host}:{self.port}: {exc}"
            ) from None
        finally:
            conn.close()

    def _checked(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        status, payload = self._request(method, path, body, timeout)
        if status >= 400:
            detail = payload.get("error", f"HTTP {status}")
            raise ServiceError(f"{method} {path}: {detail}")
        return payload

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def submit(self, submission: CampaignSubmission) -> dict:
        """Submit one campaign; returns the job's status view."""
        payload = self._checked("POST", "/submit", submission.to_dict())
        return payload["jobs"][0]

    def submit_batch(
        self, submissions: Sequence[CampaignSubmission]
    ) -> List[dict]:
        """Submit a batch atomically: all admitted, or none (on 400)."""
        payload = self._checked(
            "POST",
            "/submit",
            {"submissions": [s.to_dict() for s in submissions]},
        )
        return payload["jobs"]

    def job(self, job_id: str) -> dict:
        return self._checked("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[dict]:
        return self._checked("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> dict:
        """Aggregate + scorecard for a finished job (409 → ServiceError)."""
        return self._checked("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._checked("POST", f"/jobs/{job_id}/cancel")

    def poll_events(
        self,
        channel: str = "firehose",
        since: int = 0,
        timeout: float = 10.0,
    ) -> Tuple[List[dict], int]:
        """One long-poll round; returns ``(events, next_since)``."""
        payload = self._checked(
            "GET",
            f"/events?channel={channel}&since={since}"
            f"&mode=poll&timeout={timeout}",
            # The HTTP socket must outlive the server-side long poll.
            timeout=timeout + self.timeout,
        )
        return payload["events"], payload["next"]

    def stream_events(
        self,
        channel: str = "firehose",
        since: int = 0,
        timeout: Optional[float] = None,
    ) -> Iterator[dict]:
        """Yield events from the SSE stream until the socket closes.

        ``timeout`` is the per-read socket timeout; the server sends a
        keep-alive comment every 15s, so anything above that means
        "wait indefinitely between events".
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            conn.request(
                "GET", f"/events?channel={channel}&since={since}&mode=stream"
            )
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(
                    f"GET /events: HTTP {response.status} from stream"
                )
            data_lines: List[str] = []
            while True:
                raw = response.fp.readline()
                if not raw:
                    return
                line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith(":"):
                    continue  # keep-alive comment
                if line.startswith("data:"):
                    data_lines.append(line[5:].lstrip())
                    continue
                if line == "" and data_lines:
                    try:
                        yield json.loads("\n".join(data_lines))
                    except json.JSONDecodeError:
                        pass
                    data_lines = []
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def wait(
        self,
        job_ids: Sequence[str],
        timeout: float = 300.0,
        poll_interval: float = 0.2,
    ) -> Dict[str, dict]:
        """Block until every job reaches a final state; returns statuses."""
        deadline = time.monotonic() + timeout
        statuses: Dict[str, dict] = {}
        remaining = list(job_ids)
        while remaining:
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for jobs: {sorted(remaining)}"
                )
            still_waiting = []
            for job_id in remaining:
                status = self.job(job_id)
                if status["state"] in FINAL_STATES:
                    statuses[job_id] = status
                else:
                    still_waiting.append(job_id)
            remaining = still_waiting
            if remaining:
                time.sleep(poll_interval)
        return statuses
