"""POSIX-style signals for the simulated process.

CSOD's detection path is signal-driven: an armed watchpoint raises
``SIGTRAP`` in the *accessing* thread (the ``F_SETOWN`` configuration of
Fig. 3), and the handler identifies the fired watchpoint through the fd
carried in ``siginfo_t``.  The termination unit likewise intercepts
``SIGSEGV``/``SIGABRT`` so canaries can be checked on erroneous exits
(§IV-B).  This module models just enough of sigaction semantics for those
paths: per-process dispositions, ``SA_SIGINFO``-style handlers receiving
a :class:`SigInfo`, and synchronous delivery to a target thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import InvalidSignalError, ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.machine.threads import SimThread

SIGTRAP = 5
SIGABRT = 6
SIGSEGV = 11

_SIGNAL_NAMES = {SIGTRAP: "SIGTRAP", SIGABRT: "SIGABRT", SIGSEGV: "SIGSEGV"}

SUPPORTED_SIGNALS = frozenset(_SIGNAL_NAMES)


def signal_name(signo: int) -> str:
    """Human-readable name for a supported signal number."""
    try:
        return _SIGNAL_NAMES[signo]
    except KeyError:
        raise InvalidSignalError(f"unsupported signal {signo}") from None


class ProcessTerminated(ReproError):
    """The simulated process died from an unhandled fatal signal."""

    def __init__(self, signo: int, detail: str = ""):
        self.signo = signo
        message = f"process terminated by {signal_name(signo)}"
        if detail:
            message += f": {detail}"
        super().__init__(message)


@dataclass
class SigInfo:
    """The subset of ``siginfo_t`` CSOD's handlers consume."""

    signo: int
    si_fd: int = -1
    fault_address: int = 0
    access_size: int = 0
    access_kind: str = ""
    thread_id: int = -1
    detail: str = ""


SignalHandler = Callable[[int, SigInfo, "SimThread"], None]


@dataclass
class _Delivery:
    signo: int
    info: SigInfo
    handled: bool


class SignalTable:
    """Per-process signal dispositions with synchronous delivery.

    Real ``perf_event`` watchpoint signals are asynchronous but arrive
    "immediately" at the faulting instruction; delivering synchronously
    inside the simulated access reproduces the property the paper relies
    on — the handler observes the exact faulting statement's stack.
    """

    def __init__(self):
        self._handlers: Dict[int, SignalHandler] = {}
        self._log: List[_Delivery] = []

    def sigaction(self, signo: int, handler: Optional[SignalHandler]) -> None:
        """Install (or with ``None``, reset) the handler for ``signo``."""
        if signo not in SUPPORTED_SIGNALS:
            raise InvalidSignalError(f"unsupported signal {signo}")
        if handler is None:
            self._handlers.pop(signo, None)
        else:
            self._handlers[signo] = handler

    def handler_for(self, signo: int) -> Optional[SignalHandler]:
        return self._handlers.get(signo)

    def deliver(self, signo: int, info: SigInfo, thread: "SimThread") -> bool:
        """Deliver ``signo`` to ``thread``.

        Returns True if a handler consumed it.  Unhandled SIGTRAP is
        ignored (matching the default disposition when a debugger is not
        attached via ptrace); unhandled SIGSEGV/SIGABRT kill the process.
        """
        if signo not in SUPPORTED_SIGNALS:
            raise InvalidSignalError(f"unsupported signal {signo}")
        handler = self._handlers.get(signo)
        self._log.append(_Delivery(signo, info, handled=handler is not None))
        if handler is not None:
            handler(signo, info, thread)
            return True
        if signo in (SIGSEGV, SIGABRT):
            raise ProcessTerminated(signo, info.detail)
        return False

    def deliveries(self, signo: Optional[int] = None) -> List[SigInfo]:
        """Recorded deliveries, optionally filtered by signal number."""
        return [d.info for d in self._log if signo is None or d.signo == signo]

    def delivery_count(self, signo: Optional[int] = None) -> int:
        return len(self.deliveries(signo))

    def clear_log(self) -> None:
        self._log.clear()
