"""The assembled simulated machine.

One :class:`Machine` is one simulated process-on-a-host: an address
space, a clock, a cost ledger, a signal table, a thread registry, the
perf-event subsystem, and a CPU.  Everything above this layer — the heap,
the CSOD runtime, the ASan baseline, the workloads — talks only to this
facade, which makes it the seam where a future native backend could be
swapped in.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.address_space import AddressSpace
from repro.machine.clock import VirtualClock
from repro.machine.cpu import CPU
from repro.machine.perf_events import PerfEventManager
from repro.machine.scheduler import RoundRobinScheduler
from repro.machine.signals import SignalTable
from repro.machine.syscall_cost import CostLedger, QuantumCounter
from repro.machine.threads import SimThread, ThreadRegistry

# Base of the simulated heap arena; mirrors a typical mmap'd arena site.
DEFAULT_HEAP_BASE = 0x7F00_0000_0000
DEFAULT_HEAP_SIZE = 1 << 32  # 4 GiB of simulated arena


class Machine:
    """A fully wired simulated machine."""

    def __init__(self, seed: int = 0, charge_time: bool = True):
        self.clock = VirtualClock()
        self.ledger = CostLedger(self.clock if charge_time else None)
        self.memory = AddressSpace()
        self.signals = SignalTable()
        self.threads = ThreadRegistry()
        # The scheduler quantum: advanced once per scheduled step (or per
        # replayed trace event); the perf subsystem coalesces batched
        # watchpoint syscalls issued within one quantum.
        self.quantum = QuantumCounter()
        self.perf = PerfEventManager(self.threads, self.ledger, quantum=self.quantum)
        self.cpu = CPU(self.memory, self.signals, self.perf, self.ledger)
        self.seed = seed

    @property
    def main_thread(self) -> SimThread:
        return self.threads.main_thread

    def new_scheduler(self, seed: Optional[int] = None) -> RoundRobinScheduler:
        """A scheduler over this machine's thread registry."""
        return RoundRobinScheduler(
            self.threads,
            seed=self.seed if seed is None else seed,
            quantum=self.quantum,
        )

    def map_heap_arena(
        self, base: int = DEFAULT_HEAP_BASE, size: int = DEFAULT_HEAP_SIZE
    ):
        """Map the region the heap allocator will carve objects from."""
        return self.memory.map_region(base, size, name="heap")

    def __repr__(self) -> str:
        return (
            f"Machine(seed={self.seed}, threads={len(self.threads)}, "
            f"now_ns={self.clock.now_ns})"
        )
