"""The CPU front-end: loads and stores with watchpoint semantics.

Every simulated memory access flows through :meth:`CPU.load` /
:meth:`CPU.store`.  The CPU

1. checks the mapping (an unmapped access raises a segmentation fault,
   delivered as ``SIGSEGV`` so CSOD's termination unit can intercept it),
2. performs the byte transfer, and
3. consults the accessing thread's debug-register file; a hit delivers
   the configured signal (``SIGTRAP``) to the thread named by the perf
   event's ``F_SETOWN`` routing — which CSOD always points at the
   accessing thread — with the fd in ``siginfo_t`` (§III-D1).

Note a faithfully modelled hardware property: a watchpoint fires on the
*address*, not on object identity, and fires after the access on x86
(trap, not fault) — CSOD relies on this to report rather than prevent.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SegmentationFault
from repro.machine.address_space import AddressSpace
from repro.machine.debug_registers import WATCH_READ, WATCH_WRITE
from repro.machine.perf_events import PerfEventManager
from repro.machine.signals import SIGSEGV, SigInfo, SignalTable
from repro.machine.syscall_cost import CostLedger, EVENT_MEM_ACCESS
from repro.machine.threads import SimThread


class AccessKind:
    """Access kind constants shared with the debug-register model."""

    READ = WATCH_READ
    WRITE = WATCH_WRITE


class CPU:
    """Executes accesses against the address space and fires watchpoints."""

    def __init__(
        self,
        memory: AddressSpace,
        signals: SignalTable,
        perf: PerfEventManager,
        ledger: Optional[CostLedger] = None,
    ):
        self._memory = memory
        self._signals = signals
        self._perf = perf
        self._ledger = ledger or CostLedger()
        self.trap_count = 0
        # Pre-access hooks: the seam where compile-time instrumentation
        # (ASan's shadow checks) observes every load/store.  Hooks run
        # before the access and may raise to model a sanitizer abort.
        self._access_hooks = []

    def add_access_hook(self, hook) -> None:
        """Register ``hook(thread, address, size, kind)`` on every access."""
        self._access_hooks.append(hook)

    def remove_access_hook(self, hook) -> None:
        self._access_hooks.remove(hook)

    # ------------------------------------------------------------------
    # Access execution
    # ------------------------------------------------------------------
    def load(self, thread: SimThread, address: int, size: int = 8) -> bytes:
        """Read ``size`` bytes as ``thread``; may raise or trap."""
        self._ledger.record(EVENT_MEM_ACCESS)
        for hook in self._access_hooks:
            hook(thread, address, size, AccessKind.READ)
        try:
            data = self._memory.read_bytes(address, size)
        except SegmentationFault as fault:
            self._deliver_segv(thread, fault)
            raise
        self._check_watchpoints(thread, address, size, AccessKind.READ)
        return data

    def store(self, thread: SimThread, address: int, data: bytes) -> None:
        """Write ``data`` as ``thread``; may raise or trap.

        The write lands *before* the trap fires, matching x86 data
        watchpoints (trap-type debug exceptions report after execution),
        which is why CSOD is a detector rather than a preventer.
        """
        self._ledger.record(EVENT_MEM_ACCESS)
        for hook in self._access_hooks:
            hook(thread, address, len(data), AccessKind.WRITE)
        try:
            self._memory.write_bytes(address, data)
        except SegmentationFault as fault:
            self._deliver_segv(thread, fault)
            raise
        self._check_watchpoints(thread, address, len(data), AccessKind.WRITE)

    def load_word(self, thread: SimThread, address: int) -> int:
        return int.from_bytes(self.load(thread, address, 8), "little")

    def store_word(self, thread: SimThread, address: int, value: int) -> None:
        self.store(thread, address, (value & (2**64 - 1)).to_bytes(8, "little"))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_watchpoints(
        self, thread: SimThread, address: int, size: int, kind: str
    ) -> None:
        hit = thread.debug_registers.check_access(address, size, kind)
        if hit is None:
            return
        self.trap_count += 1
        info = self._build_siginfo(hit.cookie, address, size, kind, thread)
        signo = info.signo
        if signo:
            self._signals.deliver(signo, info, thread)

    def _build_siginfo(
        self, fd: int, address: int, size: int, kind: str, thread: SimThread
    ) -> SigInfo:
        try:
            event = self._perf.event(fd)
            signo = event.signo
        except Exception:
            # An armed register without a live perf event can only happen
            # if a test armed the register directly; deliver nothing.
            signo = 0
        return SigInfo(
            signo=signo,
            si_fd=fd,
            fault_address=address,
            access_size=size,
            access_kind=kind,
            thread_id=thread.tid,
        )

    def _deliver_segv(self, thread: SimThread, fault: SegmentationFault) -> None:
        info = SigInfo(
            signo=SIGSEGV,
            fault_address=fault.address,
            access_size=fault.size,
            access_kind=fault.kind,
            thread_id=thread.tid,
            detail=str(fault),
        )
        try:
            self._signals.deliver(SIGSEGV, info, thread)
        except Exception:
            # Unhandled SIGSEGV terminates the process; the original
            # fault propagates from the caller, so swallow the
            # termination here to avoid double-raising.
            pass
