"""Simulated threads.

CSOD installs every watchpoint on *all alive threads*, because there is
no way to know which thread will perform the overflowing access (Fig. 3).
To support that, the machine keeps a registry of alive
:class:`SimThread`\\ s, and exposes a ``pthread_create`` interposition
hook — the analogue of CSOD intercepting ``pthread_create()`` to learn
each new thread's id.

Each thread owns its own :class:`~repro.machine.debug_registers.DebugRegisterFile`
(hardware debug registers are per-CPU-context) and its own call stack.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional

from repro.callstack.frames import CallStack
from repro.errors import ThreadError
from repro.machine.debug_registers import DebugRegisterFile

ThreadHook = Callable[["SimThread"], None]


class SimThread:
    """One simulated thread: a tid, debug registers, and a call stack."""

    def __init__(self, tid: int, name: str = ""):
        self.tid = tid
        self.name = name or f"thread-{tid}"
        self.debug_registers = DebugRegisterFile()
        self.call_stack = CallStack()
        self.alive = True

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"SimThread(tid={self.tid}, name={self.name!r}, {state})"


class ThreadRegistry:
    """Tracks alive threads and notifies creation/exit hooks.

    The main thread (tid 1) always exists; ``create()`` models
    ``pthread_create`` and fires any registered creation hooks, which is
    how the CSOD runtime re-installs active watchpoints on late-spawned
    threads.
    """

    def __init__(self):
        self._tids = itertools.count(1)
        self._threads: Dict[int, SimThread] = {}
        self._create_hooks: List[ThreadHook] = []
        self._exit_hooks: List[ThreadHook] = []
        self.main_thread = self.create("main", _notify=False)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(self, name: str = "", _notify: bool = True) -> SimThread:
        """Spawn a new alive thread (the ``pthread_create`` analogue)."""
        thread = SimThread(next(self._tids), name)
        self._threads[thread.tid] = thread
        if _notify:
            for hook in self._create_hooks:
                hook(thread)
        return thread

    def exit(self, tid: int) -> None:
        """Mark a thread dead and notify exit hooks."""
        thread = self.get(tid)
        if not thread.alive:
            raise ThreadError(f"thread {tid} already exited")
        if thread is self.main_thread:
            raise ThreadError("the main thread cannot exit via pthread_exit")
        thread.alive = False
        for hook in self._exit_hooks:
            hook(thread)

    def get(self, tid: int) -> SimThread:
        try:
            return self._threads[tid]
        except KeyError:
            raise ThreadError(f"no such thread {tid}") from None

    def alive_threads(self) -> List[SimThread]:
        """All currently alive threads (the paper's ``aliveThreads`` list)."""
        return [t for t in self._threads.values() if t.alive]

    def __iter__(self) -> Iterator[SimThread]:
        return iter(self.alive_threads())

    def __len__(self) -> int:
        return len(self.alive_threads())

    # ------------------------------------------------------------------
    # Interposition hooks
    # ------------------------------------------------------------------
    def on_create(self, hook: ThreadHook) -> None:
        """Register a ``pthread_create`` interposition callback."""
        self._create_hooks.append(hook)

    def on_exit(self, hook: ThreadHook) -> None:
        """Register a thread-exit interposition callback."""
        self._exit_hooks.append(hook)
