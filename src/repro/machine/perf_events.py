"""A ``perf_event_open`` facade for hardware breakpoints.

This reproduces the exact protocol of the paper's Fig. 3 / Fig. 4:

* ``perf_event_open(attr, tid)`` with ``type = PERF_TYPE_BREAKPOINT``
  returns a file descriptor bound to one thread;
* ``fcntl(fd, F_SETSIG, SIGTRAP)`` selects the delivered signal and
  ``fcntl(fd, F_SETOWN, tid)`` routes it to the accessing thread;
* ``ioctl(fd, PERF_EVENT_IOC_ENABLE)`` arms a debug-register slot on the
  target thread, ``..._DISABLE`` releases it;
* ``close(fd)`` tears the event down.

Every call is charged to the cost ledger, which is how the paper's
"eight system calls per install/remove pair per thread" overhead shows up
in the performance model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import DebugRegisterError, PerfEventError
from repro.machine.debug_registers import (
    HardwareWatchpoint,
    WATCH_READ,
    WATCH_READWRITE,
    WATCH_WRITE,
)
from repro.machine.syscall_cost import (
    CostBundle,
    CostLedger,
    EVENT_CLOSE,
    EVENT_FCNTL,
    EVENT_IOCTL,
    EVENT_PERF_EVENT_OPEN,
    EVENT_SYSCALL,
    EVENT_WATCHPOINT_BATCH,
    QuantumCounter,
)
from repro.machine.threads import SimThread, ThreadRegistry

PERF_TYPE_BREAKPOINT = 5  # matches <linux/perf_event.h>

HW_BREAKPOINT_R = 1
HW_BREAKPOINT_W = 2
HW_BREAKPOINT_RW = HW_BREAKPOINT_R | HW_BREAKPOINT_W

F_SETSIG = "F_SETSIG"
F_SETOWN = "F_SETOWN"
F_SETFL = "F_SETFL"
F_GETFL = "F_GETFL"

PERF_EVENT_IOC_ENABLE = "PERF_EVENT_IOC_ENABLE"
PERF_EVENT_IOC_DISABLE = "PERF_EVENT_IOC_DISABLE"

_BP_KIND = {
    HW_BREAKPOINT_R: WATCH_READ,
    HW_BREAKPOINT_W: WATCH_WRITE,
    HW_BREAKPOINT_RW: WATCH_READWRITE,
}

# Approximate cost of one syscall round-trip on the paper's Xeon testbed.
SYSCALL_COST_NS = 700

# Fused charges for the per-thread Fig. 3 / Fig. 4 sequences.  Nothing
# can observe the virtual clock between the individual syscalls of one
# sequence, so charging the whole run as one bundle yields the same
# ledger counts, per-event nanos, and final clock as the serial records.
_INSTALL_BUNDLE = CostBundle(
    (
        (EVENT_PERF_EVENT_OPEN, 1, SYSCALL_COST_NS),
        (EVENT_FCNTL, 4, SYSCALL_COST_NS),
        (EVENT_IOCTL, 1, SYSCALL_COST_NS),
        (EVENT_SYSCALL, 6, 0),
    )
)
_REMOVE_BUNDLE = CostBundle(
    (
        (EVENT_IOCTL, 1, SYSCALL_COST_NS),
        (EVENT_CLOSE, 1, SYSCALL_COST_NS),
        (EVENT_SYSCALL, 2, 0),
    )
)
# Thread-count-scaled variants, cached: installs hit a handful of
# distinct alive-thread counts over a run.
_INSTALL_SCALED: Dict[int, CostBundle] = {1: _INSTALL_BUNDLE}
_REMOVE_SCALED: Dict[int, CostBundle] = {1: _REMOVE_BUNDLE}


@dataclass(frozen=True, slots=True)
class PerfEventAttr:
    """The subset of ``struct perf_event_attr`` used for watchpoints."""

    type: int = PERF_TYPE_BREAKPOINT
    bp_type: int = HW_BREAKPOINT_RW
    bp_addr: int = 0
    bp_len: int = 8


@dataclass(slots=True)
class PerfEvent:
    """State behind one fd returned by :func:`PerfEventManager.perf_event_open`."""

    fd: int
    attr: PerfEventAttr
    tid: int
    signo: int = 0
    owner_tid: int = -1
    async_notify: bool = False
    enabled: bool = False
    closed: bool = False


class PerfEventManager:
    """Owns the fd table and schedules breakpoints onto debug registers."""

    def __init__(
        self,
        threads: ThreadRegistry,
        ledger: Optional[CostLedger] = None,
        quantum: Optional[QuantumCounter] = None,
    ):
        self._threads = threads
        self._ledger = ledger or CostLedger()
        self._fds = itertools.count(100)  # low fds belong to the "program"
        self._events: Dict[int, PerfEvent] = {}
        # Scheduler-quantum source for batch coalescing.  When present,
        # all batch_install/batch_remove calls issued within one quantum
        # are charged as a single custom-syscall round trip — the kernel
        # would service them in one entry (§V-B's custom syscall taken
        # one step further).  Without one, every batch call is charged.
        self._quantum = quantum
        self._last_batch_quantum = -1
        self.batch_calls = 0
        self.batches_coalesced = 0

    # ------------------------------------------------------------------
    # Syscall surface
    # ------------------------------------------------------------------
    def perf_event_open(self, attr: PerfEventAttr, tid: int) -> int:
        """Create a breakpoint event on thread ``tid``; returns its fd."""
        self._charge(EVENT_PERF_EVENT_OPEN)
        if attr.type != PERF_TYPE_BREAKPOINT:
            raise PerfEventError(f"unsupported perf event type {attr.type}")
        if attr.bp_type not in _BP_KIND:
            raise PerfEventError(f"unsupported bp_type {attr.bp_type}")
        self._threads.get(tid)  # validates the tid
        event = PerfEvent(fd=next(self._fds), attr=attr, tid=tid)
        self._events[event.fd] = event
        return event.fd

    def fcntl(self, fd: int, command: str, value: int = 0) -> int:
        """``F_SETSIG``/``F_SETOWN``/``F_SETFL``/``F_GETFL`` on an event fd."""
        self._charge(EVENT_FCNTL)
        event = self._event(fd)
        if command == F_SETSIG:
            event.signo = value
        elif command == F_SETOWN:
            self._threads.get(value)
            event.owner_tid = value
        elif command == F_SETFL:
            event.async_notify = True
        elif command == F_GETFL:
            return 0
        else:
            raise PerfEventError(f"unsupported fcntl command {command!r}")
        return 0

    def ioctl(self, fd: int, command: str) -> int:
        """Enable or disable the breakpoint behind ``fd``."""
        self._charge(EVENT_IOCTL)
        event = self._event(fd)
        if command == PERF_EVENT_IOC_ENABLE:
            self._enable(event)
        elif command == PERF_EVENT_IOC_DISABLE:
            self._disable(event)
        else:
            raise PerfEventError(f"unsupported ioctl command {command!r}")
        return 0

    def close(self, fd: int) -> None:
        """Tear down the event; disables it first if still enabled."""
        self._charge(EVENT_CLOSE)
        event = self._event(fd)
        if event.enabled:
            self._disable(event)
        event.closed = True
        del self._events[fd]

    # ------------------------------------------------------------------
    # The hypothetical custom syscall (§V-B)
    # ------------------------------------------------------------------
    # The paper: "We could further reduce the performance overhead by
    # combining these system calls into one custom system call, but this
    # requires modification of the underlying OS."  The simulated kernel
    # can be modified; these two entry points do the whole install (or
    # removal) across every target thread for the price of ONE syscall.

    def batch_install(
        self, attr: PerfEventAttr, tids, signo: int
    ) -> Dict[int, int]:
        """Open+configure+enable a watchpoint on all ``tids`` at once.

        Semantically identical to the Fig. 3 sequence per thread
        (including failure if any thread's registers are full), but
        charged as a single syscall round-trip.
        """
        self._charge_batch()
        fds: Dict[int, int] = {}
        try:
            for tid in tids:
                self._threads.get(tid)
                event = PerfEvent(fd=next(self._fds), attr=attr, tid=tid)
                event.signo = signo
                event.owner_tid = tid
                event.async_notify = True
                self._events[event.fd] = event
                self._enable(event)
                fds[tid] = event.fd
        except DebugRegisterError:
            # All-or-nothing, like a real syscall would be.
            self.batch_remove(fds.values(), _charge=False)
            raise
        return fds

    def batch_remove(self, fds, _charge: bool = True) -> None:
        """Disable+close a set of event fds for one syscall."""
        if _charge:
            self._charge_batch()
        for fd in list(fds):
            event = self._events.get(fd)
            if event is None or event.closed:
                continue
            if event.enabled:
                self._disable(event)
            event.closed = True
            del self._events[fd]

    # ------------------------------------------------------------------
    # The fused hot path (same syscalls, bundle-charged)
    # ------------------------------------------------------------------
    # Unlike batch_install/batch_remove, these do NOT model the custom
    # syscall: they perform the ordinary Fig. 3 / Fig. 4 per-thread
    # sequences and charge exactly what the serial perf_event_open /
    # fcntl / ioctl / close calls would have — merged into one
    # precompiled bundle per call, because no observation point can fall
    # between the syscalls of one sequence.

    def install_fast(self, attr: PerfEventAttr, tids, signo: int) -> Dict[int, int]:
        """The Fig. 3 install sequence on every tid, bundle-charged."""
        n = len(tids)
        bundle = _INSTALL_SCALED.get(n)
        if bundle is None:
            bundle = _INSTALL_SCALED[n] = _INSTALL_BUNDLE.scaled(n)
        self._ledger.charge_bundle(bundle)
        events = self._events
        fds: Dict[int, int] = {}
        for tid in tids:
            event = PerfEvent(fd=next(self._fds), attr=attr, tid=tid)
            event.signo = signo
            event.owner_tid = tid
            event.async_notify = True
            events[event.fd] = event
            self._enable(event)
            fds[tid] = event.fd
        return fds

    def remove_fast(self, fds) -> None:
        """The Fig. 4 remove sequence for each fd, bundle-charged."""
        n = len(fds)
        if not n:
            return
        bundle = _REMOVE_SCALED.get(n)
        if bundle is None:
            bundle = _REMOVE_SCALED[n] = _REMOVE_BUNDLE.scaled(n)
        self._ledger.charge_bundle(bundle)
        events = self._events
        for fd in fds:
            event = events.get(fd)
            if event is None or event.closed:
                continue
            if event.enabled:
                self._disable(event)
            event.closed = True
            del events[fd]

    # ------------------------------------------------------------------
    # Introspection (used by the CPU and by tests)
    # ------------------------------------------------------------------
    def event(self, fd: int) -> PerfEvent:
        """Look up a live event by fd (for tests and the signal unit)."""
        return self._event(fd)

    def open_events(self) -> Dict[int, PerfEvent]:
        return dict(self._events)

    def enabled_event_count(self) -> int:
        return sum(1 for e in self._events.values() if e.enabled)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _event(self, fd: int) -> PerfEvent:
        event = self._events.get(fd)
        if event is None or event.closed:
            raise PerfEventError(f"bad perf event fd {fd}")
        return event

    def _enable(self, event: PerfEvent) -> None:
        if event.enabled:
            return
        thread = self._threads.get(event.tid)
        watchpoint = HardwareWatchpoint(
            address=event.attr.bp_addr,
            length=event.attr.bp_len,
            kind=_BP_KIND[event.attr.bp_type],
            cookie=event.fd,
        )
        # Arming can fail when all four registers are busy; surface the
        # hardware error unchanged so the runtime's policies deal with it.
        thread.debug_registers.arm(watchpoint)
        event.enabled = True

    def _disable(self, event: PerfEvent) -> None:
        if not event.enabled:
            return
        thread = self._threads.get(event.tid)
        if not thread.debug_registers.disarm_cookie(event.fd):
            raise DebugRegisterError(
                f"perf event fd {event.fd} enabled but not armed on tid {event.tid}"
            )
        event.enabled = False

    def _charge(self, event_name: str) -> None:
        self._ledger.record(event_name, nanos_each=SYSCALL_COST_NS)
        self._ledger.record(EVENT_SYSCALL)

    def _charge_batch(self) -> None:
        """Charge one batched round trip, coalescing within a quantum."""
        self.batch_calls += 1
        quantum = self._quantum
        if quantum is not None:
            index = quantum.index
            if index == self._last_batch_quantum:
                self.batches_coalesced += 1
                return
            self._last_batch_quantum = index
        self._charge(EVENT_WATCHPOINT_BATCH)
