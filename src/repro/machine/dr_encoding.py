"""Bit-level DR6/DR7 encoding.

The x86 debug-register interface the paper's §II-A describes is two
control/status registers plus four address registers:

* **DR7** — per-slot local/global enable bits (L0-L3 at even bits 0..6,
  G0-G3 at odd bits 1..7), a 2-bit R/W condition field per slot at bits
  16+4k (01 = data write, 11 = data read/write), and a 2-bit LEN field
  at bits 18+4k (00/01/11/10 = 1/2/4/8 bytes);
* **DR6** — sticky B0-B3 hit bits at bits 0..3 naming the slot whose
  condition fired.

:class:`~repro.machine.debug_registers.DebugRegisterFile` exposes its
state through these encodings (``.dr7``, ``.dr6``), so tests and tools
can check the register file the way a kernel debugger would.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import DebugRegisterError

NUM_SLOTS = 4

RW_EXECUTE = 0b00
RW_WRITE = 0b01
RW_IO = 0b10
RW_READWRITE = 0b11

_LEN_ENCODE = {1: 0b00, 2: 0b01, 4: 0b11, 8: 0b10}
_LEN_DECODE = {code: length for length, code in _LEN_ENCODE.items()}

_KIND_TO_RW = {"w": RW_WRITE, "rw": RW_READWRITE, "r": RW_READWRITE}
# Hardware has no pure-read data watch; "r" maps onto read/write, as the
# Linux HW_BREAKPOINT_R does under the hood.
_RW_TO_KIND = {RW_WRITE: "w", RW_READWRITE: "rw"}


def encode_len(length: int) -> int:
    try:
        return _LEN_ENCODE[length]
    except KeyError:
        raise DebugRegisterError(f"unencodable watch length {length}") from None


def decode_len(code: int) -> int:
    try:
        return _LEN_DECODE[code & 0b11]
    except KeyError:  # pragma: no cover - all 2-bit codes are mapped
        raise DebugRegisterError(f"bad LEN code {code:#b}") from None


def encode_dr7(slots: List[Optional[Tuple[str, int]]]) -> int:
    """DR7 for up to four (kind, length) slot descriptors (None = off).

    Watches are enabled *globally* (the G bits), matching how
    perf_event installs them for a whole thread regardless of privilege
    transitions.
    """
    if len(slots) > NUM_SLOTS:
        raise DebugRegisterError(f"at most {NUM_SLOTS} slots, got {len(slots)}")
    value = 0
    for index, slot in enumerate(slots):
        if slot is None:
            continue
        kind, length = slot
        rw = _KIND_TO_RW.get(kind)
        if rw is None:
            raise DebugRegisterError(f"unencodable watch kind {kind!r}")
        value |= 1 << (index * 2 + 1)  # G<index>
        value |= rw << (16 + index * 4)
        value |= encode_len(length) << (18 + index * 4)
    return value


def decode_dr7(value: int) -> Dict[int, Tuple[str, int]]:
    """Slot index -> (kind, length) for every enabled slot in DR7."""
    slots: Dict[int, Tuple[str, int]] = {}
    for index in range(NUM_SLOTS):
        local = value >> (index * 2) & 1
        global_ = value >> (index * 2 + 1) & 1
        if not (local or global_):
            continue
        rw = (value >> (16 + index * 4)) & 0b11
        if rw not in _RW_TO_KIND:
            raise DebugRegisterError(
                f"slot {index}: unsupported R/W condition {rw:#b}"
            )
        length = decode_len(value >> (18 + index * 4))
        slots[index] = (_RW_TO_KIND[rw], length)
    return slots


def encode_dr6(hit_slots) -> int:
    """DR6 with the B bits of the given slot indexes set."""
    value = 0
    for index in hit_slots:
        if not 0 <= index < NUM_SLOTS:
            raise DebugRegisterError(f"no such slot {index}")
        value |= 1 << index
    return value


def decode_dr6(value: int) -> List[int]:
    """Slot indexes named by the B0-B3 bits."""
    return [index for index in range(NUM_SLOTS) if value >> index & 1]
