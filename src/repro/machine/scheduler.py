"""A deterministic cooperative scheduler for simulated threads.

Multithreaded workloads are written as Python generators that yield at
preemption points; the scheduler interleaves them with a seeded
round-robin-with-jitter discipline so that every execution is exactly
reproducible from its seed while still exercising different
interleavings across seeds — the property the paper's introduction calls
out as the reason overflow bugs escape testing.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import ThreadError
from repro.machine.threads import SimThread, ThreadRegistry

ThreadBody = Generator[None, None, None]


class RoundRobinScheduler:
    """Runs generator-bodied threads to completion, deterministically."""

    def __init__(
        self,
        threads: ThreadRegistry,
        seed: int = 0,
        jitter: bool = True,
        quantum=None,
    ):
        self._threads = threads
        self._rng = random.Random(seed)
        self._jitter = jitter
        self._runnable: List[Tuple[SimThread, ThreadBody]] = []
        # Optional machine QuantumCounter: each scheduling step is one
        # quantum, the granularity batched watchpoint syscalls coalesce at.
        self._quantum = quantum
        self.steps = 0

    def spawn(self, body: ThreadBody, name: str = "") -> SimThread:
        """Create a registry thread whose work is the generator ``body``."""
        thread = self._threads.create(name)
        self._runnable.append((thread, body))
        return thread

    def adopt_main(self, body: ThreadBody) -> SimThread:
        """Attach a body to the pre-existing main thread."""
        thread = self._threads.main_thread
        if any(t is thread for t, _ in self._runnable):
            raise ThreadError("main thread already has a body")
        self._runnable.append((thread, body))
        return thread

    def run(self, max_steps: int = 10_000_000) -> int:
        """Interleave all bodies until every generator is exhausted.

        Returns the number of scheduling steps taken.  ``max_steps``
        bounds runaway workloads; exceeding it is a workload bug.
        """
        while self._runnable:
            if self._quantum is not None:
                self._quantum.advance()
            index = self._pick()
            thread, body = self._runnable[index]
            try:
                next(body)
            except StopIteration:
                self._retire(index, thread)
            self.steps += 1
            if self.steps > max_steps:
                raise ThreadError(f"scheduler exceeded {max_steps} steps")
        return self.steps

    def _pick(self) -> int:
        if self._jitter and len(self._runnable) > 1:
            return self._rng.randrange(len(self._runnable))
        return 0

    def _retire(self, index: int, thread: SimThread) -> None:
        del self._runnable[index]
        if thread is not self._threads.main_thread and thread.alive:
            self._threads.exit(thread.tid)
