"""Event-count and cost accounting.

The paper attributes CSOD's overhead to concrete event counts: context
lookups and RNG draws on every allocation, and eight system calls per
watchpoint install/remove pair per thread (§V-B).  The ledger records
those events as they happen in the simulated runtime; the analytic
overhead model in :mod:`repro.perfmodel` later converts counts into
normalized runtime using calibrated unit costs.

The ledger optionally drives the virtual clock, so that time-dependent
sampling rules (the 10-second throttle window, watchpoint ageing) observe
a timeline consistent with the work performed.

``record`` sits on the per-allocation hot path (it runs ~25 times per
interposed malloc/free pair), so the implementation favours plain dicts
and early-outs over convenience types; the accounting it produces is
bit-for-bit what the previous Counter-based version produced.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.machine.clock import VirtualClock


class QuantumCounter:
    """A monotonically increasing scheduler-quantum index.

    One quantum is one uninterrupted stretch of a simulated thread's
    execution: the scheduler bumps the counter at every step, and
    workloads that drive threads directly (the trace replayers) bump it
    once per application event.  The perf-event subsystem uses it to
    coalesce batched watchpoint syscalls issued within one quantum.
    """

    __slots__ = ("index",)

    def __init__(self) -> None:
        self.index = 0

    def advance(self) -> int:
        self.index += 1
        return self.index


class CostLedger:
    """Counts named events and optionally charges virtual time for them."""

    __slots__ = ("_clock", "_counts", "_nanos")

    def __init__(self, clock: Optional[VirtualClock] = None):
        self._clock = clock
        self._counts: Dict[str, int] = {}
        self._nanos: Dict[str, int] = {}

    def record(self, event: str, count: int = 1, nanos_each: int = 0) -> None:
        """Record ``count`` occurrences of ``event``.

        ``nanos_each`` is charged to the virtual clock (if one is
        attached) and accumulated per event for later inspection.
        """
        if count < 0:
            raise ValueError(f"negative event count: {count}")
        counts = self._counts
        counts[event] = counts.get(event, 0) + count
        if nanos_each:
            if nanos_each < 0:
                raise ValueError(f"negative event cost: {nanos_each}")
            total_nanos = count * nanos_each
            nanos = self._nanos
            nanos[event] = nanos.get(event, 0) + total_nanos
            if self._clock is not None and total_nanos:
                self._clock.advance(total_nanos)

    def count(self, event: str) -> int:
        """Number of recorded occurrences of ``event``."""
        return self._counts.get(event, 0)

    def nanos(self, event: str) -> int:
        """Total nanoseconds charged for ``event``."""
        return self._nanos.get(event, 0)

    def total_nanos(self) -> int:
        """Total nanoseconds charged across all events."""
        return sum(self._nanos.values())

    def counts(self) -> Dict[str, int]:
        """A snapshot of all event counts."""
        return dict(self._counts)

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's counts into this one (no clock charge)."""
        for event, count in other._counts.items():
            self._counts[event] = self._counts.get(event, 0) + count
        for event, nanos in other._nanos.items():
            self._nanos[event] = self._nanos.get(event, 0) + nanos

    def reset(self) -> None:
        """Clear all recorded events."""
        self._counts.clear()
        self._nanos.clear()

    def __repr__(self) -> str:
        events = len(self._counts)
        return f"CostLedger(events={events}, total_nanos={self.total_nanos()})"


# Canonical event names used across the package.  Keeping them in one
# place prevents typo'd categories from silently splitting counts.
EVENT_SYSCALL = "syscall"
EVENT_PERF_EVENT_OPEN = "syscall.perf_event_open"
EVENT_FCNTL = "syscall.fcntl"
EVENT_IOCTL = "syscall.ioctl"
EVENT_CLOSE = "syscall.close"
EVENT_WATCHPOINT_BATCH = "syscall.watchpoint_batch"
EVENT_MALLOC = "libc.malloc"
EVENT_FREE = "libc.free"
EVENT_BACKTRACE_FULL = "libc.backtrace"
EVENT_CONTEXT_LOOKUP = "csod.context_lookup"
EVENT_RNG_DRAW = "csod.rng_draw"
EVENT_WATCH_INSTALL = "csod.watch_install"
EVENT_WATCH_REMOVE = "csod.watch_remove"
EVENT_CANARY_SET = "csod.canary_set"
EVENT_CANARY_CHECK = "csod.canary_check"
EVENT_ASAN_CHECK = "asan.access_check"
EVENT_ASAN_POISON = "asan.poison"
EVENT_MEM_ACCESS = "mem.access"
