"""Event-count and cost accounting.

The paper attributes CSOD's overhead to concrete event counts: context
lookups and RNG draws on every allocation, and eight system calls per
watchpoint install/remove pair per thread (§V-B).  The ledger records
those events as they happen in the simulated runtime; the analytic
overhead model in :mod:`repro.perfmodel` later converts counts into
normalized runtime using calibrated unit costs.

The ledger optionally drives the virtual clock, so that time-dependent
sampling rules (the 10-second throttle window, watchpoint ageing) observe
a timeline consistent with the work performed.

``record`` sits on the per-allocation hot path (it runs ~25 times per
interposed malloc/free pair), so the implementation favours plain dicts
and early-outs over convenience types; the accounting it produces is
bit-for-bit what the previous Counter-based version produced.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.machine.clock import VirtualClock


class QuantumCounter:
    """A monotonically increasing scheduler-quantum index.

    One quantum is one uninterrupted stretch of a simulated thread's
    execution: the scheduler bumps the counter at every step, and
    workloads that drive threads directly (the trace replayers) bump it
    once per application event.  The perf-event subsystem uses it to
    coalesce batched watchpoint syscalls issued within one quantum.
    """

    __slots__ = ("index",)

    def __init__(self) -> None:
        self.index = 0

    def advance(self) -> int:
        self.index += 1
        return self.index


class CostBundle:
    """A precompiled batch of ledger events, applied in one call.

    The batched hot path fuses runs of ``record`` calls that have no
    observation point (clock read, trap, report) between them — e.g. the
    six syscalls of one watchpoint installation.  A bundle precomputes
    the merged per-event counts and nanosecond totals once, so applying
    it costs one dict update per *distinct* event plus a single clock
    advance, instead of one ``record`` per event occurrence.

    Applying a bundle is observationally identical to replaying its
    ``record`` sequence: the same counts, the same per-event nanos, and
    the same final clock — only intermediate clock states (which nothing
    may read inside a fused run) are skipped.

    Bundles are shared, immutable-by-convention constants; the ledger
    keys its deferred tally on bundle identity, so never mutate a
    bundle's dicts after construction.
    """

    __slots__ = ("counts", "nanos", "total_nanos")

    def __init__(self, events):
        """``events``: iterable of ``(event, count, nanos_each)``."""
        counts: Dict[str, int] = {}
        nanos: Dict[str, int] = {}
        total = 0
        for event, count, nanos_each in events:
            if count < 0:
                raise ValueError(f"negative event count: {count}")
            if nanos_each < 0:
                raise ValueError(f"negative event cost: {nanos_each}")
            counts[event] = counts.get(event, 0) + count
            if nanos_each:
                charged = count * nanos_each
                nanos[event] = nanos.get(event, 0) + charged
                total += charged
        self.counts = counts
        self.nanos = nanos
        self.total_nanos = total

    def scaled(self, factor: int) -> "CostBundle":
        """The bundle repeated ``factor`` times (e.g. per alive thread)."""
        if factor < 0:
            raise ValueError(f"negative bundle factor: {factor}")
        scaled = CostBundle(())
        scaled.counts = {e: c * factor for e, c in self.counts.items()}
        scaled.nanos = {e: n * factor for e, n in self.nanos.items()}
        scaled.total_nanos = self.total_nanos * factor
        return scaled

    def merged(self, other: "CostBundle") -> "CostBundle":
        """This bundle followed by ``other``, as one bundle."""
        merged = CostBundle(())
        merged.counts = dict(self.counts)
        merged.nanos = dict(self.nanos)
        for event, count in other.counts.items():
            merged.counts[event] = merged.counts.get(event, 0) + count
        for event, charged in other.nanos.items():
            merged.nanos[event] = merged.nanos.get(event, 0) + charged
        merged.total_nanos = self.total_nanos + other.total_nanos
        return merged


class CostLedger:
    """Counts named events and optionally charges virtual time for them.

    Bundle charges are *deferred*: ``charge_bundle`` advances the clock
    immediately (time is observable mid-run) but only tallies how many
    times each bundle was applied — two dict operations instead of one
    per event.  Per-event counts and nanos are materialized from those
    tallies the first time anything reads them; reads happen at
    reporting frequency, not allocation frequency, so the fold is paid
    once per snapshot rather than once per malloc.
    """

    __slots__ = ("_clock", "_counts", "_nanos", "_pending")

    def __init__(self, clock: Optional[VirtualClock] = None):
        self._clock = clock
        self._counts: Dict[str, int] = {}
        self._nanos: Dict[str, int] = {}
        # bundle -> number of times charged (identity-keyed: bundles are
        # shared precompiled constants).
        self._pending: Dict[CostBundle, int] = {}

    def record(self, event: str, count: int = 1, nanos_each: int = 0) -> None:
        """Record ``count`` occurrences of ``event``.

        ``nanos_each`` is charged to the virtual clock (if one is
        attached) and accumulated per event for later inspection.
        """
        if count < 0:
            raise ValueError(f"negative event count: {count}")
        counts = self._counts
        counts[event] = counts.get(event, 0) + count
        if nanos_each:
            if nanos_each < 0:
                raise ValueError(f"negative event cost: {nanos_each}")
            total_nanos = count * nanos_each
            nanos = self._nanos
            nanos[event] = nanos.get(event, 0) + total_nanos
            clock = self._clock
            if clock is not None:
                # Monotonicity holds by construction (count and
                # nanos_each are both checked nonnegative), so the
                # advance() guard is skipped on this hot call.
                clock._now_ns += total_nanos

    def charge_bundle(self, bundle: CostBundle) -> None:
        """Apply a precompiled :class:`CostBundle` in one shot.

        Equivalent to replaying the bundle's original ``record`` calls
        back-to-back; used by the batched hot path for charge runs with
        no observation point in between.
        """
        pending = self._pending
        pending[bundle] = pending.get(bundle, 0) + 1
        total = bundle.total_nanos
        if total:
            clock = self._clock
            if clock is not None:
                clock._now_ns += total

    def _flush(self) -> None:
        """Fold deferred bundle tallies into the per-event dicts."""
        pending = self._pending
        if not pending:
            return
        counts = self._counts
        nanos = self._nanos
        for bundle, hits in pending.items():
            for event, count in bundle.counts.items():
                counts[event] = counts.get(event, 0) + count * hits
            for event, charged in bundle.nanos.items():
                nanos[event] = nanos.get(event, 0) + charged * hits
        pending.clear()

    def count(self, event: str) -> int:
        """Number of recorded occurrences of ``event``."""
        self._flush()
        return self._counts.get(event, 0)

    def nanos(self, event: str) -> int:
        """Total nanoseconds charged for ``event``."""
        self._flush()
        return self._nanos.get(event, 0)

    def total_nanos(self) -> int:
        """Total nanoseconds charged across all events."""
        self._flush()
        return sum(self._nanos.values())

    def counts(self) -> Dict[str, int]:
        """A snapshot of all event counts."""
        self._flush()
        return dict(self._counts)

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's counts into this one (no clock charge)."""
        self._flush()
        other._flush()
        for event, count in other._counts.items():
            self._counts[event] = self._counts.get(event, 0) + count
        for event, nanos in other._nanos.items():
            self._nanos[event] = self._nanos.get(event, 0) + nanos

    def reset(self) -> None:
        """Clear all recorded events."""
        self._counts.clear()
        self._nanos.clear()
        self._pending.clear()

    def __repr__(self) -> str:
        self._flush()
        events = len(self._counts)
        return f"CostLedger(events={events}, total_nanos={self.total_nanos()})"


# Canonical event names used across the package.  Keeping them in one
# place prevents typo'd categories from silently splitting counts.
EVENT_SYSCALL = "syscall"
EVENT_PERF_EVENT_OPEN = "syscall.perf_event_open"
EVENT_FCNTL = "syscall.fcntl"
EVENT_IOCTL = "syscall.ioctl"
EVENT_CLOSE = "syscall.close"
EVENT_WATCHPOINT_BATCH = "syscall.watchpoint_batch"
EVENT_MALLOC = "libc.malloc"
EVENT_FREE = "libc.free"
EVENT_BACKTRACE_FULL = "libc.backtrace"
EVENT_CONTEXT_LOOKUP = "csod.context_lookup"
EVENT_RNG_DRAW = "csod.rng_draw"
EVENT_WATCH_INSTALL = "csod.watch_install"
EVENT_WATCH_REMOVE = "csod.watch_remove"
EVENT_CANARY_SET = "csod.canary_set"
EVENT_CANARY_CHECK = "csod.canary_check"
EVENT_ASAN_CHECK = "asan.access_check"
EVENT_ASAN_POISON = "asan.poison"
EVENT_MEM_ACCESS = "mem.access"
