"""The x86 debug-register file.

Intel hardware exposes six debug registers but only DR0-DR3 can hold
watch addresses (DR6/DR7 are status/control) [paper §II-A].  That
four-slot scarcity is the central constraint CSOD's sampling algorithm is
designed around, so the model enforces it exactly: each simulated thread
owns a :class:`DebugRegisterFile` with four usable slots, and arming a
fifth watchpoint fails just as it would on hardware.

A hardware watchpoint watches a naturally aligned 1/2/4/8-byte range and
fires on reads and/or writes that *overlap* the watched bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import DebugRegisterError

TOTAL_DEBUG_REGISTERS = 6
NUM_USABLE_DEBUG_REGISTERS = 4

_VALID_LENGTHS = (1, 2, 4, 8)

WATCH_READ = "r"
WATCH_WRITE = "w"
WATCH_READWRITE = "rw"
_VALID_KINDS = (WATCH_READ, WATCH_WRITE, WATCH_READWRITE)


@dataclass(frozen=True)
class HardwareWatchpoint:
    """One armed debug register: address, length, and trigger kind."""

    address: int
    length: int = 8
    kind: str = WATCH_READWRITE
    cookie: int = -1  # opaque tag (the owning perf-event fd)

    def __post_init__(self):
        if self.length not in _VALID_LENGTHS:
            raise DebugRegisterError(
                f"watchpoint length must be one of {_VALID_LENGTHS}, "
                f"got {self.length}"
            )
        if self.kind not in _VALID_KINDS:
            raise DebugRegisterError(f"invalid watch kind {self.kind!r}")
        if self.address < 0:
            raise DebugRegisterError("watch address cannot be negative")

    def triggers_on(self, address: int, size: int, access_kind: str) -> bool:
        """Whether an access of ``size`` bytes at ``address`` fires this slot."""
        if size <= 0:
            return False
        overlap = address < self.address + self.length and self.address < address + size
        if not overlap:
            return False
        if self.kind == WATCH_READWRITE:
            return True
        return self.kind == access_kind


class FastWatchpoint:
    """A pre-validated RW/8-byte watchpoint for the batched hot path.

    Duck-typed against :class:`HardwareWatchpoint` (same attributes, same
    ``triggers_on``) but skips dataclass construction and field
    validation: the hot path arms only canary-boundary watchpoints whose
    length (8) and kind (``rw``) are fixed and whose address came from
    the allocator, so the checks cannot fire.
    """

    __slots__ = ("address", "cookie")

    length = 8
    kind = WATCH_READWRITE

    def __init__(self, address: int, cookie: int):
        self.address = address
        self.cookie = cookie

    triggers_on = HardwareWatchpoint.triggers_on

    def __repr__(self) -> str:
        return f"FastWatchpoint(address={self.address}, cookie={self.cookie})"


class DebugRegisterFile:
    """Four usable watchpoint slots for one hardware thread context."""

    def __init__(self):
        self._slots: List[Optional[HardwareWatchpoint]] = [
            None
        ] * NUM_USABLE_DEBUG_REGISTERS
        self._dr6 = 0  # sticky B0-B3 hit bits, like the hardware's

    def arm(self, watchpoint: HardwareWatchpoint) -> int:
        """Claim a free slot for ``watchpoint``; returns the slot index.

        Raises :class:`DebugRegisterError` when all four slots are busy —
        the hardware condition that forces CSOD's replacement policies.
        """
        for index, slot in enumerate(self._slots):
            if slot is None:
                self._slots[index] = watchpoint
                return index
        raise DebugRegisterError("all usable debug registers are armed")

    def disarm(self, slot_index: int) -> HardwareWatchpoint:
        """Clear a slot and return what was armed there."""
        if not 0 <= slot_index < NUM_USABLE_DEBUG_REGISTERS:
            raise DebugRegisterError(f"no such debug register slot {slot_index}")
        watchpoint = self._slots[slot_index]
        if watchpoint is None:
            raise DebugRegisterError(f"slot {slot_index} is not armed")
        self._slots[slot_index] = None
        return watchpoint

    def disarm_cookie(self, cookie: int) -> bool:
        """Clear the slot tagged with ``cookie``; False if absent."""
        for index, slot in enumerate(self._slots):
            if slot is not None and slot.cookie == cookie:
                self._slots[index] = None
                return True
        return False

    def slot(self, index: int) -> Optional[HardwareWatchpoint]:
        return self._slots[index]

    def armed(self) -> List[HardwareWatchpoint]:
        """All currently armed watchpoints."""
        return [slot for slot in self._slots if slot is not None]

    def free_slots(self) -> int:
        return sum(1 for slot in self._slots if slot is None)

    def check_access(
        self, address: int, size: int, access_kind: str
    ) -> Optional[HardwareWatchpoint]:
        """First armed watchpoint that the access fires, if any.

        A hit sets the slot's sticky B bit in DR6, as hardware does.
        """
        for index, slot in enumerate(self._slots):
            if slot is not None and slot.triggers_on(address, size, access_kind):
                self._dr6 |= 1 << index
                return slot
        return None

    # ------------------------------------------------------------------
    # Register-level views (see repro.machine.dr_encoding)
    # ------------------------------------------------------------------
    @property
    def dr7(self) -> int:
        """The DR7 control word for the current slot configuration."""
        from repro.machine.dr_encoding import encode_dr7

        return encode_dr7(
            [
                None if slot is None else (slot.kind, slot.length)
                for slot in self._slots
            ]
        )

    @property
    def dr6(self) -> int:
        """The sticky DR6 status word (cleared via :meth:`clear_dr6`)."""
        return self._dr6

    def clear_dr6(self) -> None:
        """Debuggers clear DR6 by hand; the hardware never does."""
        self._dr6 = 0

    def dr_address(self, index: int) -> int:
        """DR0..DR3: the armed linear address of a slot (0 if free)."""
        if not 0 <= index < NUM_USABLE_DEBUG_REGISTERS:
            raise DebugRegisterError(f"no such debug register DR{index}")
        slot = self._slots[index]
        return 0 if slot is None else slot.address

    def __repr__(self) -> str:
        armed = NUM_USABLE_DEBUG_REGISTERS - self.free_slots()
        return f"DebugRegisterFile(armed={armed}/{NUM_USABLE_DEBUG_REGISTERS})"
