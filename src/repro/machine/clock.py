"""Virtual time.

The CSOD sampling algorithm has two time-dependent rules (the 5,000
allocations / 10 seconds throttle of §III-B2 and the watchpoint-ageing
rule of §III-C2), and the overhead model charges nanoseconds for every
libc call and syscall.  Both need a clock that is deterministic and fully
under test control, so the machine keeps its own nanosecond counter
instead of reading the host clock.
"""

from __future__ import annotations

NANOS_PER_SECOND = 1_000_000_000


class VirtualClock:
    """A monotonically advancing nanosecond counter."""

    __slots__ = ("_now_ns",)

    def __init__(self, start_ns: int = 0):
        if start_ns < 0:
            raise ValueError("clock cannot start before time zero")
        self._now_ns = start_ns

    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        """Current virtual time in seconds."""
        return self._now_ns / NANOS_PER_SECOND

    def advance(self, nanos: int) -> int:
        """Advance the clock by ``nanos`` and return the new time.

        Time never goes backwards; negative advances are rejected.
        """
        if nanos < 0:
            raise ValueError(f"cannot advance clock by {nanos} ns")
        self._now_ns += nanos
        return self._now_ns

    def advance_seconds(self, seconds: float) -> int:
        """Advance the clock by a (possibly fractional) second count."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        return self.advance(int(seconds * NANOS_PER_SECOND))

    def reset(self) -> None:
        """Rewind to time zero (used between benchmark repetitions)."""
        self._now_ns = 0

    def __repr__(self) -> str:
        return f"VirtualClock(now_ns={self._now_ns})"
