"""Simulated hardware/OS substrate.

This package stands in for the pieces of a real Linux/x86 system that the
CSOD paper depends on and that cannot be driven faithfully from Python:

* a 64-bit virtual address space (:mod:`repro.machine.address_space`),
* the four usable x86 debug registers
  (:mod:`repro.machine.debug_registers`),
* the ``perf_event_open`` watchpoint protocol
  (:mod:`repro.machine.perf_events`),
* POSIX-style signal dispositions and ``SIGTRAP`` delivery
  (:mod:`repro.machine.signals`),
* simulated threads and a deterministic scheduler
  (:mod:`repro.machine.threads`, :mod:`repro.machine.scheduler`),
* a CPU front-end that performs loads/stores and fires watchpoints
  (:mod:`repro.machine.cpu`), and
* virtual time plus syscall-cost accounting (:mod:`repro.machine.clock`,
  :mod:`repro.machine.syscall_cost`).

:class:`repro.machine.machine.Machine` wires them together.
"""

from repro.machine.address_space import AddressSpace, MappedRegion, PAGE_SIZE
from repro.machine.clock import VirtualClock
from repro.machine.cpu import CPU, AccessKind
from repro.machine.debug_registers import (
    DebugRegisterFile,
    HardwareWatchpoint,
    NUM_USABLE_DEBUG_REGISTERS,
    TOTAL_DEBUG_REGISTERS,
)
from repro.machine.machine import Machine
from repro.machine.perf_events import (
    PerfEvent,
    PerfEventAttr,
    PerfEventManager,
    PERF_TYPE_BREAKPOINT,
    HW_BREAKPOINT_R,
    HW_BREAKPOINT_W,
    HW_BREAKPOINT_RW,
)
from repro.machine.scheduler import RoundRobinScheduler
from repro.machine.signals import (
    SIGTRAP,
    SIGSEGV,
    SIGABRT,
    SigInfo,
    SignalTable,
    ProcessTerminated,
)
from repro.machine.syscall_cost import CostLedger
from repro.machine.threads import SimThread, ThreadRegistry

__all__ = [
    "AddressSpace",
    "MappedRegion",
    "PAGE_SIZE",
    "VirtualClock",
    "CPU",
    "AccessKind",
    "DebugRegisterFile",
    "HardwareWatchpoint",
    "NUM_USABLE_DEBUG_REGISTERS",
    "TOTAL_DEBUG_REGISTERS",
    "Machine",
    "PerfEvent",
    "PerfEventAttr",
    "PerfEventManager",
    "PERF_TYPE_BREAKPOINT",
    "HW_BREAKPOINT_R",
    "HW_BREAKPOINT_W",
    "HW_BREAKPOINT_RW",
    "RoundRobinScheduler",
    "SIGTRAP",
    "SIGSEGV",
    "SIGABRT",
    "SigInfo",
    "SignalTable",
    "ProcessTerminated",
    "CostLedger",
    "SimThread",
    "ThreadRegistry",
]
