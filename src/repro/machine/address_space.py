"""A sparse 64-bit virtual address space with byte-level contents.

The heap substrate places objects contiguously in this space, so the
address "just past an object" — where CSOD installs its watchpoint and
implants its canary — is a real, distinct location whose contents can be
read, written, and corrupted, exactly as on the machine the paper used.

Contents are stored per 4 KiB page in ``bytearray``s, allocated lazily,
so multi-gigabyte simulated footprints cost memory only for pages that
are actually touched.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import MachineError, SegmentationFault

PAGE_SIZE = 4096
_PAGE_SHIFT = 12
_ADDRESS_LIMIT = 1 << 48  # canonical user-space addresses
_WORD_MASK = (1 << 64) - 1

# Precompiled (un)packers for the word-granular fast paths: one C-level
# call moves a whole header instead of four ``int.to_bytes`` round trips.
_PACK_WORD = struct.Struct("<Q")
_WORD_STRUCTS = {n: struct.Struct("<%dQ" % n) for n in (1, 2, 3, 4)}


@dataclass(frozen=True)
class MappedRegion:
    """A contiguous mapped range ``[start, start + size)``."""

    start: int
    size: int
    name: str

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        return self.start <= address and address + size <= self.end

    def overlaps(self, other: "MappedRegion") -> bool:
        return self.start < other.end and other.start < self.end


class AddressSpace:
    """Sparse byte-addressable memory with explicit region mapping."""

    def __init__(self):
        self._regions: List[MappedRegion] = []
        self._pages: Dict[int, bytearray] = {}
        # Last region that satisfied a lookup.  Heap traffic is heavily
        # concentrated in one arena, so this one-entry cache removes the
        # linear region scan from nearly every access; it is invalidated
        # whenever the mapping changes.  ``_hot_start``/``_hot_end``
        # mirror the region's bounds as plain ints so the word-granular
        # fast paths test containment without attribute chains; an empty
        # range (1, 0) encodes "no hot region".
        self._hot_region: Optional[MappedRegion] = None
        self._hot_start = 1
        self._hot_end = 0

    def _set_hot(self, region: Optional[MappedRegion]) -> None:
        self._hot_region = region
        if region is None:
            self._hot_start = 1
            self._hot_end = 0
        else:
            self._hot_start = region.start
            self._hot_end = region.start + region.size

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_region(self, start: int, size: int, name: str = "anon") -> MappedRegion:
        """Map ``[start, start + size)``; overlapping maps are an error."""
        if size <= 0:
            raise MachineError(f"cannot map region of size {size}")
        if start < 0 or start + size > _ADDRESS_LIMIT:
            raise MachineError(
                f"region {start:#x}+{size:#x} is outside the canonical address range"
            )
        region = MappedRegion(start, size, name)
        for existing in self._regions:
            if region.overlaps(existing):
                raise MachineError(
                    f"region {name} at {start:#x} overlaps {existing.name} "
                    f"at {existing.start:#x}"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.start)
        self._set_hot(None)
        return region

    def unmap_region(self, start: int) -> None:
        """Remove the region that begins at ``start``."""
        for i, region in enumerate(self._regions):
            if region.start == start:
                del self._regions[i]
                self._set_hot(None)
                self._drop_pages(region)
                return
        raise MachineError(f"no region mapped at {start:#x}")

    def _drop_pages(self, region: MappedRegion) -> None:
        first = region.start >> _PAGE_SHIFT
        last = (region.end - 1) >> _PAGE_SHIFT
        for page in range(first, last + 1):
            # A page may be shared with an adjacent region; only drop it
            # when nothing mapped still covers it.
            base = page << _PAGE_SHIFT
            if not any(
                r.start < base + PAGE_SIZE and base < r.end for r in self._regions
            ):
                self._pages.pop(page, None)

    def regions(self) -> Iterator[MappedRegion]:
        return iter(self._regions)

    def region_at(self, address: int) -> Optional[MappedRegion]:
        """The region containing ``address``, or None."""
        hot = self._hot_region
        if hot is not None and hot.start <= address < hot.start + hot.size:
            return hot
        for region in self._regions:
            if region.contains(address):
                self._set_hot(region)
                return region
        return None

    def is_mapped(self, address: int, size: int = 1) -> bool:
        """Whether every byte of ``[address, address + size)`` is mapped.

        Ranges that straddle two adjacent regions count as mapped, which
        matches hardware behaviour for contiguous mappings.
        """
        if size <= 0:
            return False
        hot = self._hot_region
        if hot is not None and hot.start <= address and address + size <= hot.start + hot.size:
            return True
        cursor = address
        end = address + size
        while cursor < end:
            region = self.region_at(cursor)
            if region is None:
                return False
            cursor = region.end
        return True

    # ------------------------------------------------------------------
    # Contents
    # ------------------------------------------------------------------
    def _check_mapped(self, address: int, size: int, kind: str) -> None:
        if self.is_mapped(address, size):
            return
        # Hardware reports the *faulting* address (x86's CR2): for an
        # access that starts in a mapped page and straddles into an
        # unmapped one, that is the first unmapped byte — not the access
        # start.  Guard-page detectors attribute reports from this
        # address, so a partial overlap must still point into the guard.
        fault = address
        end = address + size
        while fault < end:
            region = self.region_at(fault)
            if region is None:
                break
            fault = region.end
        raise SegmentationFault(fault, size, kind)

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def write_bytes(self, address: int, data: bytes) -> None:
        """Store ``data`` starting at ``address`` (must be fully mapped).

        Zero-length writes are no-ops, like ``memcpy(dst, src, 0)``.
        """
        if not data:
            return
        self._check_mapped(address, len(data), "write")
        offset = 0
        while offset < len(data):
            page_index = (address + offset) >> _PAGE_SHIFT
            in_page = (address + offset) & (PAGE_SIZE - 1)
            chunk = min(len(data) - offset, PAGE_SIZE - in_page)
            self._page(page_index)[in_page : in_page + chunk] = data[
                offset : offset + chunk
            ]
            offset += chunk

    def read_bytes(self, address: int, size: int) -> bytes:
        """Load ``size`` bytes starting at ``address`` (0 bytes: no-op)."""
        if size == 0:
            return b""
        self._check_mapped(address, size, "read")
        out = bytearray(size)
        offset = 0
        while offset < size:
            page_index = (address + offset) >> _PAGE_SHIFT
            in_page = (address + offset) & (PAGE_SIZE - 1)
            chunk = min(size - offset, PAGE_SIZE - in_page)
            page = self._pages.get(page_index)
            if page is not None:
                out[offset : offset + chunk] = page[in_page : in_page + chunk]
            offset += chunk
        return bytes(out)

    def write_word(self, address: int, value: int) -> None:
        """Store a 64-bit little-endian word."""
        # Fast path: the word lies inside the hot region and one page.
        if (
            self._hot_start <= address
            and address + 8 <= self._hot_end
            and (address & 4088) != 4088
        ):
            pages = self._pages
            page_index = address >> _PAGE_SHIFT
            page = pages.get(page_index)
            if page is None:
                page = pages[page_index] = bytearray(PAGE_SIZE)
            try:
                _PACK_WORD.pack_into(page, address & (PAGE_SIZE - 1), value)
                return
            except struct.error:
                # Out-of-range value: fall through and mask, as the
                # byte-level path always has.
                pass
        self.write_bytes(address, (value & _WORD_MASK).to_bytes(8, "little"))

    def read_word(self, address: int) -> int:
        """Load a 64-bit little-endian word."""
        if (
            self._hot_start <= address
            and address + 8 <= self._hot_end
            and (address & 4088) != 4088
        ):
            page = self._pages.get(address >> _PAGE_SHIFT)
            if page is None:
                return 0
            return _PACK_WORD.unpack_from(page, address & (PAGE_SIZE - 1))[0]
        return int.from_bytes(self.read_bytes(address, 8), "little")

    def write_words(self, address: int, values: Sequence[int]) -> None:
        """Store consecutive 64-bit little-endian words in one call.

        The fast path applies when the run lies inside the hot region
        and a single page: one ``struct.pack_into`` straight into the
        page ``bytearray``.  Byte-level contents are identical to the
        equivalent ``write_bytes`` call.
        """
        n = len(values)
        size = n * 8
        packer = _WORD_STRUCTS.get(n)
        if (
            packer is not None
            and self._hot_start <= address
            and address + size <= self._hot_end
            and (address & (PAGE_SIZE - 1)) <= PAGE_SIZE - size
        ):
            pages = self._pages
            page_index = address >> _PAGE_SHIFT
            page = pages.get(page_index)
            if page is None:
                page = pages[page_index] = bytearray(PAGE_SIZE)
            try:
                packer.pack_into(page, address & (PAGE_SIZE - 1), *values)
                return
            except struct.error:
                pass  # out-of-range value: mask on the byte-level path
        self.write_bytes(
            address, b"".join((v & _WORD_MASK).to_bytes(8, "little") for v in values)
        )

    def read_words(self, address: int, count: int) -> Tuple[int, ...]:
        """Load ``count`` consecutive 64-bit little-endian words."""
        size = count * 8
        packer = _WORD_STRUCTS.get(count)
        if (
            packer is not None
            and self._hot_start <= address
            and address + size <= self._hot_end
            and (address & (PAGE_SIZE - 1)) <= PAGE_SIZE - size
        ):
            page = self._pages.get(address >> _PAGE_SHIFT)
            if page is None:
                return (0,) * count
            return packer.unpack_from(page, address & (PAGE_SIZE - 1))
        raw = self.read_bytes(address, size)
        return tuple(
            int.from_bytes(raw[i : i + 8], "little") for i in range(0, size, 8)
        )

    def touched_pages(self) -> int:
        """Number of pages with materialized contents (footprint proxy)."""
        return len(self._pages)

    def __repr__(self) -> str:
        return (
            f"AddressSpace(regions={len(self._regions)}, "
            f"touched_pages={len(self._pages)})"
        )
