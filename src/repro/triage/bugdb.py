"""The persistent, cross-campaign bug database.

The fleet aggregator lives for one campaign; real triage needs memory.
This store keeps one entry per :class:`BugCluster` content address
across campaigns: when it was first and last seen, cumulative
occurrence counts, the member signatures observed so far, and — once
bisection has run — the stored minimal reproducer spec.

Status machine (driven purely by *update sequence numbers*, so it is
deterministic and clock-free):

* ``new``         — first campaign that observed the cluster;
* ``reproduced``  — observed again in the very next update;
* ``regressed``   — re-observed after one or more updates in which it
  was absent (it had gone quiet — a fix or a workload change — and is
  back).

Entries absent from an update keep their status; nothing is ever
deleted, matching how fleet crash databases accrete.

File conventions follow :class:`repro.fleet.evidence_store.EvidenceStore`:
a single JSON document ``{"version": 1, ...}``, rewritten atomically
(write-temp + ``os.replace``) and only when the content changed, with
sorted keys so byte-identical campaigns produce byte-identical files.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.triage.clustering import BugCluster

DB_VERSION = 1

STATUS_NEW = "new"
STATUS_REPRODUCED = "reproduced"
STATUS_REGRESSED = "regressed"


@dataclass
class BugEntry:
    """One bug's cross-campaign history."""

    cluster_id: str
    kind: str
    coarse_key: str
    status: str = STATUS_NEW
    first_seen_campaign: str = ""
    last_seen_campaign: str = ""
    first_seen_seq: int = 0  # 1-based update sequence numbers
    last_seen_seq: int = 0
    occurrences: int = 0  # cumulative raw report count
    executions: int = 0  # cumulative detecting executions
    campaigns_seen: int = 0
    signatures: Tuple[str, ...] = ()
    sources: Dict[str, int] = field(default_factory=dict)
    allocation_context: Tuple[str, ...] = ()
    access_context: Tuple[str, ...] = ()
    first_seen_spec: Dict[str, object] = field(default_factory=dict)
    repro: Optional[dict] = None  # MinimalRepro.to_dict(), once bisected
    # Detector arms that have caught this bug (sorted canonical names)
    # and the cheapest production-viable one among them — the arm a
    # deployment would keep enabled to still see this bug.
    detected_by: Tuple[str, ...] = ()
    cheapest_arm: str = ""

    def to_cluster(self) -> BugCluster:
        """Rebuild a rankable/exportable cluster from the stored entry.

        The member list collapses to one synthetic representative
        carrying the cumulative counts — enough for ranking and export
        when triaging straight from a persisted database.
        """
        from repro.fleet.aggregate import AggregatedReport

        spec = self.first_seen_spec
        representative = AggregatedReport(
            signature=self.signatures[0] if self.signatures else self.coarse_key,
            kind=self.kind,
            count=self.occurrences,
            executions=self.executions,
            first_seen=int(spec.get("index", -1)),
            first_seen_app=str(spec.get("app", "")),
            first_seen_seed=int(spec.get("seed", -1)),
            sources=dict(self.sources),
            allocation_context=self.allocation_context,
            access_context=self.access_context,
        )
        return BugCluster(
            cluster_id=self.cluster_id,
            kind=self.kind,
            coarse_key=self.coarse_key,
            members=[representative],
        )

    def to_dict(self) -> dict:
        payload = {
            "cluster_id": self.cluster_id,
            "kind": self.kind,
            "coarse_key": self.coarse_key,
            "status": self.status,
            "first_seen_campaign": self.first_seen_campaign,
            "last_seen_campaign": self.last_seen_campaign,
            "first_seen_seq": self.first_seen_seq,
            "last_seen_seq": self.last_seen_seq,
            "occurrences": self.occurrences,
            "executions": self.executions,
            "campaigns_seen": self.campaigns_seen,
            "signatures": list(self.signatures),
            "sources": dict(sorted(self.sources.items())),
            "allocation_context": list(self.allocation_context),
            "access_context": list(self.access_context),
            "first_seen_spec": dict(self.first_seen_spec),
        }
        if self.repro is not None:
            payload["repro"] = self.repro
        if self.detected_by:
            payload["detected_by"] = list(self.detected_by)
            payload["cheapest_arm"] = self.cheapest_arm
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "BugEntry":
        return cls(
            cluster_id=payload["cluster_id"],
            kind=payload.get("kind", ""),
            coarse_key=payload.get("coarse_key", ""),
            status=payload.get("status", STATUS_NEW),
            first_seen_campaign=payload.get("first_seen_campaign", ""),
            last_seen_campaign=payload.get("last_seen_campaign", ""),
            first_seen_seq=payload.get("first_seen_seq", 0),
            last_seen_seq=payload.get("last_seen_seq", 0),
            occurrences=payload.get("occurrences", 0),
            executions=payload.get("executions", 0),
            campaigns_seen=payload.get("campaigns_seen", 0),
            signatures=tuple(payload.get("signatures", ())),
            sources=dict(payload.get("sources", {})),
            allocation_context=tuple(payload.get("allocation_context", ())),
            access_context=tuple(payload.get("access_context", ())),
            first_seen_spec=dict(payload.get("first_seen_spec", {})),
            repro=payload.get("repro"),
            detected_by=tuple(payload.get("detected_by", ())),
            cheapest_arm=payload.get("cheapest_arm", ""),
        )


@dataclass
class TriageUpdate:
    """What one campaign's update did to the database."""

    campaign_id: str
    seq: int
    clusters: int = 0
    new: List[str] = field(default_factory=list)
    reproduced: List[str] = field(default_factory=list)
    regressed: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "seq": self.seq,
            "clusters": self.clusters,
            "new": list(self.new),
            "reproduced": list(self.reproduced),
            "regressed": list(self.regressed),
        }


class BugDatabase:
    """A file-backed map of cluster id -> :class:`BugEntry`."""

    def __init__(self, path: Optional[str] = None):
        """``path=None`` keeps the database purely in memory."""
        self.path = path
        self.campaigns = 0  # updates applied so far (the sequence clock)
        self.executions_total = 0  # cumulative ok executions observed
        self._entries: Dict[str, BugEntry] = {}
        # Serialises concurrent updates: a multi-tenant service can
        # finish two campaigns at once on different threads, and both
        # the sequence clock and the atomic file rewrite must see them
        # one at a time.
        self._lock = threading.Lock()
        # Live status listeners (see :meth:`subscribe`).
        self._listeners: List[Callable[[dict], None]] = []
        self._load()

    # ------------------------------------------------------------------
    # Live events
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[dict], None]) -> None:
        """Register a callback fired for every status change.

        The callback receives one dict per new/reproduced/regressed
        bug, emitted synchronously inside :meth:`update` **after** the
        entry is folded in but before ``update`` returns — the hook the
        campaign service uses to stream ``bug_new`` events to clients
        while the submitting job is still live.  Listener exceptions
        are swallowed: telemetry must never corrupt the database.
        """
        self._listeners.append(listener)

    def _emit(self, events: List[dict]) -> None:
        for event in events:
            for listener in self._listeners:
                try:
                    listener(event)
                except Exception:  # noqa: BLE001 — listeners are
                    # observability, not control flow.
                    pass

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, cluster_id: str) -> bool:
        return cluster_id in self._entries

    def get(self, cluster_id: str) -> Optional[BugEntry]:
        return self._entries.get(cluster_id)

    def entries(self) -> List[BugEntry]:
        """Every bug, most recently seen first (id as the tiebreak)."""
        return sorted(
            self._entries.values(),
            key=lambda e: (-e.last_seen_seq, -e.occurrences, e.cluster_id),
        )

    def campaigns_since_seen(self) -> Dict[str, int]:
        """Per-bug staleness, the ranking module's recency input."""
        return {
            entry.cluster_id: self.campaigns - entry.last_seen_seq
            for entry in self._entries.values()
        }

    def clusters(self) -> List[BugCluster]:
        """Every bug as a rankable cluster (see ``BugEntry.to_cluster``)."""
        return [entry.to_cluster() for entry in self.entries()]

    def to_dict(self) -> dict:
        return {
            "version": DB_VERSION,
            "campaigns": self.campaigns,
            "executions_total": self.executions_total,
            "bugs": [
                entry.to_dict()
                for entry in sorted(
                    self._entries.values(), key=lambda e: e.cluster_id
                )
            ],
        }

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def update(
        self,
        clusters: Iterable[BugCluster],
        campaign_id: Optional[str] = None,
        total_executions: int = 0,
    ) -> TriageUpdate:
        """Fold one campaign's clusters in; returns the status deltas.

        Thread-safe; subscribed listeners fire (outside the lock, in
        this thread) once the fold and flush are durable.
        """
        events: List[dict] = []
        with self._lock:
            seq = self.campaigns + 1
            self.executions_total += max(0, total_executions)
            campaign = campaign_id or f"campaign-{seq}"
            update = TriageUpdate(campaign_id=campaign, seq=seq)
            for cluster in sorted(clusters, key=lambda c: c.cluster_id):
                update.clusters += 1
                entry = self._entries.get(cluster.cluster_id)
                if entry is None:
                    entry = BugEntry(
                        cluster_id=cluster.cluster_id,
                        kind=cluster.kind,
                        coarse_key=cluster.coarse_key,
                        status=STATUS_NEW,
                        first_seen_campaign=campaign,
                        first_seen_seq=seq,
                        first_seen_spec=cluster.first_seen_spec(),
                        allocation_context=cluster.allocation_context,
                        access_context=cluster.access_context,
                    )
                    self._entries[cluster.cluster_id] = entry
                    update.new.append(cluster.cluster_id)
                elif entry.last_seen_seq == seq - 1:
                    entry.status = STATUS_REPRODUCED
                    update.reproduced.append(cluster.cluster_id)
                else:
                    entry.status = STATUS_REGRESSED
                    update.regressed.append(cluster.cluster_id)
                entry.last_seen_campaign = campaign
                entry.last_seen_seq = seq
                entry.campaigns_seen += 1
                entry.occurrences += cluster.count
                entry.executions += cluster.executions
                entry.signatures = tuple(
                    sorted(set(entry.signatures) | set(cluster.signatures))
                )
                for source, hits in cluster.sources.items():
                    entry.sources[source] = entry.sources.get(source, 0) + hits
                # Keep the deepest stacks seen so far.
                if len(cluster.allocation_context) > len(entry.allocation_context):
                    entry.allocation_context = cluster.allocation_context
                if len(cluster.access_context) > len(entry.access_context):
                    entry.access_context = cluster.access_context
                events.append(
                    {
                        "campaign_id": campaign,
                        "seq": seq,
                        "cluster_id": entry.cluster_id,
                        "status": entry.status,
                        "kind": entry.kind,
                        "occurrences": entry.occurrences,
                        "executions": entry.executions,
                        "campaigns_seen": entry.campaigns_seen,
                    }
                )
            self.campaigns = seq
            self._flush()
        self._emit(events)
        return update

    def attach_repro(self, cluster_id: str, repro: dict) -> None:
        """Store a bisected minimal reproducer on its bug."""
        with self._lock:
            entry = self._entries.get(cluster_id)
            if entry is None:
                raise KeyError(f"unknown cluster id {cluster_id!r}")
            entry.repro = dict(repro)
            self._flush()

    def record_detectors(self, cluster_id: str, arms: Iterable[str]) -> None:
        """Merge the arms that caught this bug; re-derive the cheapest.

        ``cheapest_arm`` is the production-viable arm (per the detector
        registry) with the lowest modeled overhead among everything
        that has ever detected the cluster — empty when only
        debug-grade tools (e.g. ASan) have seen it.
        """
        from repro.detectors import cheapest_production_arm, normalize

        with self._lock:
            entry = self._entries.get(cluster_id)
            if entry is None:
                raise KeyError(f"unknown cluster id {cluster_id!r}")
            merged = tuple(
                sorted(set(entry.detected_by) | {normalize(a) for a in arms})
            )
            if merged == entry.detected_by:
                return
            entry.detected_by = merged
            entry.cheapest_arm = cheapest_production_arm(merged)
            self._flush()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if self.path is None or not os.path.exists(self.path):
            return
        with open(self.path) as handle:
            payload = json.load(handle)
        version = payload.get("version")
        if version != DB_VERSION:
            raise ValueError(
                f"bug database {self.path} has version {version!r}; "
                f"this build reads version {DB_VERSION}"
            )
        self.campaigns = payload.get("campaigns", 0)
        self.executions_total = payload.get("executions_total", 0)
        for row in payload.get("bugs", []):
            entry = BugEntry.from_dict(row)
            self._entries[entry.cluster_id] = entry

    def _flush(self) -> None:
        if self.path is None:
            return
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, self.path)
