"""Severity/confidence ranking of bug clusters.

A fleet triage queue is only useful if the top of it is worth a
human's time, so every cluster gets a deterministic score built from
the facts the aggregator already collects:

* **severity** — over-writes corrupt memory and out-rank over-reads;
* **evidence quality** — a watchpoint trap carries the faulting
  statement and out-ranks after-the-fact canary evidence (free-canary
  beats exit-canary: it localises the corruption to one lifetime);
* **confidence** — the Wilson-interval *lower bound* on the
  per-execution detection rate, the same statistic the campaign
  protocol reports (a bug seen once in 1,000 executions scores well
  below one seen in half of them);
* **prevalence** — log-scaled raw occurrence count, so a 10,000-report
  gusher out-ranks a singleton without drowning everything else;
* **recency** — when ranking from the bug database, bugs seen in the
  latest campaign out-rank ones that have not re-occurred for several
  campaigns (geometric decay per missed campaign).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.reporting import (
    KIND_OVER_READ,
    KIND_OVER_WRITE,
    SOURCE_EXIT_CANARY,
    SOURCE_FREE_CANARY,
    SOURCE_WATCHPOINT,
)
from repro.experiments.campaign import wilson_interval
from repro.triage.clustering import BugCluster

KIND_SEVERITY: Dict[str, float] = {
    KIND_OVER_WRITE: 1.0,
    KIND_OVER_READ: 0.6,
}

SOURCE_QUALITY: Dict[str, float] = {
    SOURCE_WATCHPOINT: 1.0,
    SOURCE_FREE_CANARY: 0.7,
    SOURCE_EXIT_CANARY: 0.5,
}

# Score lost per campaign a known bug fails to re-occur.
RECENCY_DECAY = 0.8


@dataclass(frozen=True)
class RankedCluster:
    """A cluster with its score decomposition (all fields rounded)."""

    cluster: BugCluster
    score: float
    severity: float
    evidence_quality: float
    confidence: float  # Wilson lower bound on detection rate
    prevalence: float
    recency: float

    def to_dict(self) -> dict:
        return {
            "cluster_id": self.cluster.cluster_id,
            "score": self.score,
            "severity": self.severity,
            "evidence_quality": self.evidence_quality,
            "confidence": self.confidence,
            "prevalence": self.prevalence,
            "recency": self.recency,
        }


def evidence_quality(sources: Dict[str, int]) -> float:
    """The best evidence source any member report carried."""
    if not sources:
        return 0.0
    return max(SOURCE_QUALITY.get(source, 0.4) for source in sources)


def score_cluster(
    cluster: BugCluster,
    total_executions: int,
    campaigns_since_seen: int = 0,
) -> RankedCluster:
    """Deterministic score in (0, ~2]; higher is more urgent."""
    severity = KIND_SEVERITY.get(cluster.kind, 0.8)
    quality = evidence_quality(cluster.sources)
    trials = max(total_executions, 1)
    hits = min(cluster.executions, trials)
    lower, _ = wilson_interval(hits, trials)
    prevalence = math.log10(1 + cluster.count) / 4.0  # 10k reports -> ~1.0
    recency = RECENCY_DECAY ** max(0, campaigns_since_seen)
    score = severity * quality * (0.25 + lower + prevalence) * recency
    return RankedCluster(
        cluster=cluster,
        score=round(score, 6),
        severity=severity,
        evidence_quality=quality,
        confidence=round(lower, 6),
        prevalence=round(prevalence, 6),
        recency=round(recency, 6),
    )


def rank_clusters(
    clusters: Sequence[BugCluster],
    total_executions: int,
    campaigns_since_seen: Optional[Dict[str, int]] = None,
) -> List[RankedCluster]:
    """Score every cluster; highest score first, cluster id tiebreak.

    ``campaigns_since_seen`` maps cluster_id -> campaigns elapsed since
    the bug last re-occurred (0 = seen in the latest campaign); the bug
    database provides it when ranking a persisted corpus.
    """
    since = campaigns_since_seen or {}
    ranked = [
        score_cluster(
            cluster,
            total_executions,
            campaigns_since_seen=since.get(cluster.cluster_id, 0),
        )
        for cluster in clusters
    ]
    ranked.sort(key=lambda r: (-r.score, r.cluster.cluster_id))
    return ranked
