"""Triage corpus export: plain JSON and SARIF 2.1.0.

SARIF is the interchange format code-scanning UIs (GitHub code
scanning, VS Code SARIF viewer, Azure DevOps) ingest, so the triage
pipeline ends here: one ``run`` of the ``csod-triage`` driver, one
reporting rule per bug cluster, one result per cluster with the
allocation/access sites as physical locations parsed back out of the
``MODULE/file:line`` frame strings ``repro.callstack`` prints.

``validate_sarif`` is a structural validator for the subset of the
SARIF 2.1.0 schema this exporter (and the consumers above) rely on —
dependency-free, so CI can gate on it without installing a JSON-Schema
engine; when ``jsonschema`` and a schema file are available the full
check can be layered on top.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.triage.bugdb import BugDatabase
from repro.triage.clustering import BugCluster
from repro.triage.ranking import RankedCluster

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "csod-triage"
TOOL_INFO_URI = "https://github.com/csod-repro/csod-repro"

_LEVELS = ("none", "note", "warning", "error")

KIND_LEVEL = {
    "over-write": "error",  # memory corruption
    "over-read": "warning",  # information disclosure
}


def parse_frame(frame: str) -> Tuple[str, int]:
    """``MODULE/file.c:123`` -> (``MODULE/file.c``, 123).

    Frames without a parsable line (raw addresses from stripped
    modules) map to line 1 with the whole frame as the uri.
    """
    path, sep, line = frame.rpartition(":")
    if sep and line.isdigit():
        return path, max(1, int(line))
    return frame, 1


def _location(frame: str) -> dict:
    uri, line = parse_frame(frame)
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": uri},
            "region": {"startLine": line},
        }
    }


def _message(cluster: BugCluster) -> str:
    alloc = (
        cluster.allocation_context[0]
        if cluster.allocation_context
        else "(unknown allocation site)"
    )
    access = (
        f", accessed from {cluster.access_context[0]}"
        if cluster.access_context
        else " (canary evidence only)"
    )
    return (
        f"Heap buffer {cluster.kind} of an object allocated at {alloc}"
        f"{access}: {cluster.count} report(s) across "
        f"{cluster.executions} execution(s)."
    )


def triage_to_json(
    ranked: Sequence[RankedCluster],
    total_executions: int,
    db: Optional[BugDatabase] = None,
) -> dict:
    """The deterministic machine-readable triage summary."""
    statuses: Dict[str, str] = {}
    if db is not None:
        statuses = {
            entry.cluster_id: entry.status for entry in db.entries()
        }
    rows = []
    for item in ranked:
        row = item.cluster.to_dict()
        row["ranking"] = item.to_dict()
        status = statuses.get(item.cluster.cluster_id)
        if status is not None:
            row["status"] = status
        rows.append(row)
    return {
        "tool": TOOL_NAME,
        "total_executions": total_executions,
        "clusters": rows,
    }


def to_sarif(
    ranked: Sequence[RankedCluster],
    tool_version: str = "0.0.0",
    db: Optional[BugDatabase] = None,
) -> dict:
    """One SARIF 2.1.0 run over the ranked triage corpus."""
    rules = []
    results = []
    for index, item in enumerate(ranked):
        cluster = item.cluster
        level = KIND_LEVEL.get(cluster.kind, "warning")
        rules.append(
            {
                "id": cluster.cluster_id,
                "name": f"HeapBufferOverflow/{cluster.kind}",
                "shortDescription": {
                    "text": f"heap buffer {cluster.kind} ({cluster.coarse_key})"
                },
                "defaultConfiguration": {"level": level},
            }
        )
        frames = list(cluster.access_context) or list(
            cluster.allocation_context
        )
        properties: Dict[str, object] = {
            "score": item.score,
            "confidence": item.confidence,
            "occurrences": cluster.count,
            "executions": cluster.executions,
            "sources": dict(sorted(cluster.sources.items())),
            "signatures": list(cluster.signatures),
        }
        entry = db.get(cluster.cluster_id) if db is not None else None
        if entry is not None:
            properties["status"] = entry.status
            properties["firstSeenCampaign"] = entry.first_seen_campaign
            properties["lastSeenCampaign"] = entry.last_seen_campaign
            if entry.repro is not None:
                properties["minimalRepro"] = entry.repro
        results.append(
            {
                "ruleId": cluster.cluster_id,
                "ruleIndex": index,
                "level": level,
                "message": {"text": _message(cluster)},
                "locations": [_location(frame) for frame in frames[:1]]
                or [_location("(unknown)")],
                "relatedLocations": [
                    _location(frame)
                    for frame in cluster.allocation_context[:3]
                ],
                "partialFingerprints": {
                    "csodClusterId/v1": cluster.cluster_id
                },
                "properties": properties,
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": TOOL_INFO_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_triage_report(
    ranked: Sequence[RankedCluster],
    total_executions: int,
    db: Optional[BugDatabase] = None,
    title: str = "Triage",
) -> str:
    """The human-facing triage table, highest score first."""
    from repro.experiments.tables import render_table

    statuses: Dict[str, str] = {}
    if db is not None:
        statuses = {entry.cluster_id: entry.status for entry in db.entries()}
    rows = []
    for item in ranked:
        cluster = item.cluster
        lo, hi = cluster.rate_interval(total_executions)
        top_alloc = (
            cluster.allocation_context[0]
            if cluster.allocation_context
            else "?"
        )
        rows.append(
            [
                cluster.cluster_id[:12],
                statuses.get(cluster.cluster_id, "-"),
                cluster.kind,
                top_alloc,
                len(cluster.members),
                cluster.count,
                f"{item.score:.3f}",
                f"[{lo:.1%}, {hi:.1%}]",
            ]
        )
    return render_table(
        [
            "cluster",
            "status",
            "kind",
            "allocation site",
            "sigs",
            "reports",
            "score",
            "95% CI",
        ],
        rows,
        title=title,
    )


def validate_sarif(document: dict) -> List[str]:
    """Structural SARIF 2.1.0 validation; returns [] when valid.

    Checks every constraint the 2.1.0 schema places on the elements
    this exporter emits: the log envelope, the driver, rule/result
    cross-references, message texts, levels, locations, and
    fingerprints.
    """
    errors: List[str] = []

    def check(condition: bool, message: str) -> bool:
        if not condition:
            errors.append(message)
        return condition

    if not check(isinstance(document, dict), "document must be an object"):
        return errors
    check(
        document.get("version") == SARIF_VERSION,
        f"version must be {SARIF_VERSION!r}",
    )
    runs = document.get("runs")
    if not check(isinstance(runs, list) and runs, "runs must be a non-empty array"):
        return errors
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not check(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if check(
            isinstance(driver, dict), f"{where}.tool.driver is required"
        ):
            check(
                isinstance(driver.get("name"), str) and driver["name"],
                f"{where}.tool.driver.name must be a non-empty string",
            )
        rule_ids = []
        for rule_index, rule in enumerate(
            (driver or {}).get("rules", []) or []
        ):
            rwhere = f"{where}.rules[{rule_index}]"
            if check(isinstance(rule, dict), f"{rwhere} must be an object"):
                check(
                    isinstance(rule.get("id"), str) and rule["id"],
                    f"{rwhere}.id must be a non-empty string",
                )
                rule_ids.append(rule.get("id"))
        results = run.get("results")
        if not check(
            isinstance(results, list), f"{where}.results must be an array"
        ):
            continue
        for result_index, result in enumerate(results):
            rwhere = f"{where}.results[{result_index}]"
            if not check(
                isinstance(result, dict), f"{rwhere} must be an object"
            ):
                continue
            message = result.get("message")
            check(
                isinstance(message, dict)
                and isinstance(message.get("text"), str)
                and message["text"],
                f"{rwhere}.message.text must be a non-empty string",
            )
            level = result.get("level")
            if level is not None:
                check(
                    level in _LEVELS,
                    f"{rwhere}.level must be one of {_LEVELS}",
                )
            rule_id = result.get("ruleId")
            if rule_id is not None and rule_ids:
                check(
                    rule_id in rule_ids,
                    f"{rwhere}.ruleId {rule_id!r} not among driver rules",
                )
            rule_ref = result.get("ruleIndex")
            if rule_ref is not None:
                check(
                    isinstance(rule_ref, int)
                    and 0 <= rule_ref < len(rule_ids or results),
                    f"{rwhere}.ruleIndex out of range",
                )
            for loc_key in ("locations", "relatedLocations"):
                for loc_index, location in enumerate(
                    result.get(loc_key, []) or []
                ):
                    lwhere = f"{rwhere}.{loc_key}[{loc_index}]"
                    physical = (
                        location.get("physicalLocation")
                        if isinstance(location, dict)
                        else None
                    )
                    if not check(
                        isinstance(physical, dict),
                        f"{lwhere}.physicalLocation is required",
                    ):
                        continue
                    artifact = physical.get("artifactLocation")
                    check(
                        isinstance(artifact, dict)
                        and isinstance(artifact.get("uri"), str),
                        f"{lwhere}.artifactLocation.uri must be a string",
                    )
                    region = physical.get("region")
                    if region is not None:
                        check(
                            isinstance(region, dict)
                            and isinstance(region.get("startLine"), int)
                            and region["startLine"] >= 1,
                            f"{lwhere}.region.startLine must be an int >= 1",
                        )
            fingerprints = result.get("partialFingerprints")
            if fingerprints is not None:
                check(
                    isinstance(fingerprints, dict)
                    and all(
                        isinstance(k, str) and isinstance(v, str)
                        for k, v in fingerprints.items()
                    ),
                    f"{rwhere}.partialFingerprints must map strings to strings",
                )
    return errors
