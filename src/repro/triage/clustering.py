"""Similarity clustering of aggregated fleet reports.

The fleet aggregator deduplicates by *exact* signature, but one bug
routinely produces several signatures: a watchpoint trap carries the
faulting access stack while canary evidence carries none, and
input-driven jitter perturbs frames below the allocation wrapper.
GWP-ASan's triage pipeline solves this with stack-similarity grouping;
this module is that step for CSOD.

Two reports land in one :class:`BugCluster` when

1. their **coarse keys** match — same kind and same top-K symbolized
   allocation frames (:func:`repro.core.reporting.coarse_signature_of`,
   the same frame strings ``repro.callstack``'s ``CallSite.location()``
   prints), and
2. the **edit distance** between their full symbolized stacks
   (allocation tail beyond the prefix, plus access stack) is within a
   threshold — so two genuinely different overflow sites behind one
   allocation wrapper still separate.

Clustering is deterministic: reports are visited in sorted-signature
order and cluster ids are content addresses (a hash of the coarse key
plus the representative's access prefix), so identically-seeded
campaigns produce byte-identical cluster ids across runs — the property
the cross-campaign bug database keys on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.reporting import COARSE_SIGNATURE_FRAMES, coarse_signature_of
from repro.fleet.aggregate import AggregatedReport

DEFAULT_TOP_K = COARSE_SIGNATURE_FRAMES
DEFAULT_MAX_EDIT_DISTANCE = 3


def edit_distance(a: Sequence[str], b: Sequence[str]) -> int:
    """Levenshtein distance over frame sequences (not characters)."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, frame_a in enumerate(a, start=1):
        current = [i]
        for j, frame_b in enumerate(b, start=1):
            cost = 0 if frame_a == frame_b else 1
            current.append(
                min(
                    previous[j] + 1,  # delete
                    current[j - 1] + 1,  # insert
                    previous[j - 1] + cost,  # substitute
                )
            )
        previous = current
    return previous[-1]


def stack_distance(
    a: AggregatedReport, b: AggregatedReport, top_k: int
) -> int:
    """Distance between two reports' full symbolized stacks.

    The top-K allocation prefix is already known equal (same bucket),
    so only the allocation tail and the access stack can differ.
    Empty-versus-populated access stacks (canary versus watchpoint
    evidence for one bug) are free: absence of a faulting stack is a
    property of the evidence source, not of the bug.
    """
    distance = edit_distance(
        a.allocation_context[top_k:], b.allocation_context[top_k:]
    )
    if a.access_context and b.access_context:
        distance += edit_distance(a.access_context, b.access_context)
    return distance


@dataclass
class BugCluster:
    """One triaged bug: every aggregated report attributed to it."""

    cluster_id: str
    kind: str
    coarse_key: str  # the shared coarse signature
    members: List[AggregatedReport] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Merged views
    # ------------------------------------------------------------------
    @property
    def representative(self) -> AggregatedReport:
        """The lexicographically-least member: the cluster's exemplar."""
        return min(self.members, key=lambda m: m.signature)

    @property
    def count(self) -> int:
        return sum(member.count for member in self.members)

    @property
    def executions(self) -> int:
        """Upper bound on distinct detecting executions (sum of members)."""
        return sum(member.executions for member in self.members)

    @property
    def first_seen(self) -> int:
        return min(member.first_seen for member in self.members)

    @property
    def sources(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for member in self.members:
            for source, count in member.sources.items():
                merged[source] = merged.get(source, 0) + count
        return merged

    @property
    def signatures(self) -> Tuple[str, ...]:
        return tuple(sorted(member.signature for member in self.members))

    def first_seen_spec(self) -> dict:
        """The earliest member's originating ExecutionSpec identity."""
        earliest = min(
            self.members, key=lambda m: (m.first_seen, m.signature)
        )
        return earliest.first_seen_spec()

    @property
    def allocation_context(self) -> Tuple[str, ...]:
        """The deepest allocation stack any member carries."""
        return max(
            (member.allocation_context for member in self.members),
            key=len,
        )

    @property
    def access_context(self) -> Tuple[str, ...]:
        """The deepest access stack any member carries (may be empty)."""
        return max(
            (member.access_context for member in self.members),
            key=len,
        )

    def rate_interval(self, total_executions: int) -> Tuple[float, float]:
        """Wilson 95% CI on the per-execution detection rate."""
        from repro.experiments.campaign import wilson_interval

        executions = min(self.executions, max(total_executions, 1))
        return wilson_interval(executions, max(total_executions, 1))

    def to_dict(self) -> dict:
        """Deterministic JSON form (sorted members, no wall-clock)."""
        return {
            "cluster_id": self.cluster_id,
            "kind": self.kind,
            "coarse_key": self.coarse_key,
            "count": self.count,
            "executions": self.executions,
            "first_seen": self.first_seen,
            "first_seen_spec": self.first_seen_spec(),
            "sources": dict(sorted(self.sources.items())),
            "signatures": list(self.signatures),
            "allocation_context": list(self.allocation_context),
            "access_context": list(self.access_context),
        }


def _cluster_id(coarse_key: str, access_prefix: Tuple[str, ...]) -> str:
    """A short content address: stable across campaigns and processes."""
    payload = coarse_key + "||access:" + ">".join(access_prefix)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def coarse_key_of(report: AggregatedReport, top_k: int = DEFAULT_TOP_K) -> str:
    """The bucket key: kind + top-K symbolized allocation frames."""
    return coarse_signature_of(
        report.kind, report.allocation_context, top_k=top_k
    )


def cluster_reports(
    reports: Iterable[AggregatedReport],
    top_k: int = DEFAULT_TOP_K,
    max_edit_distance: int = DEFAULT_MAX_EDIT_DISTANCE,
) -> List[BugCluster]:
    """Group aggregated reports into per-bug clusters.

    Deterministic: input order never matters (reports are sorted by
    signature first), and the returned clusters are sorted by
    (-count, cluster_id) — most-seen bugs first, content address as the
    tiebreak.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if max_edit_distance < 0:
        raise ValueError(
            f"max_edit_distance must be >= 0, got {max_edit_distance}"
        )
    buckets: Dict[str, List[AggregatedReport]] = {}
    for report in sorted(reports, key=lambda r: r.signature):
        buckets.setdefault(coarse_key_of(report, top_k), []).append(report)

    clusters: List[BugCluster] = []
    for coarse_key in sorted(buckets):
        open_clusters: List[BugCluster] = []
        for report in buckets[coarse_key]:
            home = None
            for candidate in open_clusters:
                distance = stack_distance(
                    candidate.representative, report, top_k
                )
                if distance <= max_edit_distance:
                    home = candidate
                    break
            if home is None:
                home = BugCluster(
                    cluster_id="",  # assigned once membership settles
                    kind=report.kind,
                    coarse_key=coarse_key,
                )
                open_clusters.append(home)
            home.members.append(report)
        for cluster in open_clusters:
            cluster.cluster_id = _cluster_id(
                coarse_key,
                cluster.representative.access_context[:top_k],
            )
            clusters.append(cluster)
    clusters.sort(key=lambda c: (-c.count, c.cluster_id))
    return clusters


def matches_cluster(
    cluster: BugCluster,
    kind: str,
    allocation_context: Sequence[str],
    access_context: Sequence[str] = (),
    top_k: int = DEFAULT_TOP_K,
    max_edit_distance: int = DEFAULT_MAX_EDIT_DISTANCE,
) -> bool:
    """Would a fresh report with these stacks join ``cluster``?

    The re-execution check bisection uses: a candidate spec re-triggers
    a cluster iff one of its reports matches under the same coarse-key
    + edit-distance rule that built the cluster.
    """
    if coarse_signature_of(kind, allocation_context, top_k=top_k) != (
        cluster.coarse_key
    ):
        return False
    probe = AggregatedReport(
        signature="",
        kind=kind,
        allocation_context=tuple(str(f) for f in allocation_context),
        access_context=tuple(str(f) for f in access_context),
    )
    return (
        stack_distance(cluster.representative, probe, top_k)
        <= max_edit_distance
    )


def reports_from_aggregate(payload: dict) -> List[AggregatedReport]:
    """Rebuild AggregatedReports from a fleet ``aggregate.json`` dict."""
    reports = []
    for row in payload.get("reports", []):
        spec = row.get("first_seen_spec", {})
        reports.append(
            AggregatedReport(
                signature=row["signature"],
                kind=row["kind"],
                count=row.get("count", 0),
                executions=row.get("executions", 0),
                first_seen=row.get("first_seen", -1),
                first_seen_app=spec.get("app", ""),
                first_seen_seed=spec.get("seed", -1),
                sources=dict(row.get("sources", {})),
                allocation_context=tuple(row.get("allocation_context", ())),
                access_context=tuple(row.get("access_context", ())),
            )
        )
    return reports
