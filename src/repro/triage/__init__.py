"""Fleet-scale bug triage: clustering, ranking, bisection, persistence.

The downstream half of the GWP-ASan pipeline the fleet subsystem
feeds: :mod:`repro.triage.clustering` collapses jittered exact
signatures into one :class:`BugCluster` per bug,
:mod:`repro.triage.ranking` orders clusters by severity x evidence x
confidence, :mod:`repro.triage.bisect` shrinks a cluster's originating
:class:`~repro.fleet.specs.ExecutionSpec` to a minimal deterministic
reproducer, :mod:`repro.triage.bugdb` persists the corpus across
campaigns (new / reproduced / regressed), and
:mod:`repro.triage.export` emits JSON and SARIF 2.1.0 for standard
code-scanning UIs.  CLI: ``python -m repro triage``.
"""

from repro.triage.bisect import (
    Bisector,
    BisectionStep,
    MinimalRepro,
    bisect_cluster,
)
from repro.triage.bugdb import (
    STATUS_NEW,
    STATUS_REGRESSED,
    STATUS_REPRODUCED,
    BugDatabase,
    BugEntry,
    TriageUpdate,
)
from repro.triage.clustering import (
    BugCluster,
    cluster_reports,
    coarse_key_of,
    edit_distance,
    matches_cluster,
    reports_from_aggregate,
)
from repro.triage.export import (
    SARIF_VERSION,
    render_triage_report,
    to_sarif,
    triage_to_json,
    validate_sarif,
)
from repro.triage.ranking import (
    RankedCluster,
    rank_clusters,
    score_cluster,
)

__all__ = [
    "BisectionStep",
    "Bisector",
    "BugCluster",
    "BugDatabase",
    "BugEntry",
    "MinimalRepro",
    "RankedCluster",
    "SARIF_VERSION",
    "STATUS_NEW",
    "STATUS_REGRESSED",
    "STATUS_REPRODUCED",
    "TriageUpdate",
    "bisect_cluster",
    "cluster_reports",
    "coarse_key_of",
    "edit_distance",
    "matches_cluster",
    "rank_clusters",
    "render_triage_report",
    "reports_from_aggregate",
    "score_cluster",
    "to_sarif",
    "triage_to_json",
    "validate_sarif",
]
