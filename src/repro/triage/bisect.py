"""Minimal-reproducer bisection.

The convergence step between "the fleet saw this" and "a developer can
debug this": starting from a cluster's originating
:class:`ExecutionSpec` (recovered from the aggregator's first-seen spec
ids), shrink the execution until the smallest spec that still
*deterministically* re-triggers the cluster remains.  Three dimensions,
in order:

1. **Determinise** — replay the originating execution to harvest its
   evidence signatures, then pin the overflowing context by preloading
   that evidence (§IV-B: a known-bad context is sampled at 100%), so
   detection no longer depends on the sampling RNG.  If evidence alone
   is not enough, raise the global sampling rate toward 1.0.
2. **Drop unrelated evidence** — greedily remove preloaded signatures
   that the re-trigger does not need.
3. **Shrink the schedule** — halve the allocation-schedule scale while
   the cluster still re-triggers (structurally-invalid scales count as
   failures), then take back the last failed halving in one midpoint
   refinement step.

Every candidate is validated by *execution on the simulated machine*:
it must re-trigger the cluster (per the clustering module's own
matching rule) for ``seed_checks`` distinct seeds — seed-independence
is the determinism bar, strictly stronger than same-seed replay.  The
final spec is verified once more by re-execution before being declared
a minimal reproducer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.config import CSODConfig
from repro.errors import ReproError
from repro.fleet.pool import execute_spec
from repro.fleet.specs import ExecutionResult, ExecutionSpec
from repro.triage.clustering import (
    DEFAULT_MAX_EDIT_DISTANCE,
    DEFAULT_TOP_K,
    BugCluster,
    matches_cluster,
)
from repro.workloads.buggy.registry import EFFECTIVENESS_SCALE

# Sampling profile for the "raise the rate toward 1.0" fallback ladder.
HOT_SAMPLING_LADDER = (0.9, 1.0)

# Halvings attempted below the app's default scale.
MAX_SCALE_HALVINGS = 6


@dataclass(frozen=True)
class BisectionStep:
    """One probe of the search, for the audit trail."""

    stage: str  # reproduce / determinise / drop-evidence / shrink / verify
    description: str
    scale: Optional[float]
    evidence: int  # preloaded signature count
    triggered: bool

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "description": self.description,
            "scale": self.scale,
            "evidence": self.evidence,
            "triggered": self.triggered,
        }


@dataclass
class MinimalRepro:
    """The smallest spec found to deterministically re-trigger a cluster."""

    cluster_id: str
    app: str
    seed: int
    config: CSODConfig
    evidence: Tuple[str, ...] = ()
    scale: Optional[float] = None
    verified: bool = False
    # True when the spec re-triggers under *fresh* seeds, not only the
    # originating one — the stronger determinism claim.
    seed_independent: bool = False
    executions: int = 0  # simulated executions the search spent
    steps: Tuple[BisectionStep, ...] = ()

    def to_spec(self, index: int = 0) -> ExecutionSpec:
        """The reproducer as a fleet-executable spec."""
        return ExecutionSpec(
            app=self.app,
            seed=self.seed,
            index=index,
            config=self.config,
            evidence=self.evidence,
            scale=self.scale,
        )

    def to_dict(self) -> dict:
        """Deterministic JSON form, storable in the bug database."""
        return {
            "cluster_id": self.cluster_id,
            "app": self.app,
            "seed": self.seed,
            "config": _config_to_dict(self.config),
            "evidence": list(self.evidence),
            "scale": self.scale,
            "verified": self.verified,
            "seed_independent": self.seed_independent,
            "executions": self.executions,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MinimalRepro":
        return cls(
            cluster_id=payload["cluster_id"],
            app=payload["app"],
            seed=payload["seed"],
            config=CSODConfig(**payload.get("config", {})),
            evidence=tuple(payload.get("evidence", ())),
            scale=payload.get("scale"),
            verified=payload.get("verified", False),
            seed_independent=payload.get("seed_independent", False),
            executions=payload.get("executions", 0),
            steps=tuple(
                BisectionStep(**step) for step in payload.get("steps", ())
            ),
        )


def _config_to_dict(config: CSODConfig) -> dict:
    """Only the init fields, so ``CSODConfig(**d)`` round-trips."""
    return {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(config)
        if f.init
    }


class Bisector:
    """Runs the shrink loop for one cluster."""

    def __init__(
        self,
        cluster: BugCluster,
        config: Optional[CSODConfig] = None,
        seed_checks: int = 2,
        top_k: int = DEFAULT_TOP_K,
        max_edit_distance: int = DEFAULT_MAX_EDIT_DISTANCE,
    ):
        if seed_checks < 1:
            raise ValueError(f"seed_checks must be >= 1, got {seed_checks}")
        self.cluster = cluster
        self.config = config or CSODConfig()
        self.seed_checks = seed_checks
        self.top_k = top_k
        self.max_edit_distance = max_edit_distance
        self.steps: List[BisectionStep] = []
        self.executions = 0
        origin = cluster.first_seen_spec()
        self.app: str = origin["app"]
        self.seed: int = origin["seed"]
        if not self.app:
            raise ReproError(
                f"cluster {cluster.cluster_id} carries no first-seen spec; "
                "re-aggregate with a fleet version that records spec ids"
            )

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def _run(self, spec: ExecutionSpec) -> Optional[ExecutionResult]:
        """One simulated execution; None when the spec is unbuildable."""
        self.executions += 1
        try:
            return execute_spec(spec)
        except Exception:  # noqa: BLE001 — e.g. a scale too small for the
            # app's structure; the candidate simply fails.
            return None

    def _retriggers(self, result: Optional[ExecutionResult]) -> bool:
        if result is None or not result.ok:
            return False
        return any(
            matches_cluster(
                self.cluster,
                record.kind,
                record.allocation_context,
                record.access_context,
                top_k=self.top_k,
                max_edit_distance=self.max_edit_distance,
            )
            for record in result.reports
        )

    def _deterministic(
        self,
        config: CSODConfig,
        evidence: Tuple[str, ...],
        scale: Optional[float],
        stage: str,
        description: str,
    ) -> bool:
        """Candidate accepted only if every probed seed re-triggers.

        Seeds are fresh (offset from the originating one), so passing
        means the repro does not lean on one lucky RNG stream.
        """
        triggered = True
        for attempt in range(self.seed_checks):
            spec = ExecutionSpec(
                app=self.app,
                seed=self.seed + attempt * 7919,  # distinct RNG streams
                index=0,
                config=config,
                evidence=evidence,
                scale=scale,
            )
            if not self._retriggers(self._run(spec)):
                triggered = False
                break
        self.steps.append(
            BisectionStep(
                stage=stage,
                description=description,
                scale=scale,
                evidence=len(evidence),
                triggered=triggered,
            )
        )
        return triggered

    # ------------------------------------------------------------------
    # The search
    # ------------------------------------------------------------------
    def run(self) -> MinimalRepro:
        # 1. Replay the originating execution: deterministic by
        #    construction, and the source of the evidence signatures.
        origin_spec = ExecutionSpec(
            app=self.app, seed=self.seed, index=0, config=self.config
        )
        origin = self._run(origin_spec)
        replayed = self._retriggers(origin)
        self.steps.append(
            BisectionStep(
                stage="reproduce",
                description=f"replay originating spec seed={self.seed}",
                scale=None,
                evidence=0,
                triggered=replayed,
            )
        )
        if not replayed:
            return self._give_up()
        harvest = tuple(origin.new_evidence)

        # 2. Determinise: evidence pinning first, hot sampling fallback.
        config, evidence = self._determinise(harvest)
        if config is None:
            # Not seed-independent; the replay itself is still a
            # deterministic reproducer (same seed, same outcome).
            return self._finish(
                self.config, (), None, seed_independent=False
            )

        # 3. Drop unrelated evidence, one signature at a time.
        evidence = self._shrink_evidence(config, evidence)

        # 4. Shrink the allocation schedule.
        scale = self._shrink_scale(config, evidence)

        return self._finish(config, evidence, scale, seed_independent=True)

    def _determinise(self, harvest: Tuple[str, ...]):
        if harvest and self._deterministic(
            self.config,
            harvest,
            None,
            "determinise",
            f"pin {len(harvest)} evidence signature(s) (§IV-B)",
        ):
            return self.config, harvest
        for rate in HOT_SAMPLING_LADDER:
            hot = dataclasses.replace(
                self.config,
                initial_probability=rate,
                degradation_per_alloc=0.0,
                watch_degradation_factor=1.0,
            )
            if self._deterministic(
                hot,
                harvest,
                None,
                "determinise",
                f"raise sampling rate to {rate:.0%}",
            ):
                return hot, harvest
        return None, ()

    def _shrink_evidence(
        self, config: CSODConfig, evidence: Tuple[str, ...]
    ) -> Tuple[str, ...]:
        kept = list(evidence)
        for signature in list(kept):
            if len(kept) <= 1:
                break
            candidate = tuple(s for s in kept if s != signature)
            if self._deterministic(
                config,
                candidate,
                None,
                "drop-evidence",
                f"drop {signature.split('|', 1)[0]}",
            ):
                kept = list(candidate)
        # An empty evidence tuple means "none preloaded"; only worth
        # probing when one signature is left and may be unnecessary.
        if kept and self._deterministic(
            config, (), None, "drop-evidence", "drop all evidence"
        ):
            kept = []
        return tuple(kept)

    def _shrink_scale(
        self, config: CSODConfig, evidence: Tuple[str, ...]
    ) -> Optional[float]:
        base = EFFECTIVENESS_SCALE.get(self.app, 1.0)
        best: Optional[float] = None  # None = the app's default scale
        lo_fail: Optional[float] = None
        scale = base
        for _ in range(MAX_SCALE_HALVINGS):
            scale = round(scale / 2.0, 6)
            if scale <= 0.0:
                break
            if self._deterministic(
                config, evidence, scale, "shrink", f"halve schedule to {scale}"
            ):
                best = scale
            else:
                lo_fail = scale
                break
        if best is not None and lo_fail is not None:
            midpoint = round((best + lo_fail) / 2.0, 6)
            if midpoint not in (best, lo_fail) and self._deterministic(
                config,
                evidence,
                midpoint,
                "shrink",
                f"refine midpoint {midpoint}",
            ):
                best = midpoint
        return best

    # ------------------------------------------------------------------
    # Terminal states
    # ------------------------------------------------------------------
    def _finish(
        self,
        config: CSODConfig,
        evidence: Tuple[str, ...],
        scale: Optional[float],
        seed_independent: bool,
    ) -> MinimalRepro:
        repro = MinimalRepro(
            cluster_id=self.cluster.cluster_id,
            app=self.app,
            seed=self.seed,
            config=config,
            evidence=evidence,
            scale=scale,
            seed_independent=seed_independent,
            executions=self.executions,
            steps=tuple(self.steps),
        )
        # Final re-execution: the spec as stored must re-trigger.
        verified = self._retriggers(self._run(repro.to_spec()))
        self.steps.append(
            BisectionStep(
                stage="verify",
                description="re-execute the minimal spec",
                scale=scale,
                evidence=len(evidence),
                triggered=verified,
            )
        )
        repro.verified = verified
        repro.executions = self.executions
        repro.steps = tuple(self.steps)
        return repro

    def _give_up(self) -> MinimalRepro:
        return MinimalRepro(
            cluster_id=self.cluster.cluster_id,
            app=self.app,
            seed=self.seed,
            config=self.config,
            verified=False,
            seed_independent=False,
            executions=self.executions,
            steps=tuple(self.steps),
        )


def bisect_cluster(
    cluster: BugCluster,
    config: Optional[CSODConfig] = None,
    seed_checks: int = 2,
    top_k: int = DEFAULT_TOP_K,
    max_edit_distance: int = DEFAULT_MAX_EDIT_DISTANCE,
) -> MinimalRepro:
    """Find the smallest spec that deterministically re-triggers
    ``cluster``; see the module docstring for the search order."""
    return Bisector(
        cluster,
        config=config,
        seed_checks=seed_checks,
        top_k=top_k,
        max_edit_distance=max_edit_distance,
    ).run()
