"""Symbolization — the ``addr2line`` analogue.

CSOD's reports print ``module/file:line`` for every level of both calling
contexts when symbols are available, and raw addresses otherwise
(§III-D2).  The :class:`SymbolTable` indexes every
:class:`~repro.callstack.frames.CallSite` ever created in a workload and
renders either form; per-module stripping models binaries whose symbol
information was removed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.callstack.frames import CallSite


class SymbolTable:
    """Return-address -> source-location mapping with stripping support."""

    def __init__(self, sites: Iterable[CallSite] = ()):
        self._by_address: Dict[int, CallSite] = {}
        self._stripped_modules: Set[str] = set()
        for site in sites:
            self.add(site)

    def add(self, site: CallSite) -> None:
        """Index one call site (idempotent for the same site)."""
        existing = self._by_address.get(site.return_address)
        if existing is not None and existing is not site:
            raise ValueError(
                f"return address {site.return_address:#x} already mapped to "
                f"{existing.location()}"
            )
        self._by_address[site.return_address] = site

    def add_all(self, sites: Iterable[CallSite]) -> None:
        for site in sites:
            self.add(site)

    def strip_module(self, module: str) -> None:
        """Mark a module's symbols as stripped; its frames print as hex."""
        self._stripped_modules.add(module)

    def site_for(self, return_address: int) -> Optional[CallSite]:
        return self._by_address.get(return_address)

    def addr2line(self, return_address: int) -> str:
        """Render one address the way CSOD's report generator does."""
        site = self._by_address.get(return_address)
        if site is None or site.module in self._stripped_modules:
            return f"{return_address:#x}"
        return site.location()

    def symbolize(self, return_addresses: Iterable[int]) -> list:
        """Render a whole context (innermost first)."""
        return [self.addr2line(ra) for ra in return_addresses]

    def __len__(self) -> int:
        return len(self._by_address)
