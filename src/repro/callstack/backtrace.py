"""Cheap vs. expensive stack walking.

The paper's performance argument for context keying (§III-A1) rests on a
cost asymmetry: ``__builtin_return_address`` is a register read, while
``backtrace(3)`` unwinds every frame.  The :class:`Backtracer` exposes
both operations over a simulated :class:`~repro.callstack.frames.CallStack`
and charges the ledger accordingly, so ablations that always take the
full backtrace show the cost the paper avoided.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.callstack.frames import CallStack, Frame
from repro.machine.syscall_cost import CostLedger, EVENT_BACKTRACE_FULL

# Calibrated unit costs (ns).  A full unwind costs per-frame work plus a
# fixed setup; the one-level peek is a couple of loads.
PEEK_COST_NS = 10
FULL_UNWIND_BASE_NS = 350
FULL_UNWIND_PER_FRAME_NS = 60


class Backtracer:
    """Walks simulated call stacks with realistic relative costs."""

    def __init__(self, ledger: Optional[CostLedger] = None):
        self._ledger = ledger or CostLedger()

    def peek_caller(self, stack: CallStack, level: int = 0) -> Optional[Frame]:
        """The ``__builtin_return_address(level)`` analogue (cheap)."""
        self._ledger.record("callstack.peek", nanos_each=PEEK_COST_NS)
        return stack.caller(level)

    def full_backtrace(self, stack: CallStack) -> Tuple[int, ...]:
        """The ``backtrace(3)`` analogue: every return address (expensive)."""
        cost = FULL_UNWIND_BASE_NS + FULL_UNWIND_PER_FRAME_NS * stack.depth
        self._ledger.record(EVENT_BACKTRACE_FULL, nanos_each=cost)
        return stack.return_addresses()

    def full_frames(self, stack: CallStack) -> Tuple[Frame, ...]:
        """Full backtrace keeping frame objects (for report rendering)."""
        cost = FULL_UNWIND_BASE_NS + FULL_UNWIND_PER_FRAME_NS * stack.depth
        self._ledger.record(EVENT_BACKTRACE_FULL, nanos_each=cost)
        return stack.frames_innermost_first()
