"""Calling contexts, context keys, and the interning table.

A :class:`CallingContext` is the full chain of return addresses above an
allocation — what CSOD reports to the user.  A :class:`ContextKey` is the
cheap identifier the runtime uses on the hot path: the first-level return
address above the allocator combined with the stack offset (§III-A1).

The :class:`ContextInterner` reproduces the paper's hash-table behaviour,
including its documented imprecision: two genuinely different contexts
that collide on the cheap key are *treated as the same context* for
sampling purposes, which can skew probabilities and mis-attribute the
allocation site in a report, but never causes a false alarm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.callstack.backtrace import Backtracer
from repro.callstack.frames import CallStack, Frame


@dataclass(frozen=True, slots=True)
class ContextKey:
    """(first-level return address, stack offset) — the cheap identifier."""

    first_level_ra: int
    stack_offset: int

    def __str__(self) -> str:
        return f"key(ra={self.first_level_ra:#x}, sp_off={self.stack_offset})"


@dataclass(frozen=True, slots=True)
class CallingContext:
    """A full allocation calling context (innermost first)."""

    return_addresses: Tuple[int, ...]
    frames: Tuple[Frame, ...] = ()

    @property
    def depth(self) -> int:
        return len(self.return_addresses)

    def __str__(self) -> str:
        if self.frames:
            return " <- ".join(str(f) for f in self.frames)
        return " <- ".join(hex(ra) for ra in self.return_addresses)


class ContextInterner:
    """Maps cheap keys to interned full contexts.

    ``intern(stack)`` computes the cheap key; on a miss it pays for one
    full backtrace and stores the result.  On a hit it returns the stored
    context *without* re-walking the stack — so a key collision silently
    aliases contexts, faithfully reproducing the trade-off the paper
    accepts.
    """

    def __init__(self, backtracer: Optional[Backtracer] = None):
        self._backtracer = backtracer or Backtracer()
        self._table: Dict[ContextKey, CallingContext] = {}
        self.misses = 0
        self.hits = 0
        self.collisions_possible = 0  # diagnostic: hits whose stored depth
        # differs from the live stack depth (a cheap collision heuristic)

    def key_for(self, stack: CallStack) -> ContextKey:
        """Compute the cheap key from the live stack (hot-path cost only)."""
        caller = self._backtracer.peek_caller(stack, level=0)
        first_ra = caller.return_address if caller else 0
        return ContextKey(first_level_ra=first_ra, stack_offset=stack.stack_offset)

    def charge_peek(self, stack: CallStack) -> Optional[Frame]:
        """One charged return-address peek, leaving key assembly to the caller.

        The sampling unit's hot path derives the cheap key components from
        the returned frame without constructing a :class:`ContextKey` when
        its thread-local cache will answer anyway; the simulated peek cost
        is identical to :meth:`key_for`.
        """
        return self._backtracer.peek_caller(stack, level=0)

    def intern(self, stack: CallStack) -> Tuple[ContextKey, CallingContext]:
        """Return (key, context) for the live stack, interning on miss."""
        key = self.key_for(stack)
        return key, self.intern_keyed(key, stack)

    def intern_keyed(self, key: ContextKey, stack: CallStack) -> CallingContext:
        """Intern against a key the caller already computed.

        Lets the sampling unit's hot path compute the cheap key once and
        reuse it for both its thread-local cache probe and the intern.
        """
        context = self._table.get(key)
        if context is None:
            self.misses += 1
            frames = self._backtracer.full_frames(stack)
            context = CallingContext(
                return_addresses=tuple(f.return_address for f in frames),
                frames=frames,
            )
            self._table[key] = context
        else:
            self.note_hit(context, stack)
        return context

    def note_hit(self, context: CallingContext, stack: CallStack) -> None:
        """Book a hit (also used when a cache above this table hits)."""
        self.hits += 1
        if context.depth != stack.depth:
            self.collisions_possible += 1

    def lookup(self, key: ContextKey) -> Optional[CallingContext]:
        return self._table.get(key)

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: ContextKey) -> bool:
        return key in self._table
