"""Calling-context substrate.

CSOD's central data structure is the *allocation calling context*.  This
package models program call stacks explicitly so the runtime can
reproduce the paper's two-tier strategy (§III-A1):

* a **cheap key** — the first-level return address above the allocator
  plus the current stack offset (``__builtin_return_address`` analogue),
  computed on every allocation; and
* an **expensive full backtrace** — taken only on the first miss for a
  key, exactly like the paper's use of ``backtrace(3)``.

:mod:`repro.callstack.symbols` provides the ``addr2line`` analogue used
by the report generator.
"""

from repro.callstack.backtrace import Backtracer
from repro.callstack.contexts import (
    CallingContext,
    ContextKey,
    ContextInterner,
)
from repro.callstack.frames import CallSite, CallStack, Frame
from repro.callstack.symbols import SymbolTable

__all__ = [
    "Backtracer",
    "CallingContext",
    "ContextKey",
    "ContextInterner",
    "CallSite",
    "CallStack",
    "Frame",
    "SymbolTable",
]
