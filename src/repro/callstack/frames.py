"""Call sites, stack frames, and per-thread call stacks.

A :class:`CallSite` is a static program location (module, file, line,
function) with a synthetic return address and frame size.  Workloads are
built from call sites; pushing one onto a :class:`CallStack` creates a
dynamic :class:`Frame`.  The stack tracks the running *stack offset* —
the sum of active frame sizes — because CSOD keys contexts on
(first-level return address, stack offset), and two different paths into
the same allocation wrapper usually differ in that offset.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import ReproError

# Synthetic code addresses start here; each call site gets a distinct one.
_TEXT_BASE = 0x40_0000
_SITE_STRIDE = 0x20

_site_counter = itertools.count()


def _next_return_address() -> int:
    return _TEXT_BASE + next(_site_counter) * _SITE_STRIDE


@dataclass(frozen=True, slots=True)
class CallSite:
    """A static call site in a (simulated) binary or library."""

    module: str
    file: str
    line: int
    function: str
    frame_size: int = 48
    return_address: int = field(default_factory=_next_return_address)

    def __post_init__(self):
        if self.frame_size <= 0:
            raise ReproError(f"frame size must be positive, got {self.frame_size}")
        if self.line < 0:
            raise ReproError(f"line number cannot be negative, got {self.line}")

    def location(self) -> str:
        """``module/file:line`` — the shape of the paper's Fig. 6 lines."""
        return f"{self.module}/{self.file}:{self.line}"

    def __str__(self) -> str:
        return self.location()


@dataclass(frozen=True, slots=True)
class Frame:
    """A dynamic activation of a call site."""

    site: CallSite

    @property
    def return_address(self) -> int:
        return self.site.return_address

    def __str__(self) -> str:
        return self.site.location()


class CallStack:
    """A thread's stack of active frames, innermost last."""

    __slots__ = ("_frames", "_offset")

    def __init__(self):
        self._frames: List[Frame] = []
        self._offset = 0

    # ------------------------------------------------------------------
    # Push/pop
    # ------------------------------------------------------------------
    def push(self, site: CallSite) -> Frame:
        frame = Frame(site)
        self._frames.append(frame)
        self._offset += site.frame_size
        return frame

    def pop(self) -> Frame:
        if not self._frames:
            raise ReproError("pop from an empty call stack")
        frame = self._frames.pop()
        self._offset -= frame.site.frame_size
        return frame

    def calling(self, site: CallSite) -> "_FrameGuard":
        """Context manager that pushes ``site`` for the ``with`` body."""
        return _FrameGuard(self, site)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._frames)

    @property
    def stack_offset(self) -> int:
        """Current stack-pointer offset from the stack base."""
        return self._offset

    def top(self) -> Optional[Frame]:
        return self._frames[-1] if self._frames else None

    def caller(self, level: int = 0) -> Optional[Frame]:
        """Frame ``level`` levels above the top (0 = top itself).

        This is the ``__builtin_return_address(level)`` analogue: cheap,
        and usable without unwinding the whole stack.
        """
        index = len(self._frames) - 1 - level
        if index < 0:
            return None
        return self._frames[index]

    def frames_innermost_first(self) -> Tuple[Frame, ...]:
        """All frames, innermost first (the order backtrace(3) reports)."""
        return tuple(reversed(self._frames))

    def return_addresses(self) -> Tuple[int, ...]:
        """Return addresses, innermost first."""
        return tuple(f.return_address for f in reversed(self._frames))

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames)

    def __len__(self) -> int:
        return len(self._frames)

    def __repr__(self) -> str:
        top = self.top()
        where = str(top) if top else "<empty>"
        return f"CallStack(depth={self.depth}, top={where})"


class _FrameGuard:
    """``with stack.calling(site):`` pushes/pops around the body."""

    __slots__ = ("_stack", "_site")

    def __init__(self, stack: CallStack, site: CallSite):
        self._stack = stack
        self._site = site

    def __enter__(self) -> Frame:
        return self._stack.push(self._site)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stack.pop()
