"""The seeded ground-truth workload generator.

A generated program is fully determined by three integers-worth of
genome: the campaign seed, the program index, and the defect class.
Everything else — allocation counts, contexts, churn, thread
interleaving, whether the buggy code lives in an uninstrumented shared
library, the exact bytes the injected access touches — is drawn from a
``random.Random`` seeded with that genome, so the *name*
``oracle:s<seed>:i<index>:<defect>`` is a complete description of the
program.  That property is load-bearing: fleet worker processes and the
triage bisector resolve apps by name through
:func:`repro.workloads.buggy.registry.app_for`, and a generated app
must rebuild byte-identically wherever the name travels.

The program body is a :class:`~repro.workloads.base.SyntheticBuggyApp`
schedule; the only behavioural extension is the use-after-free defect,
which frees the victim immediately before the injected access via the
base class's ``_pre_access`` hook.  Size-relative defect geometry
(underflow/UAF/benign offsets depend on the victim's size) is resolved
*after* the schedule — and after any bisection scale — is fixed, so a
shrunk oracle app still injects the same class of defect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.errors import WorkloadError
from repro.oracle.grammar import (
    ALL_DEFECTS,
    DEFECT_BENIGN,
    DEFECT_CROSS_THREAD_UAF,
    DEFECT_DOUBLE_FREE,
    DEFECT_OFF_BY_N,
    DEFECT_OVER_READ,
    DEFECT_OVER_WRITE,
    DEFECT_REALLOC_SHRINK,
    DEFECT_UAF,
    DEFECT_UNDERFLOW,
    GroundTruth,
    expectations,
)
from repro.workloads.base import (
    BuggyAppSpec,
    SyntheticBuggyApp,
    build_schedule,
)

ORACLE_PREFIX = "oracle:"

_DEFECT_IDS: Dict[str, int] = {d: i for i, d in enumerate(ALL_DEFECTS)}


@dataclass(frozen=True)
class OracleAppSpec(BuggyAppSpec):
    """A buggy-app spec with the oracle's extra defect dimensions."""

    # Free the victim right before the injected access (use-after-free).
    free_before_access: bool = False
    # Free the victim twice back to back (double-free); the "access"
    # is the second free, so overflow_length is 0 and no load/store is
    # injected.
    double_free: bool = False
    # Realloc the victim down to this size right before the access
    # (0 disables); the access then runs past the post-shrink end.
    realloc_shrink_to: int = 0
    # The *allocating* (main) thread frees the victim while the worker
    # thread performs the access (cross-thread-uaf).  Implies
    # free_before_access and overflow_from_worker.
    cross_thread_free: bool = False
    # The injected defect class (grammar.ALL_DEFECTS).
    defect: str = ""


class OracleApp(SyntheticBuggyApp):
    """A generated program; adds the free-before-access defect."""

    spec: OracleAppSpec

    def _pre_access(self, process, thread, heap, addresses, live) -> None:
        spec = self.spec
        victim = next(
            (i for i, event in live.items() if event.is_victim), None
        )
        if victim is None:
            return
        if spec.realloc_shrink_to:
            # The realloc runs under the victim's own context chain: a
            # baseline arm's out-of-place realloc allocates the moved
            # object *here*, so its allocation context still carries
            # the victim marker the judge attributes by.
            chain = self.sites()[0]
            guards = [thread.call_stack.calling(site) for site in chain]
            for guard in guards:
                guard.__enter__()
            try:
                new_address = heap.realloc(
                    thread, addresses[victim], spec.realloc_shrink_to
                )
            finally:
                for guard in reversed(guards):
                    guard.__exit__(None, None, None)
            addresses[victim] = new_address
            self._victim_override = (new_address, spec.realloc_shrink_to)
            return
        if spec.cross_thread_free:
            # The dereferencing thread (``thread`` here: the worker)
            # touches the allocator first, so its own RNG stream and
            # one-entry key cache are live for the victim's context...
            chain = self.sites()[0]
            guards = [thread.call_stack.calling(site) for site in chain]
            for guard in guards:
                guard.__enter__()
            try:
                scratch = heap.malloc(thread, 32)
            finally:
                for guard in reversed(guards):
                    guard.__exit__(None, None, None)
            heap.free(thread, scratch)
            # ...while the *allocating* (main) thread frees the victim.
            heap.free(process.main_thread, addresses[victim])
            del live[victim]
            return
        if not (spec.free_before_access or spec.double_free):
            return
        heap.free(thread, addresses[victim])
        del live[victim]
        if spec.double_free:
            # The defect itself: free the same pointer again.  Arms
            # that can't diagnose it see the allocator abort instead.
            heap.free(thread, addresses[victim])


@dataclass
class OracleProgram:
    """One generated program plus its manifest."""

    name: str
    spec: OracleAppSpec
    truth: GroundTruth
    # Base RNG seed for this program's executions; execution k of the
    # differential harness runs with seed ``base_seed + k``.
    base_seed: int

    def app(self) -> OracleApp:
        """The runnable app (shared cache via the buggy registry)."""
        from repro.workloads.buggy.registry import app_for

        return app_for(self.name)


# ----------------------------------------------------------------------
# Name codec
# ----------------------------------------------------------------------
def encode_name(seed: int, index: int, defect: str) -> str:
    return f"{ORACLE_PREFIX}s{seed}:i{index}:{defect}"


def is_oracle_name(name: str) -> bool:
    return name.startswith(ORACLE_PREFIX)


def parse_name(name: str) -> Tuple[int, int, str]:
    """``oracle:s<seed>:i<index>:<defect>`` -> (seed, index, defect)."""
    parts = name.split(":")
    if (
        len(parts) != 4
        or parts[0] + ":" != ORACLE_PREFIX
        or not parts[1].startswith("s")
        or not parts[2].startswith("i")
    ):
        raise WorkloadError(
            f"malformed oracle app name {name!r}; expected "
            f"'{ORACLE_PREFIX}s<seed>:i<index>:<defect>'"
        )
    try:
        seed = int(parts[1][1:])
        index = int(parts[2][1:])
    except ValueError:
        raise WorkloadError(
            f"malformed oracle app name {name!r}: seed/index must be ints"
        ) from None
    defect = parts[3]
    if defect not in ALL_DEFECTS:
        raise WorkloadError(
            f"unknown oracle defect {defect!r} in {name!r}; "
            f"expected one of {list(ALL_DEFECTS)}"
        )
    if seed < 0 or index < 0:
        raise WorkloadError(
            f"oracle app name {name!r}: seed and index must be >= 0"
        )
    return seed, index, defect


def _genome_seed(seed: int, index: int, defect: str) -> int:
    # Plain integer arithmetic: stable across processes and Python
    # versions (never hash(), which is salted for strings).
    return (seed * 1_000_003 + index * 7_919 + _DEFECT_IDS[defect]) & (
        2**63 - 1
    )


# ----------------------------------------------------------------------
# Genome -> program
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _DefectParams:
    """Size-independent defect draw (fixed before any scaling)."""

    access_kind: str  # read / write
    access_length: int
    in_library: bool


def _draw_structure(
    rng: random.Random, name: str, vuln_module: str, defect: str
) -> OracleAppSpec:
    """Draw the grammar's structural dimensions (fixed draw order)."""
    total_contexts = rng.randint(3, 7)
    before_contexts = rng.randint(2, total_contexts)
    total_allocations = rng.randint(24, 72)
    before_lo = before_contexts + 6
    before_hi = max(before_lo, (total_allocations * 2) // 3)
    before_allocations = rng.randint(before_lo, before_hi)
    total_allocations = max(total_allocations, before_allocations + 4)
    victim_alloc_index = rng.randint(2, min(10, before_allocations))
    prior = rng.randint(0, min(2, victim_alloc_index - 1))
    churn = rng.choice((0.0, 0.2, 0.4))
    churn_lifetime = rng.randint(4, 10)
    context_depth = rng.randint(3, 6)
    work_ns = rng.choice((0, 50_000, 200_000))
    long_lived_first = rng.choice((0, 2, 4))
    from_worker = rng.random() < 0.25
    return OracleAppSpec(
        name=name,
        bug_kind=DEFECT_OVER_READ,  # refined by _apply_defect
        vuln_module=vuln_module,
        reference="oracle-generated",
        total_contexts=total_contexts,
        total_allocations=total_allocations,
        before_contexts=before_contexts,
        before_allocations=before_allocations,
        victim_alloc_index=victim_alloc_index,
        victim_context_prior_allocs=prior,
        churn=churn,
        churn_lifetime=churn_lifetime,
        structural_seed=rng.randrange(2**31),
        context_depth=context_depth,
        work_ns_per_alloc=work_ns,
        long_lived_first=long_lived_first,
        overflow_from_worker=from_worker,
        defect="",  # stamped by _apply_defect
    )


def _draw_defect(rng: random.Random, defect: str) -> _DefectParams:
    """Draw the defect's size-independent parameters."""
    in_library = rng.random() < 1.0 / 3.0
    if defect == DEFECT_OVER_READ:
        return _DefectParams("read", 8, in_library)
    if defect == DEFECT_OVER_WRITE:
        return _DefectParams("write", 8, in_library)
    if defect == DEFECT_OFF_BY_N:
        return _DefectParams(
            rng.choice(("read", "write")), rng.randint(1, 7), in_library
        )
    if defect == DEFECT_UNDERFLOW:
        return _DefectParams("read", 8, in_library)
    if defect == DEFECT_UAF:
        return _DefectParams("read", 8, in_library)
    if defect == DEFECT_BENIGN:
        return _DefectParams(
            rng.choice(("read", "write")), 8, in_library
        )
    if defect == DEFECT_DOUBLE_FREE:
        return _DefectParams("free", 0, in_library)
    if defect == DEFECT_REALLOC_SHRINK:
        return _DefectParams("read", 8, in_library)
    if defect == DEFECT_CROSS_THREAD_UAF:
        return _DefectParams("read", 8, in_library)
    raise WorkloadError(f"unknown oracle defect {defect!r}")


def _victim_size(spec: OracleAppSpec) -> int:
    events, victim_pos = build_schedule(spec)
    return events[victim_pos].size


def _access_offset(defect: str, victim_size: int) -> int:
    """Where the access starts, relative to the victim's END."""
    if defect in (DEFECT_OVER_READ, DEFECT_OVER_WRITE, DEFECT_OFF_BY_N):
        return 0  # continuous: the first byte past the object
    if defect == DEFECT_UNDERFLOW:
        return -(victim_size + 8)  # the 8 bytes before the object
    if defect == DEFECT_UAF:
        return -victim_size  # the object's first bytes, after free
    if defect == DEFECT_BENIGN:
        return -16  # fully inside the object (sizes are >= 16)
    if defect == DEFECT_DOUBLE_FREE:
        return 0  # no memory access is injected (length 0)
    if defect == DEFECT_REALLOC_SHRINK:
        return 0  # continuous past the POST-SHRINK end (victim override)
    if defect == DEFECT_CROSS_THREAD_UAF:
        return -victim_size  # the object's first bytes, after free
    raise WorkloadError(f"unknown oracle defect {defect!r}")


def _apply_defect(
    spec: OracleAppSpec, defect: str, params: _DefectParams
) -> OracleAppSpec:
    """Resolve size-relative geometry against the (final) schedule."""
    size = _victim_size(spec)
    spec = replace(
        spec,
        bug_kind=(
            DEFECT_OVER_WRITE if params.access_kind == "write"
            else DEFECT_OVER_READ
        ),
        overflow_skip=_access_offset(defect, size),
        overflow_length=params.access_length,
        free_before_access=(
            defect in (DEFECT_UAF, DEFECT_CROSS_THREAD_UAF)
        ),
        double_free=(defect == DEFECT_DOUBLE_FREE),
        defect=defect,
    )
    if defect == DEFECT_REALLOC_SHRINK:
        # Halve the victim (8-byte minimum keeps the canary word
        # addressable); the manifest's geometry is the shrunk size.
        spec = replace(spec, realloc_shrink_to=max(8, size // 2))
    elif defect == DEFECT_CROSS_THREAD_UAF:
        # The worker dereferences; the main thread frees.
        spec = replace(
            spec, cross_thread_free=True, overflow_from_worker=True
        )
    return spec


def _build_spec(
    seed: int, index: int, defect: str, scale: Optional[float]
) -> Tuple[OracleAppSpec, _DefectParams]:
    name = encode_name(seed, index, defect)
    vuln_module = f"ORACLE_S{seed}_I{index}/VULN"
    rng = random.Random(_genome_seed(seed, index, defect))
    params = _draw_defect(rng, defect)
    if params.in_library:
        vuln_module += ".SO"
    spec = _draw_structure(rng, name, vuln_module, defect)
    if scale is not None and scale < 1.0:
        spec = spec.scaled(scale)
    return _apply_defect(spec, defect, params), params


def generate(seed: int, index: int, defect: str) -> OracleProgram:
    """Generate one program with its ground-truth manifest."""
    if defect not in ALL_DEFECTS:
        raise WorkloadError(
            f"unknown oracle defect {defect!r}; "
            f"expected one of {list(ALL_DEFECTS)}"
        )
    spec, params = _build_spec(seed, index, defect, scale=None)
    size = _victim_size(spec)
    # realloc-shrink: every size-relative judgement (slack, redzone
    # position, span fallback) is against the post-shrink victim.
    if defect == DEFECT_REALLOC_SHRINK:
        size = spec.realloc_shrink_to
    truth = GroundTruth(
        app=spec.name,
        defect=defect,
        access_kind=params.access_kind,
        bug_kind=spec.bug_kind,
        benign=(defect == DEFECT_BENIGN),
        victim_size=size,
        access_offset=spec.overflow_skip,
        access_length=spec.overflow_length,
        in_library=params.in_library,
        free_before_access=spec.free_before_access,
        victim_marker=f"{spec.vuln_module}/alloc.c:500",
        access_marker=f"{spec.vuln_module}/overflow.c:42",
        expected=expectations(
            defect,
            params.access_kind,
            spec.overflow_skip,
            spec.overflow_length,
            params.in_library,
            size,
        ),
    )
    base_seed = (_genome_seed(seed, index, defect) * 2_654_435_761 + 97) % (
        2**31
    )
    return OracleProgram(
        name=spec.name, spec=spec, truth=truth, base_seed=base_seed
    )


def program_from_name(name: str) -> OracleProgram:
    """Rebuild a program (and manifest) from its self-describing name."""
    seed, index, defect = parse_name(name)
    return generate(seed, index, defect)


def oracle_app_from_name(
    name: str, scale: Optional[float] = None
) -> OracleApp:
    """The runnable app for a generated name, optionally shrunk.

    Called by the buggy-app registry's name hook, which is how fleet
    workers and the triage bisector rebuild generated programs.  A
    ``scale`` below 1.0 shrinks the allocation schedule exactly like
    :meth:`BuggyAppSpec.scaled`, with the size-relative defect geometry
    re-resolved against the shrunk schedule.
    """
    seed, index, defect = parse_name(name)
    spec, _params = _build_spec(seed, index, defect, scale)
    return OracleApp(spec)
