"""The fleet-scale oracle campaign.

``run_oracle`` is what ``python -m repro oracle --budget N`` executes:

1. **Generate** — ``budget`` programs, defect classes dealt from the
   requested mix by largest-remainder apportionment (deterministic: no
   RNG touches the sequence).
2. **Fan out** — every program runs ``executions_per_app`` times under
   each selected CSOD arm (near-FIFO with evidence, random replacement
   with evidence, watchpoints-only) through one :class:`FleetPool`
   wave, so the aggregate is worker-count-invariant.  The inline
   baselines (ASan, guard pages, GWP-ASan, DoubleTake) are
   deterministic and run once each.  ``--arms`` restricts the matrix
   to a subset of registered detector arms.
3. **Judge** — every report is classified against the program's
   manifest; CSOD invariants are probed on an instrumented inline
   execution per program; all-miss sampled defects are attributed
   (sampling vs. logic) by a pinned re-run; detections are re-run with
   their evidence to check §V-A2 convergence.
4. **Shrink** — with ``shrink > 0``, the first ``shrink`` mismatched
   programs that produced CSOD reports are reduced to minimal repros
   via the triage bisector.

The returned scorecard is byte-deterministic for a given settings
tuple; worker count and wall-clock never leak into it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import CSODConfig
from repro.detectors import get as get_detector
from repro.detectors import resolve_arms
from repro.errors import ReproError
from repro.fleet.aggregate import FleetAggregator
from repro.fleet.pool import DEFAULT_TIMEOUT_SECONDS, FleetPool
from repro.fleet.specs import ExecutionResult, ExecutionSpec
from repro.oracle.generator import OracleProgram, generate
from repro.oracle.grammar import (
    ALL_DEFECTS,
    ARM_CSOD,
    CAP_SAMPLED,
    CSOD_ARMS,
)
from repro.oracle.harness import (
    AppObservations,
    Mismatch,
    classify_csod_results,
    find_mismatch,
    observe_app,
)
from repro.oracle.invariants import (
    InvariantReport,
    attribute_fn,
    evidence_converges,
    probe_invariants,
)
from repro.oracle.scorecard import build_scorecard
from repro.oracle.shrink import shrink_app_mismatch
from repro.triage.bisect import MinimalRepro


def arm_configs() -> Dict[str, CSODConfig]:
    """The CSOD policy configurations under differential test.

    Sourced from the detector registry so the oracle and any other
    driver agree on each arm's configuration; kept as a module-level
    function because tests monkeypatch it to swap in legacy configs.
    """
    return {arm: get_detector(arm).config() for arm in CSOD_ARMS}


@dataclass(frozen=True)
class OracleSettings:
    """One oracle campaign's identity (everything the scorecard hashes)."""

    budget: int = 50
    seed: int = 0
    workers: int = 1
    executions_per_app: int = 3
    # defect -> weight; None means uniform over ALL_DEFECTS.
    defect_mix: Optional[Mapping[str, float]] = None
    shrink: int = 0
    timeout_seconds: float = DEFAULT_TIMEOUT_SECONDS
    chunk_size: Optional[int] = None
    # Fleet data plane ("shm"/"pickle"/None for the pool default).  A
    # transport knob like workers/timeout/chunk_size: excluded from
    # to_dict() because it cannot change what the scorecard hashes.
    wire: Optional[str] = None
    # Detector arms to run; None means every registered arm.  Part of
    # the scorecard identity (a subset produces a different document).
    arms: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        if self.arms is not None:
            # Normalizes aliases/case and rejects unknown arms with a
            # message naming the known ones; canonical registry order.
            object.__setattr__(self, "arms", resolve_arms(self.arms))
        if self.budget < 1:
            raise ReproError(f"budget must be >= 1, got {self.budget}")
        if self.executions_per_app < 1:
            raise ReproError(
                f"executions_per_app must be >= 1, "
                f"got {self.executions_per_app}"
            )
        if self.shrink < 0:
            raise ReproError(f"shrink must be >= 0, got {self.shrink}")
        if self.defect_mix is not None:
            for defect, weight in self.defect_mix.items():
                if defect not in ALL_DEFECTS:
                    raise ReproError(
                        f"unknown defect {defect!r} in mix; "
                        f"expected one of {list(ALL_DEFECTS)}"
                    )
                if weight < 0:
                    raise ReproError(
                        f"defect weight must be >= 0, got {defect}={weight}"
                    )
            if not any(self.defect_mix.values()):
                raise ReproError("defect mix has no positive weight")

    def to_dict(self) -> dict:
        mix = self.defect_mix
        return {
            "budget": self.budget,
            "seed": self.seed,
            "executions_per_app": self.executions_per_app,
            "defect_mix": (
                None if mix is None else {k: v for k, v in sorted(mix.items())}
            ),
            "shrink": self.shrink,
            "arms": None if self.arms is None else list(self.arms),
        }


def defect_sequence(
    budget: int, mix: Optional[Mapping[str, float]] = None
) -> List[str]:
    """Deal ``budget`` defect classes from the mix, deterministically.

    Largest-remainder apportionment fixes the per-class counts; the
    sequence then interleaves classes round-robin so any prefix of the
    campaign is still representative.
    """
    weights = {
        d: (1.0 if mix is None else float(mix.get(d, 0.0)))
        for d in ALL_DEFECTS
    }
    total = sum(weights.values())
    quotas = {d: budget * w / total for d, w in weights.items()}
    counts = {d: int(q) for d, q in quotas.items()}
    shortfall = budget - sum(counts.values())
    # Ties broken by defect name: deterministic.
    for d in sorted(
        ALL_DEFECTS, key=lambda d: (-(quotas[d] - counts[d]), d)
    )[:shortfall]:
        counts[d] += 1
    sequence: List[str] = []
    remaining = dict(counts)
    while len(sequence) < budget:
        for d in ALL_DEFECTS:
            if remaining[d] > 0:
                remaining[d] -= 1
                sequence.append(d)
    return sequence[:budget]


@dataclass
class OracleRun:
    """Everything one campaign produced (scorecard plus raw views)."""

    settings: OracleSettings
    programs: List[OracleProgram]
    observations: Dict[str, AppObservations]
    invariant_reports: List[InvariantReport]
    fn_attributions: Dict[str, str]
    convergence: Dict[str, bool]
    mismatches: List[Mismatch]
    shrunk: List[MinimalRepro]
    scorecard: dict = field(default_factory=dict)


def _csod_specs(
    programs: Sequence[OracleProgram],
    configs: Mapping[str, CSODConfig],
    executions_per_app: int,
    arms: Optional[Sequence[str]] = None,
) -> List[ExecutionSpec]:
    """One flat wave; indices unique per (program, arm, repeat)."""
    arms = list(CSOD_ARMS) if arms is None else list(arms)
    specs: List[ExecutionSpec] = []
    for app_i, program in enumerate(programs):
        for arm_j, arm in enumerate(arms):
            for k in range(executions_per_app):
                index = (app_i * len(arms) + arm_j) * executions_per_app + k
                specs.append(
                    ExecutionSpec(
                        app=program.name,
                        seed=program.base_seed + k,
                        index=index,
                        config=configs[arm],
                    )
                )
    return specs


def run_oracle(
    settings: OracleSettings,
    telemetry: Optional[Callable[[dict], None]] = None,
    bug_db=None,
    programs: Optional[Sequence[OracleProgram]] = None,
) -> OracleRun:
    """Run one oracle campaign end to end.

    ``bug_db`` (a :class:`repro.triage.bugdb.BugDatabase`) is optional;
    when given, the campaign's CSOD clusters are folded in and each is
    annotated with every arm that caught its program, so the database
    can name the cheapest production-viable detector per bug.

    ``programs`` overrides generation: callers with externally-built
    programs (the adversarial solver's lowered corners) reuse the whole
    fan-out/judge/score pipeline on them verbatim.  Each program's name
    must still resolve through the buggy registry — fleet workers
    rebuild apps by name.
    """
    selected = resolve_arms(settings.arms)
    fleet_selected = [a for a in selected if get_detector(a).fleet]
    inline_selected = tuple(a for a in selected if not get_detector(a).fleet)
    all_fleet_configs = arm_configs()
    configs = {
        arm: all_fleet_configs.get(arm) or get_detector(arm).config()
        for arm in fleet_selected
    }
    if programs is None:
        programs = [
            generate(settings.seed, index, defect)
            for index, defect in enumerate(
                defect_sequence(settings.budget, settings.defect_mix)
            )
        ]
    else:
        programs = list(programs)

    # --- fleet arms (the CSOD trio) through the pool ---------------------
    arms = fleet_selected
    aggregator = FleetAggregator()
    wave = None
    if arms:
        specs = _csod_specs(
            programs, configs, settings.executions_per_app, arms=arms
        )
        pool = FleetPool(
            workers=settings.workers,
            timeout_seconds=settings.timeout_seconds,
            chunk_size=settings.chunk_size,
            wire=settings.wire,
        )
        try:
            wave = pool.run_wave(specs)
        finally:
            # The oracle's fleet work is one wave; closing here (not at
            # campaign end) releases worker processes and unlinks the
            # shm segments before the serial judging phase runs.
            pool.close()
        aggregator.merge_partial(wave.partial)

    def results_for(app_i: int, arm_j: int) -> List[ExecutionResult]:
        base = (app_i * len(arms) + arm_j) * settings.executions_per_app
        picked = wave.results[base : base + settings.executions_per_app]
        return [r for r in picked if r is not None]

    # --- judge every arm -------------------------------------------------
    csod_selected = ARM_CSOD in configs
    observations: Dict[str, AppObservations] = {}
    invariant_reports: List[InvariantReport] = []
    fn_attributions: Dict[str, str] = {}
    convergence: Dict[str, bool] = {}
    mismatches: List[Mismatch] = []
    detected_arms: Dict[str, set] = {}
    for app_i, program in enumerate(programs):
        obs = observe_app(program, program.base_seed, arms=inline_selected)
        for arm_j, arm in enumerate(arms):
            obs.arms[arm] = classify_csod_results(
                program, arm, results_for(app_i, arm_j)
            )
        observations[program.name] = obs
        detected_arms[program.name] = {
            arm for arm in selected if obs.arms[arm].detected
        }

        # CSOD invariant probe (one instrumented inline execution).
        probe = None
        if csod_selected:
            probe = probe_invariants(
                program.name,
                program.base_seed,
                config=configs[ARM_CSOD],
                victim_marker=program.truth.victim_marker,
            )
            invariant_reports.append(probe)

        # FN attribution: sampled-capability arms that missed everywhere.
        for arm in arms:
            capability = program.truth.capability(arm)
            if capability == CAP_SAMPLED and not obs.arms[arm].detected:
                fn_attributions[f"{program.name}|{arm}"] = attribute_fn(
                    program, configs[arm], program.base_seed
                )

        # Evidence convergence (§V-A2) on the evidence arm's detections.
        if csod_selected:
            detecting = [
                r
                for r in results_for(app_i, arms.index(ARM_CSOD))
                if r.detected and r.new_evidence
            ]
            if detecting:
                first = detecting[0]
                convergence[program.name] = evidence_converges(
                    program.name,
                    program.base_seed,
                    tuple(first.new_evidence),
                    config=configs[ARM_CSOD],
                )

        mismatch = find_mismatch(program, obs)
        if mismatch is not None:
            mismatches.append(mismatch)

        if telemetry is not None:
            telemetry(
                {
                    "event": "oracle_app",
                    "app": program.name,
                    "defect": program.truth.defect,
                    "truth": program.truth.to_dict(),
                    "arms": {
                        arm: obs.arms[arm].to_dict()
                        for arm in sorted(obs.arms)
                    },
                    "invariants": (
                        probe.to_dict() if probe is not None else None
                    ),
                    "mismatch": (
                        mismatch.to_dict() if mismatch is not None else None
                    ),
                }
            )

    # --- shrink mismatches ----------------------------------------------
    shrunk: List[MinimalRepro] = []
    if settings.shrink > 0 and csod_selected:
        for mismatch in mismatches:
            if len(shrunk) >= settings.shrink:
                break
            repro = shrink_app_mismatch(
                mismatch.app, aggregator.reports(), configs[ARM_CSOD]
            )
            if repro is not None:
                shrunk.append(repro)

    # --- triage hand-off -------------------------------------------------
    if bug_db is not None:
        from repro.triage.clustering import cluster_reports

        clusters = cluster_reports(aggregator.reports())
        bug_db.update(
            clusters,
            campaign_id=f"oracle:s{settings.seed}:b{settings.budget}",
            total_executions=sum(
                observations[p.name].arms[arm].executions
                for p in programs
                for arm in arms
            ),
        )
        for cluster in clusters:
            apps = {m.first_seen_app for m in cluster.members}
            arms_hit = sorted(
                set().union(
                    *(detected_arms.get(app, set()) for app in apps)
                )
                if apps
                else set()
            )
            if arms_hit:
                bug_db.record_detectors(cluster.cluster_id, arms_hit)

    defects = (
        ALL_DEFECTS
        if settings.defect_mix is None
        else tuple(
            d for d in ALL_DEFECTS if settings.defect_mix.get(d, 0.0) > 0
        )
    )
    scorecard = build_scorecard(
        programs,
        observations,
        invariant_reports=invariant_reports,
        fn_attributions=fn_attributions,
        convergence=convergence,
        mismatches=mismatches,
        shrunk=shrunk,
        settings=settings.to_dict(),
        arms=selected,
        defects=defects,
    )
    if telemetry is not None:
        telemetry({"event": "oracle_scorecard", "scorecard": scorecard})
    return OracleRun(
        settings=settings,
        programs=programs,
        observations=observations,
        invariant_reports=invariant_reports,
        fn_attributions=fn_attributions,
        convergence=convergence,
        mismatches=mismatches,
        shrunk=shrunk,
        scorecard=scorecard,
    )


def write_telemetry_line(handle, event: dict) -> None:
    """One deterministic JSONL telemetry record."""
    handle.write(json.dumps(event, sort_keys=True) + "\n")
