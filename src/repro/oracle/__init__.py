"""repro.oracle — differential testing with generated ground truth.

The oracle closes the correctness loop the evaluations of CSOD (§V),
GWP-ASan, and DoubleTake all rely on: take programs whose defects are
*known by construction*, run them under every detector the repo ships,
and check each detector's reports against the manifest instead of
against another detector's opinion.

* :mod:`repro.oracle.grammar` — defect taxonomy, the per-program
  :class:`GroundTruth` manifest, and the per-detector capability matrix
  (what each detector can catch *by design*).
* :mod:`repro.oracle.generator` — the seeded workload generator.  A
  generated program is addressed by name (``oracle:s<seed>:i<index>:
  <defect>``); the name alone rebuilds the program deterministically in
  any process, which is what lets generated apps flow through the fleet
  pool and the triage bisector unchanged.
* :mod:`repro.oracle.harness` — runs one program under the inline
  baselines (ASan, guard pages, GWP-ASan, DoubleTake) and classifies
  every detector's reports as TP/FP/FN against the manifest.
* :mod:`repro.oracle.invariants` — CSOD-specific probes: watchpoint
  arming high-water (≤ 4, register/slot consistency), per-context
  sampling-rate monotonicity between revivals, and the §IV-B evidence
  convergence guarantee.
* :mod:`repro.oracle.shrink` — reduces a false positive or a
  cross-detector disagreement to a minimal generated program by reusing
  :mod:`repro.triage.bisect`.
* :mod:`repro.oracle.runner` — the fleet-scale campaign:
  ``python -m repro oracle --budget N`` fans generated apps through
  :mod:`repro.fleet` and emits the conformance scorecard.
"""

from repro.oracle.grammar import (
    ALL_DEFECTS,
    ARM_ASAN,
    ARM_CSOD,
    ARM_CSOD_NOEVIDENCE,
    ARM_CSOD_RANDOM,
    ARM_DOUBLETAKE,
    ARM_GUARDPAGE,
    ARM_GWP_ASAN,
    ALL_ARMS,
    DEFECT_DOUBLE_FREE,
    CAP_DETERMINISTIC,
    CAP_INCIDENTAL,
    CAP_NONE,
    CAP_SAMPLED,
    Expectation,
    GroundTruth,
)
from repro.oracle.generator import (
    ORACLE_PREFIX,
    OracleProgram,
    generate,
    is_oracle_name,
    oracle_app_from_name,
    parse_name,
    program_from_name,
)
from repro.oracle.harness import AppObservations, observe_app
from repro.oracle.invariants import InvariantReport, probe_invariants
from repro.oracle.runner import OracleSettings, run_oracle
from repro.oracle.scorecard import build_scorecard, render_scorecard
from repro.oracle.shrink import shrink_app_mismatch

__all__ = [
    "ALL_ARMS",
    "ALL_DEFECTS",
    "ARM_ASAN",
    "ARM_CSOD",
    "ARM_CSOD_NOEVIDENCE",
    "ARM_CSOD_RANDOM",
    "ARM_DOUBLETAKE",
    "ARM_GUARDPAGE",
    "ARM_GWP_ASAN",
    "AppObservations",
    "CAP_DETERMINISTIC",
    "CAP_INCIDENTAL",
    "CAP_NONE",
    "CAP_SAMPLED",
    "DEFECT_DOUBLE_FREE",
    "Expectation",
    "GroundTruth",
    "InvariantReport",
    "ORACLE_PREFIX",
    "OracleProgram",
    "OracleSettings",
    "build_scorecard",
    "generate",
    "is_oracle_name",
    "observe_app",
    "oracle_app_from_name",
    "parse_name",
    "probe_invariants",
    "program_from_name",
    "render_scorecard",
    "run_oracle",
    "shrink_app_mismatch",
]
