"""Defect taxonomy and the per-program ground-truth manifest.

Every generated program injects exactly one *defect* — one access whose
legality is known by construction.  The manifest records where that
access lands relative to the victim object and, for every detector arm,
what the detector can do about it **by design**:

``deterministic``
    The arm catches this access on every execution (ASan redzones, a
    guard page right behind the object, CSOD's free-time canary check
    for boundary-word writes).
``sampled``
    The arm catches it only when its sampler armed the right watchpoint
    (CSOD reads).  Misses are expected; an all-runs miss must still be
    *attributable to sampling* by a pinned re-run.
``incidental``
    The arm may catch the access via a neighbouring object's metadata
    (an underflow read trapping the previous object's boundary word
    under watchpoint-only CSOD).  Detections are true positives with
    displaced attribution; misses are not false negatives.
``none``
    The arm cannot see the access (uninstrumented library, alignment
    slack, in-bounds access...).  Any report here is a false positive.

The capability matrix below is derived from the exact constants of the
three runtimes: CSOD watches the 8-byte boundary word at
``object + size`` and wraps every allocation with an 8-byte canary in
evidence mode; ASan places 16-byte redzones on both sides and
quarantines frees; guard pages right-align objects subject to 16-byte
alignment, leaving ``(-size) % 16`` bytes of slack before the guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import WorkloadError

# Defect classes the grammar can inject.
DEFECT_OVER_READ = "over-read"
DEFECT_OVER_WRITE = "over-write"
DEFECT_OFF_BY_N = "off-by-n"
DEFECT_UNDERFLOW = "underflow"
DEFECT_UAF = "uaf"
DEFECT_BENIGN = "benign"
# Appended last: _genome_seed keys defects by ALL_DEFECTS position, so
# new classes must extend the tuple, never reorder it.
DEFECT_DOUBLE_FREE = "double-free"
# The victim is realloc'd down in place and the read runs past the NEW
# end: the manifest's geometry (victim_size, slack, redzone position)
# is evaluated at the post-shrink size.
DEFECT_REALLOC_SHRINK = "realloc-shrink-over-read"
# The allocating thread frees the victim while a second thread
# dereferences it — a UAF whose free and access consume different
# per-thread RNG streams and key caches.
DEFECT_CROSS_THREAD_UAF = "cross-thread-uaf"

ALL_DEFECTS: Tuple[str, ...] = (
    DEFECT_OVER_READ,
    DEFECT_OVER_WRITE,
    DEFECT_OFF_BY_N,
    DEFECT_UNDERFLOW,
    DEFECT_UAF,
    DEFECT_BENIGN,
    DEFECT_DOUBLE_FREE,
    DEFECT_REALLOC_SHRINK,
    DEFECT_CROSS_THREAD_UAF,
)

# Defects whose access dereferences an already-freed victim: the
# expectation rows below treat them identically — what differs is which
# thread frees, which the detectors cannot observe.
_UAF_DEFECTS: Tuple[str, ...] = (DEFECT_UAF, DEFECT_CROSS_THREAD_UAF)

# Detector arms of the differential harness (canonical order matches
# the repro.detectors registry: fleet trio first, then baselines).
ARM_CSOD = "csod"  # evidence + watchpoints, near-FIFO replacement
ARM_CSOD_RANDOM = "csod-random"  # evidence + watchpoints, random replacement
ARM_CSOD_NOEVIDENCE = "csod-noevidence"  # watchpoints only, no canary
ARM_ASAN = "asan"
ARM_GUARDPAGE = "guardpage"
ARM_GWP_ASAN = "gwp-asan"
ARM_DOUBLETAKE = "doubletake"

ALL_ARMS: Tuple[str, ...] = (
    ARM_CSOD,
    ARM_CSOD_RANDOM,
    ARM_CSOD_NOEVIDENCE,
    ARM_ASAN,
    ARM_GUARDPAGE,
    ARM_GWP_ASAN,
    ARM_DOUBLETAKE,
)
CSOD_ARMS: Tuple[str, ...] = (ARM_CSOD, ARM_CSOD_RANDOM, ARM_CSOD_NOEVIDENCE)

# Capability levels.
CAP_DETERMINISTIC = "deterministic"
CAP_SAMPLED = "sampled"
CAP_INCIDENTAL = "incidental"
CAP_NONE = "none"

# Geometry constants mirrored from the runtimes (asserted against the
# real ones in the oracle tests, so drift fails loudly).
WATCH_WORD_BYTES = 8  # CSOD debug-register watch length
CANARY_BYTES = 8  # repro.heap.layout.CANARY_SIZE
MIN_REDZONE_BYTES = 16  # repro.asan.redzones.MIN_REDZONE
GUARD_ALIGNMENT = 16  # repro.heap.size_classes.MIN_ALIGNMENT


def guard_slack(size: int) -> int:
    """Bytes between object end and the guard page (GWP-ASan slack)."""
    return (-size) % GUARD_ALIGNMENT


@dataclass(frozen=True)
class Expectation:
    """What one detector arm can do about one injected defect."""

    capability: str  # deterministic / sampled / incidental / none
    reason: str

    def to_dict(self) -> dict:
        return {"capability": self.capability, "reason": self.reason}


@dataclass
class GroundTruth:
    """The machine-readable manifest of one generated program."""

    app: str  # the generated program's (self-describing) name
    defect: str
    access_kind: str  # read / write
    bug_kind: str  # over-read / over-write (the access direction)
    benign: bool
    victim_size: int
    # Where the access starts, relative to the END of the victim object
    # (the overflow_skip convention): 0 is the first byte past the
    # object, negative offsets land before the end.
    access_offset: int
    access_length: int
    in_library: bool  # vuln module is an uninstrumented .SO
    free_before_access: bool
    victim_marker: str  # frame location identifying the victim's alloc site
    access_marker: str  # frame location of the injected access statement
    expected: Dict[str, Expectation] = field(default_factory=dict)

    def capability(self, arm: str) -> str:
        return self.expected[arm].capability

    def to_dict(self) -> dict:
        """Deterministic JSON form (sorted arms)."""
        return {
            "app": self.app,
            "defect": self.defect,
            "access_kind": self.access_kind,
            "bug_kind": self.bug_kind,
            "benign": self.benign,
            "victim_size": self.victim_size,
            "access_offset": self.access_offset,
            "access_length": self.access_length,
            "in_library": self.in_library,
            "free_before_access": self.free_before_access,
            "victim_marker": self.victim_marker,
            "access_marker": self.access_marker,
            "expected": {
                arm: self.expected[arm].to_dict()
                for arm in sorted(self.expected)
            },
        }


def expectations(
    defect: str,
    access_kind: str,
    access_offset: int,
    access_length: int,
    in_library: bool,
    victim_size: int,
) -> Dict[str, Expectation]:
    """The capability matrix for one injected defect."""
    if defect not in ALL_DEFECTS:
        raise WorkloadError(f"unknown oracle defect {defect!r}")
    expected: Dict[str, Expectation] = {}

    # --- ASan -----------------------------------------------------------
    if defect == DEFECT_BENIGN:
        asan = Expectation(CAP_NONE, "access stays inside the object")
    elif defect == DEFECT_DOUBLE_FREE:
        # Allocator interposition, not instrumentation: catches the
        # second free of a quarantined block even from a library.
        asan = Expectation(
            CAP_DETERMINISTIC,
            "the second free hits the quarantine's bookkeeping",
        )
    elif in_library:
        asan = Expectation(
            CAP_NONE, "access issued from an uninstrumented .SO module"
        )
    elif defect in _UAF_DEFECTS:
        asan = Expectation(
            CAP_DETERMINISTIC, "freed object is poisoned and quarantined"
        )
    elif defect == DEFECT_UNDERFLOW:
        asan = Expectation(CAP_DETERMINISTIC, "left redzone is poisoned")
    else:
        asan = Expectation(CAP_DETERMINISTIC, "right redzone is poisoned")
    expected[ARM_ASAN] = asan

    # --- guard pages (oracle mode guards every allocation) --------------
    slack = guard_slack(victim_size)
    if defect == DEFECT_BENIGN:
        guard = Expectation(CAP_NONE, "access stays inside the object")
    elif defect == DEFECT_DOUBLE_FREE:
        guard = Expectation(
            CAP_DETERMINISTIC,
            "the freed slot's bookkeeping rejects a second free",
        )
    elif defect == DEFECT_UNDERFLOW:
        guard = Expectation(
            CAP_NONE, "underflow lands in the slot page, not the guard"
        )
    elif defect in _UAF_DEFECTS:
        guard = Expectation(CAP_DETERMINISTIC, "freed slot page is unmapped")
    elif access_offset + access_length > slack:
        guard = Expectation(CAP_DETERMINISTIC, "access crosses the guard page")
    else:
        guard = Expectation(
            CAP_NONE,
            f"access fits the {slack}-byte alignment slack before the guard",
        )
    expected[ARM_GUARDPAGE] = guard

    # --- CSOD, evidence mode (canary + watchpoints) ---------------------
    overlaps_watch_word = (
        access_offset < WATCH_WORD_BYTES and access_offset + access_length > 0
    )
    if defect == DEFECT_BENIGN:
        csod = Expectation(CAP_NONE, "access stays inside the object")
    elif defect == DEFECT_DOUBLE_FREE:
        csod = Expectation(
            CAP_DETERMINISTIC,
            "the 32-byte header survives the first free; its intact "
            "identifier at the second free diagnoses the double free",
        )
    elif defect in _UAF_DEFECTS:
        csod = Expectation(
            CAP_NONE, "watchpoint and canary are released at free"
        )
    elif defect == DEFECT_UNDERFLOW:
        csod = Expectation(
            CAP_NONE, "access lands inside CSOD's own object header"
        )
    elif not overlaps_watch_word:
        csod = Expectation(
            CAP_NONE, "non-continuous access skips the boundary word (§VI)"
        )
    elif access_kind == "write":
        csod = Expectation(
            CAP_DETERMINISTIC,
            "boundary-word write corrupts the canary, caught at free; "
            "watchpoint additionally when sampled",
        )
    else:
        csod = Expectation(
            CAP_SAMPLED, "read only traps a sampled watchpoint"
        )
    expected[ARM_CSOD] = csod
    expected[ARM_CSOD_RANDOM] = csod

    # --- CSOD, watchpoints only (no canary, raw heap layout) ------------
    if defect == DEFECT_BENIGN:
        noev = Expectation(CAP_NONE, expected[ARM_CSOD].reason)
    elif defect == DEFECT_DOUBLE_FREE:
        noev = Expectation(
            CAP_NONE,
            "raw layout leaves no header; the second free aborts "
            "unattributed inside the allocator",
        )
    elif defect in _UAF_DEFECTS:
        noev = Expectation(
            CAP_INCIDENTAL,
            "raw heap adjacency: the freed object's first bytes can "
            "coincide with the previous object's boundary word while its "
            "watchpoint is still armed",
        )
    elif defect == DEFECT_UNDERFLOW:
        noev = Expectation(
            CAP_INCIDENTAL,
            "raw heap adjacency: the read may trap the previous object's "
            "boundary word when its watchpoint is armed",
        )
    elif not overlaps_watch_word:
        noev = Expectation(
            CAP_NONE, "non-continuous access skips the boundary word (§VI)"
        )
    else:
        noev = Expectation(
            CAP_SAMPLED, "watchpoint only, probability-sampled"
        )
    expected[ARM_CSOD_NOEVIDENCE] = noev

    # --- GWP-ASan (oracle mode samples every allocation) ----------------
    # Same page-protection physics as the guard-page arm, plus a slot
    # quarantine (UAF and double-free become deterministic) and a left
    # guard a full page before the object (underflows still land inside
    # the slot page for any size the grammar draws).
    if defect == DEFECT_BENIGN:
        gwp = Expectation(CAP_NONE, "access stays inside the object")
    elif defect == DEFECT_DOUBLE_FREE:
        gwp = Expectation(
            CAP_DETERMINISTIC,
            "the quarantined slot's state check rejects the second free, "
            "with allocation and deallocation stacks from slot metadata",
        )
    elif defect in _UAF_DEFECTS:
        gwp = Expectation(
            CAP_DETERMINISTIC, "quarantined slot page is unmapped"
        )
    elif defect == DEFECT_UNDERFLOW:
        gwp = Expectation(
            CAP_NONE,
            "the 8 bytes before the object stay inside the slot page; "
            "the left guard is a page away",
        )
    elif access_offset + access_length > slack:
        gwp = Expectation(
            CAP_DETERMINISTIC, "access crosses the right guard page"
        )
    else:
        gwp = Expectation(
            CAP_NONE,
            f"access fits the {slack}-byte alignment slack before the guard",
        )
    expected[ARM_GWP_ASAN] = gwp

    # --- DoubleTake (epoch-end canary sweep + replay) -------------------
    # Evidence-based: only writes leave evidence, and only writes that
    # touch the canary word at object end (or the quarantine fill) are
    # ever found at an epoch boundary.  Reads are invisible by design.
    overlaps_canary = (
        access_offset < CANARY_BYTES and access_offset + access_length > 0
    )
    if defect == DEFECT_BENIGN:
        dtake = Expectation(CAP_NONE, "access stays inside the object")
    elif defect == DEFECT_DOUBLE_FREE:
        dtake = Expectation(
            CAP_DETERMINISTIC,
            "the delayed-free quarantine rejects the second free",
        )
    elif defect in _UAF_DEFECTS:
        dtake = Expectation(
            CAP_NONE,
            "the read leaves the quarantine fill intact; reads record "
            "no evidence",
        )
    elif defect == DEFECT_UNDERFLOW:
        dtake = Expectation(
            CAP_NONE,
            "the read leaves the leading canary intact; reads record "
            "no evidence",
        )
    elif access_kind != "write":
        dtake = Expectation(
            CAP_NONE, "reads corrupt no canary and leave no evidence"
        )
    elif overlaps_canary:
        dtake = Expectation(
            CAP_DETERMINISTIC,
            "the write corrupts the trailing canary, found at the "
            "epoch-end sweep; replay attributes the exact store",
        )
    else:
        dtake = Expectation(
            CAP_NONE, "non-continuous write skips the trailing canary word"
        )
    expected[ARM_DOUBLETAKE] = dtake
    return expected
