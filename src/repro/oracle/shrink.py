"""Shrink a mismatch to a minimal generated program.

When the harness flags a program — a false positive under any arm, or a
cross-detector disagreement the capability matrix cannot account for —
the disagreement is only actionable once it is small.  This module
reuses the triage pipeline end-to-end: the oracle's CSOD reports for
the offending program are clustered exactly like fleet telemetry
(:func:`repro.triage.clustering.cluster_reports`), and the triage
:class:`~repro.triage.bisect.Bisector` then shrinks the originating
execution (evidence pinning, evidence minimisation, schedule-scale
halving) until the smallest generated program that still
deterministically re-triggers the cluster remains.

Generated programs resolve by name through the buggy-app registry, so
the bisector's scale-halving probes rebuild shrunk oracle apps with the
size-relative defect geometry re-resolved against the shrunk schedule
— the minimal repro still injects the same defect class.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.config import CSODConfig
from repro.fleet.aggregate import AggregatedReport
from repro.triage.bisect import Bisector, MinimalRepro
from repro.triage.clustering import cluster_reports


def shrink_app_mismatch(
    app_name: str,
    reports: Iterable[AggregatedReport],
    config: Optional[CSODConfig] = None,
    seed_checks: int = 2,
) -> Optional[MinimalRepro]:
    """Shrink one program's CSOD reports to a minimal reproducer.

    ``reports`` is the oracle campaign's aggregated fleet view; only
    reports first seen on ``app_name`` participate.  Returns ``None``
    when the program produced no CSOD reports at all (nothing to
    shrink: the mismatch is a miss, and misses are attributed by the
    invariant prober, not bisection).
    """
    own = [r for r in reports if r.first_seen_app == app_name]
    if not own:
        return None
    clusters = cluster_reports(own)
    # Largest cluster first (cluster_reports sorts by -count): the
    # dominant symptom is the one worth a minimal repro.
    bisector = Bisector(
        clusters[0], config=config or CSODConfig(), seed_checks=seed_checks
    )
    return bisector.run()
