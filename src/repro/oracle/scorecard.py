"""The conformance scorecard.

One JSON document answering, per detector arm and per defect class:
how often was the injected defect caught, with what confidence
interval, and did anything fire that should not have?  Plus the
CSOD-specific blocks: invariant probe outcomes, the attribution of
every CSOD false negative (sampling vs. logic), evidence convergence,
and the minimal repros any mismatch shrank to.

The scorecard is **byte-deterministic** for a given (budget, seed,
executions-per-app, defect-mix): it contains no wall-clock times, no
hostnames, no worker counts, and every mapping is emitted with sorted
keys.  Two runs of ``python -m repro oracle --budget 50 --seed 7`` must
produce identical bytes, regardless of worker count — that property is
itself under test.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.campaign import wilson_interval
from repro.oracle.grammar import (
    ALL_ARMS,
    ALL_DEFECTS,
    CAP_NONE,
)
from repro.oracle.generator import OracleProgram
from repro.oracle.harness import AppObservations, Mismatch
from repro.oracle.invariants import (
    ATTRIBUTION_SAMPLING,
    InvariantReport,
)
from repro.triage.bisect import MinimalRepro


def _rate_block(detected: int, eligible: int) -> dict:
    block = {"detected": detected, "eligible": eligible}
    if eligible > 0:
        low, high = wilson_interval(detected, eligible)
        block["rate"] = round(detected / eligible, 6)
        block["ci95"] = [round(low, 6), round(high, 6)]
    else:
        block["rate"] = None
        block["ci95"] = None
    return block


def build_scorecard(
    programs: Sequence[OracleProgram],
    observations: Mapping[str, AppObservations],
    invariant_reports: Sequence[InvariantReport] = (),
    fn_attributions: Optional[Mapping[str, str]] = None,
    convergence: Optional[Mapping[str, bool]] = None,
    mismatches: Sequence[Mismatch] = (),
    shrunk: Sequence[MinimalRepro] = (),
    settings: Optional[Mapping[str, object]] = None,
    arms: Optional[Sequence[str]] = None,
    defects: Optional[Sequence[str]] = None,
) -> dict:
    """Assemble the (deterministic) conformance scorecard.

    ``arms``/``defects`` name the matrix under report (default: every
    registered arm and defect class); a campaign run over a subset
    emits only that subset so the document stays free of dead rows.
    """
    fn_attributions = dict(fn_attributions or {})
    convergence = dict(convergence or {})
    arms = tuple(ALL_ARMS if arms is None else arms)
    defects = tuple(ALL_DEFECTS if defects is None else defects)
    by_name = {program.name: program for program in programs}

    # --- generator census ------------------------------------------------
    by_defect: Dict[str, int] = {defect: 0 for defect in defects}
    in_library = 0
    for program in programs:
        defect = program.truth.defect
        by_defect[defect] = by_defect.get(defect, 0) + 1
        if program.truth.in_library:
            in_library += 1
    census = {
        "total": len(programs),
        "by_defect": {d: n for d, n in sorted(by_defect.items())},
        "in_library": in_library,
    }

    # --- per-arm and per-(arm, defect) conformance -----------------------
    arms_block: Dict[str, dict] = {}
    conformance: Dict[str, Dict[str, dict]] = {}
    for arm in sorted(arms):
        executions = 0
        fp_reports = 0
        detected_eligible = 0
        eligible = 0
        per_defect: Dict[str, dict] = {}
        for defect in sorted(defects):
            d_detected = 0
            d_eligible = 0
            d_fp = 0
            d_apps = 0
            for program in programs:
                if program.truth.defect != defect:
                    continue
                obs = observations[program.name].arms.get(arm)
                if obs is None:
                    continue
                d_apps += 1
                d_fp += obs.fp_reports
                if program.truth.capability(arm) != CAP_NONE:
                    d_eligible += 1
                    if obs.detected:
                        d_detected += 1
            entry = _rate_block(d_detected, d_eligible)
            entry["apps"] = d_apps
            entry["fp_reports"] = d_fp
            per_defect[defect] = entry
            detected_eligible += d_detected
            eligible += d_eligible
            fp_reports += d_fp
        for app_obs in observations.values():
            obs = app_obs.arms.get(arm)
            if obs is not None:
                executions += obs.executions
        overall = _rate_block(detected_eligible, eligible)
        overall["executions"] = executions
        overall["fp_reports"] = fp_reports
        arms_block[arm] = overall
        conformance[arm] = per_defect

    # --- CSOD invariants -------------------------------------------------
    max_armed = max((r.max_armed for r in invariant_reports), default=0)
    armed_violations: List[str] = []
    monotonic_violations: List[str] = []
    for report in invariant_reports:
        armed_violations.extend(
            f"{report.app}: {v}" for v in report.armed_violations
        )
        monotonic_violations.extend(
            f"{report.app}: {v}" for v in report.monotonic_violations
        )
    sampling_fns = sum(
        1 for v in fn_attributions.values() if v == ATTRIBUTION_SAMPLING
    )
    csod_block = {
        "max_armed": max_armed,
        "armed_limit": (
            invariant_reports[0].armed_limit if invariant_reports else 4
        ),
        "probed_apps": len(invariant_reports),
        "armed_violations": sorted(armed_violations),
        "monotonic_violations": sorted(monotonic_violations),
        "fn_attribution": {
            "sampling": sampling_fns,
            "logic": len(fn_attributions) - sampling_fns,
            "apps": {a: v for a, v in sorted(fn_attributions.items())},
        },
        "convergence": {
            "checked": len(convergence),
            "converged": sum(1 for ok in convergence.values() if ok),
            "failures": sorted(a for a, ok in convergence.items() if not ok),
        },
    }

    # --- mismatches & shrunk repros --------------------------------------
    mismatch_items = sorted(
        (m.to_dict() for m in mismatches), key=lambda d: d["app"]
    )
    mismatch_block = {
        "total": len(mismatch_items),
        "explained": sum(1 for m in mismatch_items if m["explained"]),
        "unexplained": sum(1 for m in mismatch_items if not m["explained"]),
        "items": mismatch_items,
    }
    shrunk_items = sorted(
        (r.to_dict() for r in shrunk), key=lambda d: d["app"]
    )

    scorecard = {
        "schema": "repro-oracle-scorecard-v1",
        "settings": {k: v for k, v in sorted((settings or {}).items())},
        "programs": census,
        "arms": arms_block,
        "conformance": conformance,
        "csod_invariants": csod_block,
        "mismatches": mismatch_block,
        "shrunk": shrunk_items,
    }
    # Self-check: the manifest census covers every judged app.
    assert set(by_name) == set(observations), "observations/programs drift"
    return scorecard


def render_scorecard(scorecard: dict) -> str:
    """Byte-deterministic JSON rendering."""
    return json.dumps(scorecard, sort_keys=True, indent=2) + "\n"
