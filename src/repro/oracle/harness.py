"""The differential harness: run one generated program, judge reports.

CSOD arms execute through the fleet pool (the runner dispatches them as
ordinary :class:`ExecutionSpec`s); the baseline arms (ASan, guard
pages, GWP-ASan, DoubleTake) run inline here — in oracle mode each is
deterministic, so one execution per program decides them.  Either way,
every report is judged against the program's
:class:`~repro.oracle.grammar.GroundTruth`:

* a report whose **allocation context** contains the victim's
  allocation-site marker (and whose kind matches the injected access)
  is a true positive;
* a CSOD report whose **access context** contains the injected access
  statement but whose allocation context points elsewhere is an
  *incidental* true positive — the defective access was caught via a
  neighbouring object's boundary word, a real catch with displaced
  attribution (watchpoint-only underflows);
* anything else — and *any* report on a benign program — is a false
  positive.

The guard-page arm runs in "oracle mode" (``sample_every=1``, a slot
pool larger than any generated schedule): every allocation is guarded,
so the arm is deterministic and the manifest's capability matrix is
exact.  GWP-ASan's production sampling is a measured trade-off, not a
correctness property; the oracle tests the detector's logic, not its
lottery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.asan.runtime import ASanRuntime
from repro.detectors.doubletake import DoubleTakeConfig, DoubleTakeRuntime
from repro.detectors.gwp_asan import GwpAsanConfig, GwpAsanRuntime
from repro.errors import SegmentationFault
from repro.fleet.evidence_store import EvidenceStore
from repro.fleet.specs import ExecutionResult
from repro.guardpage.runtime import GuardPageConfig, GuardPageRuntime
from repro.machine.signals import ProcessTerminated
from repro.oracle.grammar import (
    ARM_ASAN,
    ARM_DOUBLETAKE,
    ARM_GUARDPAGE,
    ARM_GWP_ASAN,
    CAP_DETERMINISTIC,
    CAP_INCIDENTAL,
    CAP_NONE,
    CAP_SAMPLED,
    DEFECT_DOUBLE_FREE,
    DEFECT_UNDERFLOW,
    GroundTruth,
)
from repro.oracle.generator import OracleProgram
from repro.workloads.base import SimProcess

# Oracle-mode guard pages: deterministic full guarding (see module doc).
ORACLE_GUARD_CONFIG = GuardPageConfig(sample_every=1, max_guarded=4096)
# Oracle-mode GWP-ASan: every allocation sampled into a pool bigger
# than any generated schedule, quarantine deep enough that no slot is
# ever recycled — the slot-state checks become deterministic.
ORACLE_GWP_CONFIG = GwpAsanConfig(
    sample_every=1, pool_slots=4096, quarantine_slots=4096
)
# Oracle-mode DoubleTake: frequent epochs, no quarantine eviction.
ORACLE_DOUBLETAKE_CONFIG = DoubleTakeConfig(
    epoch_every_allocs=32, quarantine_blocks=4096
)


@dataclass
class ArmObservation:
    """What one detector arm saw for one program, judged."""

    arm: str
    executions: int = 0
    # Executions with >= 1 victim-matching report of the right kind.
    detections: int = 0
    # Executions detected only via the access-statement marker
    # (displaced attribution; counts as caught, never as FP or FN).
    incidental: int = 0
    # Reports matching neither marker, wrong-kind victim reports, and
    # every report on a benign program.
    fp_reports: int = 0
    kinds: Tuple[str, ...] = ()

    @property
    def detected(self) -> bool:
        return self.detections > 0 or self.incidental > 0

    def to_dict(self) -> dict:
        return {
            "arm": self.arm,
            "executions": self.executions,
            "detections": self.detections,
            "incidental": self.incidental,
            "fp_reports": self.fp_reports,
            "kinds": list(self.kinds),
        }


@dataclass
class AppObservations:
    """All arms' judged observations for one program."""

    app: str
    arms: Dict[str, ArmObservation] = field(default_factory=dict)

    def detected_arms(self) -> Tuple[str, ...]:
        return tuple(
            sorted(arm for arm, obs in self.arms.items() if obs.detected)
        )

    def fp_arms(self) -> Tuple[str, ...]:
        return tuple(
            sorted(
                arm for arm, obs in self.arms.items() if obs.fp_reports
            )
        )


# ----------------------------------------------------------------------
# Report judging
# ----------------------------------------------------------------------
def _judge(
    truth: GroundTruth,
    kind: str,
    expected_kind: str,
    allocation_frames: Sequence[str],
    access_frames: Sequence[str] = (),
    fault_address: Optional[int] = None,
    victim_span: Optional[Tuple[int, int]] = None,
) -> str:
    """Classify one report: 'victim', 'incidental', or 'fp'."""
    if truth.benign:
        return "fp"
    victim_hit = truth.victim_marker in tuple(allocation_frames)
    if not victim_hit and victim_span is not None and fault_address is not None:
        # UAF reports may drop the allocation context (ASan pops it at
        # free); fall back to the fault address.
        lo, hi = victim_span
        victim_hit = lo <= fault_address < hi
    if victim_hit:
        return "victim" if kind == expected_kind else "fp"
    if truth.access_marker in tuple(access_frames):
        return "incidental"
    return "fp"


def _fold(arm: str, verdicts: Iterable[str], kinds: Iterable[str]) -> ArmObservation:
    """One execution's report verdicts -> an observation."""
    verdicts = list(verdicts)
    obs = ArmObservation(arm=arm, executions=1, kinds=tuple(sorted(set(kinds))))
    if "victim" in verdicts:
        obs.detections = 1
    elif "incidental" in verdicts:
        obs.incidental = 1
    obs.fp_reports = sum(1 for v in verdicts if v == "fp")
    return obs


def _merge(into: ArmObservation, obs: ArmObservation) -> None:
    into.executions += obs.executions
    into.detections += obs.detections
    into.incidental += obs.incidental
    into.fp_reports += obs.fp_reports
    into.kinds = tuple(sorted(set(into.kinds) | set(obs.kinds)))


# ----------------------------------------------------------------------
# Inline arms
# ----------------------------------------------------------------------
def observe_asan(program: OracleProgram, seed: int) -> ArmObservation:
    """One (deterministic) execution under simulated ASan."""
    truth = program.truth
    process = SimProcess(seed=seed)
    runtime = ASanRuntime(process.machine, process.heap)
    result = program.app().run(process)
    runtime.shutdown()
    if truth.defect == DEFECT_DOUBLE_FREE:
        expected_kind = "double-free"
    elif truth.free_before_access:
        expected_kind = "heap-use-after-free"
    else:
        expected_kind = "heap-buffer-overflow"
    span = (
        result.victim_address,
        result.victim_address + result.victim_size,
    )
    verdicts = [
        _judge(
            truth,
            report.kind,
            expected_kind,
            report.allocation_context,
            fault_address=report.fault_address,
            victim_span=span,
        )
        for report in runtime.reports
    ]
    return _fold(ARM_ASAN, verdicts, (r.kind for r in runtime.reports))


def observe_guardpage(program: OracleProgram, seed: int) -> ArmObservation:
    """One (deterministic, oracle-mode) execution under guard pages."""
    truth = program.truth
    process = SimProcess(seed=seed)
    runtime = GuardPageRuntime(
        process.machine, process.heap, ORACLE_GUARD_CONFIG, seed=seed
    )
    try:
        program.app().run(process)
    except (SegmentationFault, ProcessTerminated):
        # The guarded process dies on the fault; reports are read from
        # the crash handler's output, exactly like GWP-ASan.
        pass
    finally:
        runtime.shutdown()
    if truth.defect == DEFECT_DOUBLE_FREE:
        expected_kind = "double-free"
    elif truth.free_before_access:
        expected_kind = "use-after-free"
    else:
        expected_kind = "overflow"
    verdicts = [
        _judge(
            truth,
            report.kind,
            expected_kind,
            tuple(str(f) for f in report.allocation_context.frames),
        )
        for report in runtime.reports
    ]
    return _fold(ARM_GUARDPAGE, verdicts, (r.kind for r in runtime.reports))


def observe_gwp_asan(program: OracleProgram, seed: int) -> ArmObservation:
    """One (deterministic, oracle-mode) execution under GWP-ASan."""
    truth = program.truth
    process = SimProcess(seed=seed)
    runtime = GwpAsanRuntime(
        process.machine, process.heap, ORACLE_GWP_CONFIG, seed=seed
    )
    try:
        program.app().run(process)
    except (SegmentationFault, ProcessTerminated):
        # The process dies on the guard/quarantine fault; the report
        # was already written by the crash handler.
        pass
    finally:
        runtime.shutdown()
    if truth.defect == DEFECT_DOUBLE_FREE:
        expected_kind = "double-free"
    elif truth.free_before_access:
        expected_kind = "use-after-free"
    elif truth.defect == DEFECT_UNDERFLOW:
        expected_kind = "underflow"
    else:
        expected_kind = "overflow"
    verdicts = [
        _judge(
            truth,
            report.kind,
            expected_kind,
            report.allocation_context,
            report.access_context,
        )
        for report in runtime.reports
    ]
    return _fold(ARM_GWP_ASAN, verdicts, (r.kind for r in runtime.reports))


def observe_doubletake(program: OracleProgram, seed: int) -> ArmObservation:
    """One DoubleTake observation: record run, then replay on evidence.

    The record run sweeps canaries at epoch boundaries; when it ends
    with evidence, the epoch is "rolled back" — the deterministic sim
    makes re-execution under the same seed an exact rollback — and
    replayed with the corrupted words watched, so the reports carry the
    precise corrupting store.  Evidence signatures pass through an
    in-memory :class:`EvidenceStore`, the same dedupe/persist plumbing
    the CSOD fleet uses.
    """
    truth = program.truth
    store = EvidenceStore()
    process = SimProcess(seed=seed)
    runtime = DoubleTakeRuntime(
        process.machine,
        process.heap,
        ORACLE_DOUBLETAKE_CONFIG,
        seed=seed,
        evidence_store=store,
    )
    program.app().run(process)
    runtime.shutdown()
    reports = runtime.reports
    if runtime.evidence:
        replay_process = SimProcess(seed=seed)
        replay = DoubleTakeRuntime(
            replay_process.machine,
            replay_process.heap,
            ORACLE_DOUBLETAKE_CONFIG,
            seed=seed,
            watch=tuple(runtime.evidence),
            evidence_store=store,
        )
        program.app().run(replay_process)
        replay.shutdown()
        reports = replay.reports
    if truth.defect == DEFECT_DOUBLE_FREE:
        expected_kind = "double-free"
    elif truth.free_before_access:
        expected_kind = "use-after-free-write"
    elif truth.access_offset < 0:
        expected_kind = "buffer-underflow-write"
    else:
        expected_kind = "buffer-overflow-write"
    verdicts = [
        _judge(
            truth,
            report.kind,
            expected_kind,
            report.allocation_context,
            report.access_context,
        )
        for report in reports
    ]
    return _fold(ARM_DOUBLETAKE, verdicts, (r.kind for r in reports))


# Inline arm dispatch, in canonical (registry) order.
INLINE_OBSERVERS = {
    ARM_ASAN: observe_asan,
    ARM_GUARDPAGE: observe_guardpage,
    ARM_GWP_ASAN: observe_gwp_asan,
    ARM_DOUBLETAKE: observe_doubletake,
}


def observe_app(
    program: OracleProgram,
    seed: int,
    arms: Optional[Sequence[str]] = None,
) -> AppObservations:
    """Run the selected inline arms (default: all) for one program."""
    observations = AppObservations(app=program.name)
    for arm in INLINE_OBSERVERS:
        if arms is not None and arm not in arms:
            continue
        observations.arms[arm] = INLINE_OBSERVERS[arm](program, seed)
    return observations


# ----------------------------------------------------------------------
# CSOD fleet results
# ----------------------------------------------------------------------
def classify_csod_results(
    program: OracleProgram, arm: str, results: Sequence[ExecutionResult]
) -> ArmObservation:
    """Judge the fleet's CSOD executions for one (program, arm)."""
    truth = program.truth
    expected_kind = (
        "double-free"
        if truth.defect == DEFECT_DOUBLE_FREE
        else truth.bug_kind
    )
    total = ArmObservation(arm=arm)
    for result in results:
        verdicts = [
            _judge(
                truth,
                record.kind,
                expected_kind,
                record.allocation_context,
                record.access_context,
            )
            for record in result.reports
        ]
        _merge(
            total,
            _fold(arm, verdicts, (r.kind for r in result.reports)),
        )
    return total


# ----------------------------------------------------------------------
# Cross-detector disagreement
# ----------------------------------------------------------------------
@dataclass
class Mismatch:
    """Detectors disagreed on one program (or one of them reported FPs)."""

    app: str
    defect: str
    detected: Tuple[str, ...]
    missed: Tuple[str, ...]
    fp_arms: Tuple[str, ...]
    # arm -> why the miss/detection is consistent with the capability
    # matrix ("sampling miss", "uninstrumented shared library...", ...).
    explanations: Dict[str, str] = field(default_factory=dict)
    # Arms whose behaviour the capability matrix can NOT account for: a
    # deterministic-capability miss, a CAP_NONE detection, or any FP.
    unexplained: Tuple[str, ...] = ()

    @property
    def explained(self) -> bool:
        return not self.unexplained

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "defect": self.defect,
            "detected": list(self.detected),
            "missed": list(self.missed),
            "fp_arms": list(self.fp_arms),
            "explanations": dict(sorted(self.explanations.items())),
            "unexplained": list(self.unexplained),
            "explained": self.explained,
        }


def find_mismatch(
    program: OracleProgram, observations: AppObservations
) -> Optional[Mismatch]:
    """The app's cross-detector disagreement, if any."""
    truth = program.truth
    detected = observations.detected_arms()
    missed = tuple(
        sorted(set(observations.arms) - set(detected))
    )
    fp_arms = observations.fp_arms()
    if not fp_arms and (not detected or not missed):
        return None  # unanimous and clean: no disagreement
    explanations: Dict[str, str] = {}
    unexplained: List[str] = []
    for arm in sorted(observations.arms):
        expectation = truth.expected[arm]
        obs = observations.arms[arm]
        if obs.fp_reports:
            unexplained.append(arm)
            explanations[arm] = "false-positive reports"
            continue
        if obs.detected:
            if expectation.capability == CAP_NONE:
                unexplained.append(arm)
                explanations[arm] = (
                    "detected despite no capability: " + expectation.reason
                )
            elif expectation.capability in (CAP_SAMPLED, CAP_INCIDENTAL):
                explanations[arm] = "caught when sampled"
            continue
        # Missed.
        if expectation.capability == CAP_DETERMINISTIC:
            unexplained.append(arm)
            explanations[arm] = (
                "missed a deterministic capability: " + expectation.reason
            )
        elif expectation.capability == CAP_SAMPLED:
            explanations[arm] = "sampling miss"
        else:
            explanations[arm] = expectation.reason
    return Mismatch(
        app=program.name,
        defect=truth.defect,
        detected=detected,
        missed=missed,
        fp_arms=fp_arms,
        explanations=explanations,
        unexplained=tuple(sorted(unexplained)),
    )
