"""CSOD-specific invariant probes and FN attribution.

The differential verdicts say *whether* CSOD caught a defect; these
probes say whether it behaved like the paper's design while doing so.
They run inline (never in a fleet worker) because they instrument the
live runtime:

* **Watchpoint discipline** — after every install/remove, the number of
  logically watched objects never exceeds the four usable debug
  registers, and :meth:`WatchpointManagementUnit.check_invariants`
  (armed registers == logical slots, per alive thread) holds.
* **Monotonic degradation** — per context, the stored sampling
  probability never increases between revivals: the only permitted
  upward jumps are to exactly ``revive_probability`` from at-or-below
  the floor (§IV-A) and to 1.0 on evidence (§IV-B).
* **Evidence convergence** — re-running a detecting execution with its
  persisted evidence preloaded must detect again (the §V-A2
  guarantee).
* **FN attribution** — when a sampled-capability defect is missed by
  every fleet execution, a re-run with the victim's context signature
  pinned at 100% must catch it.  If even the pinned run misses, the
  miss was *not* sampling: it is a watchpoint/canary logic error, and
  the scorecard says so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import CSODConfig, HOTPATH_LEGACY
from repro.core.runtime import CSODRuntime
from repro.errors import InvalidFreeError
from repro.core.sampling import context_signature
from repro.fleet.pool import execute_spec
from repro.fleet.specs import ExecutionSpec
from repro.machine.debug_registers import NUM_USABLE_DEBUG_REGISTERS
from repro.oracle.generator import OracleProgram
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for

# Tolerance for float comparisons on probability traces.
_EPS = 1e-12

ATTRIBUTION_SAMPLING = "sampling"
ATTRIBUTION_LOGIC = "logic"


@dataclass
class InvariantReport:
    """What one instrumented execution revealed."""

    app: str
    seed: int
    max_armed: int = 0
    armed_limit: int = NUM_USABLE_DEBUG_REGISTERS
    armed_violations: List[str] = field(default_factory=list)
    monotonic_violations: List[str] = field(default_factory=list)
    detected: bool = False
    detected_by_watchpoint: bool = False
    new_evidence: Tuple[str, ...] = ()
    victim_signature: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.armed_violations and not self.monotonic_violations

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "seed": self.seed,
            "max_armed": self.max_armed,
            "armed_limit": self.armed_limit,
            "armed_violations": list(self.armed_violations),
            "monotonic_violations": list(self.monotonic_violations),
            "detected": self.detected,
            "ok": self.ok,
        }


def _monotonic_violations(
    traces: Dict[object, List[float]], config: CSODConfig
) -> List[str]:
    """Upward probability jumps the adaptation rules cannot produce."""
    violations = []
    for key, sequence in traces.items():
        previous = None
        for probability in sequence:
            if previous is not None and probability > previous + _EPS:
                revived = (
                    abs(probability - config.revive_probability) <= _EPS
                    and previous <= config.floor_probability + _EPS
                )
                pinned = probability >= 1.0 - _EPS
                if not (revived or pinned):
                    violations.append(
                        f"{key}: {previous:.3e} -> {probability:.3e}"
                    )
            previous = probability
    return violations


def probe_invariants(
    app_name: str,
    seed: int,
    config: Optional[CSODConfig] = None,
    evidence: Tuple[str, ...] = (),
    victim_marker: Optional[str] = None,
) -> InvariantReport:
    """One instrumented inline execution under CSOD."""
    config = config or CSODConfig()
    # The spies below monkeypatch individual unit methods
    # (sampling.on_allocation, wmu.try_watch, ...).  The batched hot path
    # fuses those steps into one flat routine that would silently bypass
    # instance-level patches, so probes always run the legacy driver —
    # the equivalence harness pins the two drivers to identical
    # behaviour, so invariants verified here hold for both.
    config = config.with_hotpath(HOTPATH_LEGACY)
    process = SimProcess(seed=seed)
    runtime = CSODRuntime(process.machine, process.heap, config, seed=seed)
    if evidence:
        runtime.sampling.preload_known_bad(set(evidence))
    report = InvariantReport(app=app_name, seed=seed)
    sampling = runtime.sampling
    wmu = runtime.wmu

    # --- sampling-rate trace spy ---------------------------------------
    traces: Dict[object, List[float]] = {}
    original_on_allocation = sampling.on_allocation
    original_on_watched = sampling.on_watched

    def spy_on_allocation(stack, tid=0):
        record = original_on_allocation(stack, tid)
        traces.setdefault(record.key, []).append(record.probability)
        return record

    def spy_on_watched(record):
        original_on_watched(record)
        traces.setdefault(record.key, []).append(record.probability)

    sampling.on_allocation = spy_on_allocation
    sampling.on_watched = spy_on_watched

    # --- watchpoint discipline spy -------------------------------------
    def check_wmu() -> None:
        armed = len(wmu.watched_objects())
        report.max_armed = max(report.max_armed, armed)
        if armed > NUM_USABLE_DEBUG_REGISTERS:
            report.armed_violations.append(
                f"{armed} objects watched with only "
                f"{NUM_USABLE_DEBUG_REGISTERS} debug registers"
            )
        try:
            wmu.check_invariants()
        except AssertionError as exc:
            report.armed_violations.append(str(exc))

    original_try_watch = wmu.try_watch
    original_on_deallocation = wmu.on_deallocation

    def spy_try_watch(*args, **kwargs):
        watched = original_try_watch(*args, **kwargs)
        check_wmu()
        return watched

    def spy_on_deallocation(object_address):
        removed = original_on_deallocation(object_address)
        check_wmu()
        return removed

    wmu.try_watch = spy_try_watch
    wmu.on_deallocation = spy_on_deallocation

    app = app_for(app_name)
    try:
        app.run(process)
    except InvalidFreeError as exc:
        # Double-free workloads abort in the allocator; mirror the
        # fleet worker and let the surviving header diagnose it.
        runtime.diagnose_invalid_free(process.main_thread, exc.address)
    runtime.shutdown()

    report.monotonic_violations = _monotonic_violations(traces, config)
    report.detected = runtime.detected
    report.detected_by_watchpoint = runtime.detected_by_watchpoint
    report.new_evidence = tuple(
        sorted(
            context_signature(record.context)
            for record in sampling.records()
            if record.overflow_observed
        )
    )
    if victim_marker is not None:
        for record in sampling.records():
            signature = context_signature(record.context)
            if victim_marker in signature:
                report.victim_signature = signature
                break
    return report


# ----------------------------------------------------------------------
# Evidence convergence (§V-A2)
# ----------------------------------------------------------------------
def evidence_converges(
    app_name: str,
    seed: int,
    evidence: Tuple[str, ...],
    config: Optional[CSODConfig] = None,
) -> bool:
    """Does a re-execution with persisted evidence detect again?"""
    result = execute_spec(
        ExecutionSpec(
            app=app_name,
            seed=seed,
            index=0,
            config=config or CSODConfig(),
            evidence=tuple(evidence),
        )
    )
    return result.detected


# ----------------------------------------------------------------------
# FN attribution
# ----------------------------------------------------------------------
def attribute_fn(
    program: OracleProgram,
    config: CSODConfig,
    seed: int,
) -> str:
    """Why did CSOD miss this program on every fleet execution?

    Pins the victim's context at 100% (the §IV-B evidence mechanism,
    which also wins any replacement-policy eviction) and re-runs.  A
    detection means the victim's watchpoint does fire when armed — the
    fleet misses were the sampler declining to arm it:
    ``ATTRIBUTION_SAMPLING``.  A miss even while pinned means the
    watchpoint/canary machinery itself failed: ``ATTRIBUTION_LOGIC``.
    """
    from repro.oracle.harness import classify_csod_results

    probe = probe_invariants(
        program.name,
        seed,
        config=config,
        victim_marker=program.truth.victim_marker,
    )
    if probe.victim_signature is None:
        return ATTRIBUTION_LOGIC  # the victim context never registered
    pinned = execute_spec(
        ExecutionSpec(
            app=program.name,
            seed=seed,
            index=0,
            config=config,
            evidence=(probe.victim_signature,),
        )
    )
    observation = classify_csod_results(program, "pinned", [pinned])
    return (
        ATTRIBUTION_SAMPLING if observation.detections else ATTRIBUTION_LOGIC
    )
