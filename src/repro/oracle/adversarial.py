"""Constraint-guided adversarial workload generation.

The random oracle explores the sampler's state space by volume; this
module *solves* for its corners.  A bounded model checker searches the
pure transition relation exported by :mod:`repro.core.sampling` (plus a
mirrored GWP-ASan countdown) for a concrete allocation/free/clock
sequence that drives the victim context into a named worst case — the
probability sitting exactly on the floor, an allocation landing on the
very first nanosecond of the next throttle window, a fifth watch
candidate arriving while all four debug registers are armed, a revive
draw racing the floor timer, GWP-ASan's countdown firing into an
exhausted guarded pool.

The search is over *macro-actions* (ping-pong allocation runs, register
blockers, calibrated clock advances), which keeps the bounded search
tractable while the witness it returns is still a fully concrete op
sequence.  Solved sequences are then **lowered** into the same
:class:`~repro.oracle.generator.OracleProgram` shape the random
generator emits — ground-truth manifest included — so the existing
7-arm conformance harness scores them without knowing they were solved
rather than drawn.  The name ``adv:s<seed>:t<target>`` rebuilds the
program anywhere (fleet workers, the triage bisector) through the buggy
registry, exactly like ``oracle:`` genomes.

Corner *reachability* is verified separately by :func:`probe_corner`,
which replays the program under an instrumented legacy-driver runtime
and checks the target predicate against the live unit — the solver
trusts the abstract model, the probe distrusts it.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import CSODConfig, HOTPATH_LEGACY
from repro.core.rng import PerThreadRNG
from repro.core.runtime import CSODRuntime
from repro.core.sampling import (
    SamplerState,
    allocation_transition,
    allocations_to_floor,
    initial_state,
    revive_period_ns,
    throttle_window_ns,
)
from repro.detectors.gwp_asan import GwpAsanConfig, GwpAsanRuntime
from repro.errors import WorkloadError
from repro.machine.debug_registers import NUM_USABLE_DEBUG_REGISTERS
from repro.oracle.grammar import (
    DEFECT_OVER_READ,
    DEFECT_OVER_WRITE,
    GroundTruth,
    expectations,
)
from repro.oracle.generator import OracleProgram
from repro.workloads.base import (
    BuggyAppSpec,
    KIND_OVER_READ,
    RunResult,
    SimProcess,
    SyntheticBuggyApp,
)

ADV_PREFIX = "adv:"

# The main thread's tid (repro.machine.threads counts from 1); revive
# and GWP draws in a single-threaded adversarial program all come from
# this stream.
MAIN_TID = 1

TARGET_FLOOR_PIN = "floor-pin"
TARGET_THROTTLE_EDGE = "throttle-edge"
TARGET_WATCH_EXHAUST = "watch-exhaust"
TARGET_REVIVE_RACE = "revive-race"
TARGET_GWP_COUNTDOWN = "gwp-countdown"

ALL_TARGETS: Tuple[str, ...] = (
    TARGET_FLOOR_PIN,
    TARGET_THROTTLE_EDGE,
    TARGET_WATCH_EXHAUST,
    TARGET_REVIVE_RACE,
    TARGET_GWP_COUNTDOWN,
)

_TARGET_IDS: Dict[str, int] = {t: i for i, t in enumerate(ALL_TARGETS)}

# The access each solved corner carries.  Write-direction corners get
# deterministic canary evidence at teardown (the CSOD arms detect even
# when the corner suppressed the watchpoint); read-direction corners
# leave detection to the watchpoint alone, which is the point for the
# sampling corners.
_TARGET_DEFECT: Dict[str, str] = {
    TARGET_FLOOR_PIN: DEFECT_OVER_READ,
    TARGET_THROTTLE_EDGE: DEFECT_OVER_WRITE,
    TARGET_WATCH_EXHAUST: DEFECT_OVER_WRITE,
    TARGET_REVIVE_RACE: DEFECT_OVER_READ,
    TARGET_GWP_COUNTDOWN: DEFECT_OVER_WRITE,
}

# GWP-ASan configuration the countdown corner is probed under: a pool
# small enough to exhaust within a short program, a countdown that
# skips roughly every other allocation.  (The 7-arm harness still runs
# the program under ORACLE_GWP_CONFIG, where the pool never exhausts.)
PROBE_GWP_CONFIG = GwpAsanConfig(
    sample_every=2, pool_slots=4, quarantine_slots=2
)

# Node budget for the bounded search; generous — the macro-action
# abstraction solves every shipped target within a few hundred nodes.
DEFAULT_NODE_BUDGET = 50_000
_MAX_DEPTH = 6
_GWP_SEARCH_BOUND = 256

# Victim sizes are 16-byte multiples: the guard-page slack is zero, so
# the guard arms' capability is deterministic and the solved corner is
# judged on the sampler behaviour alone.
_VICTIM_SIZES = (32, 48, 64, 96, 128)
_PING_SIZE = 48
_BLOCK_SIZE = 32
_GWP_FILL_SIZE = 48
# Burst allocations are bigger than a page: the page-granular arms
# (guard pages, GWP-ASan) skip oversized requests, so a 5000-strong
# burst cannot drain their guarded pools out from under the victim —
# the corner under test is the CSOD throttle, not pool exhaustion.
_BURST_SIZE = 8192

# Placeholder delta for an advance op whose exact value depends on the
# runtime's cost model; replaced by calibration during lowering.
_CALIBRATE_TO_BOUNDARY = -1


# ----------------------------------------------------------------------
# Name codec
# ----------------------------------------------------------------------
def encode_adv_name(seed: int, target: str) -> str:
    return f"{ADV_PREFIX}s{seed}:t{target}"


def is_adv_name(name: str) -> bool:
    return name.startswith(ADV_PREFIX)


def parse_adv_name(name: str) -> Tuple[int, str]:
    """``adv:s<seed>:t<target>`` -> (seed, target)."""
    parts = name.split(":")
    if (
        len(parts) != 3
        or parts[0] + ":" != ADV_PREFIX
        or not parts[1].startswith("s")
        or not parts[2].startswith("t")
    ):
        raise WorkloadError(
            f"malformed adversarial app name {name!r}; expected "
            f"'{ADV_PREFIX}s<seed>:t<target>'"
        )
    try:
        seed = int(parts[1][1:])
    except ValueError:
        raise WorkloadError(
            f"malformed adversarial app name {name!r}: seed must be an int"
        ) from None
    target = parts[2][1:]
    if target not in ALL_TARGETS:
        raise WorkloadError(
            f"unknown adversarial target {target!r} in {name!r}; "
            f"expected one of {list(ALL_TARGETS)}"
        )
    if seed < 0:
        raise WorkloadError(
            f"adversarial app name {name!r}: seed must be >= 0"
        )
    return seed, target


def _genome_seed(seed: int, target: str) -> int:
    return (seed * 1_000_003 + _TARGET_IDS[target] * 7_919 + 101) & (
        2**63 - 1
    )


# ----------------------------------------------------------------------
# The program shape a solved corner lowers into
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdversarialSpec(BuggyAppSpec):
    """A solved corner's replayable op sequence.

    ``ops`` entries are either ``("alloc", context_id, size, is_victim,
    free_now)`` or ``("advance", delta_ns)``.  The injected access runs
    after the last op; teardown frees whatever is still live (victim
    included, handing the canary checker its evidence).
    """

    target: str = ""
    ops: Tuple[Tuple, ...] = ()


class AdversarialApp(SyntheticBuggyApp):
    """Replays a solved op sequence instead of a drawn schedule."""

    spec: AdversarialSpec

    def __init__(self, spec: AdversarialSpec):
        # Deliberately NOT calling the base __init__: there is no drawn
        # schedule to build.  The site table, access injection, and
        # RunResult contract are inherited unchanged.
        self.spec = spec
        self.events = []
        self.victim_index = -1
        self._sites_cache = None
        self._victim_override = None

    def run(self, process: SimProcess) -> RunResult:
        sites = self.sites()
        process.register_sites(self.all_sites())
        thread = process.main_thread
        heap = process.heap
        cpu = process.machine.cpu
        clock = process.machine.clock
        quantum = process.machine.quantum
        self._victim_override = None

        addresses: Dict[int, int] = {}
        victim_address = -1
        victim_size = 0
        allocations = 0
        for op_index, op in enumerate(self.spec.ops):
            if op[0] == "advance":
                clock.advance(op[1])
                continue
            _, context_id, size, is_victim, free_now = op
            quantum.advance()
            chain = sites[context_id]
            guards = [thread.call_stack.calling(site) for site in chain]
            for guard in guards:
                guard.__enter__()
            try:
                address = heap.malloc(thread, size)
            finally:
                for guard in reversed(guards):
                    guard.__exit__(None, None, None)
            allocations += 1
            if is_victim:
                victim_address, victim_size = address, size
                addresses[op_index] = address
            elif free_now:
                heap.free(thread, address)
            else:
                addresses[op_index] = address

        with thread.call_stack.calling(sites[0][0]):
            with thread.call_stack.calling(self.access_site):
                boundary = (
                    victim_address + victim_size + self.spec.overflow_skip
                )
                if self.spec.bug_kind == KIND_OVER_READ:
                    cpu.load(thread, boundary, self.spec.overflow_length)
                else:
                    junk = b"\xa5" * self.spec.overflow_length
                    cpu.store(thread, boundary, junk)

        for op_index in sorted(addresses):
            heap.free(thread, addresses[op_index])
        return RunResult(
            victim_address=victim_address,
            victim_size=victim_size,
            overflow_performed=True,
            allocations=allocations,
            contexts_touched=self.spec.total_contexts,
        )


# ----------------------------------------------------------------------
# The bounded model checker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Node:
    """One abstract state in the search: the victim context's sampler
    state, the (model) clock, and the armed-register count."""

    sampler: SamplerState
    now_ns: int
    armed: int


@dataclass
class Solution:
    """What the solver found for one (seed, target)."""

    seed: int
    target: str
    solved: bool
    # Macro-action names along the witness path (human-readable).
    path: Tuple[str, ...] = ()
    # Concrete lowered ops (AdversarialSpec.ops, victim op last).
    ops: Tuple[Tuple, ...] = ()
    nodes_explored: int = 0
    depth: int = 0
    # Nanoseconds the throttle-edge calibration inserted (0 elsewhere).
    calibrated_ns: int = 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "target": self.target,
            "solved": self.solved,
            "path": list(self.path),
            "nodes_explored": self.nodes_explored,
            "depth": self.depth,
            "allocations": sum(1 for op in self.ops if op[0] == "alloc"),
        }


def _victim_op(rng: random.Random) -> Tuple:
    return ("alloc", 0, rng.choice(_VICTIM_SIZES), True, False)


def _apply_macro(
    node: _Node, action: Tuple, config: CSODConfig
) -> Tuple[_Node, Tuple[Tuple, ...]]:
    """One macro-action: returns the successor node and its concrete ops."""
    kind = action[0]
    if kind == "ping":
        # n victim-context alloc+free pairs.  With a free debug register
        # each is installed unconditionally ("installation due to
        # availability"), so the halving per pair is deterministic.
        count = action[1]
        sampler = node.sampler
        watched = node.armed < NUM_USABLE_DEBUG_REGISTERS
        for _ in range(count):
            sampler, _ = allocation_transition(
                sampler, node.now_ns, config, watched=watched
            )
        ops = tuple(
            ("alloc", 0, _PING_SIZE, False, True) for _ in range(count)
        )
        return replace(node, sampler=sampler), ops
    if kind == "block":
        # Long-lived allocations from non-victim contexts occupy every
        # debug register (availability installs them back to back).
        count = action[1]
        ops = tuple(
            ("alloc", 1 + i, _BLOCK_SIZE, False, False)
            for i in range(count)
        )
        return replace(node, armed=node.armed + count), ops
    if kind == "burst":
        # A rapid same-window allocation run from the victim context.
        count = action[1]
        sampler = node.sampler
        watched = node.armed < NUM_USABLE_DEBUG_REGISTERS
        for _ in range(count):
            sampler, _ = allocation_transition(
                sampler, node.now_ns, config, watched=watched
            )
        ops = tuple(
            ("alloc", 0, _BURST_SIZE, False, True) for _ in range(count)
        )
        return replace(node, sampler=sampler), ops
    if kind == "advance":
        delta = action[1]
        return replace(node, now_ns=node.now_ns + delta), (
            ("advance", delta),
        )
    if kind == "edge":
        # Jump to the exact end of the victim context's current throttle
        # window.  The concrete delta depends on the runtime's cost
        # model, so the lowered op is a calibration placeholder.
        boundary = node.sampler.window_start_ns + throttle_window_ns(config)
        return replace(node, now_ns=boundary), (
            ("advance", _CALIBRATE_TO_BOUNDARY),
        )
    raise WorkloadError(f"unknown macro action {kind!r}")


def _macro_menu(node: _Node, config: CSODConfig) -> List[Tuple]:
    """Macro-actions applicable from ``node`` (the branching relation)."""
    floor_count = max(1, allocations_to_floor(config))
    menu: List[Tuple] = [
        ("ping", 1),
        ("ping", floor_count),
        # One past the floor count: the extra allocation's revive check
        # sees the floor and starts the revive timer.
        ("ping", floor_count + 1),
        ("advance", revive_period_ns(config)),
        ("burst", config.throttle_alloc_threshold + 1),
    ]
    if node.armed == 0:
        menu.append(("block", NUM_USABLE_DEBUG_REGISTERS))
    if node.sampler.throttled_until_ns > node.now_ns:
        menu.append(("edge",))
    return menu


def _predicate_holds(target: str, node: _Node, config: CSODConfig) -> bool:
    """Does allocating the victim from ``node`` realize the corner?"""
    floor = config.floor_probability
    if target == TARGET_FLOOR_PIN:
        # The victim's draw happens with the stored probability exactly
        # on the floor (and a register is free, so the miss — if any —
        # is purely the sampler's).
        return (
            node.sampler.probability == floor
            and node.armed < NUM_USABLE_DEBUG_REGISTERS
            and node.sampler.throttled_until_ns <= node.now_ns
        )
    if target == TARGET_THROTTLE_EDGE:
        # The victim allocation lands on the first nanosecond past the
        # throttled window: the half-open [start, start + window) rules
        # roll the window, and the throttle that expires at this same
        # instant no longer applies.
        boundary = node.sampler.window_start_ns + throttle_window_ns(config)
        return (
            node.sampler.throttled_until_ns == boundary
            and node.now_ns == boundary
        )
    if target == TARGET_WATCH_EXHAUST:
        # The victim is the (armed + 1)-th concurrent candidate: no free
        # register, so availability cannot install it.
        return node.armed == NUM_USABLE_DEBUG_REGISTERS
    if target == TARGET_REVIVE_RACE:
        # The victim's own allocation step reaches the revive draw.
        _, draw_made = allocation_transition(
            node.sampler, node.now_ns, config, watched=False
        )
        return draw_made
    raise WorkloadError(f"unknown adversarial target {target!r}")


def _solve_sampler_target(
    seed: int, target: str, config: CSODConfig, node_budget: int
) -> Solution:
    """Breadth-first bounded search over the macro-action relation."""
    rng = random.Random(_genome_seed(seed, target))
    victim = _victim_op(rng)
    root = _Node(sampler=initial_state(config), now_ns=0, armed=0)
    queue = deque([(root, (), ())])  # (node, path, ops)
    visited = {root}
    explored = 0
    while queue and explored < node_budget:
        node, path, ops = queue.popleft()
        explored += 1
        if _predicate_holds(target, node, config):
            return Solution(
                seed=seed,
                target=target,
                solved=True,
                path=path + ("victim",),
                ops=ops + (victim,),
                nodes_explored=explored,
                depth=len(path),
            )
        if len(path) >= _MAX_DEPTH:
            continue
        for action in _macro_menu(node, config):
            successor, new_ops = _apply_macro(node, action, config)
            if successor in visited:
                continue
            visited.add(successor)
            queue.append(
                (successor, path + (action[0],), ops + new_ops)
            )
    return Solution(
        seed=seed, target=target, solved=False, nodes_explored=explored
    )


def _solve_gwp_target(
    seed: int, target: str, node_budget: int
) -> Solution:
    """Mirror GWP-ASan's countdown against a drained pool.

    Replays ``_should_sample`` with the same per-thread stream the live
    runtime seeds (``PerThreadRNG(base_seed)``, main-thread tid) and a
    pool counter, searching for the first allocation whose countdown
    fires *after* every guarded slot is held live — the sample that
    falls through to the raw allocator.
    """
    config = PROBE_GWP_CONFIG
    base_seed = _base_seed(seed, target)
    mirror = PerThreadRNG(base_seed)
    next_sample = 0
    pool_free = config.pool_slots
    explored = 0
    for index in range(min(_GWP_SEARCH_BOUND, node_budget)):
        explored += 1
        if config.sample_every == 1:
            sampled = True
        elif next_sample > 0:
            next_sample -= 1
            sampled = False
        else:
            next_sample = 1 + mirror.below(
                MAIN_TID, 2 * config.sample_every - 1
            )
            sampled = True
        if sampled:
            if pool_free == 0:
                rng = random.Random(_genome_seed(seed, target))
                fill = tuple(
                    ("alloc", 1, _GWP_FILL_SIZE, False, False)
                    for _ in range(index)
                )
                return Solution(
                    seed=seed,
                    target=target,
                    solved=True,
                    path=("fill",) * index + ("victim",),
                    ops=fill + (_victim_op(rng),),
                    nodes_explored=explored,
                    depth=index,
                )
            pool_free -= 1  # guarded and held live: the pool drains
    return Solution(
        seed=seed, target=target, solved=False, nodes_explored=explored
    )


def _csod_arm_config() -> CSODConfig:
    from repro.detectors import get as get_detector
    from repro.oracle.grammar import ARM_CSOD

    return get_detector(ARM_CSOD).config()


def solve_target(
    seed: int, target: str, node_budget: int = DEFAULT_NODE_BUDGET
) -> Solution:
    """Solve one named corner; deterministic in (seed, target)."""
    if target not in ALL_TARGETS:
        raise WorkloadError(
            f"unknown adversarial target {target!r}; "
            f"expected one of {list(ALL_TARGETS)}"
        )
    if target == TARGET_GWP_COUNTDOWN:
        return _solve_gwp_target(seed, target, node_budget)
    return _solve_sampler_target(
        seed, target, _csod_arm_config(), node_budget
    )


# ----------------------------------------------------------------------
# Lowering: Solution -> OracleProgram
# ----------------------------------------------------------------------
def _base_seed(seed: int, target: str) -> int:
    return (_genome_seed(seed, target) * 2_654_435_761 + 97) % (2**31)


def _spec_from_ops(
    seed: int, target: str, ops: Tuple[Tuple, ...]
) -> AdversarialSpec:
    name = encode_adv_name(seed, target)
    slug = target.upper().replace("-", "_")
    vuln_module = f"ADV_S{seed}_{slug}/VULN"
    alloc_ops = [op for op in ops if op[0] == "alloc"]
    victim_index = next(
        i for i, op in enumerate(alloc_ops) if op[3]
    )
    contexts = {op[1] for op in alloc_ops}
    total_contexts = max(contexts) + 1
    defect = _TARGET_DEFECT[target]
    return AdversarialSpec(
        name=name,
        bug_kind=defect,
        vuln_module=vuln_module,
        reference="adversarial-solved",
        total_contexts=total_contexts,
        total_allocations=len(alloc_ops),
        before_contexts=total_contexts,
        before_allocations=len(alloc_ops),
        victim_alloc_index=victim_index + 1,
        overflow_length=8,
        overflow_skip=0,
        structural_seed=_genome_seed(seed, target) & (2**31 - 1),
        context_depth=4,
        target=target,
        ops=ops,
    )


def _calibrate_boundary(
    spec: AdversarialSpec, base_seed: int
) -> Tuple[AdversarialSpec, int]:
    """Resolve the throttle-edge placeholder advance.

    The model places the victim allocation exactly at ``window_start +
    window_ns``, but the live clock also moves with every charged op
    cost, which the abstract search cannot see.  One instrumented run
    with a zero placeholder measures the victim's actual arrival time
    and the live window start; the difference is the advance that puts
    the victim on the boundary nanosecond.  Deterministic: the measured
    run is a pure function of (spec, base_seed, arm config).
    """
    placeholder_index = next(
        i
        for i, op in enumerate(spec.ops)
        if op[0] == "advance" and op[1] == _CALIBRATE_TO_BOUNDARY
    )
    probe_ops = list(spec.ops)
    probe_ops[placeholder_index] = ("advance", 0)
    probe_spec = replace(spec, ops=tuple(probe_ops))

    config = _csod_arm_config().with_hotpath(HOTPATH_LEGACY)
    process = SimProcess(seed=base_seed)
    runtime = CSODRuntime(
        process.machine, process.heap, config, seed=base_seed
    )
    sampling = runtime.sampling
    calls: List[Tuple[int, int]] = []
    original = sampling._update_throttle

    def spy(record):
        calls.append((process.machine.clock.now_ns, record.window_start_ns))
        original(record)

    sampling._update_throttle = spy
    AdversarialApp(probe_spec).run(process)
    runtime.shutdown()
    if not calls:
        raise WorkloadError(f"{spec.name}: calibration saw no allocations")
    # The victim is the last allocation of the program, so the last
    # throttle update is its own; the window it must land at the end of
    # is the one the burst opened.
    victim_now, window_start = calls[-1]
    window_ns = throttle_window_ns(config)
    delta = window_start + window_ns - victim_now
    if delta < 0:
        raise WorkloadError(
            f"{spec.name}: victim arrived {-delta}ns past the boundary "
            "before calibration; the burst overran the throttle window"
        )
    final_ops = list(spec.ops)
    final_ops[placeholder_index] = ("advance", delta)
    return replace(spec, ops=tuple(final_ops)), delta


def lower(solution: Solution) -> OracleProgram:
    """Lower a solved corner into a scoreable oracle program."""
    if not solution.solved:
        raise WorkloadError(
            f"target {solution.target!r} unsolved at seed "
            f"{solution.seed} ({solution.nodes_explored} nodes explored)"
        )
    base_seed = _base_seed(solution.seed, solution.target)
    spec = _spec_from_ops(solution.seed, solution.target, solution.ops)
    if any(
        op[0] == "advance" and op[1] == _CALIBRATE_TO_BOUNDARY
        for op in spec.ops
    ):
        spec, delta = _calibrate_boundary(spec, base_seed)
        solution.calibrated_ns = delta
        solution.ops = spec.ops
    defect = _TARGET_DEFECT[solution.target]
    access_kind = "write" if defect == DEFECT_OVER_WRITE else "read"
    victim_size = next(op[2] for op in spec.ops if op[0] == "alloc" and op[3])
    truth = GroundTruth(
        app=spec.name,
        defect=defect,
        access_kind=access_kind,
        bug_kind=defect,
        benign=False,
        victim_size=victim_size,
        access_offset=0,
        access_length=8,
        in_library=False,
        free_before_access=False,
        victim_marker=f"{spec.vuln_module}/alloc.c:500",
        access_marker=f"{spec.vuln_module}/overflow.c:42",
        expected=expectations(defect, access_kind, 0, 8, False, victim_size),
    )
    return OracleProgram(
        name=spec.name, spec=spec, truth=truth, base_seed=base_seed
    )


# Solutions and lowered programs are cached per process: fleet workers
# rebuild by name once, and repeated harness phases reuse the solve.
_solution_cache: Dict[Tuple[int, str], Solution] = {}
_program_cache: Dict[Tuple[int, str], OracleProgram] = {}


def solve_program(
    seed: int, target: str, node_budget: int = DEFAULT_NODE_BUDGET
) -> OracleProgram:
    """Solve + lower, cached; the ``adv:`` name resolves through here."""
    key = (seed, target)
    program = _program_cache.get(key)
    if program is None:
        solution = _solution_cache.get(key)
        if solution is None:
            solution = solve_target(seed, target, node_budget)
            _solution_cache[key] = solution
        program = lower(solution)
        _program_cache[key] = program
    return program


def solution_for(seed: int, target: str) -> Solution:
    """The (cached) solver witness for one corner."""
    solve_program(seed, target)
    return _solution_cache[(seed, target)]


def program_from_name(name: str) -> OracleProgram:
    """Rebuild a solved program from its self-describing name."""
    seed, target = parse_adv_name(name)
    return solve_program(seed, target)


def adversarial_app_from_name(
    name: str, scale: Optional[float] = None
) -> AdversarialApp:
    """The runnable app for an ``adv:`` name (the registry hook).

    Solved corners do not scale: shrinking the op sequence would break
    the very predicate the solver established.
    """
    if scale is not None and scale < 1.0:
        raise WorkloadError(
            f"adversarial program {name!r} cannot be scaled: the solved "
            "op sequence realizes an exact sampler corner"
        )
    return AdversarialApp(program_from_name(name).spec)


# ----------------------------------------------------------------------
# Corner probes: verify the predicate against the live runtime
# ----------------------------------------------------------------------
@dataclass
class CornerReport:
    """Did the live runtime actually reach the solved corner?"""

    app: str
    target: str
    seed: int
    reached: bool
    details: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "target": self.target,
            "seed": self.seed,
            "reached": self.reached,
            "details": dict(sorted(self.details.items())),
        }


def _probe_csod_corner(program: OracleProgram) -> CornerReport:
    """One instrumented legacy-driver run checking the sampler corner."""
    spec: AdversarialSpec = program.spec  # type: ignore[assignment]
    target = spec.target
    config = _csod_arm_config().with_hotpath(HOTPATH_LEGACY)
    process = SimProcess(seed=program.base_seed)
    runtime = CSODRuntime(
        process.machine, process.heap, config, seed=program.base_seed
    )
    sampling = runtime.sampling
    wmu = runtime.wmu
    clock = process.machine.clock
    report = CornerReport(
        app=program.name,
        target=target,
        seed=program.base_seed,
        reached=False,
    )

    alloc_probs: List[float] = []
    original_on_allocation = sampling.on_allocation

    def spy_on_allocation(stack, tid=0):
        record = original_on_allocation(stack, tid)
        alloc_probs.append(record.probability)
        return record

    sampling.on_allocation = spy_on_allocation

    throttle_calls: List[Tuple[int, int, int, int]] = []
    original_throttle = sampling._update_throttle

    def spy_throttle(record):
        before = (clock.now_ns, record.window_start_ns)
        original_throttle(record)
        throttle_calls.append(
            before + (record.window_alloc_count, record.throttled_until_ns)
        )

    sampling._update_throttle = spy_throttle

    watch_states: List[Tuple[int, int]] = []
    original_try_watch = wmu.try_watch

    def spy_try_watch(*args, **kwargs):
        watch_states.append(
            (len(wmu.watched_objects()), wmu.free_slots())
        )
        return original_try_watch(*args, **kwargs)

    wmu.try_watch = spy_try_watch

    revive_draws: List[int] = []
    in_revive: List[bool] = [False]
    original_revive = sampling._maybe_revive
    rng = sampling._rng
    original_uniform = rng.uniform

    def spy_uniform(tid):
        if in_revive[0]:
            revive_draws.append(tid)
        return original_uniform(tid)

    rng.uniform = spy_uniform

    revive_events: List[int] = []

    def spy_revive(record, tid=0):
        in_revive[0] = True
        draws_before = len(revive_draws)
        try:
            original_revive(record, tid)
        finally:
            in_revive[0] = False
        if len(revive_draws) > draws_before:
            revive_events.append(len(alloc_probs))

    sampling._maybe_revive = spy_revive

    AdversarialApp(spec).run(process)
    runtime.shutdown()

    floor = config.floor_probability
    if target == TARGET_FLOOR_PIN:
        victim_probability = alloc_probs[-1] if alloc_probs else -1.0
        report.reached = victim_probability == floor
        report.details = {
            "victim_probability": victim_probability,
            "floor": floor,
        }
    elif target == TARGET_THROTTLE_EDGE:
        now, window_start, count_after, throttled_until = throttle_calls[-1]
        window_ns = throttle_window_ns(config)
        on_boundary = now == window_start + window_ns
        engaged_before = any(
            t_until == w_start + window_ns and t_until > t_now
            for t_now, w_start, _count, t_until in throttle_calls[:-1]
        )
        # The boundary allocation opens the next window (count resets
        # to 1) and is NOT throttled: ``throttled_until > now`` is
        # false at the expiry instant.
        not_throttled = throttled_until <= now
        report.reached = on_boundary and engaged_before and (
            count_after == 1
        ) and not_throttled
        report.details = {
            "victim_now_ns": now,
            "window_start_ns": window_start,
            "window_ns": window_ns,
            "count_after": count_after,
            "engaged_before": engaged_before,
            "throttled_at_victim": not not_throttled,
        }
    elif target == TARGET_WATCH_EXHAUST:
        armed, free = watch_states[-1] if watch_states else (-1, -1)
        report.reached = (
            armed == NUM_USABLE_DEBUG_REGISTERS and free == 0
        )
        report.details = {
            "armed_at_victim": armed,
            "free_slots_at_victim": free,
            "limit": NUM_USABLE_DEBUG_REGISTERS,
        }
    elif target == TARGET_REVIVE_RACE:
        # _maybe_revive runs inside on_allocation, before the spy above
        # appends that allocation's probability: the event index it
        # records is 0-based, so the victim (the final allocation) shows
        # up as len(alloc_probs) - 1.
        victim_call = len(alloc_probs) - 1
        draw_at_victim = bool(revive_events) and (
            revive_events[-1] == victim_call
        )
        from_main = bool(revive_draws) and revive_draws[-1] == MAIN_TID
        report.reached = draw_at_victim and from_main
        report.details = {
            "revive_draw_at_victim": draw_at_victim,
            "draw_tid": revive_draws[-1] if revive_draws else None,
            "main_tid": MAIN_TID,
        }
    else:
        raise WorkloadError(f"unknown CSOD corner target {target!r}")
    return report


def _probe_gwp_corner(program: OracleProgram) -> CornerReport:
    """Run under the small-pool GWP config; verify the raw fallback."""
    spec: AdversarialSpec = program.spec  # type: ignore[assignment]
    process = SimProcess(seed=program.base_seed)
    runtime = GwpAsanRuntime(
        process.machine,
        process.heap,
        PROBE_GWP_CONFIG,
        seed=program.base_seed,
    )
    samples: List[Tuple[bool, bool]] = []  # (sampled, pool_empty)
    original_should_sample = runtime._should_sample
    pool = runtime.pool
    original_acquire = pool.acquire

    def spy_should_sample(thread):
        sampled = original_should_sample(thread)
        samples.append((sampled, len(pool._free) == 0))
        return sampled

    def spy_acquire():
        return original_acquire()

    runtime._should_sample = spy_should_sample
    pool.acquire = spy_acquire

    AdversarialApp(spec).run(process)
    runtime.shutdown()

    sampled, pool_empty = samples[-1] if samples else (False, False)
    return CornerReport(
        app=program.name,
        target=spec.target,
        seed=program.base_seed,
        reached=sampled and pool_empty,
        details={
            "victim_sampled": sampled,
            "pool_empty_at_victim": pool_empty,
            "pool_slots": PROBE_GWP_CONFIG.pool_slots,
            "sample_every": PROBE_GWP_CONFIG.sample_every,
        },
    )


def probe_corner(program: OracleProgram) -> CornerReport:
    """Verify one solved program's corner against the live runtime."""
    spec = program.spec
    if not isinstance(spec, AdversarialSpec):
        raise WorkloadError(
            f"{program.name} is not an adversarial program"
        )
    if spec.target == TARGET_GWP_COUNTDOWN:
        return _probe_gwp_corner(program)
    return _probe_csod_corner(program)


# ----------------------------------------------------------------------
# The adversarial campaign
# ----------------------------------------------------------------------
@dataclass
class AdversarialRun:
    """One adversarial campaign: solved programs, 7-arm scoring, probes."""

    solutions: List[Solution]
    programs: List[OracleProgram]
    corners: List[CornerReport]
    oracle_run: object  # repro.oracle.runner.OracleRun
    scorecard: dict


def run_adversarial(
    seed: int = 0,
    targets: Sequence[str] = ALL_TARGETS,
    workers: int = 1,
    executions_per_app: int = 3,
    node_budget: int = DEFAULT_NODE_BUDGET,
    telemetry=None,
) -> AdversarialRun:
    """Solve every target, score through the 7-arm harness, probe corners.

    The scorecard is the ordinary oracle scorecard plus a ``targets``
    section recording, per target: the solver witness, whether the live
    runtime reached the corner, and the probe measurements.
    """
    from repro.oracle.runner import OracleSettings, run_oracle

    for target in targets:
        if target not in ALL_TARGETS:
            raise WorkloadError(
                f"unknown adversarial target {target!r}; "
                f"expected one of {list(ALL_TARGETS)}"
            )
    solutions = [
        solve_target(seed, target, node_budget) for target in targets
    ]
    solved = [s for s in solutions if s.solved]
    programs = [lower(s) for s in solved]
    settings = OracleSettings(
        budget=max(1, len(programs)),
        seed=seed,
        workers=workers,
        executions_per_app=executions_per_app,
    )
    oracle_run = run_oracle(
        settings, telemetry=telemetry, programs=programs
    )
    corners = [probe_corner(program) for program in programs]

    scorecard = dict(oracle_run.scorecard)
    scorecard["targets"] = {
        s.target: {
            "solution": s.to_dict(),
            "corner": corner.to_dict() if corner is not None else None,
        }
        for s, corner in zip(
            solved, corners
        )
    }
    scorecard["targets"].update(
        {
            s.target: {"solution": s.to_dict(), "corner": None}
            for s in solutions
            if not s.solved
        }
    )
    if telemetry is not None:
        telemetry(
            {"event": "adversarial_scorecard", "scorecard": scorecard}
        )
    return AdversarialRun(
        solutions=solutions,
        programs=programs,
        corners=corners,
        oracle_run=oracle_run,
        scorecard=scorecard,
    )
