"""Analysis tools: a fast abstract model of CSOD's detection dynamics.

The full simulation executes every allocation against the machine
substrate (heap, watchpoint syscalls, canaries).  For parameter
exploration — "what detection rate would knob X give on workload Y?" —
that fidelity is wasted: detection probability depends only on the
sampling mathematics and the allocation schedule.

:class:`~repro.analysis.abstract_model.AbstractDetector` replays just
that: per-context probabilities with all §III-B2 rules, four abstract
slots with the configured replacement policy, and the victim's fate.  It
agrees with the full simulation's Table II rates (cross-checked in the
test suite) while running an order of magnitude faster.
"""

from repro.analysis.abstract_model import (
    AbstractDetector,
    estimate_detection_rate,
)

__all__ = ["AbstractDetector", "estimate_detection_rate"]
