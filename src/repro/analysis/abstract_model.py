"""The abstract detection model.

Replays a :class:`~repro.workloads.base.BuggyAppSpec` schedule against
*only* the sampling mathematics: per-context probabilities with every
§III-B2/§IV-A rule, four abstract watchpoint slots driven by the real
replacement-policy classes, watchpoint ageing, and the victim's fate at
the overflow access.  No heap, no syscalls, no canaries — which makes it
roughly an order of magnitude faster than the full simulation while
agreeing with its detection rates (the test suite cross-checks this).

Statistical agreement is the contract: individual executions use their
own RNG stream and will not match the full simulation run-for-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import CSODConfig
from repro.core.policies import ReplacementPolicy, make_policy
from repro.core.rng import PerThreadRNG
from repro.machine.clock import NANOS_PER_SECOND
from repro.workloads.base import BuggyAppSpec, SyntheticBuggyApp

_SLOTS = 4


@dataclass
class _AbstractContext:
    probability: float
    allocation_count: int = 0
    watch_count: int = 0
    window_start_ns: int = 0
    window_alloc_count: int = 0
    throttled_until_ns: int = 0
    floor_since_ns: int = -1
    pinned: bool = False


@dataclass
class _AbstractSlot:
    context_id: int
    event_index: int
    install_time_ns: int


class AbstractDetector:
    """One abstract execution of one buggy application."""

    def __init__(
        self,
        spec: BuggyAppSpec,
        config: Optional[CSODConfig] = None,
        seed: int = 0,
        _app: Optional[SyntheticBuggyApp] = None,
    ):
        self.spec = spec
        self.config = config or CSODConfig()
        self.seed = seed
        self._app = _app or SyntheticBuggyApp(spec)
        self._rng = PerThreadRNG(seed)
        self._policy: ReplacementPolicy = make_policy(
            self.config.replacement_policy, _SLOTS
        )
        self._contexts: Dict[int, _AbstractContext] = {}
        self._slots: List[Optional[_AbstractSlot]] = [None] * _SLOTS
        self._now_ns = 0
        self.watched_times = 0

    # ------------------------------------------------------------------
    # Sampling rules (mirrors core.sampling on purpose)
    # ------------------------------------------------------------------
    def _context(self, context_id: int) -> _AbstractContext:
        ctx = self._contexts.get(context_id)
        if ctx is None:
            ctx = _AbstractContext(probability=self.config.initial_probability)
            self._contexts[context_id] = ctx
        return ctx

    def _clamp(self, probability: float) -> float:
        return max(self.config.floor_probability, min(1.0, probability))

    def _on_allocation(self, context_id: int) -> _AbstractContext:
        config = self.config
        ctx = self._context(context_id)
        ctx.allocation_count += 1
        if ctx.pinned:
            return ctx
        ctx.probability = self._clamp(
            ctx.probability - config.degradation_per_alloc
        )
        window_ns = int(config.throttle_window_seconds * NANOS_PER_SECOND)
        if self._now_ns - ctx.window_start_ns > window_ns:
            ctx.window_start_ns = self._now_ns
            ctx.window_alloc_count = 0
        ctx.window_alloc_count += 1
        if (
            ctx.window_alloc_count > config.throttle_alloc_threshold
            and ctx.throttled_until_ns <= self._now_ns
        ):
            ctx.throttled_until_ns = ctx.window_start_ns + window_ns
            ctx.probability = config.floor_probability
        if ctx.probability > config.floor_probability:
            ctx.floor_since_ns = -1
        else:
            period_ns = int(config.revive_period_seconds * NANOS_PER_SECOND)
            if ctx.floor_since_ns < 0:
                ctx.floor_since_ns = self._now_ns
            elif self._now_ns - ctx.floor_since_ns >= period_ns:
                ctx.floor_since_ns = self._now_ns
                if self._rng.uniform(tid=0) < config.revive_chance:
                    ctx.probability = config.revive_probability
        return ctx

    def _effective(self, ctx: _AbstractContext) -> float:
        if ctx.pinned:
            return 1.0
        if ctx.throttled_until_ns > self._now_ns:
            return self.config.throttle_probability
        return ctx.probability

    def _slot_probability(self, slot: _AbstractSlot) -> float:
        base = self._effective(self._contexts[slot.context_id])
        period_ns = int(self.config.watchpoint_age_seconds * NANOS_PER_SECOND)
        age_ns = self._now_ns - slot.install_time_ns
        if period_ns <= 0 or age_ns < period_ns:
            return base
        return base * (0.5 ** min(age_ns // period_ns, 60))

    def _on_watched(self, ctx: _AbstractContext) -> None:
        ctx.watch_count += 1
        self.watched_times += 1
        if not ctx.pinned:
            ctx.probability = self._clamp(
                ctx.probability * self.config.watch_degradation_factor
            )

    # ------------------------------------------------------------------
    # The abstract execution
    # ------------------------------------------------------------------
    def run(self) -> bool:
        """True iff the overflow access would fire a watchpoint."""
        events = self._app._events_for_run(self.seed)
        victim_index = next(i for i, e in enumerate(events) if e.is_victim)
        pending_frees: Dict[int, List[int]] = {}
        detected = False
        work_ns = self.spec.work_ns_per_alloc

        for event in events:
            for index in pending_frees.pop(event.index, ()):
                self._free_slot_for(index)
            ctx = self._on_allocation(event.context_id)
            draw = self._rng.uniform(tid=1) < self._effective(ctx)
            self._try_watch(event.index, event.context_id, ctx, draw)
            if event.free_after is not None:
                pending_frees.setdefault(event.free_after, []).append(event.index)
            self._now_ns += work_ns
            if event.index + 1 == self.spec.before_allocations:
                detected = self._victim_watched(victim_index)
                if detected:
                    # A real trap pins the context (§IV-B persistence).
                    self._contexts[0].pinned = True
        return detected

    def _victim_watched(self, victim_index: int) -> bool:
        return any(
            slot is not None and slot.event_index == victim_index
            for slot in self._slots
        )

    def _free_slot_for(self, event_index: int) -> None:
        for i, slot in enumerate(self._slots):
            if slot is not None and slot.event_index == event_index:
                self._slots[i] = None
                self._policy.on_freed(i)
                return

    def _try_watch(self, event_index, context_id, ctx, draw_passed) -> None:
        free_index = next(
            (i for i, slot in enumerate(self._slots) if slot is None), None
        )
        if free_index is not None:
            self._install(free_index, event_index, context_id, ctx)
            return
        if not draw_passed:
            return
        view = [
            (i, self._slot_probability(slot))
            for i, slot in enumerate(self._slots)
            if slot is not None
        ]
        victim = self._policy.select_victim(
            view, self._effective(ctx), self._rng, tid=1
        )
        if victim is None:
            return
        self._slots[victim] = None
        self._policy.on_replaced(victim)
        self._install(victim, event_index, context_id, ctx)

    def _install(self, slot_index, event_index, context_id, ctx) -> None:
        self._slots[slot_index] = _AbstractSlot(
            context_id=context_id,
            event_index=event_index,
            install_time_ns=self._now_ns,
        )
        self._on_watched(ctx)


def estimate_detection_rate(
    spec: BuggyAppSpec,
    config: Optional[CSODConfig] = None,
    runs: int = 200,
    seed_base: int = 0,
) -> float:
    """Monte-Carlo detection-rate estimate over ``runs`` abstract runs."""
    app = SyntheticBuggyApp(spec)
    hits = 0
    for seed in range(seed_base, seed_base + runs):
        detector = AbstractDetector(spec, config, seed=seed, _app=app)
        hits += detector.run()
    return hits / runs
