"""The guard-page runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.callstack.backtrace import Backtracer
from repro.callstack.contexts import CallingContext
from repro.errors import ReproError
from repro.heap.interpose import RawHeap
from repro.heap.size_classes import MIN_ALIGNMENT
from repro.machine.address_space import PAGE_SIZE
from repro.machine.machine import Machine
from repro.machine.signals import SIGSEGV, SigInfo
from repro.machine.threads import SimThread

# A reserved VA range for guard slots, away from the main heap arena.
GUARD_REGION_BASE = 0x7E00_0000_0000

# Cost model: the sampling counter is nearly free; a sampled allocation
# pays two mmap-grade syscalls (map the slot, later protect it).
EVENT_GUARD_SAMPLE = "guardpage.sample_check"
EVENT_GUARD_SETUP = "guardpage.setup"
SAMPLE_CHECK_COST_NS = 2
GUARD_SETUP_COST_NS = 2_500

# Ledger events whose nanoseconds count as guard-page runtime overhead.
GUARDPAGE_OVERHEAD_EVENTS = (EVENT_GUARD_SAMPLE, EVENT_GUARD_SETUP)


@dataclass(frozen=True)
class GuardPageConfig:
    """Tunables of the sampler."""

    # One in `sample_every` allocations lands on a guarded slot
    # (GWP-ASan ships with ~1/5000 in production).
    sample_every: int = 1000
    # Cap on concurrently guarded live objects (pool size).
    max_guarded: int = 16

    def __post_init__(self):
        if self.sample_every < 1:
            raise ReproError("sample_every must be >= 1")
        if self.max_guarded < 1:
            raise ReproError("max_guarded must be >= 1")


@dataclass(frozen=True)
class GuardPageReport:
    """One guard-page fault attribution."""

    kind: str  # "overflow", "use-after-free", or "double-free"
    fault_address: int
    object_address: int
    object_size: int
    thread_id: int
    allocation_context: CallingContext


@dataclass
class _GuardSlot:
    page_base: int
    object_address: int
    object_size: int
    context: CallingContext
    freed: bool = False


class GuardPageRuntime:
    """Samples allocations onto guarded pages; faults become reports.

    The process still dies on the fault (GWP-ASan reports from the crash
    handler); experiment drivers catch the SegmentationFault and read
    ``reports``.
    """

    def __init__(
        self,
        machine: Machine,
        interposer,
        config: Optional[GuardPageConfig] = None,
        seed: int = 0,
    ):
        from repro.core.rng import PerThreadRNG

        self.machine = machine
        self.config = config or GuardPageConfig()
        self._raw: RawHeap = interposer.raw
        self._interposer = interposer
        self._rng = PerThreadRNG(seed, machine.ledger)
        self._backtracer = Backtracer(machine.ledger)
        self._slots: Dict[int, _GuardSlot] = {}  # object address -> slot
        self._freed_slots: Dict[int, _GuardSlot] = {}  # page base -> slot
        self._next_page = GUARD_REGION_BASE
        self.reports: List[GuardPageReport] = []
        self.sampled_count = 0
        self.allocation_count = 0
        machine.signals.sigaction(SIGSEGV, self._on_segv)
        interposer.preload(self)

    # ------------------------------------------------------------------
    # HeapLibrary surface
    # ------------------------------------------------------------------
    def malloc(self, thread: SimThread, size: int) -> int:
        self.allocation_count += 1
        self.machine.ledger.record(
            EVENT_GUARD_SAMPLE, nanos_each=SAMPLE_CHECK_COST_NS
        )
        if (
            size <= PAGE_SIZE
            and len(self._slots) < self.config.max_guarded
            and self._rng.below(thread.tid, self.config.sample_every) == 0
        ):
            return self._guarded_alloc(thread, size)
        return self._raw.malloc(thread, size)

    def memalign(self, thread: SimThread, alignment: int, size: int) -> int:
        self.allocation_count += 1
        return self._raw.memalign(thread, alignment, size)

    def free(self, thread: SimThread, address: int) -> None:
        slot = self._slots.pop(address, None)
        if slot is None:
            for freed in self._freed_slots.values():
                if freed.object_address == address:
                    # Second free of a guarded object: the freed-slot
                    # bookkeeping identifies it deterministically.
                    self.reports.append(
                        GuardPageReport(
                            kind="double-free",
                            fault_address=address,
                            object_address=freed.object_address,
                            object_size=freed.object_size,
                            thread_id=thread.tid,
                            allocation_context=freed.context,
                        )
                    )
                    return
            self._raw.free(thread, address)
            return
        # Unmap the slot page: any later touch (use-after-free) faults.
        slot.freed = True
        self.machine.memory.unmap_region(slot.page_base)
        self._freed_slots[slot.page_base] = slot

    def usable_size(self, address: int) -> int:
        slot = self._slots.get(address)
        if slot is not None:
            return slot.object_size
        return self._raw.usable_size(address)

    # ------------------------------------------------------------------
    # Guarded slots
    # ------------------------------------------------------------------
    def _guarded_alloc(self, thread: SimThread, size: int) -> int:
        self.sampled_count += 1
        self.machine.ledger.record(
            EVENT_GUARD_SETUP, nanos_each=GUARD_SETUP_COST_NS
        )
        page = self._next_page
        self._next_page += 2 * PAGE_SIZE  # slot page + (unmapped) guard page
        self.machine.memory.map_region(page, PAGE_SIZE, name="guard-slot")
        # Right-align the object against the guard page, subject to the
        # 16-byte allocator alignment — the classic GWP-ASan slack: up
        # to 15 bytes of the page may sit between object end and guard.
        object_address = (page + PAGE_SIZE - size) & ~(MIN_ALIGNMENT - 1)
        context = self._context_of(thread)
        self._slots[object_address] = _GuardSlot(
            page_base=page,
            object_address=object_address,
            object_size=size,
            context=context,
        )
        return object_address

    def _context_of(self, thread: SimThread) -> CallingContext:
        frames = self._backtracer.full_frames(thread.call_stack)
        return CallingContext(
            return_addresses=tuple(f.return_address for f in frames),
            frames=frames,
        )

    # ------------------------------------------------------------------
    # Crash attribution
    # ------------------------------------------------------------------
    def _on_segv(self, signo: int, info: SigInfo, thread: SimThread) -> None:
        fault = info.fault_address
        # Overflow into the guard page right after a live slot?
        for slot in self._slots.values():
            guard = slot.page_base + PAGE_SIZE
            if guard <= fault < guard + PAGE_SIZE:
                self.reports.append(
                    GuardPageReport(
                        kind="overflow",
                        fault_address=fault,
                        object_address=slot.object_address,
                        object_size=slot.object_size,
                        thread_id=thread.tid,
                        allocation_context=slot.context,
                    )
                )
                return
        # Touch of an unmapped freed slot?
        for base, slot in self._freed_slots.items():
            if base <= fault < base + PAGE_SIZE:
                self.reports.append(
                    GuardPageReport(
                        kind="use-after-free",
                        fault_address=fault,
                        object_address=slot.object_address,
                        object_size=slot.object_size,
                        thread_id=thread.tid,
                        allocation_context=slot.context,
                    )
                )
                return

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def detected(self) -> bool:
        return bool(self.reports)

    def guarded_live(self) -> int:
        return len(self._slots)

    def memory_overhead_bytes(self) -> int:
        """Pages held by guarded live + quarantined freed slots."""
        return (len(self._slots) + len(self._freed_slots)) * PAGE_SIZE

    def shutdown(self) -> None:
        self._interposer.unload()
        self.machine.signals.sigaction(SIGSEGV, None)
