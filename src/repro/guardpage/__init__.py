"""A GWP-ASan-style guard-page sampling detector (beyond-paper baseline).

Contemporaneous with CSOD, the GWP-ASan family samples a tiny fraction
of allocations onto dedicated pages whose successor page is left
unmapped; an overflowing access faults instantly, with perfect
precision.  The trade against CSOD is the point of including it here:

* guard pages sample *allocations uniformly* — catching a specific bug
  needs the one overflowing object to be sampled, so per-execution
  detection probability is ~(sample rate), orders below CSOD's
  context-focused 10-100%;
* each sampled live object costs a full page (plus a quarantined page
  after free), versus CSOD's 40 bytes;
* detection is crash-time (the process dies on the fault), versus
  CSOD's report-and-continue trap.

See :mod:`repro.guardpage.runtime` and the
``benchmarks/test_beyond_guardpage.py`` comparison.
"""

from repro.guardpage.runtime import GuardPageConfig, GuardPageReport, GuardPageRuntime

__all__ = ["GuardPageConfig", "GuardPageReport", "GuardPageRuntime"]
